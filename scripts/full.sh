#!/usr/bin/env bash
# Full experiment run: regenerates every table/figure of the paper's §7
# evaluation on the synthetic stand-in datasets, then compile-checks and
# runs the criterion benches. Expect tens of minutes on a laptop.
#
#   ./scripts/full.sh            # everything
#   ./scripts/full.sh table2     # a single experiment (any harness arg)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "Starting Full (All)"

rm -rf out/full
mkdir -p out/full

cargo build --release --workspace

EXPERIMENT="${1:-all}"
echo "== experiments: $EXPERIMENT =="
cargo run --release -p tim_bench --bin experiments -- "$EXPERIMENT" \
    | tee "out/full/experiments_${EXPERIMENT}.txt"

echo "== criterion benches =="
cargo bench -p tim_bench | tee out/full/benches.txt

echo
echo "Full run complete; artifacts in out/full/"
