#!/usr/bin/env bash
# Fast smoke run (< ~2 minutes on a laptop): proves the workspace builds
# and that TIM+ works end-to-end on small inputs, following the
# kick-tires/full split of the ruler artifact scripts.
#
#   ./scripts/kick-tires.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "Starting Kick Tires"

rm -rf out/kick-tires
mkdir -p out/kick-tires

echo "== build (release) =="
cargo build --release --workspace

echo "== smoke test: Tim + TimPlus end-to-end =="
cargo test -q --release --test smoke

echo "== quickstart example (TIM+ on a 5k-node BA graph) =="
cargo run --release --example quickstart | tee out/kick-tires/quickstart.txt

echo "== CLI round trip: generate -> stats -> select -> evaluate =="
TIM=target/release/tim
GRAPH=out/kick-tires/ba_small.txt
"$TIM" generate ba --out "$GRAPH" --n 2000 --param 4 --seed 1
"$TIM" stats "$GRAPH" | tee out/kick-tires/stats.txt
# --quiet prints exactly one seed label per line.
"$TIM" select "$GRAPH" -k 10 --algo tim+ --model ic --weights wc --eps 0.3 --seed 7 --quiet \
    | tee out/kick-tires/select.txt
SEEDS=$(paste -sd, out/kick-tires/select.txt)
echo "selected seeds: $SEEDS"
"$TIM" evaluate "$GRAPH" --seeds "$SEEDS" --model ic --weights wc --runs 2000 --seed 7 \
    | tee out/kick-tires/evaluate.txt

echo "== snapshot: binary graph round trip =="
SNAP=out/kick-tires/ba_small.timg
"$TIM" snapshot "$GRAPH" --out "$SNAP" | tee out/kick-tires/snapshot.txt
"$TIM" stats "$SNAP" > /dev/null   # transparent .timg input

echo "== query engine: warm pool answers == fresh select =="
POOL=out/kick-tires/ba_small.timp
SESSION=out/kick-tires/session.txt
{
    echo "ping"
    echo "select 10"
    echo "select 5"
    echo "eval $SEEDS"
    echo "marginal $(head -1 out/kick-tires/select.txt) $(sed -n 2p out/kick-tires/select.txt)"
    echo "select 3 fast"
} > "$SESSION"
"$TIM" query "$SNAP" --pool "$POOL" -k 10 --eps 0.3 --seed 7 < "$SESSION" \
    | tee out/kick-tires/query.txt
# The k=10 query answer must be byte-identical to the fresh select run.
sed -n 2p out/kick-tires/query.txt | sed 's/^seeds: //' | tr ' ' '\n' \
    > out/kick-tires/query_seeds.txt
diff out/kick-tires/select.txt out/kick-tires/query_seeds.txt \
    && echo "warm-pool seeds byte-identical to fresh select: OK"

echo "== server: tim serve answers == tim query answers =="
# Ephemeral port; the bound address appears on stdout as "listening on …".
"$TIM" serve "$SNAP" --addr 127.0.0.1:0 --pool "$POOL" -k 10 --eps 0.3 --seed 7 \
    > out/kick-tires/serve.addr 2> out/kick-tires/serve.log &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q '^listening on ' out/kick-tires/serve.addr 2>/dev/null && break
    sleep 0.1
done
ADDR=$(sed -n 's/^listening on //p' out/kick-tires/serve.addr)
echo "server at $ADDR (pid $SERVE_PID)"
"$TIM" client --addr "$ADDR" < "$SESSION" | tee out/kick-tires/serve_answers.txt
# Two more concurrent scripted clients: every session must agree.
"$TIM" client --addr "$ADDR" < "$SESSION" > out/kick-tires/serve_answers2.txt &
C2=$!
"$TIM" client --addr "$ADDR" < "$SESSION" > out/kick-tires/serve_answers3.txt &
C3=$!
wait $C2 $C3
kill $SERVE_PID 2>/dev/null || true
wait $SERVE_PID 2>/dev/null || true
trap - EXIT
diff out/kick-tires/query.txt out/kick-tires/serve_answers.txt \
    && echo "tim serve byte-identical to tim query: OK"
diff out/kick-tires/serve_answers.txt out/kick-tires/serve_answers2.txt
diff out/kick-tires/serve_answers.txt out/kick-tires/serve_answers3.txt \
    && echo "concurrent client sessions byte-identical: OK"

echo "== experiment driver (quick): Figure 4 phase breakdown =="
cargo run --release -p tim_bench --bin experiments -- fig4 --quick --scale 0.2 \
    | tee out/kick-tires/fig4_quick.txt

echo
echo "Kick Tires passed; artifacts in out/kick-tires/"
