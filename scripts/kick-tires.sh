#!/usr/bin/env bash
# Fast smoke run (< ~2 minutes on a laptop): proves the workspace builds
# and that TIM+ works end-to-end on small inputs, following the
# kick-tires/full split of the ruler artifact scripts.
#
#   ./scripts/kick-tires.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "Starting Kick Tires"

rm -rf out/kick-tires
mkdir -p out/kick-tires

echo "== build (release) =="
cargo build --release --workspace

echo "== smoke test: Tim + TimPlus end-to-end =="
cargo test -q --release --test smoke

echo "== quickstart example (TIM+ on a 5k-node BA graph) =="
cargo run --release --example quickstart | tee out/kick-tires/quickstart.txt

echo "== CLI round trip: generate -> stats -> select -> evaluate =="
TIM=target/release/tim
GRAPH=out/kick-tires/ba_small.txt
"$TIM" generate ba --out "$GRAPH" --n 2000 --param 4 --seed 1
"$TIM" stats "$GRAPH" | tee out/kick-tires/stats.txt
# --quiet prints exactly one seed label per line.
"$TIM" select "$GRAPH" -k 10 --algo tim+ --model ic --weights wc --eps 0.3 --seed 7 --quiet \
    | tee out/kick-tires/select.txt
SEEDS=$(paste -sd, out/kick-tires/select.txt)
echo "selected seeds: $SEEDS"
"$TIM" evaluate "$GRAPH" --seeds "$SEEDS" --model ic --weights wc --runs 2000 --seed 7 \
    | tee out/kick-tires/evaluate.txt

echo "== snapshot: binary graph round trip =="
SNAP=out/kick-tires/ba_small.timg
"$TIM" snapshot "$GRAPH" --out "$SNAP" | tee out/kick-tires/snapshot.txt
"$TIM" stats "$SNAP" > /dev/null   # transparent .timg input

echo "== query engine: warm pool answers == fresh select =="
POOL=out/kick-tires/ba_small.timp
SESSION=out/kick-tires/session.txt
{
    echo "ping"
    echo "select 10"
    echo "select 5"
    echo "eval $SEEDS"
    echo "marginal $(head -1 out/kick-tires/select.txt) $(sed -n 2p out/kick-tires/select.txt)"
    echo "select 3 fast"
} > "$SESSION"
"$TIM" query "$SNAP" --pool "$POOL" -k 10 --eps 0.3 --seed 7 < "$SESSION" \
    | tee out/kick-tires/query.txt
# The k=10 query answer must be byte-identical to the fresh select run.
sed -n 2p out/kick-tires/query.txt | sed 's/^seeds: //' | tr ' ' '\n' \
    > out/kick-tires/query_seeds.txt
diff out/kick-tires/select.txt out/kick-tires/query_seeds.txt \
    && echo "warm-pool seeds byte-identical to fresh select: OK"

echo "== server: tim serve answers == tim query answers =="
# Ephemeral port; the bound address appears on stdout as "listening on …".
"$TIM" serve "$SNAP" --addr 127.0.0.1:0 --pool "$POOL" -k 10 --eps 0.3 --seed 7 \
    > out/kick-tires/serve.addr 2> out/kick-tires/serve.log &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q '^listening on ' out/kick-tires/serve.addr 2>/dev/null && break
    sleep 0.1
done
ADDR=$(sed -n 's/^listening on //p' out/kick-tires/serve.addr)
echo "server at $ADDR (pid $SERVE_PID)"
"$TIM" client --addr "$ADDR" < "$SESSION" | tee out/kick-tires/serve_answers.txt
# Two more concurrent scripted clients: every session must agree.
"$TIM" client --addr "$ADDR" < "$SESSION" > out/kick-tires/serve_answers2.txt &
C2=$!
"$TIM" client --addr "$ADDR" < "$SESSION" > out/kick-tires/serve_answers3.txt &
C3=$!
wait $C2 $C3
kill $SERVE_PID 2>/dev/null || true
wait $SERVE_PID 2>/dev/null || true
trap - EXIT
diff out/kick-tires/query.txt out/kick-tires/serve_answers.txt \
    && echo "tim serve byte-identical to tim query: OK"
diff out/kick-tires/serve_answers.txt out/kick-tires/serve_answers2.txt
diff out/kick-tires/serve_answers.txt out/kick-tires/serve_answers3.txt \
    && echo "concurrent client sessions byte-identical: OK"

echo "== event-loop server: epoll core answers == tim query answers =="
# Same snapshot and session through the epoll serving core, with idle
# reaping and admission control armed: the transcript must not change.
"$TIM" serve "$SNAP" --addr 127.0.0.1:0 --pool "$POOL" -k 10 --eps 0.3 --seed 7 \
    --event-loop --idle-timeout 30 --max-conns 256 \
    > out/kick-tires/evloop.addr 2> out/kick-tires/evloop.log &
EV_PID=$!
trap 'kill $EV_PID 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q '^listening on ' out/kick-tires/evloop.addr 2>/dev/null && break
    sleep 0.1
done
EV_ADDR=$(sed -n 's/^listening on //p' out/kick-tires/evloop.addr)
echo "event-loop server at $EV_ADDR (pid $EV_PID)"
"$TIM" client --addr "$EV_ADDR" --timeout 60 < "$SESSION" \
    > out/kick-tires/evloop_answers.txt
# A second pair of concurrent sessions, pipelined through one core.
"$TIM" client --addr "$EV_ADDR" --timeout 60 < "$SESSION" > out/kick-tires/evloop_answers2.txt &
E2=$!
"$TIM" client --addr "$EV_ADDR" --timeout 60 < "$SESSION" > out/kick-tires/evloop_answers3.txt &
E3=$!
wait $E2 $E3
kill $EV_PID 2>/dev/null || true
wait $EV_PID 2>/dev/null || true
trap - EXIT
diff out/kick-tires/query.txt out/kick-tires/evloop_answers.txt \
    && echo "event-loop serve byte-identical to tim query: OK"
diff out/kick-tires/evloop_answers.txt out/kick-tires/evloop_answers2.txt
diff out/kick-tires/evloop_answers.txt out/kick-tires/evloop_answers3.txt \
    && echo "concurrent event-loop sessions byte-identical: OK"

echo "== multi-graph serve: two-graph use/batch session == two single-graph replays =="
GRAPH2=out/kick-tires/ws_small.txt
"$TIM" generate ws --out "$GRAPH2" --n 1500 --param 6 --seed 2
# Per-graph query scripts (labels 0..n-1 exist in both graphs).
QA=out/kick-tires/mg_queries_a.txt
QB=out/kick-tires/mg_queries_b.txt
printf 'select 5\nselect 8\neval 0,1,2\nmarginal 0,1 2\nselect 4 fast\nping\n' > "$QA"
printf 'select 6\nselect 3\neval 0,1,2\nmarginal 0,1 2\nselect 2 fast\nping\n' > "$QB"
# One server, two named graphs; the second half of the session is batched.
MGSESSION=out/kick-tires/mg_session.txt
{
    echo "use ba"
    cat "$QA"
    echo "use ws"
    echo "batch $(wc -l < "$QB")"
    cat "$QB"
} > "$MGSESSION"
"$TIM" serve --graph ba="$SNAP" --graph ws="$GRAPH2" --addr 127.0.0.1:0 \
    -k 10 --eps 0.3 --seed 7 \
    > out/kick-tires/mg_serve.addr 2> out/kick-tires/mg_serve.log &
MG_PID=$!
trap 'kill $MG_PID 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q '^listening on ' out/kick-tires/mg_serve.addr 2>/dev/null && break
    sleep 0.1
done
MG_ADDR=$(sed -n 's/^listening on //p' out/kick-tires/mg_serve.addr)
echo "multi-graph server at $MG_ADDR (pid $MG_PID)"
"$TIM" client --addr "$MG_ADDR" < "$MGSESSION" | tee out/kick-tires/mg_answers.txt
# A scripted session with an error response must make tim client fail.
if printf 'bogus\n' | "$TIM" client --addr "$MG_ADDR" > /dev/null 2>&1; then
    echo "tim client ignored an error response" >&2
    exit 1
fi
echo "tim client exits nonzero on error responses: OK"
kill $MG_PID 2>/dev/null || true
wait $MG_PID 2>/dev/null || true
trap - EXIT
# Ground truth: each graph replayed alone through tim query (one engine,
# no catalog switching, no batching) — the session must match exactly.
{
    echo "using ba"
    "$TIM" query "$SNAP"  -k 10 --eps 0.3 --seed 7 --quiet < "$QA"
    echo "using ws"
    "$TIM" query "$GRAPH2" -k 10 --eps 0.3 --seed 7 --quiet < "$QB"
} > out/kick-tires/mg_expected.txt
diff out/kick-tires/mg_expected.txt out/kick-tires/mg_answers.txt \
    && echo "two-graph use/batch session byte-identical to single-graph replays: OK"

echo "== warm-state tenancy: two-phase restart drill =="
POOLDIR=out/kick-tires/pools
rm -rf "$POOLDIR"
# Phase 1 (cold): serve with write-back, replay the session, check the
# counters admit the cold build, then kill the process.
"$TIM" serve "$SNAP" --addr 127.0.0.1:0 --pool-dir "$POOLDIR" --persist-pools --admin \
    -k 10 --eps 0.3 --seed 7 \
    > out/kick-tires/warm1.addr 2> out/kick-tires/warm1.log &
W1=$!
trap 'kill $W1 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q '^listening on ' out/kick-tires/warm1.addr 2>/dev/null && break
    sleep 0.1
done
ADDR1=$(sed -n 's/^listening on //p' out/kick-tires/warm1.addr)
echo "cold server at $ADDR1 (pid $W1), pools in $POOLDIR"
"$TIM" client --addr "$ADDR1" --timeout 60 < "$SESSION" > out/kick-tires/restart_cold.txt
printf 'select 10\nstats pools\n' | "$TIM" client --addr "$ADDR1" --timeout 60 \
    | tee out/kick-tires/restart_cold_pools.txt | grep -q 'builds=1 loads=0' \
    && echo "cold phase sampled its pool (builds=1): OK"
kill $W1 2>/dev/null || true
wait $W1 2>/dev/null || true
trap - EXIT
test -n "$(find "$POOLDIR" -name '*.timp' 2>/dev/null)" \
    && echo "pool spilled to the store before the kill: OK"
# Phase 2 (warm): restart against the same store, read-through only. The
# transcript must be byte-for-byte identical with zero pool builds.
"$TIM" serve "$SNAP" --addr 127.0.0.1:0 --pool-dir "$POOLDIR" --admin \
    -k 10 --eps 0.3 --seed 7 \
    > out/kick-tires/warm2.addr 2> out/kick-tires/warm2.log &
W2=$!
trap 'kill $W2 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q '^listening on ' out/kick-tires/warm2.addr 2>/dev/null && break
    sleep 0.1
done
ADDR2=$(sed -n 's/^listening on //p' out/kick-tires/warm2.addr)
echo "warm server at $ADDR2 (pid $W2)"
"$TIM" client --addr "$ADDR2" --timeout 60 < "$SESSION" > out/kick-tires/restart_warm.txt
diff out/kick-tires/restart_cold.txt out/kick-tires/restart_warm.txt \
    && echo "restart transcripts byte-identical: OK"
printf 'select 10\nstats pools\n' | "$TIM" client --addr "$ADDR2" --timeout 60 \
    | tee out/kick-tires/restart_warm_pools.txt | grep -q 'builds=0 loads=1' \
    && echo "warm phase loaded from the store, zero rebuilds: OK"
# Runtime tenancy: attach the ws graph live, query it, detach it again —
# every answer must be a non-error (tim client asserts that itself).
printf 'attach ws-live=%s\nuse ws-live\nselect 4\nstats\ndetach ws-live\nselect 2\npersist\n' "$GRAPH2" \
    | "$TIM" client --addr "$ADDR2" --timeout 60 \
    | tee out/kick-tires/attach_detach.txt
grep -q '^attached ws-live$' out/kick-tires/attach_detach.txt
grep -q '^detached ws-live$' out/kick-tires/attach_detach.txt \
    && echo "runtime attach/detach with drain: OK"
kill $W2 2>/dev/null || true
wait $W2 2>/dev/null || true
trap - EXIT

echo "== out-of-core pools: --mmap-pools restart == cold transcript =="
# Phase 3 (mapped): restart once more with --mmap-pools — the v2 spill
# restores as a zero-copy read-only mapping instead of a heap decode.
# Same transcript to the byte, zero builds, and the counters must show
# the mapped path served it (mmap_opens + verifies, not heap_loads).
"$TIM" serve "$SNAP" --addr 127.0.0.1:0 --pool-dir "$POOLDIR" --mmap-pools --admin \
    -k 10 --eps 0.3 --seed 7 \
    > out/kick-tires/warm3.addr 2> out/kick-tires/warm3.log &
W3=$!
trap 'kill $W3 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q '^listening on ' out/kick-tires/warm3.addr 2>/dev/null && break
    sleep 0.1
done
ADDR3=$(sed -n 's/^listening on //p' out/kick-tires/warm3.addr)
echo "mapped-pool server at $ADDR3 (pid $W3)"
"$TIM" client --addr "$ADDR3" --timeout 60 < "$SESSION" > out/kick-tires/restart_mapped.txt
diff out/kick-tires/restart_cold.txt out/kick-tires/restart_mapped.txt \
    && echo "--mmap-pools transcript byte-identical to the cold run: OK"
printf 'select 10\nstats pools\n' | "$TIM" client --addr "$ADDR3" --timeout 60 \
    | tee out/kick-tires/restart_mapped_pools.txt | grep -q 'builds=0 loads=1' \
    && echo "mapped phase loaded from the store, zero rebuilds: OK"
grep -q 'mmap_opens=1 verifies=1 heap_loads=0' out/kick-tires/restart_mapped_pools.txt \
    && echo "restore went through the mmap path (mmap_opens=1, heap_loads=0): OK"
kill $W3 2>/dev/null || true
wait $W3 2>/dev/null || true
trap - EXIT

echo "== out-of-core: v2 snapshot served via mmap == heap transcript =="
# Bake the WC probabilities into a page-aligned v2 snapshot, then run the
# same scripted session through the heap loader (--weights keep) and the
# zero-copy mmap backing (--mmap). The transcripts must be byte-identical.
SNAP2=out/kick-tires/ba_small.v2.timg
"$TIM" snapshot "$GRAPH" --out "$SNAP2" --format v2 --weights wc \
    | tee out/kick-tires/snapshot_v2.txt
"$TIM" query "$SNAP2" -k 10 --eps 0.3 --seed 7 --weights keep < "$SESSION" \
    > out/kick-tires/oc_heap.txt
"$TIM" query "$SNAP2" -k 10 --eps 0.3 --seed 7 --mmap < "$SESSION" \
    > out/kick-tires/oc_mmap.txt
diff out/kick-tires/oc_heap.txt out/kick-tires/oc_mmap.txt \
    && echo "mmap-backed answers byte-identical to heap answers: OK"
# Serve the mapped graph and replay the session through a live client too.
"$TIM" serve "$SNAP2" --addr 127.0.0.1:0 --mmap -k 10 --eps 0.3 --seed 7 \
    > out/kick-tires/oc_serve.addr 2> out/kick-tires/oc_serve.log &
OC_PID=$!
trap 'kill $OC_PID 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q '^listening on ' out/kick-tires/oc_serve.addr 2>/dev/null && break
    sleep 0.1
done
OC_ADDR=$(sed -n 's/^listening on //p' out/kick-tires/oc_serve.addr)
echo "mmap-backed server at $OC_ADDR (pid $OC_PID)"
"$TIM" client --addr "$OC_ADDR" --timeout 60 < "$SESSION" \
    > out/kick-tires/oc_serve_answers.txt
kill $OC_PID 2>/dev/null || true
wait $OC_PID 2>/dev/null || true
trap - EXIT
diff out/kick-tires/oc_heap.txt out/kick-tires/oc_serve_answers.txt \
    && echo "mmap-backed serve byte-identical to heap query: OK"

echo "== sharded selection: --select-threads 4 transcript == serial transcript =="
# Same snapshot, same session, selection sharded across 4 workers (and
# once with 0 = all cores): the thread count may only change latency —
# the transcripts must be byte-identical to the serial query run.
"$TIM" query "$SNAP2" -k 10 --eps 0.3 --seed 7 --weights keep --select-threads 4 < "$SESSION" \
    > out/kick-tires/sharded_query.txt
diff out/kick-tires/oc_heap.txt out/kick-tires/sharded_query.txt \
    && echo "--select-threads 4 query byte-identical to serial: OK"
"$TIM" query "$SNAP2" -k 10 --eps 0.3 --seed 7 --weights keep --select-threads 0 < "$SESSION" \
    > out/kick-tires/sharded_query_auto.txt
diff out/kick-tires/oc_heap.txt out/kick-tires/sharded_query_auto.txt \
    && echo "--select-threads 0 (all cores) byte-identical to serial: OK"
# And through a live server over the mmap backing.
"$TIM" serve "$SNAP2" --addr 127.0.0.1:0 --mmap --select-threads 4 -k 10 --eps 0.3 --seed 7 \
    > out/kick-tires/sharded_serve.addr 2> out/kick-tires/sharded_serve.log &
SH_PID=$!
trap 'kill $SH_PID 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q '^listening on ' out/kick-tires/sharded_serve.addr 2>/dev/null && break
    sleep 0.1
done
SH_ADDR=$(sed -n 's/^listening on //p' out/kick-tires/sharded_serve.addr)
echo "sharded-selection server at $SH_ADDR (pid $SH_PID)"
"$TIM" client --addr "$SH_ADDR" --timeout 60 < "$SESSION" \
    > out/kick-tires/sharded_serve_answers.txt
kill $SH_PID 2>/dev/null || true
wait $SH_PID 2>/dev/null || true
trap - EXIT
diff out/kick-tires/oc_serve_answers.txt out/kick-tires/sharded_serve_answers.txt \
    && echo "--select-threads 4 serve byte-identical to serial serve: OK"

echo "== lazy selection: --select-strategy lazy/eager transcripts == serial transcript =="
# The CELF-style lazy heaps and the eager scans are the same argmax:
# strategy, like thread count, may only change latency — never a byte.
"$TIM" query "$SNAP2" -k 10 --eps 0.3 --seed 7 --weights keep \
    --select-threads 4 --select-strategy lazy < "$SESSION" \
    > out/kick-tires/lazy_query.txt
diff out/kick-tires/oc_heap.txt out/kick-tires/lazy_query.txt \
    && echo "--select-strategy lazy query byte-identical to serial: OK"
"$TIM" query "$SNAP2" -k 10 --eps 0.3 --seed 7 --weights keep \
    --select-threads 4 --select-strategy eager < "$SESSION" \
    > out/kick-tires/eager_query.txt
diff out/kick-tires/oc_heap.txt out/kick-tires/eager_query.txt \
    && echo "--select-strategy eager query byte-identical to serial: OK"
# And the lazy strategy through a live server over the mmap backing.
"$TIM" serve "$SNAP2" --addr 127.0.0.1:0 --mmap --select-threads 4 --select-strategy lazy \
    -k 10 --eps 0.3 --seed 7 \
    > out/kick-tires/lazy_serve.addr 2> out/kick-tires/lazy_serve.log &
LZ_PID=$!
trap 'kill $LZ_PID 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q '^listening on ' out/kick-tires/lazy_serve.addr 2>/dev/null && break
    sleep 0.1
done
LZ_ADDR=$(sed -n 's/^listening on //p' out/kick-tires/lazy_serve.addr)
echo "lazy-selection server at $LZ_ADDR (pid $LZ_PID)"
"$TIM" client --addr "$LZ_ADDR" --timeout 60 < "$SESSION" \
    > out/kick-tires/lazy_serve_answers.txt
kill $LZ_PID 2>/dev/null || true
wait $LZ_PID 2>/dev/null || true
trap - EXIT
diff out/kick-tires/oc_serve_answers.txt out/kick-tires/lazy_serve_answers.txt \
    && echo "--select-strategy lazy mmap serve byte-identical to serial serve: OK"

echo "== experiment driver (quick): Figure 4 phase breakdown =="
cargo run --release -p tim_bench --bin experiments -- fig4 --quick --scale 0.2 \
    | tee out/kick-tires/fig4_quick.txt

echo
echo "Kick Tires passed; artifacts in out/kick-tires/"
