//! Property tests for the persistent pool store: spill → scan → load
//! must be byte-identical, and corrupted or foreign `.timp` files must be
//! quarantined with a warning — never served and never fatal.

use proptest::prelude::*;
use tim_coverage::SetCollection;
use tim_engine::{PoolId, PoolMeta, PoolStore, RrPool, QUARANTINE_DIR};

/// A deterministic synthetic pool: `theta` sets over a `universe`-node
/// graph, membership driven by a cheap LCG so every (seed, theta) pair
/// is a distinct but reproducible byte stream.
fn synth_pool(universe: usize, theta: u64, seed: u64, eps: f64) -> RrPool {
    let mut sets = SetCollection::new(universe);
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut buf = Vec::new();
    for _ in 0..theta {
        buf.clear();
        let len = 1 + (x % 4) as usize;
        for _ in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as usize % universe;
            if !buf.contains(&(v as u32)) {
                buf.push(v as u32);
            }
        }
        sets.push(&buf);
    }
    RrPool {
        meta: PoolMeta {
            graph_checksum: seed ^ 0xABCD_EF01,
            model: if seed % 2 == 0 { "ic" } else { "lt" }.into(),
            epsilon: eps,
            ell: 1.0 + (seed % 3) as f64,
            seed,
            k_max: 1 + (theta % 7) as u32,
            theta,
            select_seed: tim_core::select_stream_seed(seed),
        },
        sets,
    }
}

fn tmp_store(tag: &str, case: u64) -> (std::path::PathBuf, PoolStore) {
    let dir = std::env::temp_dir().join(format!(
        "tim_pool_store_prop_{tag}_{case}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let store = PoolStore::open(&dir).unwrap();
    (dir, store)
}

fn encode(pool: &RrPool) -> Vec<u8> {
    let mut bytes = Vec::new();
    pool.write(&mut bytes).unwrap();
    bytes
}

fn encode_v2(pool: &RrPool) -> Vec<u8> {
    let mut bytes = Vec::new();
    pool.write_v2(&mut bytes).unwrap();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Spill → scan → load round-trips byte-identically: the file on
    /// disk is exactly the pool's serialization, the scan index lists
    /// it, and the probed pool re-serializes to the same bytes.
    #[test]
    fn spill_scan_load_is_byte_identical(
        universe in 4usize..50,
        theta in 1u64..40,
        seed in 0u64..1_000,
    ) {
        let (dir, store) = tmp_store("rt", seed ^ theta);
        let pool = synth_pool(universe, theta, seed, 0.5);
        let id = PoolId::from_meta(&pool.meta);

        let path = store.spill(&pool).unwrap();
        prop_assert_eq!(&path, &store.path_for(&id));
        // On-disk bytes are the exact (v2) serialization.
        let on_disk = std::fs::read(&path).unwrap();
        prop_assert_eq!(&on_disk, &encode_v2(&pool));
        // The scan index finds exactly this entry.
        let entries = store.entries();
        prop_assert_eq!(entries.len(), 1);
        prop_assert_eq!(&entries[0].0, &id.file_stem());
        // The probed pool re-serializes byte-identically.
        let loaded = store.probe(&id).unwrap().expect("stored pool loads");
        prop_assert_eq!(&encode_v2(&loaded), &on_disk);
        prop_assert_eq!(&loaded.meta, &pool.meta);
        // And so does a zero-copy mapped restore, through the heap.
        match store.probe_backed(&id, true).unwrap().expect("maps") {
            tim_engine::ProbedPool::Mapped(m) => {
                prop_assert_eq!(&encode_v2(&m.to_pool()), &on_disk);
            }
            tim_engine::ProbedPool::Heap(_) => prop_assert!(false, "v2 spill must map"),
        }
        prop_assert_eq!(store.stats().quarantined, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Any single-byte corruption and any truncation of a stored pool is
    /// quarantined on probe — reported as a miss (never served, never an
    /// error), with the bad file preserved under `quarantine/`.
    #[test]
    fn corruption_is_quarantined_never_served_never_fatal(
        theta in 1u64..20,
        seed in 0u64..500,
        victim in 0usize..200,
        flip in 1u16..256,
    ) {
        let flip = flip as u8;
        let (dir, store) = tmp_store("corrupt", seed ^ theta ^ victim as u64);
        let pool = synth_pool(16, theta, seed, 0.25);
        let id = PoolId::from_meta(&pool.meta);
        let path = store.spill(&pool).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Corrupt one byte (position wrapped into range)…
        let mut bad = good.clone();
        let at = victim % bad.len();
        bad[at] ^= flip;
        std::fs::write(&path, &bad).unwrap();
        prop_assert!(store.probe(&id).unwrap().is_none(), "corrupt byte {at} served");
        prop_assert!(!path.exists(), "bad file left in place");
        prop_assert_eq!(store.stats().quarantined, 1);

        // …and separately truncate the file: same containment.
        std::fs::write(&path, &good[..victim % good.len()]).unwrap();
        prop_assert!(store.probe(&id).unwrap().is_none(), "truncation served");
        prop_assert_eq!(store.stats().quarantined, 2);

        // Both bad files are preserved for inspection.
        let preserved = std::fs::read_dir(dir.join(QUARANTINE_DIR)).unwrap().count();
        prop_assert_eq!(preserved, 2);
        // The store remains healthy: a fresh spill serves again.
        store.spill(&pool).unwrap();
        prop_assert!(store.probe(&id).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A structurally valid pool written under another provenance's
    /// filename (a "foreign" file — copied from a different graph or
    /// config) is detected by the header check and quarantined.
    #[test]
    fn foreign_pools_are_quarantined(
        theta in 1u64..20,
        seed_a in 0u64..500,
        delta in 1u64..500,
    ) {
        let seed_b = seed_a + delta;
        let (dir, store) = tmp_store("foreign", seed_a ^ delta);
        let mine = synth_pool(16, theta, seed_a, 0.25);
        let foreign = synth_pool(16, theta, seed_b, 0.25);
        let id = PoolId::from_meta(&mine.meta);
        prop_assert!(!id.matches(&foreign.meta), "provenances must differ");

        std::fs::write(store.path_for(&id), encode(&foreign)).unwrap();
        prop_assert!(store.probe(&id).unwrap().is_none(), "foreign pool served");
        prop_assert_eq!(store.stats().quarantined, 1);
        prop_assert_eq!(store.stats().loads, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
