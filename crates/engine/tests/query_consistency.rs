//! The engine's headline guarantee: a warm pool answers any `k ≤ K`
//! byte-identically to a fresh TIM+ run at the same `(seed, ε, ℓ, k)`,
//! and persistence does not change answers.

use tim_core::TimPlus;
use tim_diffusion::{IndependentCascade, LinearThreshold};
use tim_engine::{QueryEngine, RrPool};
use tim_graph::{gen, weights, Graph};

const K: usize = 20;
const EPS: f64 = 0.6;
const ELL: f64 = 1.0;
const SEED: u64 = 42;

fn ic_graph() -> Graph {
    let mut g = gen::barabasi_albert(400, 4, 0.0, 3);
    weights::assign_weighted_cascade(&mut g);
    g
}

fn warm_engine() -> QueryEngine<IndependentCascade> {
    let mut e = QueryEngine::new(ic_graph(), IndependentCascade, "ic")
        .epsilon(EPS)
        .ell(ELL)
        .seed(SEED)
        .k_max(K);
    e.warm();
    e
}

#[test]
fn warm_pool_matches_fresh_runs_at_k_1_half_k_and_k() {
    let g = ic_graph();
    let mut engine = warm_engine();
    for k in [1usize, K / 2, K] {
        let fresh = TimPlus::new(IndependentCascade)
            .epsilon(EPS)
            .ell(ELL)
            .seed(SEED)
            .run(&g, k);
        let warm = engine.select(k);
        assert_eq!(
            warm.seeds, fresh.seeds,
            "k={k}: warm-pool seeds differ from a fresh run"
        );
        assert_eq!(warm.theta_used, fresh.theta, "k={k}: theta differs");
        assert!(!warm.resampled, "k={k}: warm pool must not resample");
        assert_eq!(warm.estimated_spread, fresh.estimated_spread);
    }
}

#[test]
fn answers_survive_pool_persistence() {
    let engine = warm_engine();
    let mut bytes = Vec::new();
    engine.to_pool().write(&mut bytes).unwrap();

    let pool = RrPool::read(bytes.as_slice()).unwrap();
    let mut revived = QueryEngine::from_pool(ic_graph(), IndependentCascade, "ic", pool).unwrap();
    let g = ic_graph();
    for k in [1usize, K / 2, K] {
        let fresh = TimPlus::new(IndependentCascade)
            .epsilon(EPS)
            .ell(ELL)
            .seed(SEED)
            .run(&g, k);
        let warm = revived.select(k);
        assert_eq!(warm.seeds, fresh.seeds, "k={k} after pool round trip");
        assert!(!warm.resampled);
    }
}

#[test]
fn resample_happens_exactly_when_theta_demands_it() {
    let mut engine = warm_engine();
    let warm_theta = engine.pool_theta();

    // Looser epsilon: smaller theta, no resample.
    let loose = engine.select_with(K, Some(EPS * 1.5), None);
    assert!(!loose.resampled);
    assert!(loose.theta_used <= warm_theta);

    // Much tighter epsilon (theta scales as eps^-2, so ~144x): the pool
    // must grow and still match a fresh run at that epsilon.
    let tight_eps = EPS / 12.0;
    let tight = engine.select_with(K, Some(tight_eps), None);
    assert_eq!(tight.resampled, tight.theta_used > warm_theta);
    assert!(tight.resampled, "a 144x theta demand must resample");
    assert!(engine.pool_theta() >= tight.theta_used);
    let fresh = TimPlus::new(IndependentCascade)
        .epsilon(tight_eps)
        .ell(ELL)
        .seed(SEED)
        .run(&ic_graph(), K);
    assert_eq!(tight.seeds, fresh.seeds);

    // The grown pool still answers the original epsilon identically.
    let back = engine.select(K);
    assert!(!back.resampled);
    let fresh_back = TimPlus::new(IndependentCascade)
        .epsilon(EPS)
        .ell(ELL)
        .seed(SEED)
        .run(&ic_graph(), K);
    assert_eq!(back.seeds, fresh_back.seeds);
}

#[test]
fn exactness_holds_under_the_lt_model_too() {
    let mut g = gen::barabasi_albert(300, 4, 0.0, 5);
    weights::assign_lt_normalized(&mut g, 6);
    let mut engine = QueryEngine::new(g.clone(), LinearThreshold, "lt")
        .epsilon(0.7)
        .seed(9)
        .k_max(8);
    engine.warm();
    for k in [1usize, 4, 8] {
        let fresh = TimPlus::new(LinearThreshold)
            .epsilon(0.7)
            .seed(9)
            .run(&g, k);
        assert_eq!(engine.select(k).seeds, fresh.seeds, "LT k={k}");
    }
}

#[test]
fn fast_mode_spread_is_competitive_with_exact_mode() {
    let mut engine = warm_engine();
    let exact = engine.select(K);
    let fast = engine.select_fast(K);
    assert_eq!(fast.seeds.len(), K);
    // Both are greedy runs over >= the required theta; their coverage
    // estimates must land close to each other.
    let rel = (exact.estimated_spread - fast.estimated_spread).abs() / exact.estimated_spread;
    assert!(
        rel < 0.1,
        "exact spread {} vs fast spread {}",
        exact.estimated_spread,
        fast.estimated_spread
    );
}
