//! Adversarial `.timp` v2 decoder tests: round-trip bit-identity, then
//! deterministic corruption — bit flips across every checksummed region,
//! truncation at every section boundary, hostile section tables
//! (misaligned / overlapping / past-EOF offsets, contradictory counts),
//! and version-gate checks. Every hostile input must yield a clean
//! [`tim_engine::EngineError`], never a panic or an out-of-bounds read,
//! on BOTH v2 readers: the eager heap decode (`RrPool::load`) and the
//! zero-copy mapping (`PoolMmap::open` + `verify`). A corrupt file in a
//! [`PoolStore`] must be quarantined as a miss, never served and never
//! fatal.

#![cfg(unix)]

use tim_coverage::SetCollection;
use tim_engine::{
    pool_version, PoolId, PoolMeta, PoolMmap, PoolStore, ProbedPool, RrPool, POOL_V2_ALIGN,
    POOL_V2_HEADER_BYTES,
};

const HEADER_BYTES: usize = POOL_V2_HEADER_BYTES as usize;
const ALIGN: usize = POOL_V2_ALIGN as usize;
/// Byte offset of the first section-table entry in the v2 header.
const TABLE_AT: usize = 136;
const SECTIONS: usize = 4;

/// A deterministic synthetic pool, big enough that every section spans
/// real payload bytes (the inverted index included).
fn sample() -> RrPool {
    let universe = 60usize;
    let theta = 120u64;
    let seed = 7u64;
    let mut sets = SetCollection::new(universe);
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut buf = Vec::new();
    for _ in 0..theta {
        buf.clear();
        let len = 1 + (x % 5) as usize;
        for _ in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as usize % universe;
            if !buf.contains(&(v as u32)) {
                buf.push(v as u32);
            }
        }
        sets.push(&buf);
    }
    RrPool {
        meta: PoolMeta {
            graph_checksum: 0xABCD_EF01_2345_6789,
            model: "ic".into(),
            epsilon: 0.25,
            ell: 1.0,
            seed,
            k_max: 8,
            theta,
            select_seed: tim_core::select_stream_seed(seed),
        },
        sets,
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tim_pool_v2_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes the sample as a v2 file and returns (path, pristine bytes).
fn write_sample(dir: &std::path::Path, name: &str) -> (std::path::PathBuf, Vec<u8>) {
    let pool = sample();
    let path = dir.join(format!("{name}.timp"));
    pool.save_v2(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

/// Both v2 readers must reject the mutated bytes with a clean error. The
/// mapped reader gets its deferred check too (`verify`), since open alone
/// intentionally skips the O(members) section hashing.
fn assert_rejected(dir: &std::path::Path, bytes: &[u8], what: &str) {
    let path = dir.join("mutant.timp");
    std::fs::write(&path, bytes).unwrap();
    assert!(
        RrPool::load(&path).is_err(),
        "{what}: eager decode accepted corrupt bytes"
    );
    if let Ok(view) = PoolMmap::open(&path) {
        assert!(
            view.verify().is_err(),
            "{what}: mmap open + verify accepted corrupt bytes"
        );
    }
}

/// The section table entries as (offset, len), straight from the header.
fn table(bytes: &[u8]) -> Vec<(u64, u64)> {
    (0..SECTIONS)
        .map(|i| {
            let base = TABLE_AT + i * 32;
            let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
            (u64_at(base + 8), u64_at(base + 16))
        })
        .collect()
}

/// Re-seals the header checksum so mutations *below* it are exercised
/// (otherwise every header edit trips the outer checksum first).
fn reseal_header(bytes: &mut [u8]) {
    // FNV-1a over bytes 16..264, little-endian at bytes 8..16 — the
    // constants the format documents.
    let (mut hash, prime) = (0xcbf2_9ce4_8422_2325u64, 0x100_0000_01b3u64);
    for &b in &bytes[16..HEADER_BYTES] {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(prime);
    }
    bytes[8..16].copy_from_slice(&hash.to_le_bytes());
}

#[test]
fn v2_round_trip_is_bit_identical_and_content_faithful() {
    let dir = tmpdir("roundtrip");
    let pool = sample();
    let path = dir.join("rt.timp");
    pool.save_v2(&path).unwrap();
    assert_eq!(pool_version(&path).unwrap(), 2);

    // Writing the same pool twice is bit-identical (no timestamps, no
    // map iteration order, nothing nondeterministic in the layout).
    let again = dir.join("rt2.timp");
    pool.save_v2(&again).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&again).unwrap()
    );

    // Both readers agree with the source.
    let eager = RrPool::load(&path).unwrap();
    assert_eq!(eager.meta, pool.meta);
    assert_eq!(eager.sets.len(), pool.sets.len());
    let view = PoolMmap::open(&path).unwrap();
    view.verify().unwrap();
    assert_eq!(view.meta(), &pool.meta);
    let reloaded = view.to_pool();
    assert_eq!(reloaded.meta, pool.meta);
    for i in 0..pool.sets.len() {
        assert_eq!(view.sets().set(i), pool.sets.set(i), "set {i} differs");
    }

    // Sections are page-aligned as advertised, and the file ends exactly
    // at the last section's final byte (no trailing padding).
    let bytes = std::fs::read(&path).unwrap();
    let sections = table(&bytes);
    for (i, (offset, _)) in sections.iter().enumerate() {
        assert_eq!(offset % ALIGN as u64, 0, "section {i} misaligned");
    }
    let (last_offset, last_len) = sections[SECTIONS - 1];
    assert_eq!(last_offset + last_len, bytes.len() as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flips_anywhere_are_rejected_cleanly() {
    let dir = tmpdir("bitflips");
    let (_, pristine) = write_sample(&dir, "src");
    // A deterministic spray: every region of the file gets hit — header
    // fields, table entries, section payloads. Inter-section padding is
    // not covered by any checksum, so flips there may legitimately be
    // accepted by both readers; skip bytes outside every section.
    let sections = table(&pristine);
    let in_some_section = |pos: usize| {
        pos < HEADER_BYTES
            || sections
                .iter()
                .any(|&(o, l)| (pos as u64) >= o && (pos as u64) < o + l)
    };
    let mut step = 97usize; // coprime-ish stride: ~hundreds of positions
    let mut pos = 3usize;
    while pos < pristine.len() {
        if in_some_section(pos) {
            let mut mutant = pristine.clone();
            mutant[pos] ^= 1 << (pos % 8);
            let path = dir.join("mutant.timp");
            std::fs::write(&path, &mutant).unwrap();
            // The eager reader checks everything at load; a single flipped
            // bit in header, table, or any section must surface as Err.
            assert!(
                RrPool::load(&path).is_err(),
                "eager decode accepted a bit flip at byte {pos}"
            );
            // The mapped reader may defer payload checks to verify().
            if let Ok(view) = PoolMmap::open(&path) {
                assert!(
                    view.verify().is_err(),
                    "mmap verify accepted a bit flip at byte {pos}"
                );
            }
        }
        pos += step;
        step = step.wrapping_mul(31) % 151 + 17; // vary the stride
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_at_every_boundary_is_rejected() {
    let dir = tmpdir("truncate");
    let (_, pristine) = write_sample(&dir, "src");
    let mut cuts: Vec<usize> = vec![0, 1, 3, 4, 7, 8, 15, 16, HEADER_BYTES - 1, HEADER_BYTES];
    for &(offset, len) in &table(&pristine) {
        for cut in [offset, offset + 1, offset + len - 1, offset + len] {
            cuts.push(cut as usize);
        }
    }
    cuts.push(pristine.len() - 1);
    for cut in cuts {
        if cut >= pristine.len() {
            continue;
        }
        assert_rejected(&dir, &pristine[..cut], &format!("truncated at {cut}"));
    }
    // Trailing garbage after the last section is rejected too.
    let mut longer = pristine.clone();
    longer.extend_from_slice(b"junk");
    assert_rejected(&dir, &longer, "trailing garbage");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hostile_section_tables_are_rejected() {
    let dir = tmpdir("table");
    let (_, pristine) = write_sample(&dir, "src");
    let sections = table(&pristine);

    let mutate = |edit: &dyn Fn(&mut Vec<u8>), what: &str| {
        let mut mutant = pristine.clone();
        edit(&mut mutant);
        reseal_header(&mut mutant);
        assert_rejected(&dir, &mutant, what);
    };
    let set_u64 = |bytes: &mut Vec<u8>, at: usize, v: u64| {
        bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
    };

    // Misaligned offset (still in bounds).
    mutate(
        &|b| set_u64(b, TABLE_AT + 8, sections[0].0 + 8),
        "misaligned section offset",
    );
    // Overlapping sections: section 1 placed over section 0.
    mutate(
        &|b| set_u64(b, TABLE_AT + 32 + 8, sections[0].0),
        "overlapping sections",
    );
    // Out of bounds: last section pushed past EOF.
    mutate(
        &|b| {
            set_u64(
                b,
                TABLE_AT + (SECTIONS - 1) * 32 + 8,
                (pristine.len() as u64).div_ceil(ALIGN as u64) * ALIGN as u64,
            )
        },
        "section past EOF",
    );
    // Offset into the header (aligned, but under the first legal start).
    mutate(
        &|b| set_u64(b, TABLE_AT + 8, 0),
        "section overlapping the header",
    );
    // Wrong declared length for the counts.
    mutate(
        &|b| set_u64(b, TABLE_AT + 16, sections[0].1 + 8),
        "section length contradicting the counts",
    );
    // Shuffled section ids break canonical order.
    mutate(
        &|b| {
            b[TABLE_AT..TABLE_AT + 4].copy_from_slice(&1u32.to_le_bytes());
            b[TABLE_AT + 32..TABLE_AT + 36].copy_from_slice(&0u32.to_le_bytes());
        },
        "out-of-order section ids",
    );
    // Set count contradicting theta: the pool must hold exactly θ sets.
    let theta = sample().meta.theta;
    mutate(
        &|b| set_u64(b, 112, theta + 1),
        "set count contradicting theta",
    );
    // Huge claimed counts: overflow-bait values.
    mutate(
        &|b| set_u64(b, 104, u64::from(u32::MAX)),
        "universe overflowing NodeId",
    );
    mutate(
        &|b| {
            set_u64(b, 40, u64::MAX / 8); // theta
            set_u64(b, 112, u64::MAX / 8); // num_sets, kept equal to theta
        },
        "set count overflowing arithmetic",
    );
    mutate(
        &|b| set_u64(b, 120, u64::MAX / 4),
        "member count overflowing arithmetic",
    );
    // Wrong section count.
    mutate(&|b| set_u64(b, 128, 3), "wrong section count");
    mutate(&|b| set_u64(b, 128, u64::MAX), "huge section count");
    // Oversized model tag length walks past the 32-byte field.
    mutate(
        &|b| b[52..56].copy_from_slice(&33u32.to_le_bytes()),
        "model tag length past the field",
    );
    // Non-zero padding after the model tag ("ic" is 2 bytes).
    mutate(&|b| b[72 + 2] = 1, "non-zero model tag padding");
    // Version gate: unknown versions must never decode as v2.
    mutate(
        &|b| b[4..8].copy_from_slice(&3u32.to_le_bytes()),
        "unknown version",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_gates_route_v1_and_v2_transparently() {
    // Both directions of the sniffing contract: v1 pools keep loading
    // unchanged on a v2-aware build, and the mapped reader refuses v1
    // bytes instead of misreading them.
    let dir = tmpdir("gate");
    let pool = sample();
    let v1 = dir.join("p.v1.timp");
    let v2 = dir.join("p.v2.timp");
    pool.save(&v1).unwrap();
    pool.save_v2(&v2).unwrap();
    assert_eq!(pool_version(&v1).unwrap(), 1);
    assert_eq!(pool_version(&v2).unwrap(), 2);

    let from_v1 = RrPool::load(&v1).unwrap();
    let from_v2 = RrPool::load(&v2).unwrap();
    assert_eq!(from_v1.meta, pool.meta);
    assert_eq!(from_v2.meta, pool.meta);
    assert_eq!(from_v1.sets.len(), from_v2.sets.len());

    let err = PoolMmap::open(&v1).unwrap_err().to_string();
    assert!(err.contains("not a v2 pool"), "got: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_store_files_are_quarantined_never_served() {
    // PoolStore::probe_backed — the path a restarting server attaches
    // through — must fail closed on the same corruption the readers
    // reject, quarantine the bad file, and keep the slot reusable.
    let dir = tmpdir("store");
    let store = PoolStore::open(dir.join("pools")).unwrap();
    let pool = sample();
    let id = PoolId::from_meta(&pool.meta);
    let path = store.spill(&pool).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Structural header corruption: quarantined at open, reported as a
    // miss (never an error).
    let mut flipped = pristine.clone();
    flipped[20] ^= 0xFF; // graph_checksum, under the header checksum
    std::fs::write(&path, &flipped).unwrap();
    assert!(store.probe_backed(&id, true).unwrap().is_none());
    assert!(!path.exists(), "bad file left in place");
    assert_eq!(store.stats().quarantined, 1);

    // Truncation mid-section: same containment.
    store.spill(&pool).unwrap();
    std::fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
    assert!(store.probe_backed(&id, true).unwrap().is_none());
    assert_eq!(store.stats().quarantined, 2);

    // Structure-preserving payload corruption — swapping two members
    // inside one set keeps every offset, bound, and occurrence count
    // intact, so the structural open accepts it; only the deferred
    // checksum (verify_mapped) can catch it. The documented contract.
    store.spill(&pool).unwrap();
    let sections = table(&pristine);
    let off_at = sections[0].0 as usize;
    let data_at = sections[1].0 as usize;
    let set_off = |i: usize| {
        u64::from_le_bytes(
            pristine[off_at + i * 8..off_at + i * 8 + 8]
                .try_into()
                .unwrap(),
        ) as usize
    };
    let fat = (0..pool.sets.len())
        .find(|&i| set_off(i + 1) - set_off(i) >= 2)
        .expect("some set has two members");
    let mut swapped = pristine.clone();
    let a = data_at + set_off(fat) * 4;
    for j in 0..4 {
        swapped.swap(a + j, a + 4 + j);
    }
    std::fs::write(&path, &swapped).unwrap();
    match store.probe_backed(&id, true).unwrap().expect("opens") {
        ProbedPool::Mapped(m) => {
            assert!(store.verify_mapped(&m).is_err(), "verify missed the flip")
        }
        ProbedPool::Heap(_) => panic!("v2 spill must map"),
    }

    // The store remains healthy: a fresh spill serves again.
    store.spill(&pool).unwrap();
    match store.probe_backed(&id, true).unwrap().expect("serves") {
        ProbedPool::Mapped(m) => store.verify_mapped(&m).unwrap(),
        ProbedPool::Heap(_) => panic!("v2 spill must map"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
