//! Persistent, per-tenant pool stores: a directory of provenance-keyed
//! `.timp` files that survives process restarts.
//!
//! TIM/TIM+'s entire cost model is front-loaded into building the
//! θ-sized RR-set pool; [`RrPool`] already makes one pool a checksummed,
//! provenance-pinned file. A [`PoolStore`] turns a *collection* of pools
//! into warm state: every pool a serving process builds is spilled into
//! the store, and the next process (or the next cache miss after an
//! eviction) loads it back instead of resampling — converting restart
//! cost from O(pool build) to O(disk load).
//!
//! # Layout
//!
//! One store is one directory (conventionally `<pool-dir>/<graph-name>/`,
//! one per served tenant). Inside it:
//!
//! - `<provenance>.timp` — one pool per provenance
//!   ([`PoolId::file_stem`] encodes the model tag, seed, ε/ℓ bit
//!   patterns, and graph checksum, so lookup is a filename probe);
//! - `index.tsv` — an advisory, human-readable index of the stored
//!   provenances, rewritten atomically after every spill. The loader
//!   never trusts it: filenames and the pools' own checksummed headers
//!   are authoritative;
//! - `quarantine/` — where corrupt or foreign files are moved (see
//!   below).
//!
//! # Crash safety and quarantine
//!
//! Spills are write-then-rename: the pool is fully written to a
//! temporary sibling and atomically renamed into place, so a reader (or
//! a crash) can never observe a half-written `.timp`. Loads validate the
//! file's checksum and compare its provenance header against the
//! filename's claim; a file that fails either check — truncated by an
//! unlucky copy, hand-edited, or dropped in from a different graph — is
//! moved to `quarantine/` with a stderr warning and reported as a miss.
//! A bad file is therefore **never served and never fatal**: the caller
//! rebuilds, and the evidence is preserved for inspection.

use crate::error::EngineError;
use crate::pool::{pool_version, PoolMeta, RrPool, POOL_V2_MODEL_TAG_MAX, POOL_VERSION_V2};
use crate::pool_mmap::PoolMmap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tim_graph::snapshot::Fnv1a;

/// File extension of stored pools.
pub const POOL_EXTENSION: &str = "timp";

/// Name of the advisory index file a store keeps next to its pools.
pub const INDEX_FILE: &str = "index.tsv";

/// Name of the subdirectory corrupt/foreign files are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// The provenance tuple a stored pool is keyed by — everything the
/// sampled sets depend on. Float parameters are keyed by their exact bit
/// patterns (the `.timp` header convention).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PoolId {
    /// Content checksum of the graph the pool was sampled on.
    pub graph_checksum: u64,
    /// Diffusion-model tag (`"ic"` / `"lt"`).
    pub model: String,
    /// The run seed queries replicate.
    pub seed: u64,
    /// Bit pattern of ε.
    pub epsilon_bits: u64,
    /// Bit pattern of ℓ.
    pub ell_bits: u64,
}

impl PoolId {
    /// Builds an id from the provenance tuple.
    pub fn new(
        graph_checksum: u64,
        model: impl Into<String>,
        seed: u64,
        epsilon: f64,
        ell: f64,
    ) -> Self {
        PoolId {
            graph_checksum,
            model: model.into(),
            seed,
            epsilon_bits: epsilon.to_bits(),
            ell_bits: ell.to_bits(),
        }
    }

    /// The provenance of an existing pool header.
    pub fn from_meta(meta: &PoolMeta) -> Self {
        Self::new(
            meta.graph_checksum,
            meta.model.clone(),
            meta.seed,
            meta.epsilon,
            meta.ell,
        )
    }

    /// The ε this id was built with.
    pub fn epsilon(&self) -> f64 {
        f64::from_bits(self.epsilon_bits)
    }

    /// The ℓ this id was built with.
    pub fn ell(&self) -> f64 {
        f64::from_bits(self.ell_bits)
    }

    /// Model tag as it appears in a file stem: ASCII alphanumerics, `_`
    /// and `-` pass through, everything else becomes `_`. A sanitized tag
    /// is disambiguated by an FNV hash suffix so two distinct tags can
    /// never share a stem.
    fn sanitized_model(&self) -> String {
        let mut san: String = self
            .model
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .take(16)
            .collect();
        if san != self.model {
            let mut h = Fnv1a::new();
            h.update(self.model.as_bytes());
            san.push_str(&format!("+{:08x}", h.finish() as u32));
        }
        san
    }

    /// The file stem (no extension) encoding this provenance:
    /// `<model>-s<seed>-e<ε bits>-l<ℓ bits>-g<graph checksum>`.
    pub fn file_stem(&self) -> String {
        format!(
            "{}-s{:x}-e{:016x}-l{:016x}-g{:016x}",
            self.sanitized_model(),
            self.seed,
            self.epsilon_bits,
            self.ell_bits,
            self.graph_checksum
        )
    }

    /// True when `meta` carries exactly this provenance (graph, model,
    /// seed, and bit-exact ε/ℓ) — the check that decides whether a loaded
    /// file is the pool its name claims.
    pub fn matches(&self, meta: &PoolMeta) -> bool {
        self.graph_checksum == meta.graph_checksum
            && self.model == meta.model
            && self.seed == meta.seed
            && self.epsilon_bits == meta.epsilon.to_bits()
            && self.ell_bits == meta.ell.to_bits()
    }
}

/// Store effectiveness counters (monotone since [`PoolStore::open`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Pools written (spilled) into the store.
    pub spills: u64,
    /// Pools successfully restored from the store — the sum of
    /// [`heap_loads`](Self::heap_loads) and
    /// [`mmap_opens`](Self::mmap_opens).
    pub loads: u64,
    /// Files moved to `quarantine/` (corrupt or foreign).
    pub quarantined: u64,
    /// Restores served zero-copy by mapping a v2 file
    /// ([`PoolStore::probe_backed`] with `mmap`).
    pub mmap_opens: u64,
    /// Restores that decoded a pool onto the heap (v1 files, or heap
    /// probes).
    pub heap_loads: u64,
    /// Deferred full-checksum passes run over mapped pools
    /// ([`PoolStore::verify_mapped`]).
    pub verifies: u64,
}

/// A pool restored by [`PoolStore::probe_backed`], in whichever backing
/// the file's version and the caller's preference allowed.
#[derive(Debug)]
pub enum ProbedPool {
    /// Eagerly decoded onto the heap (v1 files, or `mmap = false`).
    Heap(RrPool),
    /// Attached zero-copy from a v2 file.
    Mapped(PoolMmap),
}

impl ProbedPool {
    /// Provenance of the restored pool, whatever the backing.
    pub fn meta(&self) -> &PoolMeta {
        match self {
            ProbedPool::Heap(p) => &p.meta,
            ProbedPool::Mapped(m) => m.meta(),
        }
    }
}

/// A per-tenant on-disk pool store; see the module docs for layout,
/// crash-safety, and quarantine semantics. Cheap to share behind an
/// `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct PoolStore {
    root: PathBuf,
    spills: AtomicU64,
    loads: AtomicU64,
    quarantined: AtomicU64,
    mmap_opens: AtomicU64,
    heap_loads: AtomicU64,
    verifies: AtomicU64,
    /// Uniquifies temp-file names across threads: the pid alone is not
    /// enough, because two sessions of one server can spill the same
    /// provenance concurrently, and a shared temp path would let one
    /// writer truncate the other's half-written file.
    tmp_seq: AtomicU64,
    /// Serializes index rewrites (spills themselves are rename-atomic).
    index_lock: Mutex<()>,
}

impl PoolStore {
    /// Opens (creating if needed) the store rooted at `root`. Existing
    /// pool files are *not* read here — validation happens lazily on
    /// [`probe`](Self::probe), so opening a store with gigabytes of warm
    /// state stays O(1).
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, EngineError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(PoolStore {
            root,
            spills: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            mmap_opens: AtomicU64::new(0),
            heap_loads: AtomicU64::new(0),
            verifies: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
            index_lock: Mutex::new(()),
        })
    }

    /// The directory this store lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path a pool with provenance `id` is (or would be) stored at.
    pub fn path_for(&self, id: &PoolId) -> PathBuf {
        self.root
            .join(format!("{}.{}", id.file_stem(), POOL_EXTENSION))
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            spills: self.spills.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            mmap_opens: self.mmap_opens.load(Ordering::Relaxed),
            heap_loads: self.heap_loads.load(Ordering::Relaxed),
            verifies: self.verifies.load(Ordering::Relaxed),
        }
    }

    /// Looks up the pool with provenance `id`. Returns `Ok(None)` when no
    /// file exists for it **or** the file turned out to be corrupt or
    /// foreign — in the latter case the file is quarantined with a stderr
    /// warning first, so a bad file is never served and never fatal.
    pub fn probe(&self, id: &PoolId) -> Result<Option<RrPool>, EngineError> {
        let path = self.path_for(id);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        match RrPool::read(bytes.as_slice()) {
            Ok(pool) if id.matches(&pool.meta) => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                self.heap_loads.fetch_add(1, Ordering::Relaxed);
                Ok(Some(pool))
            }
            Ok(pool) => {
                self.quarantine(&path, &format!(
                    "provenance header (model '{}', seed {}, eps {}, ell {}, graph {:#018x}) does not match its filename",
                    pool.meta.model, pool.meta.seed, pool.meta.epsilon, pool.meta.ell, pool.meta.graph_checksum
                ));
                Ok(None)
            }
            Err(e) => {
                self.quarantine(&path, &e.to_string());
                Ok(None)
            }
        }
    }

    /// Like [`probe`](Self::probe), but when `mmap` is set and the
    /// stored file is `.timp` v2, the pool is attached zero-copy as a
    /// [`PoolMmap`] instead of being decoded onto the heap — O(header +
    /// structural scan), with the persisted inverted index ready for the
    /// first selection. v1 files transparently fall back to the heap
    /// path. The same quarantine guarantees apply: a corrupt or foreign
    /// file is moved aside and reported as a miss, never served.
    pub fn probe_backed(&self, id: &PoolId, mmap: bool) -> Result<Option<ProbedPool>, EngineError> {
        if !mmap {
            return Ok(self.probe(id)?.map(ProbedPool::Heap));
        }
        let path = self.path_for(id);
        match pool_version(&path) {
            Ok(POOL_VERSION_V2) => {}
            // v1 (or an unknown version the eager decoder will report
            // on): the heap path handles it, quarantine included.
            Ok(_) => return Ok(self.probe(id)?.map(ProbedPool::Heap)),
            Err(EngineError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(EngineError::Io(e)) => return Err(e.into()),
            Err(e) => {
                self.quarantine(&path, &e.to_string());
                return Ok(None);
            }
        }
        match PoolMmap::open(&path) {
            Ok(mapped) if id.matches(mapped.meta()) => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                self.mmap_opens.fetch_add(1, Ordering::Relaxed);
                Ok(Some(ProbedPool::Mapped(mapped)))
            }
            Ok(mapped) => {
                let meta = mapped.meta();
                self.quarantine(&path, &format!(
                    "provenance header (model '{}', seed {}, eps {}, ell {}, graph {:#018x}) does not match its filename",
                    meta.model, meta.seed, meta.epsilon, meta.ell, meta.graph_checksum
                ));
                Ok(None)
            }
            Err(EngineError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(EngineError::Io(e)) => Err(e.into()),
            Err(e) => {
                self.quarantine(&path, &e.to_string());
                Ok(None)
            }
        }
    }

    /// Runs the deferred full-checksum pass over a mapped pool (the
    /// O(file) work [`probe_backed`](Self::probe_backed) skips) and
    /// counts it. On failure the caller should treat the pool as
    /// corrupt — typically [`quarantine_id`](Self::quarantine_id) plus a
    /// rebuild.
    pub fn verify_mapped(&self, pool: &PoolMmap) -> Result<(), EngineError> {
        self.verifies.fetch_add(1, Ordering::Relaxed);
        pool.verify()
    }

    /// Spills `pool` into the store under its own provenance, atomically
    /// (write to a temporary sibling, then rename), and refreshes the
    /// advisory index. Returns the final path. A concurrent spill of the
    /// same provenance is safe: both writers produce byte-identical
    /// files for the same θ, and rename makes the last one win whole.
    ///
    /// Pools are written in the mmap-able `.timp` v2 layout unless the
    /// model tag exceeds the v2 header's fixed field, in which case the
    /// spill transparently falls back to v1 (losing only the zero-copy
    /// restore path for that pool).
    pub fn spill(&self, pool: &RrPool) -> Result<PathBuf, EngineError> {
        let id = PoolId::from_meta(&pool.meta);
        let path = self.path_for(&id);
        let tmp = self.root.join(format!(
            ".tmp-{}-{}-{}.{}",
            id.file_stem(),
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
            POOL_EXTENSION
        ));
        let result = (|| -> Result<(), EngineError> {
            let file = std::fs::File::create(&tmp)?;
            let mut writer = std::io::BufWriter::new(file);
            if pool.meta.model.len() <= POOL_V2_MODEL_TAG_MAX {
                pool.write_v2(&mut writer)?;
            } else {
                pool.write(&mut writer)?;
            }
            // BufWriter::into_inner flushes; sync so the rename never
            // publishes a name pointing at unwritten data after a crash.
            let file = writer
                .into_inner()
                .map_err(|e| EngineError::Io(e.into_error()))?;
            file.sync_all()?;
            std::fs::rename(&tmp, &path)?;
            Ok(())
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result?;
        self.spills.fetch_add(1, Ordering::Relaxed);
        self.write_index();
        Ok(path)
    }

    /// Quarantines the file stored under `id` (e.g. after a provenance
    /// check *outside* the store failed, like attaching to a graph whose
    /// universe does not match). A no-op if no such file exists.
    pub fn quarantine_id(&self, id: &PoolId, reason: &str) {
        let path = self.path_for(id);
        if path.exists() {
            self.quarantine(&path, reason);
        }
    }

    /// Every stored provenance, decoded from the filenames, sorted by
    /// stem — the store's index. Files whose names do not parse as a
    /// provenance stem are skipped (they are quarantined when probed).
    pub fn entries(&self) -> Vec<(String, PathBuf)> {
        let mut found = Vec::new();
        let Ok(dir) = std::fs::read_dir(&self.root) else {
            return found;
        };
        for entry in dir.flatten() {
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some(POOL_EXTENSION) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if stem.starts_with('.') {
                continue; // a leftover temporary from a crashed spill
            }
            found.push((stem.to_string(), path));
        }
        found.sort();
        found
    }

    /// Number of pools currently stored.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// True when the store holds no pools.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn quarantine(&self, path: &Path, reason: &str) {
        let qdir = self.root.join(QUARANTINE_DIR);
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unnamed.timp");
        let unique = format!(
            "{}-{}.{file_name}",
            std::process::id(),
            self.quarantined.load(Ordering::Relaxed)
        );
        let dest = qdir.join(unique);
        let moved = std::fs::create_dir_all(&qdir)
            .and_then(|()| std::fs::rename(path, &dest))
            .is_ok();
        if !moved {
            // Rename can fail if another process quarantined it first;
            // make sure the bad file is at least out of the way.
            std::fs::remove_file(path).ok();
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "pool store: quarantined {} ({reason}){}",
            path.display(),
            if moved {
                format!("; moved to {}", dest.display())
            } else {
                String::new()
            }
        );
        self.write_index();
    }

    /// Rewrites the advisory `index.tsv` (atomically) from the current
    /// directory contents. Best-effort: the index is informational, so
    /// write failures are warned about, never propagated.
    fn write_index(&self) {
        let _guard = self.index_lock.lock().expect("index lock poisoned");
        let mut out = String::from("# stem\tfile\n");
        for (stem, path) in self.entries() {
            out.push_str(&stem);
            out.push('\t');
            out.push_str(path.file_name().and_then(|n| n.to_str()).unwrap_or(""));
            out.push('\n');
        }
        let tmp = self.root.join(format!(
            ".tmp-index-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let written = std::fs::write(&tmp, out)
            .and_then(|()| std::fs::rename(&tmp, self.root.join(INDEX_FILE)));
        if let Err(e) = written {
            std::fs::remove_file(&tmp).ok();
            eprintln!(
                "pool store: could not refresh {}: {e}",
                self.root.join(INDEX_FILE).display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_coverage::SetCollection;

    fn pool(seed: u64, theta: u64) -> RrPool {
        let mut sets = SetCollection::new(8);
        for i in 0..theta {
            sets.push(&[(i % 8) as u32]);
        }
        RrPool {
            meta: PoolMeta {
                graph_checksum: 0xFEED,
                model: "ic".into(),
                epsilon: 0.5,
                ell: 1.0,
                seed,
                k_max: 4,
                theta,
                select_seed: tim_core::select_stream_seed(seed),
            },
            sets,
        }
    }

    fn tmp_store(tag: &str) -> (PathBuf, PoolStore) {
        let dir = std::env::temp_dir().join(format!("tim_pool_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = PoolStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn spill_then_probe_round_trips() {
        let (dir, store) = tmp_store("rt");
        let p = pool(7, 5);
        let path = store.spill(&p).unwrap();
        assert!(path.exists());
        assert!(dir.join(INDEX_FILE).exists(), "index refreshed");
        let id = PoolId::from_meta(&p.meta);
        let got = store.probe(&id).unwrap().expect("stored pool found");
        assert_eq!(got.meta, p.meta);
        assert_eq!(got.sets.len(), p.sets.len());
        assert_eq!(
            store.stats(),
            StoreStats {
                spills: 1,
                loads: 1,
                heap_loads: 1,
                ..StoreStats::default()
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absent_provenance_is_a_clean_miss() {
        let (dir, store) = tmp_store("miss");
        let id = PoolId::new(1, "ic", 2, 0.1, 1.0);
        assert!(store.probe(&id).unwrap().is_none());
        assert_eq!(store.stats(), StoreStats::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_provenances_get_distinct_stems() {
        let base = PoolId::new(1, "ic", 2, 0.1, 1.0);
        let variants = [
            PoolId::new(2, "ic", 2, 0.1, 1.0),
            PoolId::new(1, "lt", 2, 0.1, 1.0),
            PoolId::new(1, "ic", 3, 0.1, 1.0),
            PoolId::new(1, "ic", 2, 0.2, 1.0),
            PoolId::new(1, "ic", 2, 0.1, 2.0),
        ];
        for v in &variants {
            assert_ne!(v.file_stem(), base.file_stem(), "{v:?}");
        }
        // Weird model tags sanitize without colliding.
        let a = PoolId::new(1, "a/b", 2, 0.1, 1.0);
        let b = PoolId::new(1, "a.b", 2, 0.1, 1.0);
        assert_ne!(a.file_stem(), b.file_stem());
    }

    #[test]
    fn corrupt_file_is_quarantined_not_served() {
        let (dir, store) = tmp_store("corrupt");
        let p = pool(3, 4);
        let path = store.spill(&p).unwrap();
        // Flip one payload byte: the checksum catches it.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();

        let id = PoolId::from_meta(&p.meta);
        assert!(
            store.probe(&id).unwrap().is_none(),
            "corrupt pool not served"
        );
        assert!(!path.exists(), "bad file moved out of the store");
        assert_eq!(store.stats().quarantined, 1);
        let quarantined: Vec<_> = std::fs::read_dir(dir.join(QUARANTINE_DIR))
            .unwrap()
            .collect();
        assert_eq!(quarantined.len(), 1);
        // The provenance is a plain miss afterwards — callers rebuild.
        assert!(store.probe(&id).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_file_under_a_stolen_name_is_quarantined() {
        let (dir, store) = tmp_store("foreign");
        let mine = pool(3, 4);
        let foreign = pool(99, 4); // valid pool, different provenance
        let id = PoolId::from_meta(&mine.meta);
        // Write the foreign pool under the name of `mine`.
        let mut bytes = Vec::new();
        foreign.write(&mut bytes).unwrap();
        std::fs::write(store.path_for(&id), bytes).unwrap();

        assert!(
            store.probe(&id).unwrap().is_none(),
            "foreign pool not served"
        );
        assert_eq!(store.stats().quarantined, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn entries_skip_temporaries_and_sort() {
        let (dir, store) = tmp_store("entries");
        store.spill(&pool(2, 3)).unwrap();
        store.spill(&pool(1, 3)).unwrap();
        std::fs::write(dir.join(".tmp-leftover.timp"), b"junk").unwrap();
        std::fs::write(dir.join("notes.txt"), b"not a pool").unwrap();
        let entries = store.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn probe_backed_maps_v2_spills_zero_copy() {
        let (dir, store) = tmp_store("mmap");
        let p = pool(11, 6);
        store.spill(&p).unwrap();
        let id = PoolId::from_meta(&p.meta);

        let got = store.probe_backed(&id, true).unwrap().expect("restored");
        let ProbedPool::Mapped(mapped) = got else {
            panic!("a v2 spill probed with mmap must map, not load");
        };
        assert_eq!(mapped.meta(), &p.meta);
        assert_eq!(mapped.sets().len(), p.sets.len());
        store.verify_mapped(&mapped).unwrap();

        // Heap preference still decodes eagerly from the same v2 file.
        let heap = store.probe_backed(&id, false).unwrap().expect("restored");
        assert!(matches!(heap, ProbedPool::Heap(_)));
        assert_eq!(
            store.stats(),
            StoreStats {
                spills: 1,
                loads: 2,
                mmap_opens: 1,
                heap_loads: 1,
                verifies: 1,
                ..StoreStats::default()
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn probe_backed_falls_back_to_heap_for_v1_files() {
        let (dir, store) = tmp_store("mmap_v1");
        let p = pool(12, 4);
        let id = PoolId::from_meta(&p.meta);
        p.save(store.path_for(&id)).unwrap(); // hand-placed v1 file
        let got = store.probe_backed(&id, true).unwrap().expect("restored");
        assert!(
            matches!(got, ProbedPool::Heap(_)),
            "a v1 file cannot be mapped; it loads eagerly"
        );
        assert_eq!(store.stats().mmap_opens, 0);
        assert_eq!(store.stats().heap_loads, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn probe_backed_quarantines_corrupt_v2_files() {
        let (dir, store) = tmp_store("mmap_bad");
        let p = pool(13, 4);
        let path = store.spill(&p).unwrap();
        let id = PoolId::from_meta(&p.meta);
        // Corrupt the header payload: the open-time checksum catches it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert!(store.probe_backed(&id, true).unwrap().is_none());
        assert!(!path.exists(), "bad file moved out of the store");
        assert_eq!(store.stats().quarantined, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_model_tags_spill_as_v1() {
        let (dir, store) = tmp_store("v1_fallback");
        let mut p = pool(14, 3);
        p.meta.model = "m".repeat(crate::pool::POOL_V2_MODEL_TAG_MAX + 1);
        let path = store.spill(&p).unwrap();
        assert_eq!(pool_version(&path).unwrap(), crate::pool::POOL_VERSION);
        let id = PoolId::from_meta(&p.meta);
        let got = store.probe_backed(&id, true).unwrap().expect("restored");
        assert!(matches!(got, ProbedPool::Heap(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn respill_overwrites_with_the_grown_pool() {
        let (dir, store) = tmp_store("grow");
        store.spill(&pool(5, 3)).unwrap();
        let grown = pool(5, 9);
        store.spill(&grown).unwrap();
        let got = store
            .probe(&PoolId::from_meta(&grown.meta))
            .unwrap()
            .unwrap();
        assert_eq!(got.meta.theta, 9, "last spill wins whole");
        assert_eq!(store.len(), 1, "same provenance, one file");
        std::fs::remove_dir_all(&dir).ok();
    }
}
