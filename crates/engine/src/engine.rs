//! The warm-pool query engine.

use crate::error::EngineError;
use crate::pool::{PoolMeta, RrPool};
use crate::pool_mmap::PoolMmap;
use std::collections::BTreeMap;
use std::sync::Arc;
use tim_core::parallel::{generate_rr_sets, shard_layout};
use tim_core::select::resolve_select_threads;
use tim_core::{select_stream_seed, SamplingPlan, SelectStrategy, TimPlus};
use tim_coverage::{
    greedy_max_cover, greedy_max_cover_indexed, greedy_max_cover_sharded_indexed_with,
    greedy_max_cover_sharded_with, CoverResult, SetCollection, SetsAccess, SetsStore, SetsView,
};
use tim_diffusion::BackingModel;
use tim_graph::{CsrView, Graph, GraphStore, NodeId};

/// Result of one `select` query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The selected seed set (dense ids), in greedy order.
    pub seeds: Vec<NodeId>,
    /// θ the answer was computed over — exactly what a fresh
    /// [`TimPlus::run`] at the same `(seed, ε, ℓ, k)` would sample.
    pub theta_used: u64,
    /// Current pool size (≥ `theta_used`).
    pub pool_theta: u64,
    /// True when this query forced the pool to grow (cold pool, larger
    /// `k`, or a tighter ε/ℓ demanded more sets).
    pub resampled: bool,
    /// `n · F_R(S)`: coverage-based unbiased estimate of the seeds'
    /// expected spread, over the `theta_used` sets.
    pub estimated_spread: f64,
}

/// Cached single greedy run used by [`QueryEngine::select_fast`].
#[derive(Debug)]
struct FastCover {
    pool_theta: u64,
    cover: CoverResult,
}

/// An influence-query engine that amortizes RR-set sampling across
/// queries.
///
/// TIM+ splits into an expensive sampling phase and a cheap greedy phase;
/// a `QueryEngine` keeps the sampled pool resident (and optionally
/// persisted via [`RrPool`]) so that repeated queries pay only for greedy
/// max-coverage. Two answering modes:
///
/// - [`select`](Self::select) — **exact replay**: re-derives the
///   [`SamplingPlan`] for the queried `k`, carves the exact θ-prefix a
///   fresh run would have sampled out of the pool (see
///   [`shard_layout`]'s prefix-composability), and returns seed sets
///   **byte-identical** to [`TimPlus::run`] at the same
///   `(seed, ε, ℓ, k)`. The pool grows (resamples) only when ε/ℓ/k
///   demand a larger θ than it holds.
/// - [`select_fast`](Self::select_fast) — **prefix answering**: one
///   greedy run over the whole pool at its full θ, answering any `k` as
///   the `k`-prefix of that run (greedy's prefix property). Uses *more*
///   sets than required — θ ≥ λ/OPT still holds, so the
///   `(1 − 1/e − ε)` guarantee is preserved — at near-zero marginal
///   cost per query.
///
/// Spread and marginal-gain queries are answered against the full pool.
///
/// ```
/// use tim_diffusion::IndependentCascade;
/// use tim_engine::QueryEngine;
/// use tim_graph::{gen, weights};
///
/// let mut g = gen::barabasi_albert(300, 4, 0.1, 1);
/// weights::assign_weighted_cascade(&mut g);
/// let mut engine = QueryEngine::new(g, IndependentCascade, "ic")
///     .epsilon(0.8)
///     .seed(7)
///     .k_max(10);
/// engine.warm();
///
/// let five = engine.select(5);
/// assert_eq!(five.seeds.len(), 5);
/// assert!(!five.resampled); // served from the warm pool
/// let gain = engine.marginal_gain(&five.seeds, 99);
/// assert!(gain >= 0.0);
/// ```
#[derive(Debug)]
pub struct QueryEngine<M> {
    store: GraphStore,
    model: M,
    model_name: String,
    epsilon: f64,
    ell: f64,
    seed: u64,
    threads: usize,
    select_threads: usize,
    select_strategy: SelectStrategy,
    k_max: usize,
    select_seed: u64,
    /// The RR-set pool, served from the heap or zero-copy from a mapped
    /// `.timp` v2 file. Every query path reads through it; growth
    /// replaces it with a freshly sampled heap collection.
    pool: SetsStore,
    pool_theta: u64,
    /// Plan cache keyed by `(k, ε bits, ℓ bits)`.
    plans: BTreeMap<(usize, u64, u64), SamplingPlan>,
    fast: Option<FastCover>,
}

impl<M: BackingModel + Clone> QueryEngine<M> {
    /// Creates a cold engine (no sets sampled yet) for `graph` under
    /// `model`, with the paper's defaults (ε = 0.1, ℓ = 1, seed 0,
    /// `k_max` 50). `model_name` is the provenance tag persisted with
    /// pools (`"ic"` / `"lt"`).
    ///
    /// Accepts the graph by value or as an [`Arc`] — several engines (e.g.
    /// the entries of a serving pool cache) can share one immutable graph
    /// without copying the CSR arrays. To serve an out-of-core graph
    /// straight from a mapped v2 snapshot, use
    /// [`with_store`](Self::with_store).
    ///
    /// # Panics
    /// Panics if the graph has fewer than 2 nodes or no edges.
    pub fn new(graph: impl Into<Arc<Graph>>, model: M, model_name: impl Into<String>) -> Self {
        Self::with_store(GraphStore::from_arc(graph.into()), model, model_name)
    }

    /// Creates a cold engine over an arbitrary [`GraphStore`] backing —
    /// heap-resident or a zero-copy mmap view. Answers are backing-
    /// independent: the same `(seed, ε, ℓ, k)` yields byte-identical
    /// seeds whether the store is heap or mmap (the sampling streams
    /// never depend on the backing).
    ///
    /// # Panics
    /// Panics if the graph has fewer than 2 nodes or no edges.
    pub fn with_store(store: GraphStore, model: M, model_name: impl Into<String>) -> Self {
        assert!(store.n() >= 2, "engine needs at least 2 nodes");
        assert!(store.m() >= 1, "engine needs at least 1 edge");
        let n = store.n();
        QueryEngine {
            store,
            model,
            model_name: model_name.into(),
            epsilon: 0.1,
            ell: 1.0,
            seed: 0,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            select_threads: 1,
            select_strategy: SelectStrategy::Auto,
            k_max: 50,
            select_seed: select_stream_seed(0),
            pool: SetsStore::heap(SetCollection::new(n)),
            pool_theta: 0,
            plans: BTreeMap::new(),
            fast: None,
        }
    }

    /// Sets the approximation slack ε (default 0.1).
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        self.epsilon = epsilon;
        self
    }

    /// Sets the failure exponent ℓ (default 1).
    #[must_use]
    pub fn ell(mut self, ell: f64) -> Self {
        assert!(ell > 0.0, "ell must be positive");
        self.ell = ell;
        self
    }

    /// Sets the run seed all queries replicate (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.select_seed = select_stream_seed(seed);
        self
    }

    /// Caps worker threads for resampling (default: all cores). Thread
    /// count never changes results.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        self.threads = threads;
        self
    }

    /// Worker threads for the greedy selection phase (default 1 = serial;
    /// 0 = all cores). The sharded solver is byte-identical to the serial
    /// one, so this never changes answers — only latency.
    #[must_use]
    pub fn select_threads(mut self, select_threads: usize) -> Self {
        self.select_threads = select_threads;
        self
    }

    /// How sharded selection workers search their node range (default
    /// [`SelectStrategy::Auto`], which picks the lazy CELF-style heaps).
    /// Strategy never changes answers — lazy and eager votes are
    /// byte-identical — only the number of gain evaluations per round.
    #[must_use]
    pub fn select_strategy(mut self, select_strategy: SelectStrategy) -> Self {
        self.select_strategy = select_strategy;
        self
    }

    /// Sets the seed-set size the pool is warmed for (default 50).
    /// Queries beyond it still work — they grow the pool on demand.
    #[must_use]
    pub fn k_max(mut self, k_max: usize) -> Self {
        assert!(k_max >= 1, "k_max must be at least 1");
        self.k_max = k_max;
        self
    }

    /// Attaches a persisted pool to a graph, validating the full
    /// provenance chain (graph checksum, model tag, universe size, seed
    /// consistency). The engine adopts the pool's `(ε, ℓ, seed, k_max)`.
    pub fn from_pool(
        graph: impl Into<Arc<Graph>>,
        model: M,
        model_name: impl Into<String>,
        pool: RrPool,
    ) -> Result<Self, EngineError> {
        Self::from_pool_store(GraphStore::from_arc(graph.into()), model, model_name, pool)
    }

    /// [`from_pool`](Self::from_pool) over an arbitrary [`GraphStore`]
    /// backing. Provenance validation is backing-independent — the
    /// checksum a heap graph hashes to is the one a v2 snapshot records
    /// in its header — so a pool sampled against a heap graph attaches
    /// to the same graph served from an mmap view, and vice versa.
    pub fn from_pool_store(
        store: GraphStore,
        model: M,
        model_name: impl Into<String>,
        pool: RrPool,
    ) -> Result<Self, EngineError> {
        let model_name = model_name.into();
        Self::validate_pool_meta(&store, &model_name, &pool.meta, pool.sets.universe())?;
        let meta = &pool.meta;
        let mut engine = QueryEngine::with_store(store, model, model_name)
            .epsilon(meta.epsilon)
            .ell(meta.ell)
            .seed(meta.seed)
            .k_max(meta.k_max.max(1) as usize);
        engine.pool_theta = pool.meta.theta;
        engine.pool = SetsStore::heap(pool.sets);
        // Invariant: a non-empty pool always carries a fresh inverted
        // index, so the read-only `try_*` paths can run greedy without
        // mutating the collection. (Mapped pools persist theirs.)
        engine.pool.ensure_inverted_index();
        Ok(engine)
    }

    /// [`from_pool_store`](Self::from_pool_store) for a zero-copy mapped
    /// `.timp` v2 pool: the same provenance chain is validated, but the
    /// sets stay in the file mapping — no heap decode, no index rebuild
    /// (v2 persists the inverted index). Every query class answers
    /// byte-identically to the heap backing; growth (a tighter ε or a
    /// larger `k`) resamples onto the heap exactly as it would have.
    pub fn from_mapped_pool(
        store: GraphStore,
        model: M,
        model_name: impl Into<String>,
        pool: PoolMmap,
    ) -> Result<Self, EngineError> {
        let model_name = model_name.into();
        Self::validate_pool_meta(&store, &model_name, pool.meta(), pool.sets().universe())?;
        let (meta, sets) = pool.into_parts();
        let mut engine = QueryEngine::with_store(store, model, model_name)
            .epsilon(meta.epsilon)
            .ell(meta.ell)
            .seed(meta.seed)
            .k_max(meta.k_max.max(1) as usize);
        engine.pool_theta = meta.theta;
        engine.pool = SetsStore::mapped(sets);
        Ok(engine)
    }

    /// The provenance chain every pool attach validates, whatever the
    /// backing: graph checksum, model tag, universe size, seed
    /// derivation, and usable ε/ℓ.
    fn validate_pool_meta(
        store: &GraphStore,
        model_name: &str,
        meta: &PoolMeta,
        universe: usize,
    ) -> Result<(), EngineError> {
        let checksum = store.checksum();
        if meta.graph_checksum != checksum {
            return Err(EngineError::Mismatch(format!(
                "pool was sampled on graph {:#018x}, this graph is {checksum:#018x} \
                 (different edges, probabilities, or weight model)",
                meta.graph_checksum
            )));
        }
        if meta.model != model_name {
            return Err(EngineError::Mismatch(format!(
                "pool was sampled under model '{}', engine uses '{model_name}'",
                meta.model
            )));
        }
        if universe != store.n() {
            return Err(EngineError::Mismatch(format!(
                "pool universe {universe} != graph node count {}",
                store.n()
            )));
        }
        if meta.select_seed != select_stream_seed(meta.seed) {
            return Err(EngineError::Mismatch(
                "pool's select seed is not derived from its run seed".into(),
            ));
        }
        // f64::from_bits accepts anything, so a structurally valid pool can
        // still carry unusable parameters; reject them here rather than
        // panicking in the builder asserts.
        if meta.epsilon <= 0.0 || !meta.epsilon.is_finite() {
            return Err(EngineError::Format(format!(
                "pool epsilon {} is not a positive finite number",
                meta.epsilon
            )));
        }
        if meta.ell <= 0.0 || !meta.ell.is_finite() {
            return Err(EngineError::Format(format!(
                "pool ell {} is not a positive finite number",
                meta.ell
            )));
        }
        Ok(())
    }

    /// The engine's current provenance header (what
    /// [`to_pool`](Self::to_pool) would persist), without cloning the
    /// sets. Cheap — used e.g. to derive pool-cache keys.
    pub fn pool_meta(&self) -> PoolMeta {
        PoolMeta {
            graph_checksum: self.store.checksum(),
            model: self.model_name.clone(),
            epsilon: self.epsilon,
            ell: self.ell,
            seed: self.seed,
            k_max: self.k_max as u32,
            theta: self.pool_theta,
            select_seed: self.select_seed,
        }
    }

    /// Snapshots the current pool (with provenance) for persistence.
    /// For a mapped backing this materializes a heap copy of the sets —
    /// callers that only respill an unchanged mapped pool should skip
    /// the spill instead (the file already holds these bytes).
    pub fn to_pool(&self) -> RrPool {
        let sets = match self.pool.as_heap() {
            Some(c) => c.clone(),
            None => self
                .pool
                .as_mapped()
                .expect("pool is heap or mapped")
                .to_collection(),
        };
        RrPool {
            meta: self.pool_meta(),
            sets,
        }
    }

    /// True when the pool is served zero-copy from a mapped `.timp` v2
    /// file rather than the heap.
    pub fn pool_is_mapped(&self) -> bool {
        self.pool.is_mapped()
    }

    /// Heap bytes held by the pool backing (0 when mapped).
    pub fn pool_memory_bytes(&self) -> usize {
        self.pool.memory_bytes()
    }

    /// Bytes of the pool's file mapping (0 when heap-backed).
    pub fn pool_mapped_bytes(&self) -> usize {
        self.pool.mapped_bytes()
    }

    /// The backing store queries run against (heap or mmap).
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// The heap graph queries run against.
    ///
    /// # Panics
    /// Panics when the engine serves a mapped snapshot — there is no
    /// heap `Graph` to borrow; use [`store`](Self::store).
    pub fn graph(&self) -> &Graph {
        self.store
            .heap_arc()
            .expect("graph(): engine is mmap-backed (use store())")
    }

    /// A shared handle to the heap graph, for building further engines
    /// (e.g. pool-cache entries at a different ε/ℓ) without copying it.
    ///
    /// # Panics
    /// Panics when the engine serves a mapped snapshot; clone
    /// [`store`](Self::store) instead.
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(
            self.store
                .heap_arc()
                .expect("graph_arc(): engine is mmap-backed (use store())"),
        )
    }

    /// Current pool size θ (0 when cold).
    pub fn pool_theta(&self) -> u64 {
        self.pool_theta
    }

    /// The `k` the pool is warmed for.
    pub fn warmed_k(&self) -> usize {
        self.k_max
    }

    /// Content checksum of the attached graph (backing-independent).
    pub fn graph_checksum(&self) -> u64 {
        self.store.checksum()
    }

    /// Warms the pool so that **every** `k ≤ k_max` is answerable without
    /// resampling, and returns the resulting pool θ.
    ///
    /// θ(k) = λ(k)/KPT⁺(k) is *not* monotone in `k`: λ grows with `k`,
    /// but so does the KPT⁺ bound, and for small `k` the bound is small
    /// enough that θ(1) routinely exceeds θ(k_max). Warming therefore
    /// provisions `max(θ(1), θ(k_max), ⌈λ(k_max)/KPT⁺(1)⌉)`; the last
    /// term upper-bounds θ(k) for every `k ≤ k_max` whose KPT⁺ estimate
    /// is at least KPT⁺(1) (KPT is monotone in `k`, so estimates only
    /// fall below that on sampling noise).
    pub fn warm(&mut self) -> u64 {
        let plan_one = self.plan_for(1, self.epsilon, self.ell);
        let plan_top = self.plan_for(self.k_max, self.epsilon, self.ell);
        let bound_one = plan_one.kpt_plus.unwrap_or(plan_one.kpt_star);
        let lam_top = tim_core::math::lambda(
            self.store.n() as u64,
            plan_top.k as u64,
            self.epsilon,
            plan_top.ell_eff,
        );
        let theta_bound = (lam_top / bound_one).ceil().max(1.0) as u64;
        self.ensure_theta(plan_one.theta.max(plan_top.theta).max(theta_bound));
        self.pool_theta
    }

    /// Computes (and caches) the sampling plan for `k` under `(eps, ell)`.
    fn plan_for(&mut self, k: usize, eps: f64, ell: f64) -> SamplingPlan {
        let key = (k, eps.to_bits(), ell.to_bits());
        if let Some(plan) = self.plans.get(&key) {
            return plan.clone();
        }
        let planner = TimPlus::new(self.model.clone())
            .epsilon(eps)
            .ell(ell)
            .seed(self.seed)
            .threads(self.threads);
        // Dispatch once on the backing; the planner body is monomorphized
        // per concrete CSR type, so the heap path keeps its old codegen.
        let plan = match self.store.view() {
            CsrView::Heap(g) => planner.plan(g, k),
            CsrView::Mmap(v) => planner.plan(v, k),
        };
        self.plans.insert(key, plan.clone());
        plan
    }

    /// Grows the pool to at least `theta` sets; returns true if it
    /// resampled.
    fn ensure_theta(&mut self, theta: u64) -> bool {
        if theta <= self.pool_theta {
            return false;
        }
        // Regenerate from the fixed selection stream: deterministic, and
        // the old pool is a shard-aligned prefix of the new one. A mapped
        // backing is simply replaced — growth is always heap-side, and
        // the next farewell spill persists the grown pool as a fresh v2
        // file.
        let (pool, _) = match self.store.view() {
            CsrView::Heap(g) => {
                generate_rr_sets(g, &self.model, theta, self.select_seed, self.threads)
            }
            CsrView::Mmap(v) => {
                generate_rr_sets(v, &self.model, theta, self.select_seed, self.threads)
            }
        };
        self.pool = SetsStore::heap(pool);
        // Keep the inverted index fresh whenever the pool is non-empty, so
        // every subsequent same-θ greedy run — including the read-only
        // `try_*` paths used under shared references — is `&self`.
        self.pool.ensure_inverted_index();
        self.pool_theta = theta;
        self.fast = None;
        true
    }

    /// Extracts the sub-collection a fresh `theta`-set run would have
    /// produced (see [`shard_layout`] for why this is exact).
    fn subset(&self, theta: u64) -> SetCollection {
        debug_assert!(theta <= self.pool_theta);
        let pool_counts = shard_layout(self.pool_theta);
        let want = shard_layout(theta);
        let view = self.pool.view();
        let mut sub =
            SetCollection::with_capacity(view.universe(), theta as usize, theta as usize * 2);
        let mut start = 0usize;
        for (i, &pool_count) in pool_counts.iter().enumerate() {
            let take = want.get(i).copied().unwrap_or(0) as usize;
            for j in 0..take {
                sub.push(view.set(start + j));
            }
            start += pool_count as usize;
        }
        sub
    }

    /// Answers a `k`-seed selection **byte-identically** to
    /// [`TimPlus::run`] at the engine's `(seed, ε, ℓ)`: the estimation
    /// phases are replayed (cheap), and the selection sample is carved
    /// from the pool instead of regenerated (the expensive part).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn select(&mut self, k: usize) -> QueryOutcome {
        self.select_with(k, None, None)
    }

    /// [`select`](Self::select) with per-query ε/ℓ overrides. A tighter
    /// ε or ℓ than the pool was built for may demand a larger θ, which
    /// triggers a resample (reported in
    /// [`QueryOutcome::resampled`]).
    pub fn select_with(&mut self, k: usize, eps: Option<f64>, ell: Option<f64>) -> QueryOutcome {
        assert!(k >= 1, "k must be at least 1");
        let eps = eps.unwrap_or(self.epsilon);
        let ell = ell.unwrap_or(self.ell);
        assert!(eps > 0.0 && ell > 0.0, "epsilon and ell must be positive");
        let plan = self.plan_for(k, eps, ell);
        let resampled = self.ensure_theta(plan.theta);
        let outcome = self.answer_plan(&plan, resampled);
        debug_assert_eq!(outcome.seeds.len(), plan.k.min(self.store.n()));
        outcome
    }

    /// Runs greedy for an already-satisfiable plan (`plan.theta ≤`
    /// [`pool_theta`](Self::pool_theta)) — the shared tail of the mutable
    /// and read-only select paths.
    fn answer_plan(&self, plan: &SamplingPlan, resampled: bool) -> QueryOutcome {
        debug_assert!(plan.theta <= self.pool_theta);
        let n = self.store.n() as f64;
        let t = resolve_select_threads(self.select_threads);
        let cover = if plan.theta == self.pool_theta {
            // Match once so the solver's inner loops monomorphize per
            // backing instead of dispatching per set access.
            match self.pool.view() {
                SetsView::Heap(c) => {
                    if t > 1 {
                        greedy_max_cover_sharded_indexed_with(c, plan.k, t, self.select_strategy)
                    } else {
                        greedy_max_cover_indexed(c, plan.k)
                    }
                }
                SetsView::Mmap(m) => {
                    if t > 1 {
                        greedy_max_cover_sharded_indexed_with(m, plan.k, t, self.select_strategy)
                    } else {
                        greedy_max_cover_indexed(m, plan.k)
                    }
                }
            }
        } else {
            let mut sub = self.subset(plan.theta);
            if t > 1 {
                greedy_max_cover_sharded_with(&mut sub, plan.k, t, self.select_strategy)
            } else {
                greedy_max_cover(&mut sub, plan.k)
            }
        };
        let frac = cover.coverage_fraction(plan.theta as usize);
        QueryOutcome {
            seeds: cover.seeds,
            theta_used: plan.theta,
            pool_theta: self.pool_theta,
            resampled,
            estimated_spread: frac * n,
        }
    }

    /// Read-only [`select_with`](Self::select_with): answers from cached
    /// plans and the current pool **without mutating the engine**, or
    /// returns `None` when the query would need a plan computation or a
    /// resample (then take the `&mut` path). Used by
    /// [`SharedEngine`](crate::SharedEngine) to serve concurrent readers
    /// under a read lock; a `Some` answer is byte-identical to what
    /// [`select_with`](Self::select_with) would return.
    ///
    /// # Panics
    /// Panics if `k == 0` or a given ε/ℓ is not positive.
    pub fn try_select_with(
        &self,
        k: usize,
        eps: Option<f64>,
        ell: Option<f64>,
    ) -> Option<QueryOutcome> {
        assert!(k >= 1, "k must be at least 1");
        let eps = eps.unwrap_or(self.epsilon);
        let ell = ell.unwrap_or(self.ell);
        assert!(eps > 0.0 && ell > 0.0, "epsilon and ell must be positive");
        let plan = self.plans.get(&(k, eps.to_bits(), ell.to_bits()))?;
        if plan.theta > self.pool_theta {
            return None;
        }
        Some(self.answer_plan(plan, false))
    }

    /// Answers a `k`-seed selection as the `k`-prefix of a single cached
    /// greedy run over the **full** pool. Near-zero marginal cost per
    /// query; uses more RR sets than a fresh run would, so the
    /// approximation guarantee is preserved (θ only ever exceeds the
    /// required λ/OPT), but seed sets may differ from
    /// [`select`](Self::select)'s exact replay.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn select_fast(&mut self, k: usize) -> QueryOutcome {
        assert!(k >= 1, "k must be at least 1");
        let resampled = if k > self.k_max {
            self.k_max = k;
            let plan = self.plan_for(k, self.epsilon, self.ell);
            self.ensure_theta(plan.theta)
        } else {
            let plan = self.plan_for(self.k_max, self.epsilon, self.ell);
            self.ensure_theta(plan.theta)
        };
        let depth = self.k_max;
        let stale = match &self.fast {
            Some(f) => f.pool_theta != self.pool_theta || f.cover.seeds.len() < k.min(depth),
            None => true,
        };
        if stale {
            let t = resolve_select_threads(self.select_threads);
            self.pool.ensure_inverted_index();
            let cover = match self.pool.view() {
                SetsView::Heap(c) => {
                    if t > 1 {
                        greedy_max_cover_sharded_indexed_with(c, depth, t, self.select_strategy)
                    } else {
                        greedy_max_cover_indexed(c, depth)
                    }
                }
                SetsView::Mmap(m) => {
                    if t > 1 {
                        greedy_max_cover_sharded_indexed_with(m, depth, t, self.select_strategy)
                    } else {
                        greedy_max_cover_indexed(m, depth)
                    }
                }
            };
            self.fast = Some(FastCover {
                pool_theta: self.pool_theta,
                cover,
            });
        }
        let fast = self.fast.as_ref().expect("fast cover just ensured");
        Self::fast_prefix_outcome(fast, k, self.pool_theta, self.store.n(), resampled)
    }

    /// Assembles the `k`-prefix answer from a cached full-pool greedy run.
    fn fast_prefix_outcome(
        fast: &FastCover,
        k: usize,
        pool_theta: u64,
        n: usize,
        resampled: bool,
    ) -> QueryOutcome {
        let k_eff = k.min(fast.cover.seeds.len());
        let covered: usize = fast.cover.marginal[..k_eff].iter().sum();
        let frac = if pool_theta == 0 {
            0.0
        } else {
            covered as f64 / pool_theta as f64
        };
        QueryOutcome {
            seeds: fast.cover.seeds[..k_eff].to_vec(),
            theta_used: pool_theta,
            pool_theta,
            resampled,
            estimated_spread: frac * n as f64,
        }
    }

    /// Read-only [`select_fast`](Self::select_fast): serves the `k`-prefix
    /// from the cached full-pool greedy run without mutating the engine,
    /// or returns `None` when the cache is cold/stale or `k` exceeds the
    /// warmed `k_max` (then take the `&mut` path). A `Some` answer is
    /// byte-identical to what [`select_fast`](Self::select_fast) would
    /// return from the same state.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn try_select_fast(&self, k: usize) -> Option<QueryOutcome> {
        assert!(k >= 1, "k must be at least 1");
        if k > self.k_max {
            return None;
        }
        let plan = self
            .plans
            .get(&(self.k_max, self.epsilon.to_bits(), self.ell.to_bits()))?;
        if plan.theta > self.pool_theta {
            return None;
        }
        let fast = self.fast.as_ref()?;
        if fast.pool_theta != self.pool_theta || fast.cover.seeds.len() < k.min(self.k_max) {
            return None;
        }
        Some(Self::fast_prefix_outcome(
            fast,
            k,
            self.pool_theta,
            self.store.n(),
            false,
        ))
    }

    /// Estimates `E[I(seeds)]` as `n · F_R(seeds)` over the full pool
    /// (Corollary 1's unbiased coverage estimator). Warms the pool first
    /// if cold.
    ///
    /// # Panics
    /// Panics if any seed is outside the graph's node range.
    pub fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        if self.pool_theta == 0 {
            self.warm();
        }
        self.pool.coverage_fraction(seeds) * self.store.n() as f64
    }

    /// Estimates the marginal spread gain of adding `candidate` to `base`:
    /// `spread(base ∪ {candidate}) − spread(base)`, both against the full
    /// pool. Zero when `candidate` is already in `base`.
    pub fn marginal_gain(&mut self, base: &[NodeId], candidate: NodeId) -> f64 {
        if base.contains(&candidate) {
            return 0.0;
        }
        if self.pool_theta == 0 {
            self.warm();
        }
        let before = self.pool.count_covered(base);
        let mut with: Vec<NodeId> = base.to_vec();
        with.push(candidate);
        let after = self.pool.count_covered(&with);
        let denom = self.pool.len().max(1) as f64;
        (after - before) as f64 / denom * self.store.n() as f64
    }

    /// Read-only [`spread`](Self::spread): `None` when the pool is cold
    /// (then take the `&mut` path, which warms it). A `Some` answer equals
    /// what [`spread`](Self::spread) would return from the same state.
    ///
    /// # Panics
    /// Panics if any seed is outside the graph's node range.
    pub fn try_spread(&self, seeds: &[NodeId]) -> Option<f64> {
        if self.pool_theta == 0 {
            return None;
        }
        Some(self.pool.coverage_fraction(seeds) * self.store.n() as f64)
    }

    /// Read-only [`marginal_gain`](Self::marginal_gain): `None` when the
    /// pool is cold (then take the `&mut` path, which warms it).
    pub fn try_marginal_gain(&self, base: &[NodeId], candidate: NodeId) -> Option<f64> {
        if base.contains(&candidate) {
            return Some(0.0);
        }
        if self.pool_theta == 0 {
            return None;
        }
        let before = self.pool.count_covered(base);
        let mut with: Vec<NodeId> = base.to_vec();
        with.push(candidate);
        let after = self.pool.count_covered(&with);
        let denom = self.pool.len().max(1) as f64;
        Some((after - before) as f64 / denom * self.store.n() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::IndependentCascade;
    use tim_graph::{gen, weights};

    fn wc_graph(n: usize, seed: u64) -> Graph {
        let mut g = gen::barabasi_albert(n, 4, 0.0, seed);
        weights::assign_weighted_cascade(&mut g);
        g
    }

    fn engine(seed: u64) -> QueryEngine<IndependentCascade> {
        QueryEngine::new(wc_graph(300, 1), IndependentCascade, "ic")
            .epsilon(0.8)
            .seed(seed)
            .threads(2)
            .k_max(12)
    }

    #[cfg(unix)]
    #[test]
    fn mmap_backed_engine_answers_identically_to_heap() {
        // The warm-state tenancy story depends on this: a pool sampled on
        // a heap graph must attach to the mmap view of the same snapshot,
        // and every query class must answer byte-identically.
        let g = wc_graph(300, 1);
        let labels: Vec<u64> = (0..g.n() as u64).collect();
        let dir = std::env::temp_dir().join(format!("tim_engine_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.timg");
        tim_graph::snapshot::save_snapshot_v2(&g, &labels, &path).unwrap();

        let mut heap = QueryEngine::new(g, IndependentCascade, "ic")
            .epsilon(0.8)
            .seed(5)
            .threads(2)
            .k_max(12);
        let store = GraphStore::open_mmap(&path).unwrap();
        assert!(store.is_mmap());
        let mut mapped = QueryEngine::with_store(store, IndependentCascade, "ic")
            .epsilon(0.8)
            .seed(5)
            .threads(2)
            .k_max(12);
        assert_eq!(heap.graph_checksum(), mapped.graph_checksum());
        assert_eq!(heap.warm(), mapped.warm());
        for k in [1usize, 6, 12] {
            let h = heap.select(k);
            let m = mapped.select(k);
            assert_eq!(h.seeds, m.seeds, "k={k}");
            assert_eq!(h.theta_used, m.theta_used);
            assert_eq!(h.estimated_spread, m.estimated_spread);
        }
        let seeds = heap.select(6).seeds;
        assert_eq!(heap.spread(&seeds), mapped.spread(&seeds));
        assert_eq!(
            heap.marginal_gain(&seeds, 99),
            mapped.marginal_gain(&seeds, 99)
        );
        assert_eq!(heap.select_fast(9).seeds, mapped.select_fast(9).seeds);

        // A pool spilled from the heap engine attaches to the mmap store
        // (identical provenance) and keeps answering identically.
        let pool = heap.to_pool();
        let mut restored = QueryEngine::from_pool_store(
            GraphStore::open_mmap(&path).unwrap(),
            IndependentCascade,
            "ic",
            pool,
        )
        .expect("heap-sampled pool must attach to the mmap backing");
        let out = restored.select(6);
        assert_eq!(out.seeds, seeds);
        assert!(!out.resampled);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn mapped_pool_engine_answers_identically_to_heap() {
        // The out-of-core pool story: a pool spilled as `.timp` v2 and
        // attached zero-copy must answer every query class — exact
        // replay, fast prefix, spread, marginal gain — byte-identically
        // to the heap pool it was spilled from, at any thread count and
        // either selection strategy, with no resample.
        let mut warm = engine(5);
        warm.warm();
        let dir = std::env::temp_dir().join(format!("tim_engine_poolmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.timp");
        warm.to_pool().save_v2(&path).unwrap();

        for select_threads in [1usize, 4] {
            for strategy in [SelectStrategy::Eager, SelectStrategy::Lazy] {
                let mapped = crate::PoolMmap::open(&path).unwrap();
                let mut e = QueryEngine::from_mapped_pool(
                    GraphStore::from_arc(warm.graph_arc()),
                    IndependentCascade,
                    "ic",
                    mapped,
                )
                .expect("spilled pool must re-attach mapped")
                .threads(2)
                .select_threads(select_threads)
                .select_strategy(strategy);
                assert!(e.pool_is_mapped());
                assert_eq!(e.pool_theta(), warm.pool_theta());
                assert_eq!(e.pool_memory_bytes(), 0);
                assert!(e.pool_mapped_bytes() > 0);

                let mut heap = engine(5)
                    .select_threads(select_threads)
                    .select_strategy(strategy);
                heap.warm();
                for k in [1usize, 6, 12] {
                    let h = heap.select(k);
                    let m = e.select(k);
                    assert_eq!(h.seeds, m.seeds, "t={select_threads} {strategy} k={k}");
                    assert_eq!(h.estimated_spread, m.estimated_spread);
                    assert!(!m.resampled, "mapped pool must serve without resampling");
                }
                assert!(e.pool_is_mapped(), "same-θ selects keep the mapping");
                assert_eq!(heap.select_fast(9).seeds, e.select_fast(9).seeds);
                let seeds = heap.select(6).seeds;
                assert_eq!(heap.spread(&seeds), e.spread(&seeds));
                assert_eq!(heap.marginal_gain(&seeds, 99), e.marginal_gain(&seeds, 99));
            }
        }

        // Growth detaches from the mapping: a tighter ε resamples onto
        // the heap, byte-identically to the same growth on a heap pool.
        let mapped = crate::PoolMmap::open(&path).unwrap();
        let mut e = QueryEngine::from_mapped_pool(
            GraphStore::from_arc(warm.graph_arc()),
            IndependentCascade,
            "ic",
            mapped,
        )
        .unwrap()
        .threads(2);
        // θ scales as ε⁻²: 0.8 → 0.1 is a 64× demand, beyond any warm-up
        // over-provisioning.
        let grown = e.select_with(12, Some(0.1), None);
        assert!(grown.resampled);
        assert!(!e.pool_is_mapped(), "growth must move the pool heap-side");
        let reference = warm.select_with(12, Some(0.1), None);
        assert_eq!(grown.seeds, reference.seeds);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn select_threads_never_changes_answers() {
        // Exercises all three greedy call sites: the full-pool indexed
        // path (k = k_max), the subset path (k < k_max), and select_fast.
        // Strategy varies alongside thread count — neither knob may
        // change an answer.
        let mut serial = engine(7);
        serial.warm();
        for select_threads in [2usize, 4, 0] {
            for strategy in [
                SelectStrategy::Eager,
                SelectStrategy::Lazy,
                SelectStrategy::Auto,
            ] {
                let mut sharded = engine(7)
                    .select_threads(select_threads)
                    .select_strategy(strategy);
                sharded.warm();
                for k in [1usize, 6, 12] {
                    let a = serial.select(k);
                    let b = sharded.select(k);
                    assert_eq!(a.seeds, b.seeds, "t={select_threads} {strategy} k={k}");
                    assert_eq!(a.estimated_spread, b.estimated_spread);
                    assert!(!b.resampled);
                }
                assert_eq!(
                    serial.select_fast(9).seeds,
                    sharded.select_fast(9).seeds,
                    "t={select_threads} {strategy} fast"
                );
            }
        }
    }

    #[test]
    fn warm_pool_select_does_not_resample() {
        let mut e = engine(5);
        e.warm();
        let theta = e.pool_theta();
        assert!(theta > 0);
        for k in [1usize, 6, 12] {
            let out = e.select(k);
            assert_eq!(out.seeds.len(), k);
            assert!(!out.resampled, "k={k} resampled on a warm pool");
            assert!(out.theta_used <= theta);
        }
        assert_eq!(e.pool_theta(), theta);
    }

    #[test]
    fn tighter_epsilon_grows_the_pool() {
        let mut e = engine(6);
        e.warm();
        let before = e.pool_theta();
        // theta scales as eps^-2: 0.8 -> 0.1 is a 64x demand, far beyond
        // any over-provisioning the warm-up applied.
        let out = e.select_with(12, Some(0.1), None);
        assert!(out.resampled, "eps 0.8 -> 0.1 must grow theta");
        assert!(out.theta_used > before);
        assert!(e.pool_theta() >= out.theta_used);
        // And the old answers are still served without resampling.
        let again = e.select(12);
        assert!(!again.resampled);
    }

    #[test]
    fn fast_mode_is_a_prefix_of_the_deep_run() {
        let mut e = engine(7);
        e.warm();
        let full = e.select_fast(12);
        for k in [1usize, 4, 9] {
            let out = e.select_fast(k);
            assert_eq!(out.seeds, full.seeds[..k], "fast k={k} is not a prefix");
            assert!(!out.resampled);
            assert!(out.estimated_spread <= full.estimated_spread + 1e-9);
        }
    }

    #[test]
    fn spread_and_marginal_agree_with_pool_coverage() {
        let mut e = engine(8);
        e.warm();
        let out = e.select(4);
        let s = e.spread(&out.seeds);
        assert!((s - out.estimated_spread).abs() / out.estimated_spread < 0.25);
        // Marginal gain of an already-chosen seed is 0.
        assert_eq!(e.marginal_gain(&out.seeds, out.seeds[0]), 0.0);
        // Submodularity: gain on top of seeds <= gain on empty base.
        let cand = (0..e.graph().n() as NodeId)
            .find(|v| !out.seeds.contains(v))
            .unwrap();
        let on_seeds = e.marginal_gain(&out.seeds, cand);
        let on_empty = e.marginal_gain(&[], cand);
        assert!(on_seeds <= on_empty + 1e-9);
        assert!(on_empty >= 0.0);
        // A chosen seed on an empty base recovers its full (positive) gain.
        assert!(e.marginal_gain(&[], out.seeds[0]) > 0.0);
    }

    #[test]
    fn pool_round_trip_preserves_answers() {
        let mut e = engine(9);
        e.warm();
        let want = e.select(5).seeds;
        let pool = e.to_pool();
        let mut bytes = Vec::new();
        pool.write(&mut bytes).unwrap();
        let loaded = RrPool::read(bytes.as_slice()).unwrap();
        let mut e2 =
            QueryEngine::from_pool(wc_graph(300, 1), IndependentCascade, "ic", loaded).unwrap();
        let out = e2.select(5);
        assert_eq!(out.seeds, want);
        assert!(!out.resampled);
    }

    #[test]
    fn try_paths_answer_identically_or_report_misses() {
        let mut e = engine(12);
        // Cold engine, nothing cached: every try_* path must miss.
        assert!(e.try_select_with(3, None, None).is_none());
        assert!(e.try_select_fast(3).is_none());
        assert!(e.try_spread(&[0]).is_none());
        assert!(e.try_marginal_gain(&[0], 1).is_none());
        // An already-included candidate needs no pool at all.
        assert_eq!(e.try_marginal_gain(&[4], 4), Some(0.0));

        e.warm();
        // Warm pool but no plan cached for k = 3 yet: still a miss.
        assert!(e.try_select_with(3, None, None).is_none());
        let want = e.select(3);
        let got = e.try_select_with(3, None, None).expect("plan now cached");
        assert_eq!(got.seeds, want.seeds);
        assert_eq!(got.theta_used, want.theta_used);
        assert!(!got.resampled);

        // Fast cache must exist before the read-only fast path serves.
        assert!(e.try_select_fast(2).is_none());
        let want_fast = e.select_fast(2);
        let got_fast = e.try_select_fast(2).expect("fast cover now cached");
        assert_eq!(got_fast.seeds, want_fast.seeds);
        assert!(e.try_select_fast(e.warmed_k() + 1).is_none());

        let s = e.spread(&want.seeds);
        assert_eq!(e.try_spread(&want.seeds), Some(s));
        let m = e.marginal_gain(&want.seeds, 99);
        assert_eq!(e.try_marginal_gain(&want.seeds, 99), Some(m));
    }

    #[test]
    fn engines_share_one_graph_through_an_arc() {
        let g = std::sync::Arc::new(wc_graph(300, 1));
        let mut a = QueryEngine::new(std::sync::Arc::clone(&g), IndependentCascade, "ic")
            .epsilon(0.8)
            .seed(5)
            .k_max(4);
        let mut b = QueryEngine::new(a.graph_arc(), IndependentCascade, "ic")
            .epsilon(0.8)
            .seed(5)
            .k_max(4);
        // Three handles: ours plus one per engine — no CSR copies made.
        assert_eq!(std::sync::Arc::strong_count(&g), 3);
        assert_eq!(a.select(4).seeds, b.select(4).seeds);
    }

    #[test]
    fn from_pool_rejects_unusable_parameters_without_panicking() {
        // f64::from_bits accepts anything, so a decoded pool can carry a
        // zero/negative/NaN epsilon; attaching must error, not panic.
        let mut e = engine(11);
        e.warm();
        for (eps, ell) in [(0.0, 1.0), (-1.0, 1.0), (f64::NAN, 1.0), (0.5, 0.0)] {
            let mut pool = e.to_pool();
            pool.meta.epsilon = eps;
            pool.meta.ell = ell;
            assert!(
                matches!(
                    QueryEngine::from_pool(wc_graph(300, 1), IndependentCascade, "ic", pool),
                    Err(EngineError::Format(_))
                ),
                "eps={eps} ell={ell} must be rejected"
            );
        }
    }

    #[test]
    fn from_pool_rejects_wrong_graph_and_model() {
        let mut e = engine(10);
        e.warm();
        let pool = e.to_pool();
        assert!(matches!(
            QueryEngine::from_pool(
                wc_graph(300, 2), // different graph
                IndependentCascade,
                "ic",
                pool.clone()
            ),
            Err(EngineError::Mismatch(_))
        ));
        assert!(matches!(
            QueryEngine::from_pool(wc_graph(300, 1), IndependentCascade, "lt", pool),
            Err(EngineError::Mismatch(_))
        ));
    }
}
