//! **`tim_engine`** — a reusable influence-query engine over persistent
//! RR-set pools.
//!
//! TIM/TIM+ (Tang, Xiao, Shi; SIGMOD 2014) split influence maximization
//! into an expensive sampling phase (θ reverse-reachable sets) and a
//! cheap greedy phase. The rest of this workspace rebuilds both from
//! scratch per invocation; this crate makes the sampled pool a
//! **first-class, persistent asset** so a production service can pay the
//! sampling cost once and answer many queries against it:
//!
//! - [`RrPool`] — a serialized [`tim_coverage::SetCollection`] plus a
//!   provenance header (graph content checksum, model, seed, ε, ℓ, θ)
//!   that the loader validates before the pool may serve a graph;
//! - [`QueryEngine`] — answers seed-selection queries for any `k` from a
//!   warm pool, **byte-identical** to a fresh [`tim_core::TimPlus`] run
//!   at the same `(seed, ε, ℓ, k)` (exact replay via the sampling
//!   stream's shard structure), or via a single cached greedy run
//!   (prefix answering); plus spread and marginal-gain estimates against
//!   the pool. It resamples only when ε/ℓ/k demand a larger θ than the
//!   pool holds.
//!
//! Pairs with [`tim_graph::snapshot`] (binary `.timg` graph snapshots) so
//! that a serving process starts without touching a text parser: load
//! snapshot, load pool, answer queries.
//!
//! [`PoolStore`] scales the single-file story to a serving fleet's warm
//! state: a per-tenant directory of provenance-keyed `.timp` files with
//! atomic write-then-rename spills and quarantine of corrupt or foreign
//! files, so every pool a process builds outlives the process. Spills
//! default to the page-aligned `.timp` v2 layout, which persists the
//! inverted index; [`PoolMmap`] attaches such a file zero-copy
//! (`PROT_READ`) so restarting a service costs a header parse and a
//! structural scan instead of a full heap decode — see
//! [`PoolStore::probe_backed`].
//!
//! For concurrent serving, [`SharedEngine`] wraps a [`QueryEngine`] in an
//! `RwLock` with a read-mostly fast path: queries answerable from the warm
//! pool (the engine's `try_*` methods) run under a shared read guard, and
//! only plan computation or pool growth takes the write lock. `tim_server`
//! builds its per-provenance pool cache out of these.

mod engine;
mod error;
mod pool;
mod pool_mmap;
mod shared;
mod store;

pub use engine::{QueryEngine, QueryOutcome};
pub use error::EngineError;
pub use pool::{
    pool_version, PoolMeta, RrPool, POOL_MAGIC, POOL_V2_ALIGN, POOL_V2_HEADER_BYTES,
    POOL_V2_MODEL_TAG_MAX, POOL_VERSION, POOL_VERSION_V2,
};
pub use pool_mmap::PoolMmap;
pub use shared::{EngineReadGuard, SharedEngine};
pub use store::{
    PoolId, PoolStore, ProbedPool, StoreStats, INDEX_FILE, POOL_EXTENSION, QUARANTINE_DIR,
};
