//! Persistent RR-set pools (`.timp`): a serialized
//! [`SetCollection`] plus the provenance that makes it safe to reuse.
//!
//! TIM's cost is dominated by sampling the θ RR sets of the
//! node-selection phase; the greedy step over them is cheap. A pool file
//! captures that expensive artifact once so later processes can answer
//! influence queries without resampling. The provenance header pins
//! everything the sample depends on — the graph (by content checksum),
//! the diffusion model, and the `(seed, ε, ℓ)` configuration — and the
//! loader refuses any mismatch rather than silently serving sets drawn
//! from a different distribution.
//!
//! # File layout (version 1, little-endian)
//!
//! | bytes | field |
//! |---|---|
//! | 0..4 | magic `b"TIMP"` |
//! | 4..8 | format version (`u32`) |
//! | 8..16 | FNV-1a checksum of everything after this field (`u64`) |
//! | … | provenance: graph checksum, seed, select seed, θ, `k_max`, ε, ℓ, model tag |
//! | … | collection: universe `n`, set count, member count, offsets, arena |
//!
//! All v1 counts and offsets are written as 8-byte values regardless of
//! the writing platform's pointer width. The historical portability
//! quirk was on the **read** side: counts were narrowed `u64 as usize`,
//! so a pool spilled by a 64-bit host could decode to silently truncated
//! counts on a 32-bit host. The reader now converts with
//! `usize::try_from` and rejects irreconcilable files with a clean
//! [`EngineError::Format`].
//!
//! # File layout (version 2, little-endian, page-aligned)
//!
//! Version 2 is the out-of-core layout: a fixed 264-byte header plus a
//! section table whose four sections start on 4096-byte boundaries, so
//! the file can be attached zero-copy via
//! [`PoolMmap`](crate::PoolMmap) / `tim_coverage::MmapSets` — and it
//! **persists the inverted index**, so a mapped pool answers its first
//! greedy selection straight from the page cache with no index rebuild.
//!
//! | bytes | field |
//! |---|---|
//! | 0..4 | magic `b"TIMP"` |
//! | 4..8 | format version (`u32` = 2) |
//! | 8..16 | FNV-1a of header bytes 16..264 (`u64`) |
//! | 16..72 | graph checksum, seed, select seed, θ (`u64`s); `k_max`, model tag length (`u32`s); ε, ℓ (`f64` bits) |
//! | 72..104 | model tag (32 bytes, zero-padded) |
//! | 104..136 | universe `n`, set count, member count, section count = 4 (`u64`s) |
//! | 136..264 | section table: 4 × {id `u32`, reserved `u32`, offset `u64`, len `u64`, FNV `u64`} |
//!
//! Sections in canonical order: `offsets` (`(sets+1) × u64`), `data`
//! (`members × u32`), `inv_offsets` (`(n+1) × u64`), `inv_data`
//! (`members × u32`). Every field on disk is a fixed-width `u64`/`u32`,
//! so v2 files carry no platform-width ambiguity by construction.
//! Opening a v2 file costs a header parse plus a structural scan;
//! per-section checksums are deferred to an explicit `verify` pass
//! (mirroring `.timg` v2 in `tim_graph::snapshot`).

use crate::error::EngineError;
use std::io::{Read, Write};
use std::path::Path;
use tim_coverage::{build_inverted_index, MmapSetsLayout, SetCollection, SETS_SECTION_COUNT};
use tim_graph::snapshot::Fnv1a;
use tim_graph::NodeId;

/// The four magic bytes opening every pool file.
pub const POOL_MAGIC: [u8; 4] = *b"TIMP";

/// Pool format version 1: the eager heap-decode layout.
pub const POOL_VERSION: u32 = 1;

/// Pool format version 2: the page-aligned, mmap-able layout with a
/// persisted inverted index.
pub const POOL_VERSION_V2: u32 = 2;

/// Fixed byte length of the v2 header (including the section table).
pub const POOL_V2_HEADER_BYTES: u64 = 264;

/// Alignment of every v2 section start (one page).
pub const POOL_V2_ALIGN: u64 = 4096;

/// Capacity of the fixed model-tag field in the v2 header. Longer tags
/// cannot be spilled as v2; [`RrPool::write_v2`] rejects them so the
/// caller can fall back to v1.
pub const POOL_V2_MODEL_TAG_MAX: usize = 32;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Converts an on-disk `u64` count/offset to `usize`, failing with a
/// clean format error instead of the silent `as usize` truncation v1
/// readers used to perform on 32-bit hosts.
fn usize_field(v: u64, what: &str) -> Result<usize, EngineError> {
    usize::try_from(v).map_err(|_| {
        EngineError::Format(format!(
            "pool {what} {v} does not fit in usize on this platform"
        ))
    })
}

/// Provenance of a pool: everything the sampled sets depend on.
///
/// The engine validates all of it before serving queries; see
/// [`QueryEngine::from_pool`](crate::QueryEngine::from_pool).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolMeta {
    /// [`tim_graph::snapshot::graph_checksum`] of the graph the sets were
    /// sampled on (covers adjacency *and* edge probabilities, hence also
    /// the weight model).
    pub graph_checksum: u64,
    /// Diffusion model tag (`"ic"` / `"lt"`).
    pub model: String,
    /// Approximation slack ε the pool was built for.
    pub epsilon: f64,
    /// Failure exponent ℓ the pool was built for.
    pub ell: f64,
    /// The run seed queries replicate.
    pub seed: u64,
    /// Largest `k` the pool was warmed for (informational; queries beyond
    /// it trigger a resample rather than an error).
    pub k_max: u32,
    /// Number of RR sets stored (θ of the pool).
    pub theta: u64,
    /// Seed of the node-selection sampling stream
    /// ([`tim_core::select_stream_seed`] of `seed`).
    pub select_seed: u64,
}

/// A serialized RR-set pool: provenance plus the sets themselves.
#[derive(Debug, Clone)]
pub struct RrPool {
    /// Provenance header.
    pub meta: PoolMeta,
    /// The sampled RR sets, in generation (shard) order.
    pub sets: SetCollection,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], EngineError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(EngineError::Format(format!(
                "pool truncated while reading {what}"
            ))),
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8-byte slice"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4-byte slice"),
        ))
    }
}

impl RrPool {
    /// Serializes the pool into `writer`.
    pub fn write<W: Write>(&self, mut writer: W) -> Result<(), EngineError> {
        let sets = &self.sets;
        let mut payload = Vec::with_capacity(
            64 + self.meta.model.len() + sets.raw_offsets().len() * 8 + sets.raw_data().len() * 4,
        );
        put_u64(&mut payload, self.meta.graph_checksum);
        put_u64(&mut payload, self.meta.seed);
        put_u64(&mut payload, self.meta.select_seed);
        put_u64(&mut payload, self.meta.theta);
        payload.extend_from_slice(&self.meta.k_max.to_le_bytes());
        put_u64(&mut payload, self.meta.epsilon.to_bits());
        put_u64(&mut payload, self.meta.ell.to_bits());
        let model = self.meta.model.as_bytes();
        payload.extend_from_slice(&(model.len() as u32).to_le_bytes());
        payload.extend_from_slice(model);
        put_u64(&mut payload, sets.universe() as u64);
        put_u64(&mut payload, sets.len() as u64);
        put_u64(&mut payload, sets.total_members() as u64);
        for &o in sets.raw_offsets() {
            put_u64(&mut payload, o as u64);
        }
        for &v in sets.raw_data() {
            payload.extend_from_slice(&v.to_le_bytes());
        }

        writer.write_all(&POOL_MAGIC)?;
        writer.write_all(&POOL_VERSION.to_le_bytes())?;
        writer.write_all(&fnv1a(&payload).to_le_bytes())?;
        writer.write_all(&payload)?;
        writer.flush()?;
        Ok(())
    }

    /// Deserializes a pool from any reader, verifying magic, version,
    /// checksum, and the collection's structural invariants.
    pub fn read<R: Read>(mut reader: R) -> Result<Self, EngineError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Self::decode(&bytes)
    }

    fn decode(bytes: &[u8]) -> Result<Self, EngineError> {
        // Version sniff: v2 files take the section-table path, anything
        // else (v1 or garbage) falls through to the v1 decoder and its
        // error messages.
        if bytes.len() >= 8
            && bytes[0..4] == POOL_MAGIC
            && u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) == POOL_VERSION_V2
        {
            return Self::decode_v2(bytes);
        }
        Self::decode_v1(bytes)
    }

    fn decode_v1(bytes: &[u8]) -> Result<Self, EngineError> {
        let mut cur = Cursor { buf: bytes, pos: 0 };
        if cur.take(4, "magic")? != POOL_MAGIC {
            return Err(EngineError::Format(
                "not a TIMP pool file (bad magic)".into(),
            ));
        }
        let version = cur.u32("version")?;
        if version != POOL_VERSION {
            return Err(EngineError::Format(format!(
                "unsupported pool version {version} (expected {POOL_VERSION} or {POOL_VERSION_V2})"
            )));
        }
        let stored = cur.u64("checksum")?;
        let actual = fnv1a(&bytes[cur.pos..]);
        if stored != actual {
            return Err(EngineError::Format(format!(
                "pool checksum mismatch: file says {stored:#018x}, payload hashes to {actual:#018x}"
            )));
        }

        let graph_checksum = cur.u64("graph checksum")?;
        let seed = cur.u64("seed")?;
        let select_seed = cur.u64("select seed")?;
        let theta = cur.u64("theta")?;
        let k_max = cur.u32("k_max")?;
        let epsilon = f64::from_bits(cur.u64("epsilon")?);
        let ell = f64::from_bits(cur.u64("ell")?);
        let model_len = cur.u32("model tag length")? as usize;
        let model = String::from_utf8(cur.take(model_len, "model tag")?.to_vec())
            .map_err(|_| EngineError::Format("model tag is not UTF-8".into()))?;

        let n = usize_field(cur.u64("universe")?, "universe")?;
        let num_sets = usize_field(cur.u64("set count")?, "set count")?;
        let members = usize_field(cur.u64("member count")?, "member count")?;
        if num_sets as u64 != theta {
            return Err(EngineError::Format(format!(
                "pool stores {num_sets} sets but header claims theta = {theta}"
            )));
        }
        let offsets_len = num_sets
            .checked_add(1)
            .ok_or_else(|| EngineError::Format("set count overflows".into()))?;
        // Bounds-check against the actual payload BEFORE allocating: the
        // header is untrusted, and a huge claimed count must fail as a
        // truncation error, not an allocation abort.
        let raw = cur.take(
            offsets_len
                .checked_mul(8)
                .ok_or_else(|| EngineError::Format("offsets length overflows".into()))?,
            "offsets",
        )?;
        let mut offsets = Vec::with_capacity(offsets_len);
        for c in raw.chunks_exact(8) {
            let o = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            offsets.push(usize_field(o, "set offset")?);
        }
        let raw = cur.take(
            members
                .checked_mul(4)
                .ok_or_else(|| EngineError::Format("arena length overflows".into()))?,
            "member arena",
        )?;
        let data: Vec<NodeId> = raw
            .chunks_exact(4)
            .map(|c| NodeId::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        if cur.pos != bytes.len() {
            return Err(EngineError::Format(format!(
                "{} trailing bytes after pool payload",
                bytes.len() - cur.pos
            )));
        }

        let sets = SetCollection::from_raw_parts(n, data, offsets)
            .map_err(|e| EngineError::Format(format!("invalid set collection: {e}")))?;
        Ok(RrPool {
            meta: PoolMeta {
                graph_checksum,
                model,
                epsilon,
                ell,
                seed,
                k_max,
                theta,
                select_seed,
            },
            sets,
        })
    }

    /// Eager heap decode of a v2 pool: verifies the header and **every**
    /// per-section checksum, then rebuilds a [`SetCollection`] from the
    /// `offsets`/`data` sections. (The persisted inverted index is
    /// checksum-verified but not loaded — the heap collection rebuilds
    /// its own lazily, exactly as after a v1 load.)
    fn decode_v2(bytes: &[u8]) -> Result<Self, EngineError> {
        let (meta, layout) = parse_v2(bytes, bytes.len() as u64)?;
        for i in 0..SETS_SECTION_COUNT {
            let len = layout.section_len(i).expect("validated by parse_v2") as usize;
            let data = &bytes[layout.sections[i]..layout.sections[i] + len];
            let actual = fnv1a(data);
            if actual != layout.section_fnv[i] {
                return Err(EngineError::Format(format!(
                    "v2 {} section checksum mismatch: table says {:#018x}, data hashes to {actual:#018x}",
                    tim_coverage::SETS_SECTION_NAMES[i],
                    layout.section_fnv[i],
                )));
            }
        }
        let raw = &bytes[layout.sections[0]..layout.sections[0] + (layout.num_sets + 1) * 8];
        let mut offsets = Vec::with_capacity(layout.num_sets + 1);
        for c in raw.chunks_exact(8) {
            let o = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            offsets.push(usize_field(o, "set offset")?);
        }
        let raw = &bytes[layout.sections[1]..layout.sections[1] + layout.total_members * 4];
        let data: Vec<NodeId> = raw
            .chunks_exact(4)
            .map(|c| NodeId::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        let sets = SetCollection::from_raw_parts(layout.universe, data, offsets)
            .map_err(|e| EngineError::Format(format!("invalid set collection: {e}")))?;
        Ok(RrPool { meta, sets })
    }

    /// Serializes the pool in the page-aligned v2 layout, inverted index
    /// included. Reuses the collection's index when built; otherwise the
    /// index arrays are computed here without mutating the pool.
    ///
    /// Errors with [`EngineError::Format`] when the model tag exceeds
    /// [`POOL_V2_MODEL_TAG_MAX`] bytes — fall back to [`write`](Self::write)
    /// (v1) for such pools.
    pub fn write_v2<W: Write>(&self, mut writer: W) -> Result<(), EngineError> {
        let model = self.meta.model.as_bytes();
        if model.len() > POOL_V2_MODEL_TAG_MAX {
            return Err(EngineError::Format(format!(
                "model tag is {} bytes; the v2 header stores at most \
                 {POOL_V2_MODEL_TAG_MAX} — spill as v1 instead",
                model.len()
            )));
        }
        let sets = &self.sets;
        let n = sets.universe();
        let built;
        let (inv_offsets, inv_data): (&[usize], &[u32]) = match sets.raw_inverted() {
            Some(parts) => parts,
            None => {
                built = build_inverted_index(n, sets.raw_data(), sets.raw_offsets());
                (&built.0, &built.1)
            }
        };

        let mut sections: [Vec<u8>; SETS_SECTION_COUNT] = Default::default();
        for &o in sets.raw_offsets() {
            put_u64(&mut sections[0], o as u64);
        }
        for &v in sets.raw_data() {
            sections[1].extend_from_slice(&v.to_le_bytes());
        }
        for &o in inv_offsets {
            put_u64(&mut sections[2], o as u64);
        }
        for &s in inv_data {
            sections[3].extend_from_slice(&s.to_le_bytes());
        }

        // Section table: page-aligned offsets and per-section checksums.
        let mut table = Vec::with_capacity(SETS_SECTION_COUNT * 32);
        let mut offset = POOL_V2_HEADER_BYTES.div_ceil(POOL_V2_ALIGN) * POOL_V2_ALIGN;
        let mut offsets = [0u64; SETS_SECTION_COUNT];
        for (i, section) in sections.iter().enumerate() {
            offsets[i] = offset;
            table.extend_from_slice(&(i as u32).to_le_bytes());
            table.extend_from_slice(&0u32.to_le_bytes()); // reserved
            table.extend_from_slice(&offset.to_le_bytes());
            table.extend_from_slice(&(section.len() as u64).to_le_bytes());
            table.extend_from_slice(&fnv1a(section).to_le_bytes());
            offset = (offset + section.len() as u64).div_ceil(POOL_V2_ALIGN) * POOL_V2_ALIGN;
        }

        let mut body = Vec::with_capacity(POOL_V2_HEADER_BYTES as usize - 16);
        put_u64(&mut body, self.meta.graph_checksum);
        put_u64(&mut body, self.meta.seed);
        put_u64(&mut body, self.meta.select_seed);
        put_u64(&mut body, self.meta.theta);
        body.extend_from_slice(&self.meta.k_max.to_le_bytes());
        body.extend_from_slice(&(model.len() as u32).to_le_bytes());
        put_u64(&mut body, self.meta.epsilon.to_bits());
        put_u64(&mut body, self.meta.ell.to_bits());
        let mut tag = [0u8; POOL_V2_MODEL_TAG_MAX];
        tag[..model.len()].copy_from_slice(model);
        body.extend_from_slice(&tag);
        put_u64(&mut body, n as u64);
        put_u64(&mut body, sets.len() as u64);
        put_u64(&mut body, sets.total_members() as u64);
        put_u64(&mut body, SETS_SECTION_COUNT as u64);
        body.extend_from_slice(&table);
        debug_assert_eq!(body.len() as u64 + 16, POOL_V2_HEADER_BYTES);

        writer.write_all(&POOL_MAGIC)?;
        writer.write_all(&POOL_VERSION_V2.to_le_bytes())?;
        writer.write_all(&fnv1a(&body).to_le_bytes())?;
        writer.write_all(&body)?;
        let mut written = POOL_V2_HEADER_BYTES;
        for (i, section) in sections.iter().enumerate() {
            // Zero padding up to the section's page boundary. The last
            // section is NOT padded: the file ends exactly at its final
            // byte, so the parser can reject trailing garbage.
            writer.write_all(&vec![0u8; (offsets[i] - written) as usize])?;
            writer.write_all(section)?;
            written = offsets[i] + section.len() as u64;
        }
        writer.flush()?;
        Ok(())
    }

    /// Saves the pool to `path` in the v2 layout.
    pub fn save_v2<P: AsRef<Path>>(&self, path: P) -> Result<(), EngineError> {
        let file = std::fs::File::create(path)?;
        self.write_v2(std::io::BufWriter::new(file))
    }

    /// Saves the pool to `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), EngineError> {
        let file = std::fs::File::create(path)?;
        self.write(std::io::BufWriter::new(file))
    }

    /// Loads a pool from `path`.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, EngineError> {
        Self::decode(&std::fs::read(path)?)
    }
}

/// Reads the format version from the first eight bytes of a pool file
/// without decoding it — how callers pick the eager-load or mmap path.
///
/// I/O errors pass through as [`EngineError::Io`] (so a missing file
/// stays distinguishable); a file too short for a header or with the
/// wrong magic is [`EngineError::Format`].
pub fn pool_version<P: AsRef<Path>>(path: P) -> Result<u32, EngineError> {
    let mut file = std::fs::File::open(path)?;
    let mut head = [0u8; 8];
    file.read_exact(&mut head).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            EngineError::Format("pool file too short for a header".into())
        } else {
            EngineError::Io(e)
        }
    })?;
    if head[0..4] != POOL_MAGIC {
        return Err(EngineError::Format(
            "not a TIMP pool file (bad magic)".into(),
        ));
    }
    Ok(u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")))
}

/// Parses and validates a v2 pool header against the file's real
/// length: magic, version, header checksum, provenance fields, count
/// sanity, and a section table whose entries are canonically ordered,
/// page-aligned, exactly the expected length, in bounds, and
/// non-overlapping. After this check a reader may index any section
/// without further bounds tests; per-section checksums stay deferred.
pub(crate) fn parse_v2(
    bytes: &[u8],
    file_len: u64,
) -> Result<(PoolMeta, MmapSetsLayout), EngineError> {
    let fmt = |m: String| EngineError::Format(m);
    let header_len = POOL_V2_HEADER_BYTES as usize;
    if bytes.len() < 8 {
        return Err(fmt("pool file too short for a header".into()));
    }
    if bytes[0..4] != POOL_MAGIC {
        return Err(fmt("not a TIMP pool file (bad magic)".into()));
    }
    // Version before length: a short file that is a valid v1 pool must
    // report its version, not claim v2 truncation.
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != POOL_VERSION_V2 {
        return Err(fmt(format!("not a v2 pool (version {version})")));
    }
    if bytes.len() < header_len {
        return Err(fmt("truncated v2 pool header".into()));
    }
    let stored = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let actual = fnv1a(&bytes[16..header_len]);
    if actual != stored {
        return Err(fmt(format!(
            "v2 pool header checksum mismatch: file says {stored:#018x}, \
             header hashes to {actual:#018x}"
        )));
    }
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));

    let graph_checksum = u64_at(16);
    let seed = u64_at(24);
    let select_seed = u64_at(32);
    let theta = u64_at(40);
    let k_max = u32_at(48);
    let model_len = u32_at(52) as usize;
    let epsilon = f64::from_bits(u64_at(56));
    let ell = f64::from_bits(u64_at(64));
    if model_len > POOL_V2_MODEL_TAG_MAX {
        return Err(fmt(format!(
            "v2 model tag length {model_len} exceeds the {POOL_V2_MODEL_TAG_MAX}-byte field"
        )));
    }
    let model = std::str::from_utf8(&bytes[72..72 + model_len])
        .map_err(|_| fmt("model tag is not UTF-8".into()))?
        .to_string();
    if bytes[72 + model_len..104].iter().any(|&b| b != 0) {
        return Err(fmt("v2 model tag field has non-zero padding".into()));
    }

    let universe = u64_at(104);
    let num_sets = u64_at(112);
    let members = u64_at(120);
    let section_count = u64_at(128);
    if section_count != SETS_SECTION_COUNT as u64 {
        return Err(fmt(format!(
            "v2 pool claims {section_count} sections (expected {SETS_SECTION_COUNT})"
        )));
    }
    if num_sets != theta {
        return Err(fmt(format!(
            "pool stores {num_sets} sets but header claims theta = {theta}"
        )));
    }
    // NodeId is u32: a universe at or above 2^32 cannot be represented.
    if universe >= u64::from(u32::MAX) {
        return Err(fmt(format!("v2 universe {universe} overflows NodeId")));
    }
    let mut layout = MmapSetsLayout {
        universe: usize_field(universe, "universe")?,
        num_sets: usize_field(num_sets, "set count")?,
        total_members: usize_field(members, "member count")?,
        sections: [0; SETS_SECTION_COUNT],
        section_fnv: [0; SETS_SECTION_COUNT],
    };

    let mut min_start = POOL_V2_HEADER_BYTES;
    for i in 0..SETS_SECTION_COUNT {
        let name = tim_coverage::SETS_SECTION_NAMES[i];
        let base = 136 + i * 32;
        let id = u32_at(base);
        if id as usize != i {
            return Err(fmt(format!(
                "v2 section {i} has id {id} (table must be in canonical order)"
            )));
        }
        let offset = u64_at(base + 8);
        let len = u64_at(base + 16);
        let fnv = u64_at(base + 24);
        let expected = layout
            .section_len(i)
            .ok_or_else(|| fmt(format!("v2 {name} section length overflows")))?;
        if len != expected {
            return Err(fmt(format!(
                "v2 {name} section is {len} bytes (expected {expected})"
            )));
        }
        if offset % POOL_V2_ALIGN != 0 {
            return Err(fmt(format!(
                "v2 {name} section offset {offset} is not {POOL_V2_ALIGN}-aligned"
            )));
        }
        if offset < min_start {
            return Err(fmt(format!(
                "v2 {name} section at offset {offset} overlaps the header or a previous section"
            )));
        }
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= file_len)
            .ok_or_else(|| {
                fmt(format!(
                    "v2 {name} section ({offset}+{len} bytes) runs past the end of the file"
                ))
            })?;
        min_start = end;
        layout.sections[i] = usize_field(offset, "section offset")?;
        layout.section_fnv[i] = fnv;
    }
    if min_start != file_len {
        return Err(fmt(format!(
            "{} trailing bytes after the last v2 section",
            file_len - min_start
        )));
    }

    Ok((
        PoolMeta {
            graph_checksum,
            model,
            epsilon,
            ell,
            seed,
            k_max,
            theta,
            select_seed,
        },
        layout,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pool() -> RrPool {
        let mut sets = SetCollection::new(10);
        sets.push(&[0, 1, 2]);
        sets.push(&[3]);
        sets.push(&[4, 5]);
        RrPool {
            meta: PoolMeta {
                graph_checksum: 0xDEAD_BEEF,
                model: "ic".into(),
                epsilon: 0.1,
                ell: 1.0,
                seed: 42,
                k_max: 5,
                theta: 3,
                select_seed: 77,
            },
            sets,
        }
    }

    fn encode(pool: &RrPool) -> Vec<u8> {
        let mut buf = Vec::new();
        pool.write(&mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_preserves_meta_and_sets() {
        let pool = sample_pool();
        let loaded = RrPool::read(encode(&pool).as_slice()).unwrap();
        assert_eq!(loaded.meta, pool.meta);
        assert_eq!(loaded.sets.len(), pool.sets.len());
        for i in 0..pool.sets.len() {
            assert_eq!(loaded.sets.set(i), pool.sets.set(i));
        }
    }

    #[test]
    fn corruption_is_detected() {
        let pool = sample_pool();
        let good = encode(&pool);
        for (mutate, what) in [(0usize, "magic"), (4, "version"), (30, "payload")] {
            let mut bytes = good.clone();
            bytes[mutate] ^= 0xFF;
            assert!(
                RrPool::read(bytes.as_slice()).is_err(),
                "corrupting {what} must fail"
            );
        }
        for cut in [0, 10, good.len() - 1] {
            assert!(RrPool::read(&good[..cut]).is_err());
        }
        let mut long = good.clone();
        long.push(7);
        assert!(RrPool::read(long.as_slice()).is_err());
    }

    #[test]
    fn huge_claimed_set_count_fails_as_truncation_not_allocation() {
        // The header is untrusted: a claimed theta of 2^60 must be caught
        // by payload bounds checks, not by attempting the allocation.
        let pool = sample_pool();
        let mut bytes = encode(&pool);
        let huge = (1u64 << 60).to_le_bytes();
        // Payload layout: checksum'd region starts at byte 16; theta is at
        // payload offset 24, the set count at offset 66 (after the 2-byte
        // "ic" model tag and the universe).
        bytes[16 + 24..16 + 32].copy_from_slice(&huge);
        bytes[16 + 66..16 + 74].copy_from_slice(&huge);
        let checksum = fnv1a(&bytes[16..]);
        bytes[8..16].copy_from_slice(&checksum.to_le_bytes());
        match RrPool::read(bytes.as_slice()) {
            Err(EngineError::Format(m)) => assert!(m.contains("truncated"), "{m}"),
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn theta_set_count_mismatch_is_rejected() {
        let mut pool = sample_pool();
        pool.meta.theta = 99;
        assert!(matches!(
            RrPool::read(encode(&pool).as_slice()),
            Err(EngineError::Format(m)) if m.contains("theta")
        ));
    }

    #[test]
    fn file_round_trip() {
        let pool = sample_pool();
        let dir = std::env::temp_dir().join(format!("timp_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.timp");
        pool.save(&path).unwrap();
        let loaded = RrPool::load(&path).unwrap();
        assert_eq!(loaded.meta, pool.meta);
        std::fs::remove_file(&path).ok();
    }

    fn encode_v2(pool: &RrPool) -> Vec<u8> {
        let mut buf = Vec::new();
        pool.write_v2(&mut buf).unwrap();
        buf
    }

    #[test]
    fn v2_round_trip_preserves_meta_and_sets() {
        let pool = sample_pool();
        let bytes = encode_v2(&pool);
        assert_eq!(bytes[4..8], POOL_VERSION_V2.to_le_bytes());
        let loaded = RrPool::read(bytes.as_slice()).unwrap();
        assert_eq!(loaded.meta, pool.meta);
        assert_eq!(loaded.sets.len(), pool.sets.len());
        for i in 0..pool.sets.len() {
            assert_eq!(loaded.sets.set(i), pool.sets.set(i));
        }
    }

    #[test]
    fn v2_layout_is_page_aligned_with_persisted_index() {
        let mut pool = sample_pool();
        // Writing with a pre-built index and without one must produce
        // identical bytes: the writer computes the same arrays either way.
        let lazy = encode_v2(&pool);
        pool.sets.ensure_inverted_index();
        let eager = encode_v2(&pool);
        assert_eq!(lazy, eager);

        let (_, layout) = parse_v2(&eager, eager.len() as u64).unwrap();
        for (i, &off) in layout.sections.iter().enumerate() {
            assert_eq!(off as u64 % POOL_V2_ALIGN, 0, "section {i}");
        }
        // inv_offsets of the file match the collection's own index.
        let (inv_offsets, inv_data) = pool.sets.raw_inverted().unwrap();
        let start = layout.sections[3];
        let raw: Vec<u32> = eager[start..start + inv_data.len() * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(raw, inv_data);
        assert_eq!(inv_offsets.len(), pool.sets.universe() + 1);
    }

    #[test]
    fn v2_rejects_oversized_model_tags() {
        let mut pool = sample_pool();
        pool.meta.model = "m".repeat(POOL_V2_MODEL_TAG_MAX + 1);
        let mut buf = Vec::new();
        match pool.write_v2(&mut buf) {
            Err(EngineError::Format(m)) => assert!(m.contains("spill as v1"), "{m}"),
            other => panic!("expected a format error, got {other:?}"),
        }
        // v1 still accepts the same pool.
        pool.write(&mut buf).unwrap();
        assert_eq!(
            RrPool::read(buf.as_slice()).unwrap().meta.model,
            pool.meta.model
        );
    }

    #[test]
    fn version_sniff_distinguishes_v1_v2_and_garbage() {
        let dir = std::env::temp_dir().join(format!("timp_sniff_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pool = sample_pool();
        let v1 = dir.join("v1.timp");
        let v2 = dir.join("v2.timp");
        pool.save(&v1).unwrap();
        pool.save_v2(&v2).unwrap();
        assert_eq!(pool_version(&v1).unwrap(), POOL_VERSION);
        assert_eq!(pool_version(&v2).unwrap(), POOL_VERSION_V2);

        let junk = dir.join("junk.timp");
        std::fs::write(&junk, b"NOTAPOOL").unwrap();
        assert!(matches!(pool_version(&junk), Err(EngineError::Format(_))));
        let short = dir.join("short.timp");
        std::fs::write(&short, b"TIM").unwrap();
        assert!(matches!(
            pool_version(&short),
            Err(EngineError::Format(m)) if m.contains("too short")
        ));
        assert!(matches!(
            pool_version(dir.join("missing.timp")),
            Err(EngineError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_unrepresentable_counts_fail_cleanly() {
        // A 64-bit count that cannot fit a 32-bit usize must produce a
        // clean format error, never a silent `as usize` truncation. On
        // 64-bit hosts the same doctored count instead trips the payload
        // bounds check — either way, a clean `Format` error.
        let pool = sample_pool();
        let mut bytes = encode(&pool);
        let huge = ((1u64 << 33) + 3).to_le_bytes();
        bytes[16 + 74..16 + 82].copy_from_slice(&huge); // member count field
        let checksum = fnv1a(&bytes[16..]);
        bytes[8..16].copy_from_slice(&checksum.to_le_bytes());
        match RrPool::read(bytes.as_slice()) {
            Err(EngineError::Format(_)) => {}
            other => panic!("expected format error, got {other:?}"),
        }
    }
}
