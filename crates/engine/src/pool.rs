//! Persistent RR-set pools (`.timp`): a serialized
//! [`SetCollection`] plus the provenance that makes it safe to reuse.
//!
//! TIM's cost is dominated by sampling the θ RR sets of the
//! node-selection phase; the greedy step over them is cheap. A pool file
//! captures that expensive artifact once so later processes can answer
//! influence queries without resampling. The provenance header pins
//! everything the sample depends on — the graph (by content checksum),
//! the diffusion model, and the `(seed, ε, ℓ)` configuration — and the
//! loader refuses any mismatch rather than silently serving sets drawn
//! from a different distribution.
//!
//! # File layout (version 1, little-endian)
//!
//! | bytes | field |
//! |---|---|
//! | 0..4 | magic `b"TIMP"` |
//! | 4..8 | format version (`u32`) |
//! | 8..16 | FNV-1a checksum of everything after this field (`u64`) |
//! | … | provenance: graph checksum, seed, select seed, θ, `k_max`, ε, ℓ, model tag |
//! | … | collection: universe `n`, set count, member count, offsets, arena |

use crate::error::EngineError;
use std::io::{Read, Write};
use std::path::Path;
use tim_coverage::SetCollection;
use tim_graph::snapshot::Fnv1a;
use tim_graph::NodeId;

/// The four magic bytes opening every pool file.
pub const POOL_MAGIC: [u8; 4] = *b"TIMP";

/// Current pool format version.
pub const POOL_VERSION: u32 = 1;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Provenance of a pool: everything the sampled sets depend on.
///
/// The engine validates all of it before serving queries; see
/// [`QueryEngine::from_pool`](crate::QueryEngine::from_pool).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolMeta {
    /// [`tim_graph::snapshot::graph_checksum`] of the graph the sets were
    /// sampled on (covers adjacency *and* edge probabilities, hence also
    /// the weight model).
    pub graph_checksum: u64,
    /// Diffusion model tag (`"ic"` / `"lt"`).
    pub model: String,
    /// Approximation slack ε the pool was built for.
    pub epsilon: f64,
    /// Failure exponent ℓ the pool was built for.
    pub ell: f64,
    /// The run seed queries replicate.
    pub seed: u64,
    /// Largest `k` the pool was warmed for (informational; queries beyond
    /// it trigger a resample rather than an error).
    pub k_max: u32,
    /// Number of RR sets stored (θ of the pool).
    pub theta: u64,
    /// Seed of the node-selection sampling stream
    /// ([`tim_core::select_stream_seed`] of `seed`).
    pub select_seed: u64,
}

/// A serialized RR-set pool: provenance plus the sets themselves.
#[derive(Debug, Clone)]
pub struct RrPool {
    /// Provenance header.
    pub meta: PoolMeta,
    /// The sampled RR sets, in generation (shard) order.
    pub sets: SetCollection,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], EngineError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(EngineError::Format(format!(
                "pool truncated while reading {what}"
            ))),
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8-byte slice"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4-byte slice"),
        ))
    }
}

impl RrPool {
    /// Serializes the pool into `writer`.
    pub fn write<W: Write>(&self, mut writer: W) -> Result<(), EngineError> {
        let sets = &self.sets;
        let mut payload = Vec::with_capacity(
            64 + self.meta.model.len() + sets.raw_offsets().len() * 8 + sets.raw_data().len() * 4,
        );
        put_u64(&mut payload, self.meta.graph_checksum);
        put_u64(&mut payload, self.meta.seed);
        put_u64(&mut payload, self.meta.select_seed);
        put_u64(&mut payload, self.meta.theta);
        payload.extend_from_slice(&self.meta.k_max.to_le_bytes());
        put_u64(&mut payload, self.meta.epsilon.to_bits());
        put_u64(&mut payload, self.meta.ell.to_bits());
        let model = self.meta.model.as_bytes();
        payload.extend_from_slice(&(model.len() as u32).to_le_bytes());
        payload.extend_from_slice(model);
        put_u64(&mut payload, sets.universe() as u64);
        put_u64(&mut payload, sets.len() as u64);
        put_u64(&mut payload, sets.total_members() as u64);
        for &o in sets.raw_offsets() {
            put_u64(&mut payload, o as u64);
        }
        for &v in sets.raw_data() {
            payload.extend_from_slice(&v.to_le_bytes());
        }

        writer.write_all(&POOL_MAGIC)?;
        writer.write_all(&POOL_VERSION.to_le_bytes())?;
        writer.write_all(&fnv1a(&payload).to_le_bytes())?;
        writer.write_all(&payload)?;
        writer.flush()?;
        Ok(())
    }

    /// Deserializes a pool from any reader, verifying magic, version,
    /// checksum, and the collection's structural invariants.
    pub fn read<R: Read>(mut reader: R) -> Result<Self, EngineError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Self::decode(&bytes)
    }

    fn decode(bytes: &[u8]) -> Result<Self, EngineError> {
        let mut cur = Cursor { buf: bytes, pos: 0 };
        if cur.take(4, "magic")? != POOL_MAGIC {
            return Err(EngineError::Format(
                "not a TIMP pool file (bad magic)".into(),
            ));
        }
        let version = cur.u32("version")?;
        if version != POOL_VERSION {
            return Err(EngineError::Format(format!(
                "unsupported pool version {version} (expected {POOL_VERSION})"
            )));
        }
        let stored = cur.u64("checksum")?;
        let actual = fnv1a(&bytes[cur.pos..]);
        if stored != actual {
            return Err(EngineError::Format(format!(
                "pool checksum mismatch: file says {stored:#018x}, payload hashes to {actual:#018x}"
            )));
        }

        let graph_checksum = cur.u64("graph checksum")?;
        let seed = cur.u64("seed")?;
        let select_seed = cur.u64("select seed")?;
        let theta = cur.u64("theta")?;
        let k_max = cur.u32("k_max")?;
        let epsilon = f64::from_bits(cur.u64("epsilon")?);
        let ell = f64::from_bits(cur.u64("ell")?);
        let model_len = cur.u32("model tag length")? as usize;
        let model = String::from_utf8(cur.take(model_len, "model tag")?.to_vec())
            .map_err(|_| EngineError::Format("model tag is not UTF-8".into()))?;

        let n = cur.u64("universe")? as usize;
        let num_sets = cur.u64("set count")? as usize;
        let members = cur.u64("member count")? as usize;
        if num_sets as u64 != theta {
            return Err(EngineError::Format(format!(
                "pool stores {num_sets} sets but header claims theta = {theta}"
            )));
        }
        let offsets_len = num_sets
            .checked_add(1)
            .ok_or_else(|| EngineError::Format("set count overflows".into()))?;
        // Bounds-check against the actual payload BEFORE allocating: the
        // header is untrusted, and a huge claimed count must fail as a
        // truncation error, not an allocation abort.
        let raw = cur.take(
            offsets_len
                .checked_mul(8)
                .ok_or_else(|| EngineError::Format("offsets length overflows".into()))?,
            "offsets",
        )?;
        let offsets: Vec<usize> = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")) as usize)
            .collect();
        let raw = cur.take(
            members
                .checked_mul(4)
                .ok_or_else(|| EngineError::Format("arena length overflows".into()))?,
            "member arena",
        )?;
        let data: Vec<NodeId> = raw
            .chunks_exact(4)
            .map(|c| NodeId::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        if cur.pos != bytes.len() {
            return Err(EngineError::Format(format!(
                "{} trailing bytes after pool payload",
                bytes.len() - cur.pos
            )));
        }

        let sets = SetCollection::from_raw_parts(n, data, offsets)
            .map_err(|e| EngineError::Format(format!("invalid set collection: {e}")))?;
        Ok(RrPool {
            meta: PoolMeta {
                graph_checksum,
                model,
                epsilon,
                ell,
                seed,
                k_max,
                theta,
                select_seed,
            },
            sets,
        })
    }

    /// Saves the pool to `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), EngineError> {
        let file = std::fs::File::create(path)?;
        self.write(std::io::BufWriter::new(file))
    }

    /// Loads a pool from `path`.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, EngineError> {
        Self::decode(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pool() -> RrPool {
        let mut sets = SetCollection::new(10);
        sets.push(&[0, 1, 2]);
        sets.push(&[3]);
        sets.push(&[4, 5]);
        RrPool {
            meta: PoolMeta {
                graph_checksum: 0xDEAD_BEEF,
                model: "ic".into(),
                epsilon: 0.1,
                ell: 1.0,
                seed: 42,
                k_max: 5,
                theta: 3,
                select_seed: 77,
            },
            sets,
        }
    }

    fn encode(pool: &RrPool) -> Vec<u8> {
        let mut buf = Vec::new();
        pool.write(&mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_preserves_meta_and_sets() {
        let pool = sample_pool();
        let loaded = RrPool::read(encode(&pool).as_slice()).unwrap();
        assert_eq!(loaded.meta, pool.meta);
        assert_eq!(loaded.sets.len(), pool.sets.len());
        for i in 0..pool.sets.len() {
            assert_eq!(loaded.sets.set(i), pool.sets.set(i));
        }
    }

    #[test]
    fn corruption_is_detected() {
        let pool = sample_pool();
        let good = encode(&pool);
        for (mutate, what) in [(0usize, "magic"), (4, "version"), (30, "payload")] {
            let mut bytes = good.clone();
            bytes[mutate] ^= 0xFF;
            assert!(
                RrPool::read(bytes.as_slice()).is_err(),
                "corrupting {what} must fail"
            );
        }
        for cut in [0, 10, good.len() - 1] {
            assert!(RrPool::read(&good[..cut]).is_err());
        }
        let mut long = good.clone();
        long.push(7);
        assert!(RrPool::read(long.as_slice()).is_err());
    }

    #[test]
    fn huge_claimed_set_count_fails_as_truncation_not_allocation() {
        // The header is untrusted: a claimed theta of 2^60 must be caught
        // by payload bounds checks, not by attempting the allocation.
        let pool = sample_pool();
        let mut bytes = encode(&pool);
        let huge = (1u64 << 60).to_le_bytes();
        // Payload layout: checksum'd region starts at byte 16; theta is at
        // payload offset 24, the set count at offset 66 (after the 2-byte
        // "ic" model tag and the universe).
        bytes[16 + 24..16 + 32].copy_from_slice(&huge);
        bytes[16 + 66..16 + 74].copy_from_slice(&huge);
        let checksum = fnv1a(&bytes[16..]);
        bytes[8..16].copy_from_slice(&checksum.to_le_bytes());
        match RrPool::read(bytes.as_slice()) {
            Err(EngineError::Format(m)) => assert!(m.contains("truncated"), "{m}"),
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn theta_set_count_mismatch_is_rejected() {
        let mut pool = sample_pool();
        pool.meta.theta = 99;
        assert!(matches!(
            RrPool::read(encode(&pool).as_slice()),
            Err(EngineError::Format(m)) if m.contains("theta")
        ));
    }

    #[test]
    fn file_round_trip() {
        let pool = sample_pool();
        let dir = std::env::temp_dir().join(format!("timp_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.timp");
        pool.save(&path).unwrap();
        let loaded = RrPool::load(&path).unwrap();
        assert_eq!(loaded.meta, pool.meta);
        std::fs::remove_file(&path).ok();
    }
}
