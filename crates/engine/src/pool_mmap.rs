//! Zero-copy mapped RR-set pools.
//!
//! [`PoolMmap`] attaches a `.timp` v2 file without loading it: the
//! header and section table are parsed and validated eagerly (see
//! [`pool`](crate::pool) for the layout), the four sections are carved
//! as slices straight out of a `PROT_READ` mapping, and the persisted
//! inverted index means the first greedy selection runs with no index
//! rebuild. Open cost is a header parse plus one structural scan —
//! independent of how the kernel later pages the arenas in — so pools
//! larger than RAM stay servable, mirroring `tim_graph::MmapCsr` for
//! `.timg` snapshots.
//!
//! Per-section checksums are deferred to [`verify`](PoolMmap::verify);
//! structural validation (monotone offsets, in-universe members, a
//! consistent ascending inverted index) happens at open inside
//! [`MmapSets::from_map`], so the solvers can never index out of
//! bounds even over a hostile file.

use crate::error::EngineError;
use crate::pool::{parse_v2, PoolMeta, RrPool};
use std::path::Path;
use std::sync::Arc;
use tim_coverage::MmapSets;
use tim_graph::{GraphError, Mmap};

fn map_graph_err(e: GraphError) -> EngineError {
    match e {
        GraphError::Io(io) => EngineError::Io(io),
        other => EngineError::Format(other.to_string()),
    }
}

/// A `.timp` v2 pool served zero-copy from a read-only file mapping:
/// validated provenance plus a shared [`MmapSets`] collection.
#[derive(Debug)]
pub struct PoolMmap {
    meta: PoolMeta,
    sets: Arc<MmapSets>,
}

impl PoolMmap {
    /// Maps and validates the v2 pool at `path`.
    ///
    /// Errors: [`EngineError::Io`] when the file cannot be opened (a
    /// missing file stays distinguishable from a corrupt one);
    /// [`EngineError::Format`] on any header, table, or structural
    /// violation — including v1 files, which must be loaded eagerly via
    /// [`RrPool::load`] instead.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, EngineError> {
        let map = Mmap::open(path).map_err(map_graph_err)?;
        let (meta, layout) = parse_v2(map.bytes(), map.len() as u64)?;
        let sets = MmapSets::from_map(map, &layout).map_err(EngineError::Format)?;
        Ok(PoolMmap {
            meta,
            sets: Arc::new(sets),
        })
    }

    /// Provenance of the mapped pool, as recorded in the (checksummed)
    /// header.
    pub fn meta(&self) -> &PoolMeta {
        &self.meta
    }

    /// The mapped collection.
    pub fn sets(&self) -> &Arc<MmapSets> {
        &self.sets
    }

    /// Bytes of the underlying file mapping.
    pub fn mapped_bytes(&self) -> usize {
        self.sets.mapped_bytes()
    }

    /// Full integrity pass: hashes every section and compares against
    /// the table recorded at spill time. O(file size) — the cost open
    /// deliberately defers.
    pub fn verify(&self) -> Result<(), EngineError> {
        self.sets.verify().map_err(EngineError::Format)
    }

    /// Splits into provenance and the shared collection (what the
    /// engine threads into its backing store).
    pub fn into_parts(self) -> (PoolMeta, Arc<MmapSets>) {
        (self.meta, self.sets)
    }

    /// Materializes a heap [`RrPool`] — the escape hatch for growth or
    /// for re-spilling through the v1 writer.
    pub fn to_pool(&self) -> RrPool {
        RrPool {
            meta: self.meta.clone(),
            sets: self.sets.to_collection(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_coverage::SetCollection;

    fn sample_pool() -> RrPool {
        let mut sets = SetCollection::new(10);
        sets.push(&[0, 1, 2]);
        sets.push(&[3]);
        sets.push(&[4, 5]);
        sets.push(&[2, 3, 9]);
        RrPool {
            meta: PoolMeta {
                graph_checksum: 0xFEED_F00D,
                model: "ic".into(),
                epsilon: 0.2,
                ell: 1.0,
                seed: 7,
                k_max: 3,
                theta: 4,
                select_seed: 99,
            },
            sets,
        }
    }

    fn temp_file(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("timp_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.timp"))
    }

    #[test]
    fn open_serves_the_spilled_sets_without_heap_decode() {
        let pool = sample_pool();
        let path = temp_file("open");
        pool.save_v2(&path).unwrap();
        let mapped = PoolMmap::open(&path).unwrap();
        assert_eq!(mapped.meta(), &pool.meta);
        assert_eq!(mapped.sets().len(), pool.sets.len());
        for i in 0..pool.sets.len() {
            assert_eq!(mapped.sets().set(i), pool.sets.set(i));
        }
        // The persisted index answers membership queries immediately.
        assert_eq!(mapped.sets().sets_containing(2), &[0, 3]);
        assert!(mapped.mapped_bytes() > 0);
        mapped.verify().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_files_are_rejected_with_a_clean_error() {
        let pool = sample_pool();
        let path = temp_file("v1");
        pool.save(&path).unwrap();
        match PoolMmap::open(&path) {
            Err(EngineError::Format(m)) => assert!(m.contains("not a v2 pool"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_not_format() {
        assert!(matches!(
            PoolMmap::open(temp_file("missing-nonexistent")),
            Err(EngineError::Io(_))
        ));
    }

    #[test]
    fn to_pool_round_trips_through_the_heap() {
        let pool = sample_pool();
        let path = temp_file("roundtrip");
        pool.save_v2(&path).unwrap();
        let mapped = PoolMmap::open(&path).unwrap();
        let heap = mapped.to_pool();
        assert_eq!(heap.meta, pool.meta);
        let mut buf = Vec::new();
        heap.write_v2(&mut buf).unwrap();
        assert_eq!(buf, std::fs::read(&path).unwrap(), "respill is byte-stable");
        std::fs::remove_file(&path).ok();
    }
}
