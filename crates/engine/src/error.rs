//! Error type for pool persistence and provenance validation.

use std::fmt;

/// Errors raised while loading, saving, or validating RR-set pools.
#[derive(Debug)]
pub enum EngineError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A pool file was malformed, truncated, version-mismatched, or failed
    /// its checksum.
    Format(String),
    /// A structurally valid pool does not match the graph or configuration
    /// it is being attached to (wrong graph checksum, model, seed, …).
    Mismatch(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "i/o error: {e}"),
            EngineError::Format(m) => write!(f, "pool format error: {m}"),
            EngineError::Mismatch(m) => write!(f, "pool provenance mismatch: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: EngineError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("i/o"));
        assert!(e.source().is_some());
        assert!(EngineError::Format("bad".into())
            .to_string()
            .contains("bad"));
        assert!(EngineError::Mismatch("x".into()).source().is_none());
    }
}
