//! Concurrent, shareable access to a [`QueryEngine`].
//!
//! A [`QueryEngine`] answers queries through `&mut self` because some of
//! them *may* mutate: a plan-cache miss replays the (cheap) estimation
//! phases, and a θ shortfall resamples the pool. But on a warm engine the
//! overwhelmingly common case is a pure read — carve a prefix of the
//! immutable pool and run greedy over the shared inverted index.
//!
//! [`SharedEngine`] turns that split into a concurrency story: every query
//! first tries the engine's read-only `try_*` path under an [`RwLock`]
//! read guard (many threads in parallel), and only on a miss upgrades to
//! the write lock to compute plans or grow the pool. Growth is monotone
//! and the sampling stream fixed, so the handoff never changes any
//! answer: an exact-replay `select` returns byte-identical seeds no matter
//! how many threads interleave with it (see `tim_server`'s concurrent
//! determinism test).

use crate::engine::{QueryEngine, QueryOutcome};
use crate::pool::RrPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use tim_diffusion::BackingModel;
use tim_graph::NodeId;

/// A [`QueryEngine`] behind an [`RwLock`] with a read-mostly fast path.
///
/// Cheap to share (`Arc<SharedEngine<M>>`); all query methods take
/// `&self`. Lock poisoning (a panic inside a write section) is treated as
/// fatal — the engine's invariants can no longer be trusted — and
/// propagates as a panic to every later caller.
///
/// ```
/// use std::sync::Arc;
/// use tim_diffusion::IndependentCascade;
/// use tim_engine::{QueryEngine, SharedEngine};
/// use tim_graph::{gen, weights};
///
/// let mut g = gen::barabasi_albert(200, 4, 0.1, 1);
/// weights::assign_weighted_cascade(&mut g);
/// let mut engine = QueryEngine::new(g, IndependentCascade, "ic")
///     .epsilon(1.0)
///     .seed(7)
///     .k_max(4);
/// engine.warm();
/// let shared = Arc::new(SharedEngine::new(engine));
/// let want = shared.select(3).seeds;
///
/// let workers: Vec<_> = (0..2)
///     .map(|_| {
///         let shared = Arc::clone(&shared);
///         std::thread::spawn(move || shared.select(3).seeds)
///     })
///     .collect();
/// for w in workers {
///     assert_eq!(w.join().unwrap(), want);
/// }
/// ```
#[derive(Debug)]
pub struct SharedEngine<M> {
    inner: RwLock<QueryEngine<M>>,
    /// Bumped every time the pool grows through this wrapper — the
    /// growth hook persistence layers ([`crate::PoolStore`] callers)
    /// compare against their last-spilled epoch to decide whether a
    /// pool has new work worth writing back to disk.
    growth: AtomicU64,
}

/// Panic message used when a previous writer panicked mid-update.
const POISONED: &str = "engine lock poisoned: a writer panicked mid-update";

impl<M: BackingModel + Clone> SharedEngine<M> {
    /// Wraps an engine for shared use. Warm it first
    /// ([`QueryEngine::warm`]) if the first queries should not pay the
    /// sampling cost under the write lock.
    pub fn new(engine: QueryEngine<M>) -> Self {
        SharedEngine {
            inner: RwLock::new(engine),
            growth: AtomicU64::new(0),
        }
    }

    /// Runs a blocking (write-lock) engine call and bumps the growth
    /// epoch if the pool grew under it — the single funnel every mutable
    /// query path goes through.
    fn with_growth<T>(&self, f: impl FnOnce(&mut QueryEngine<M>) -> T) -> T {
        let mut guard = self.inner.write().expect(POISONED);
        let before = guard.pool_theta();
        let out = f(&mut guard);
        if guard.pool_theta() > before {
            self.growth.fetch_add(1, Ordering::Release);
        }
        out
    }

    /// How many times the pool has grown (resampled) through this
    /// wrapper since construction. Persistence layers record the epoch
    /// at spill time; a later, larger epoch means the stored file is
    /// stale and the pool is worth spilling again. Monotone; `0` means
    /// the pool is exactly what the engine was constructed with.
    pub fn growth_epoch(&self) -> u64 {
        self.growth.load(Ordering::Acquire)
    }

    /// [`QueryEngine::select`] — read lock when the plan is cached and the
    /// pool suffices, write lock otherwise.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn select(&self, k: usize) -> QueryOutcome {
        self.select_with(k, None, None)
    }

    /// [`QueryEngine::select_with`] with the same read-fast-path /
    /// write-upgrade split as [`select`](Self::select).
    pub fn select_with(&self, k: usize, eps: Option<f64>, ell: Option<f64>) -> QueryOutcome {
        if let Some(out) = self
            .inner
            .read()
            .expect(POISONED)
            .try_select_with(k, eps, ell)
        {
            return out;
        }
        // Upgrade. Another writer may have satisfied the query in between;
        // the mutable path re-checks and is deterministic, so recomputing
        // is correct either way.
        self.with_growth(|e| e.select_with(k, eps, ell))
    }

    /// [`QueryEngine::select_fast`] with the read-fast-path split.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn select_fast(&self, k: usize) -> QueryOutcome {
        if let Some(out) = self.inner.read().expect(POISONED).try_select_fast(k) {
            return out;
        }
        self.with_growth(|e| e.select_fast(k))
    }

    /// [`QueryEngine::spread`] — read lock on a warm pool, write lock
    /// (warming it) on a cold one.
    ///
    /// # Panics
    /// Panics if any seed is outside the graph's node range.
    pub fn spread(&self, seeds: &[NodeId]) -> f64 {
        if let Some(s) = self.inner.read().expect(POISONED).try_spread(seeds) {
            return s;
        }
        self.with_growth(|e| e.spread(seeds))
    }

    /// [`QueryEngine::marginal_gain`] with the read-fast-path split.
    pub fn marginal_gain(&self, base: &[NodeId], candidate: NodeId) -> f64 {
        if let Some(m) = self
            .inner
            .read()
            .expect(POISONED)
            .try_marginal_gain(base, candidate)
        {
            return m;
        }
        self.with_growth(|e| e.marginal_gain(base, candidate))
    }

    /// Current pool size θ (0 when cold).
    pub fn pool_theta(&self) -> u64 {
        self.inner.read().expect(POISONED).pool_theta()
    }

    /// The `k` the pool is warmed for.
    pub fn warmed_k(&self) -> usize {
        self.inner.read().expect(POISONED).warmed_k()
    }

    /// Content checksum of the attached graph.
    pub fn graph_checksum(&self) -> u64 {
        self.inner.read().expect(POISONED).graph_checksum()
    }

    /// Warms the pool ([`QueryEngine::warm`]) under the write lock and
    /// returns the resulting θ.
    pub fn warm(&self) -> u64 {
        self.with_growth(|e| e.warm())
    }

    /// The engine's current provenance header
    /// ([`QueryEngine::pool_meta`]), without cloning the sets.
    pub fn pool_meta(&self) -> crate::PoolMeta {
        self.inner.read().expect(POISONED).pool_meta()
    }

    /// Snapshots the current pool (with provenance) for persistence.
    pub fn to_pool(&self) -> RrPool {
        self.inner.read().expect(POISONED).to_pool()
    }

    /// Unwraps the engine (e.g. to persist it at shutdown).
    pub fn into_inner(self) -> QueryEngine<M> {
        self.inner.into_inner().expect(POISONED)
    }

    /// Acquires the read lock once and returns a handle answering the
    /// engine's read-only `try_*` queries against it — the batch-dispatch
    /// primitive: a `tim/2` `batch` executes its whole run of same-engine
    /// queries under **one** lock acquisition instead of one per line.
    ///
    /// A `try_*` miss (uncached plan, θ shortfall) returns `None`; the
    /// caller must **drop the handle first** and go through the blocking
    /// methods ([`select_with`](Self::select_with), …) — calling them while
    /// holding the handle would self-deadlock on the write lock. Answers
    /// never depend on which path served them.
    pub fn read_handle(&self) -> EngineReadGuard<'_, M> {
        EngineReadGuard {
            guard: self.inner.read().expect(POISONED),
        }
    }
}

/// A read-lock guard over a [`SharedEngine`], exposing the engine's
/// read-only query surface. Created by [`SharedEngine::read_handle`];
/// holding it blocks pool growth (writers), not other readers.
#[derive(Debug)]
pub struct EngineReadGuard<'a, M> {
    guard: std::sync::RwLockReadGuard<'a, QueryEngine<M>>,
}

impl<M: BackingModel + Clone> EngineReadGuard<'_, M> {
    /// [`QueryEngine::try_select_with`] under the held read lock.
    pub fn try_select_with(
        &self,
        k: usize,
        eps: Option<f64>,
        ell: Option<f64>,
    ) -> Option<QueryOutcome> {
        self.guard.try_select_with(k, eps, ell)
    }

    /// [`QueryEngine::try_select_fast`] under the held read lock.
    pub fn try_select_fast(&self, k: usize) -> Option<QueryOutcome> {
        self.guard.try_select_fast(k)
    }

    /// [`QueryEngine::try_spread`] under the held read lock.
    pub fn try_spread(&self, seeds: &[NodeId]) -> Option<f64> {
        self.guard.try_spread(seeds)
    }

    /// [`QueryEngine::try_marginal_gain`] under the held read lock.
    pub fn try_marginal_gain(&self, base: &[NodeId], candidate: NodeId) -> Option<f64> {
        self.guard.try_marginal_gain(base, candidate)
    }

    /// Pool size θ at the time the lock was taken.
    pub fn pool_theta(&self) -> u64 {
        self.guard.pool_theta()
    }
}

impl<M: BackingModel + Clone> From<QueryEngine<M>> for SharedEngine<M> {
    fn from(engine: QueryEngine<M>) -> Self {
        SharedEngine::new(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tim_diffusion::IndependentCascade;
    use tim_graph::{gen, weights, Graph};

    fn wc_graph(n: usize, seed: u64) -> Graph {
        let mut g = gen::barabasi_albert(n, 4, 0.0, seed);
        weights::assign_weighted_cascade(&mut g);
        g
    }

    fn shared(seed: u64) -> SharedEngine<IndependentCascade> {
        let mut engine = QueryEngine::new(wc_graph(300, 1), IndependentCascade, "ic")
            .epsilon(0.8)
            .seed(seed)
            .threads(2)
            .k_max(8);
        engine.warm();
        SharedEngine::new(engine)
    }

    #[test]
    fn shared_engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedEngine<IndependentCascade>>();
        assert_send_sync::<QueryEngine<IndependentCascade>>();
    }

    #[test]
    fn shared_answers_match_exclusive_answers() {
        let s = shared(3);
        let mut exclusive = QueryEngine::new(wc_graph(300, 1), IndependentCascade, "ic")
            .epsilon(0.8)
            .seed(3)
            .threads(2)
            .k_max(8);
        exclusive.warm();
        for k in [1usize, 4, 8] {
            assert_eq!(s.select(k).seeds, exclusive.select(k).seeds, "k = {k}");
        }
        let seeds = s.select(4).seeds;
        assert_eq!(s.spread(&seeds), exclusive.spread(&seeds));
        assert_eq!(
            s.marginal_gain(&seeds, 99),
            exclusive.marginal_gain(&seeds, 99)
        );
        assert_eq!(s.select_fast(3).seeds, exclusive.select_fast(3).seeds);
        assert_eq!(s.pool_theta(), exclusive.pool_theta());
    }

    #[test]
    fn concurrent_selects_agree_with_serial_answers() {
        let s = Arc::new(shared(5));
        // Serial ground truth, including per-k plan caching.
        let serial: Vec<Vec<u32>> = (1..=8).map(|k| s.select(k).seeds).collect();
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    (1..=8)
                        .map(|k| {
                            // Stagger the order per worker to interleave.
                            let k = (k + w) % 8 + 1;
                            (k, s.select(k).seeds)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for w in workers {
            for (k, seeds) in w.join().unwrap() {
                assert_eq!(seeds, serial[k - 1], "k = {k}");
            }
        }
    }

    #[test]
    fn read_handle_answers_match_blocking_calls() {
        let s = shared(4);
        // Blocking ground truth first: these may take the write lock
        // (plan caching, fast-cover build), which must not happen while a
        // read handle is held.
        let want = s.select(3);
        let fast = s.select_fast(2).seeds;
        let spread = s.spread(&want.seeds);
        let gain = s.marginal_gain(&want.seeds, 9);
        let theta = s.pool_theta();

        let handle = s.read_handle();
        assert_eq!(
            handle.try_select_with(3, None, None).unwrap().seeds,
            want.seeds
        );
        assert_eq!(handle.try_select_fast(2).unwrap().seeds, fast);
        assert_eq!(handle.try_spread(&want.seeds).unwrap(), spread);
        assert_eq!(handle.try_marginal_gain(&want.seeds, 9).unwrap(), gain);
        assert_eq!(handle.pool_theta(), theta);
        // A miss (k beyond the warmed pool) reports None instead of
        // blocking — the caller is expected to drop the handle and retry.
        assert!(handle.try_select_with(64, None, None).is_none());
    }

    #[test]
    fn growth_epoch_tracks_pool_growth_only() {
        let s = shared(6); // warmed before wrapping: epoch starts at 0
        assert_eq!(s.growth_epoch(), 0);
        // Warm-pool queries (reads and write-path plan caching) never
        // bump the epoch.
        s.select(3);
        s.select_fast(2);
        s.spread(&[0, 1]);
        s.marginal_gain(&[0], 5);
        assert_eq!(s.growth_epoch(), 0, "no growth, no epoch bump");
        // A tighter ε forces a resample through the write path.
        let out = s.select_with(3, Some(0.1), None);
        assert!(out.resampled);
        assert_eq!(s.growth_epoch(), 1);
        // The same query again answers from the grown pool.
        s.select_with(3, Some(0.1), None);
        assert_eq!(s.growth_epoch(), 1);
    }

    #[test]
    fn cold_shared_engine_warms_through_the_write_path() {
        let engine = QueryEngine::new(wc_graph(300, 2), IndependentCascade, "ic")
            .epsilon(0.9)
            .seed(9)
            .threads(2)
            .k_max(4);
        let s = SharedEngine::new(engine); // not warmed
        assert_eq!(s.pool_theta(), 0);
        let out = s.select(2);
        assert!(out.resampled, "cold pool must resample");
        assert!(s.pool_theta() > 0);
        assert!(s.spread(&out.seeds) > 0.0);
        let pool = s.to_pool();
        assert_eq!(pool.meta.theta, s.pool_theta());
    }
}
