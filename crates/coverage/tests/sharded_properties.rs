//! Property tests for the sharded greedy solver's determinism contract:
//! for arbitrary set collections, shard counts, and thread counts,
//!
//! 1. per-shard coverage counts always **sum** to the serial counts (the
//!    apply phase partitions, never loses or double-counts),
//! 2. the merged argmax — including the largest-id tie-break and the
//!    smallest-id padding fallback — equals the serial argmax at **every**
//!    greedy round, not just in the final seed list,
//! 3. the end-to-end sharded run is byte-identical to the serial run.
//!
//! The per-round oracle is an independent O(n·θ) reference greedy written
//! here from the contract (max `(gain, node)`, pad with the smallest
//! unselected id), so these tests would also catch the serial lazy-heap
//! and the sharded solver agreeing on a *wrong* order.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use tim_coverage::sharded::{
    apply_pick_in_range, greedy_max_cover_sharded_indexed, greedy_max_cover_sharded_indexed_stats,
    merge_votes, sets_in_range, shard_prefix_ranges, worker_set_ranges, RoundPick, ShardVote,
    SELECT_SHARDS,
};
use tim_coverage::{greedy_max_cover, SelectStrategy, SetCollection};
use tim_rng::{RandomSource, Rng};

/// Builds a random collection: `sets` sets over universe `n`, each with
/// up to `max_size` distinct members. Deterministic in `seed`.
fn random_collection(seed: u64, n: usize, sets: usize, max_size: usize) -> SetCollection {
    let mut rng = Rng::seed_from_u64(seed);
    let mut c = SetCollection::new(n);
    for _ in 0..sets {
        let size = rng.next_index(max_size + 1);
        let mut members: Vec<u32> = (0..size).map(|_| rng.next_index(n) as u32).collect();
        members.sort_unstable();
        members.dedup();
        c.push(&members);
    }
    c.ensure_inverted_index();
    c
}

/// One round of the reference greedy: the serial pick over a plain gain
/// table, straight from the contract.
fn reference_pick(gain: &[usize], selected: &[bool]) -> RoundPick {
    let best = (0..gain.len())
        .filter(|&v| !selected[v] && gain[v] > 0)
        .map(|v| (gain[v], v as u32))
        .max();
    if let Some((gain, node)) = best {
        return RoundPick::Select { node, gain };
    }
    match (0..gain.len()).find(|&v| !selected[v]) {
        Some(v) => RoundPick::Pad(v as u32),
        None => RoundPick::Exhausted,
    }
}

/// Votes for one round under an arbitrary contiguous node partition.
fn votes_for(
    ranges: &[std::ops::Range<usize>],
    gain: &[usize],
    selected: &[bool],
) -> Vec<ShardVote> {
    ranges
        .iter()
        .map(|r| ShardVote {
            best: r
                .clone()
                .filter(|&v| !selected[v] && gain[v] > 0)
                .map(|v| (gain[v], v as u32))
                .max(),
            min_unselected: r.clone().find(|&v| !selected[v]).map(|v| v as u32),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// At every round of the greedy, (a) each worker's slice of the apply
    /// phase covers a disjoint share of the chosen node's sets that sums
    /// to the serial marginal, and (b) the merged vote equals the serial
    /// argmax with its tie-break.
    #[test]
    fn per_round_merge_and_counts_match_serial(
        seed in 0u64..1_000_000,
        n in 2usize..40,
        sets in 0usize..80,
        node_shards in 1usize..9,
        threads in 1usize..9,
    ) {
        let c = random_collection(seed, n, sets, 5);
        let node_ranges = shard_prefix_ranges(n, node_shards);
        let set_ranges = worker_set_ranges(c.len(), threads);

        let mut gain: Vec<usize> = (0..n as u32).map(|v| c.degree(v)).collect();
        let mut selected = vec![false; n];
        let mut covered = vec![false; c.len()];

        for round in 0..n {
            let want = reference_pick(&gain, &selected);
            let got = merge_votes(&votes_for(&node_ranges, &gain, &selected));
            prop_assert_eq!(got, want, "round {}", round);

            let chosen = match want {
                RoundPick::Select { node, gain: marginal } => {
                    // (a) the shard slices partition the membership list...
                    let per_shard: Vec<&[u32]> = set_ranges
                        .iter()
                        .map(|r| sets_in_range(&c, node, r))
                        .collect();
                    let total: usize = per_shard.iter().map(|s| s.len()).sum();
                    prop_assert_eq!(total, c.sets_containing(node).len());
                    // ...and the per-shard *newly covered* counts sum to
                    // the serial marginal.
                    let newly_sum: usize = per_shard
                        .iter()
                        .flat_map(|s| s.iter())
                        .filter(|&&s| !covered[s as usize])
                        .count();
                    prop_assert_eq!(newly_sum, marginal, "round {}", round);
                    // Apply serially for the next round's oracle state.
                    for &s in c.sets_containing(node) {
                        if !covered[s as usize] {
                            covered[s as usize] = true;
                            for &u in c.set(s as usize) {
                                gain[u as usize] -= 1;
                            }
                        }
                    }
                    node
                }
                RoundPick::Pad(node) => node,
                RoundPick::Exhausted => break,
            };
            selected[chosen as usize] = true;
        }
    }

    /// End-to-end: sharded == serial (seeds, marginals, covered) for
    /// arbitrary instances and thread counts.
    #[test]
    fn sharded_run_is_byte_identical_to_serial(
        seed in 0u64..1_000_000,
        n in 2usize..50,
        sets in 0usize..100,
        k_frac in 0.0f64..1.0,
        threads in 2usize..12,
    ) {
        let mut c = random_collection(seed, n, sets, 6);
        let k = 1 + (k_frac * (n - 1) as f64) as usize;
        let want = greedy_max_cover(&mut c, k);
        let got = greedy_max_cover_sharded_indexed(&c, k, threads);
        prop_assert_eq!(&got, &want, "threads {}", threads);
        prop_assert_eq!(got.seeds.len(), k.min(n));
    }

    /// The lazy solver agrees with the independent reference oracle at
    /// **every round**: replaying the lazy run's seed sequence against a
    /// plain gain table must reproduce both the pick (with the largest-id
    /// tie-break and smallest-id padding) and the recorded marginal.
    /// This would catch a stale heap entry surviving a round it should
    /// not, even if eager and lazy happened to agree on a wrong order.
    #[test]
    fn lazy_rounds_match_the_reference_oracle(
        seed in 0u64..1_000_000,
        n in 2usize..50,
        sets in 0usize..100,
        k_frac in 0.0f64..1.0,
        threads in 2usize..10,
    ) {
        let c = random_collection(seed, n, sets, 6);
        let k = 1 + (k_frac * (n - 1) as f64) as usize;
        let (got, stats) =
            greedy_max_cover_sharded_indexed_stats(&c, k, threads, SelectStrategy::Lazy);
        prop_assert_eq!(got.seeds.len(), k.min(n));
        prop_assert_eq!(stats.rounds, k.min(n));

        let mut gain: Vec<usize> = (0..n as u32).map(|v| c.degree(v)).collect();
        let mut selected = vec![false; n];
        let mut covered = vec![false; c.len()];
        for (round, &node) in got.seeds.iter().enumerate() {
            match reference_pick(&gain, &selected) {
                RoundPick::Select { node: want, gain: marginal } => {
                    prop_assert_eq!(node, want, "round {}", round);
                    prop_assert_eq!(got.marginal[round], marginal, "round {}", round);
                    for &s in c.sets_containing(node) {
                        if !covered[s as usize] {
                            covered[s as usize] = true;
                            for &u in c.set(s as usize) {
                                gain[u as usize] -= 1;
                            }
                        }
                    }
                }
                RoundPick::Pad(want) => {
                    prop_assert_eq!(node, want, "round {} (pad)", round);
                    prop_assert_eq!(got.marginal[round], 0, "round {} (pad)", round);
                }
                RoundPick::Exhausted => prop_assert!(false, "round {}: oracle exhausted", round),
            }
            selected[node as usize] = true;
        }
    }

    /// Dirty-set soundness: at every greedy round, every node whose true
    /// gain changed during the apply phase appears in the dirty set the
    /// apply phase computed — and (completeness, which the lazy solver
    /// does not strictly need but the implementation guarantees) no node
    /// whose gain did not change does. Each per-worker dirty list must
    /// come back sorted and deduplicated, since the lazy vote phase
    /// binary-searches it.
    #[test]
    fn dirty_sets_are_sound_over_full_runs(
        seed in 0u64..1_000_000,
        n in 2usize..40,
        sets in 0usize..80,
        threads in 1usize..6,
    ) {
        let c = random_collection(seed, n, sets, 5);
        let set_ranges = worker_set_ranges(c.len(), threads);
        let gain: Vec<AtomicUsize> =
            (0..n as u32).map(|v| AtomicUsize::new(c.degree(v))).collect();
        let mut covered = vec![false; c.len()];
        let mut selected = vec![false; n];
        let mut scratch = Vec::new();

        for round in 0..n {
            let before: Vec<usize> = gain.iter().map(|g| g.load(Relaxed)).collect();
            let node = match reference_pick(&before, &selected) {
                RoundPick::Select { node, .. } => node,
                RoundPick::Pad(node) => node,
                RoundPick::Exhausted => break,
            };
            let mut dirty_union: Vec<u32> = Vec::new();
            for r in &set_ranges {
                apply_pick_in_range(
                    &c,
                    node,
                    r,
                    &mut covered[r.start..r.end],
                    &gain,
                    Some(&mut scratch),
                );
                prop_assert!(
                    scratch.windows(2).all(|w| w[0] < w[1]),
                    "round {}: worker dirty list not sorted+deduped", round
                );
                dirty_union.extend_from_slice(&scratch);
            }
            dirty_union.sort_unstable();
            dirty_union.dedup();
            let after: Vec<usize> = gain.iter().map(|g| g.load(Relaxed)).collect();
            for u in 0..n {
                let changed = before[u] != after[u];
                let flagged = dirty_union.binary_search(&(u as u32)).is_ok();
                prop_assert_eq!(
                    changed, flagged,
                    "round {}, node {}: gain {} -> {}", round, u, before[u], after[u]
                );
            }
            selected[node as usize] = true;
        }
    }

    /// The set-space partition is sound for arbitrary sizes: contiguous,
    /// complete, balanced-by-shard, and worker boundaries land on shard
    /// boundaries (so selection workers own whole sampling shards).
    #[test]
    fn partitions_cover_without_overlap(
        len in 0usize..5_000,
        shards in 1usize..100,
        threads in 1usize..40,
    ) {
        let ranges = shard_prefix_ranges(len, shards);
        prop_assert_eq!(ranges.len(), shards);
        let mut prev = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, prev);
            prop_assert!(r.len() == len / shards || r.len() == len / shards + 1);
            prev = r.end;
        }
        prop_assert_eq!(prev, len);

        let workers = worker_set_ranges(len, threads);
        prop_assert_eq!(workers.len(), threads);
        let shard_starts = shard_prefix_ranges(len, SELECT_SHARDS);
        let mut prev = 0usize;
        for w in &workers {
            prop_assert_eq!(w.start, prev);
            prop_assert!(
                w.end == len || shard_starts.iter().any(|s| s.start == w.end),
                "worker boundary {} off-shard (len {}, threads {})",
                w.end, len, threads
            );
            prev = w.end;
        }
        prop_assert_eq!(prev, len);
    }
}
