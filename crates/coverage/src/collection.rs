//! Flat arena storage for node-set collections (the set `R` of RR sets),
//! and the [`SetsAccess`] seam the greedy solvers are generic over.

use std::cell::RefCell;
use tim_graph::NodeId;

/// Read-only access to an indexed collection of node sets over the
/// universe `0..universe()` — the seam between the greedy max-coverage
/// solvers and the storage backing.
///
/// Two backings implement it: the heap [`SetCollection`] and the
/// zero-copy [`MmapSets`](crate::MmapSets) view over a mapped `.timp` v2
/// pool file. The `*_indexed` solver entry points are generic over this
/// trait, so each backing gets its own monomorphized hot loops;
/// [`SetsView`](crate::SetsView) carries the dispatch to the call
/// boundary.
///
/// Every method is `&self` and the contract is strictly read-only —
/// which is why a `PROT_READ` file mapping can serve concurrent sharded
/// selections directly (the `Sync` supertrait is what the sharded
/// solver's scoped workers rely on).
pub trait SetsAccess: Sync {
    /// Universe size `n`; members are node ids in `0..n`.
    fn universe(&self) -> usize;

    /// Number of sets stored.
    fn len(&self) -> usize;

    /// True when no sets are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of members across all sets (arena length).
    fn total_members(&self) -> usize;

    /// The members of set `i`.
    fn set(&self, i: usize) -> &[NodeId];

    /// True when [`sets_containing`](Self::sets_containing) may be
    /// called. Mapped backings persist their index, so this is
    /// constant-true there; heap collections build it lazily.
    fn has_inverted_index(&self) -> bool;

    /// Ids of the sets containing `v`, ascending.
    ///
    /// # Panics
    /// May panic if the index is stale
    /// ([`has_inverted_index`](Self::has_inverted_index) is false) or
    /// `v` is outside the universe.
    fn sets_containing(&self, v: NodeId) -> &[u32];

    /// Number of sets containing `v` (its coverage count / hypergraph
    /// degree).
    ///
    /// # Panics
    /// As [`sets_containing`](Self::sets_containing).
    fn degree(&self, v: NodeId) -> usize {
        self.sets_containing(v).len()
    }
}

/// Reusable per-thread scratch for [`SetCollection::count_covered`]'s
/// index-backed path: a stamped bitmap over set ids. Bumping the stamp
/// "clears" the map in O(1); the vec itself is only rewritten on the
/// (practically unreachable) stamp wraparound, and grows monotonically to
/// the largest collection the thread has evaluated.
#[derive(Default)]
struct CoverScratch {
    stamp: u32,
    mark: Vec<u32>,
}

thread_local! {
    static COVER_SCRATCH: RefCell<CoverScratch> = RefCell::new(CoverScratch::default());
}

/// A collection of node sets over the universe `0..n`, stored as one flat
/// arena plus offsets, with a lazily built inverted index.
///
/// Appending a set is O(|set|); `memory_bytes` reports the arena footprint
/// that dominates TIM's memory profile (Figure 12).
#[derive(Debug, Clone)]
pub struct SetCollection {
    n: usize,
    /// Concatenated member lists.
    data: Vec<NodeId>,
    /// Set `i` occupies `data[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<usize>,
    /// Inverted index (node → ids of sets containing it), built on demand.
    inv_data: Vec<u32>,
    inv_offsets: Vec<usize>,
    inv_built_for: usize,
}

impl SetCollection {
    /// Creates an empty collection over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            data: Vec::new(),
            offsets: vec![0],
            inv_data: Vec::new(),
            inv_offsets: Vec::new(),
            inv_built_for: usize::MAX,
        }
    }

    /// Creates an empty collection with arena capacity for `total` members.
    pub fn with_capacity(n: usize, sets: usize, total: usize) -> Self {
        let mut c = Self::new(n);
        c.data.reserve(total);
        c.offsets.reserve(sets);
        c
    }

    /// Universe size.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of sets stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no sets are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of members across all sets (arena length).
    #[inline]
    pub fn total_members(&self) -> usize {
        self.data.len()
    }

    /// The members of set `i`.
    #[inline]
    pub fn set(&self, i: usize) -> &[NodeId] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// The flat member arena: all sets concatenated back to back. Together
    /// with [`raw_offsets`](Self::raw_offsets) this is the full persistent
    /// state of the collection (the inverted index is derived data), which
    /// is what `tim_engine` serializes into `.timp` pool files.
    #[inline]
    pub fn raw_data(&self) -> &[NodeId] {
        &self.data
    }

    /// Set boundaries into [`raw_data`](Self::raw_data): set `i` occupies
    /// `raw_data()[raw_offsets()[i]..raw_offsets()[i + 1]]`. Always has
    /// `len() + 1` entries starting at 0.
    #[inline]
    pub fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Rebuilds a collection from the arena layout exposed by
    /// [`raw_data`](Self::raw_data) / [`raw_offsets`](Self::raw_offsets),
    /// validating every structural invariant (used by pool deserialization
    /// on untrusted bytes).
    pub fn from_raw_parts(
        n: usize,
        data: Vec<NodeId>,
        offsets: Vec<usize>,
    ) -> Result<Self, String> {
        if offsets.first() != Some(&0) {
            return Err("offsets must start at 0".into());
        }
        if offsets.last() != Some(&data.len()) {
            return Err("offsets must end at the arena length".into());
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("offsets must be non-decreasing".into());
        }
        if let Some(&v) = data.iter().find(|&&v| v as usize >= n) {
            return Err(format!("member {v} out of universe 0..{n}"));
        }
        Ok(Self {
            n,
            data,
            offsets,
            inv_data: Vec::new(),
            inv_offsets: Vec::new(),
            inv_built_for: usize::MAX,
        })
    }

    /// Appends a set. Members must be in `[0, n)` (checked in debug builds);
    /// duplicates within one set are the caller's responsibility (RR
    /// samplers never produce them).
    pub fn push(&mut self, members: &[NodeId]) {
        debug_assert!(
            members.iter().all(|&v| (v as usize) < self.n),
            "set member out of universe"
        );
        self.data.extend_from_slice(members);
        self.offsets.push(self.data.len());
        self.inv_built_for = usize::MAX; // invalidate
    }

    /// Heap bytes held by the arena and index.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.data.capacity() * size_of::<NodeId>()
            + self.offsets.capacity() * size_of::<usize>()
            + self.inv_data.capacity() * size_of::<u32>()
            + self.inv_offsets.capacity() * size_of::<usize>()
    }

    /// True when the inverted index is built and matches the current set
    /// count. While this holds, every query the index serves
    /// ([`sets_containing`](Self::sets_containing),
    /// [`degree`](Self::degree), and the `*_indexed` greedy solvers) is
    /// `&self` — the basis for answering influence queries concurrently
    /// from a shared read-only pool.
    #[inline]
    pub fn has_inverted_index(&self) -> bool {
        self.inv_built_for == self.len()
    }

    /// Builds (or rebuilds) the inverted index if stale.
    pub fn ensure_inverted_index(&mut self) {
        if self.inv_built_for == self.len() {
            return;
        }
        let (inv_offsets, inv_data) = build_inverted_index(self.n, &self.data, &self.offsets);
        self.inv_offsets = inv_offsets;
        self.inv_data = inv_data;
        self.inv_built_for = self.len();
    }

    /// The built inverted index as its raw arrays `(inv_offsets,
    /// inv_data)`: node `v`'s posting list is
    /// `inv_data[inv_offsets[v]..inv_offsets[v + 1]]`, set ids strictly
    /// ascending within each list. `None` while the index is stale.
    ///
    /// This is what the `.timp` v2 pool format persists, so a mapped
    /// pool can skip the counting-sort rebuild entirely.
    pub fn raw_inverted(&self) -> Option<(&[usize], &[u32])> {
        self.has_inverted_index()
            .then_some((self.inv_offsets.as_slice(), self.inv_data.as_slice()))
    }

    /// Ids of the sets containing `v`.
    ///
    /// # Panics
    /// Panics if the inverted index has not been built
    /// ([`ensure_inverted_index`](Self::ensure_inverted_index)).
    #[inline]
    pub fn sets_containing(&self, v: NodeId) -> &[u32] {
        assert!(
            self.inv_built_for == self.len(),
            "inverted index is stale; call ensure_inverted_index first"
        );
        let v = v as usize;
        &self.inv_data[self.inv_offsets[v]..self.inv_offsets[v + 1]]
    }

    /// Number of sets containing `v` (its coverage count / hypergraph
    /// degree).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.sets_containing(v).len()
    }

    /// `F_R(S)`: the fraction of stored sets covered by (intersecting) the
    /// node set `seeds`. Returns 0 when the collection is empty.
    ///
    /// By Corollary 1, `n · F_R(S)` is an unbiased estimator of `E[I(S)]`.
    pub fn coverage_fraction(&self, seeds: &[NodeId]) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.count_covered(seeds) as f64 / self.len() as f64
    }

    /// Number of stored sets intersecting `seeds`.
    ///
    /// With the inverted index built this walks only the seeds' posting
    /// lists — O(Σ|sets_containing(seed)|) with a reusable per-thread
    /// scratch bitmap, which is what keeps protocol `eval`/`marginal`
    /// lines cheap against big warm pools. Without the index it falls
    /// back to scanning every member (this method never mutates the
    /// collection, so it cannot build the index itself).
    pub fn count_covered(&self, seeds: &[NodeId]) -> usize {
        if self.has_inverted_index() {
            return count_covered_indexed(self, seeds);
        }
        for &s in seeds {
            assert!((s as usize) < self.n, "seed {s} out of universe");
        }
        let mut in_seed = vec![false; self.n];
        for &s in seeds {
            in_seed[s as usize] = true;
        }
        (0..self.len())
            .filter(|&i| self.set(i).iter().any(|&v| in_seed[v as usize]))
            .count()
    }
}

impl SetsAccess for SetCollection {
    #[inline]
    fn universe(&self) -> usize {
        SetCollection::universe(self)
    }

    #[inline]
    fn len(&self) -> usize {
        SetCollection::len(self)
    }

    #[inline]
    fn total_members(&self) -> usize {
        SetCollection::total_members(self)
    }

    #[inline]
    fn set(&self, i: usize) -> &[NodeId] {
        SetCollection::set(self, i)
    }

    #[inline]
    fn has_inverted_index(&self) -> bool {
        SetCollection::has_inverted_index(self)
    }

    #[inline]
    fn sets_containing(&self, v: NodeId) -> &[u32] {
        SetCollection::sets_containing(self, v)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        SetCollection::degree(self, v)
    }
}

/// Counting-sort construction of the inverted index for an arena layout
/// (`data`/`offsets` as in [`SetCollection::raw_data`] /
/// [`SetCollection::raw_offsets`]): returns `(inv_offsets, inv_data)`
/// where node `v`'s posting list is
/// `inv_data[inv_offsets[v]..inv_offsets[v + 1]]`, with set ids strictly
/// ascending within each list (set ids are appended in increasing
/// order). Shared by [`SetCollection::ensure_inverted_index`] and the
/// `.timp` v2 pool writer in `tim_engine`, which persists the arrays so
/// a mapped pool never pays this build.
pub fn build_inverted_index(
    n: usize,
    data: &[NodeId],
    offsets: &[usize],
) -> (Vec<usize>, Vec<u32>) {
    let mut counts = vec![0usize; n + 1];
    for &v in data {
        counts[v as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let inv_offsets = counts.clone();
    let mut inv_data = vec![0u32; data.len()];
    let mut cursor = counts;
    for set_id in 0..offsets.len() - 1 {
        for &v in &data[offsets[set_id]..offsets[set_id + 1]] {
            inv_data[cursor[v as usize]] = set_id as u32;
            cursor[v as usize] += 1;
        }
    }
    (inv_offsets, inv_data)
}

/// Number of sets in `collection` intersecting `seeds`, walking the
/// seeds' posting lists with a reusable per-thread scratch bitmap — the
/// index-backed counting path shared by every [`SetsAccess`] backing
/// (see [`SetCollection::count_covered`] for the cost model).
///
/// # Panics
/// Panics if the inverted index is not built or a seed falls outside the
/// universe.
pub fn count_covered_indexed<C: SetsAccess>(collection: &C, seeds: &[NodeId]) -> usize {
    assert!(
        collection.has_inverted_index(),
        "inverted index is stale; call ensure_inverted_index first"
    );
    let n = collection.universe();
    for &s in seeds {
        assert!((s as usize) < n, "seed {s} out of universe");
    }
    COVER_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        if scratch.mark.len() < collection.len() {
            scratch.mark.resize(collection.len(), 0);
        }
        scratch.stamp = match scratch.stamp.checked_add(1) {
            Some(s) => s,
            None => {
                scratch.mark.fill(0);
                1
            }
        };
        let stamp = scratch.stamp;
        let mut count = 0usize;
        for &s in seeds {
            for &set_id in collection.sets_containing(s) {
                let mark = &mut scratch.mark[set_id as usize];
                if *mark != stamp {
                    *mark = stamp;
                    count += 1;
                }
            }
        }
        count
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SetCollection {
        let mut c = SetCollection::new(5);
        c.push(&[0, 1]);
        c.push(&[1, 2]);
        c.push(&[3]);
        c.push(&[1, 3, 4]);
        c
    }

    #[test]
    fn basic_accessors() {
        let c = sample();
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.universe(), 5);
        assert_eq!(c.total_members(), 8);
        assert_eq!(c.set(0), &[0, 1]);
        assert_eq!(c.set(3), &[1, 3, 4]);
    }

    #[test]
    fn inverted_index_matches_membership() {
        let mut c = sample();
        c.ensure_inverted_index();
        assert_eq!(c.sets_containing(1), &[0, 1, 3]);
        assert_eq!(c.sets_containing(3), &[2, 3]);
        assert_eq!(c.sets_containing(0), &[0]);
        assert_eq!(c.degree(1), 3);
        assert_eq!(c.degree(4), 1);
    }

    #[test]
    fn index_rebuilds_after_push() {
        let mut c = sample();
        c.ensure_inverted_index();
        c.push(&[0, 4]);
        c.ensure_inverted_index();
        assert_eq!(c.sets_containing(0), &[0, 4]);
        assert_eq!(c.sets_containing(4), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_index_access_panics() {
        let mut c = sample();
        c.ensure_inverted_index();
        c.push(&[2]);
        let _ = c.sets_containing(2);
    }

    #[test]
    fn raw_inverted_exposes_the_built_index() {
        let mut c = sample();
        assert!(c.raw_inverted().is_none(), "index not built yet");
        c.ensure_inverted_index();
        let (inv_offsets, inv_data) = c.raw_inverted().unwrap();
        assert_eq!(inv_offsets.len(), c.universe() + 1);
        assert_eq!(inv_data.len(), c.total_members());
        for v in 0..c.universe() {
            assert_eq!(
                &inv_data[inv_offsets[v]..inv_offsets[v + 1]],
                c.sets_containing(v as NodeId),
            );
        }
        c.push(&[2]);
        assert!(c.raw_inverted().is_none(), "push invalidates the index");
    }

    #[test]
    fn build_inverted_index_matches_ensure() {
        let mut c = sample();
        let (inv_offsets, inv_data) =
            build_inverted_index(c.universe(), c.raw_data(), c.raw_offsets());
        c.ensure_inverted_index();
        assert_eq!(c.raw_inverted(), Some((&inv_offsets[..], &inv_data[..])));
        // Posting lists come out strictly ascending — the invariant the
        // mapped backing validates at open.
        for v in 0..c.universe() {
            let list = &inv_data[inv_offsets[v]..inv_offsets[v + 1]];
            assert!(list.windows(2).all(|w| w[0] < w[1]), "node {v}: {list:?}");
        }
    }

    #[test]
    fn coverage_fraction_counts_intersections() {
        let c = sample();
        assert_eq!(c.coverage_fraction(&[1]), 0.75);
        assert_eq!(c.coverage_fraction(&[3]), 0.5);
        assert_eq!(c.coverage_fraction(&[1, 3]), 1.0);
        assert_eq!(c.coverage_fraction(&[]), 0.0);
        assert_eq!(c.count_covered(&[0]), 1);
    }

    #[test]
    fn empty_collection_has_zero_coverage() {
        let c = SetCollection::new(3);
        assert!(c.is_empty());
        assert_eq!(c.coverage_fraction(&[0, 1, 2]), 0.0);
    }

    #[test]
    fn empty_sets_are_allowed() {
        let mut c = SetCollection::new(3);
        c.push(&[]);
        c.push(&[1]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.set(0), &[] as &[NodeId]);
        assert_eq!(c.coverage_fraction(&[1]), 0.5);
    }

    #[test]
    fn memory_bytes_grows_with_content() {
        let mut c = SetCollection::new(100);
        let before = c.memory_bytes();
        for i in 0..50u32 {
            c.push(&[i, i + 1, i + 2]);
        }
        assert!(c.memory_bytes() > before);
    }

    #[test]
    fn raw_parts_round_trip() {
        let c = sample();
        let rebuilt = SetCollection::from_raw_parts(
            c.universe(),
            c.raw_data().to_vec(),
            c.raw_offsets().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.len(), c.len());
        for i in 0..c.len() {
            assert_eq!(rebuilt.set(i), c.set(i));
        }
    }

    #[test]
    fn from_raw_parts_rejects_malformed_layouts() {
        assert!(SetCollection::from_raw_parts(5, vec![0, 1], vec![1, 2]).is_err());
        assert!(SetCollection::from_raw_parts(5, vec![0, 1], vec![0, 1]).is_err());
        assert!(SetCollection::from_raw_parts(5, vec![0, 1], vec![0, 2, 1]).is_err());
        assert!(SetCollection::from_raw_parts(2, vec![0, 9], vec![0, 2]).is_err());
        assert!(SetCollection::from_raw_parts(5, vec![0, 1], vec![0, 1, 2]).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn coverage_with_bad_seed_panics() {
        let c = sample();
        c.coverage_fraction(&[10]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn indexed_coverage_with_bad_seed_panics() {
        let mut c = sample();
        c.ensure_inverted_index();
        c.coverage_fraction(&[10]);
    }

    /// Counts intersections the slow way, bypassing the index path — the
    /// oracle the index-backed fast path must agree with.
    fn count_covered_slow(c: &SetCollection, seeds: &[NodeId]) -> usize {
        (0..c.len())
            .filter(|&i| c.set(i).iter().any(|&v| seeds.contains(&v)))
            .count()
    }

    #[test]
    fn indexed_count_covered_matches_the_slow_path() {
        let mut c = sample();
        let seed_sets: &[&[NodeId]] = &[&[], &[0], &[1], &[1, 3], &[0, 1, 2, 3, 4], &[4, 2]];
        for &seeds in seed_sets {
            let slow = c.count_covered(seeds);
            assert_eq!(slow, count_covered_slow(&c, seeds), "oracle disagrees");
            c.ensure_inverted_index();
            assert_eq!(c.count_covered(seeds), slow, "seeds {seeds:?}");
            assert_eq!(
                c.coverage_fraction(seeds),
                slow as f64 / c.len() as f64,
                "seeds {seeds:?}"
            );
            // Drop back to the slow path for the next iteration.
            c.push(&[2]);
        }
    }

    #[test]
    fn indexed_count_covered_matches_on_random_instances() {
        use tim_rng::{RandomSource, Rng};
        let mut rng = Rng::seed_from_u64(0xC0FE);
        for _ in 0..30 {
            let n = 2 + rng.next_index(40);
            let mut c = SetCollection::new(n);
            for _ in 0..rng.next_index(80) {
                let size = rng.next_index(6);
                let mut m: Vec<NodeId> = (0..size).map(|_| rng.next_index(n) as u32).collect();
                m.sort_unstable();
                m.dedup();
                c.push(&m);
            }
            let mut seeds: Vec<NodeId> = (0..rng.next_index(n + 1))
                .map(|_| rng.next_index(n) as u32)
                .collect();
            seeds.sort_unstable();
            seeds.dedup();
            let slow = c.count_covered(&seeds);
            c.ensure_inverted_index();
            // Repeated calls exercise the scratch's stamp reuse.
            assert_eq!(c.count_covered(&seeds), slow);
            assert_eq!(c.count_covered(&seeds), slow);
        }
    }
}
