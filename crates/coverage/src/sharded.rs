//! Sharded greedy maximum coverage: saturate cores on one query.
//!
//! [`greedy_max_cover_sharded`] parallelizes the greedy solver across
//! worker threads while returning results **byte-identical** to
//! [`greedy_max_cover_indexed`](crate::greedy_max_cover_indexed) at any
//! thread count. The serial solver's lazy max-heap converges, each round,
//! to the node maximizing the `(current_gain, node_id)` tuple — ties
//! break toward the **largest** id — and pads with the **smallest**
//! unselected id once every remaining gain is zero. The sharded solver
//! makes that contract explicit and distributes the two phases of each
//! round:
//!
//! 1. **Vote** — every worker finds its contiguous node range's local
//!    `(gain, node)` maximum (and its smallest unselected id, for
//!    padding) and publishes a [`ShardVote`].
//! 2. **Merge + apply** — the votes merge through the deterministic
//!    reduction [`merge_votes`] (replicated on every worker: the merge is
//!    a pure function of the votes, so no coordinator is needed). Each
//!    worker then applies the chosen node to its own slice of the RR-set
//!    space — the sets are partitioned by the same balanced shard-prefix
//!    arithmetic as `tim_core::parallel::shard_layout`
//!    ([`shard_prefix_ranges`]) — marking newly covered sets and
//!    decrementing member gains atomically.
//!
//! *How* a worker finds its local argmax is the [`SelectStrategy`] knob:
//!
//! - **Eager** scans the full node range every round — O(n/threads) gain
//!   loads per worker per round, no state between rounds.
//! - **Lazy** keeps a CELF-style max-heap of `(cached_gain, node)` per
//!   worker. Coverage gain is submodular (gains only ever decrease), so a
//!   cached entry is an upper bound on the node's current gain and a
//!   popped entry whose cached value is still current is *exactly* the
//!   range argmax — the same staleness trick the serial solver plays.
//!   Between rounds workers exchange **dirty-node lists** — the only
//!   gains that change are members of sets newly covered by the last
//!   pick, computed for free during the apply phase's posting-list walk —
//!   so a worker whose cached vote's node is untouched re-publishes it
//!   without touching its heap at all.
//!
//! Either way the vote values are identical, so the merged pick — and
//! with it seeds, marginals, and covered counts — cannot depend on the
//! strategy. Determinism survives sharding because both halves of the
//! round are order-free: the merged argmax is a pure reduction over the
//! votes, and the gain updates are sums of decrements (commutative,
//! applied through atomics), so at the barrier between rounds every
//! worker observes exactly the gains the serial solver would hold. The
//! partition affects only *which worker* does the arithmetic, never its
//! result.

use crate::greedy::{greedy_max_cover_indexed_stats, CoverResult};
use crate::strategy::{EvalStats, SelectStrategy};
use crate::{SetCollection, SetsAccess};
use std::collections::BinaryHeap;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering::Relaxed};
use std::sync::{Barrier, Mutex};
use tim_graph::NodeId;

/// Number of balanced shards the RR-set space is partitioned into —
/// mirrors `tim_core::parallel::SHARDS` (pinned equal by a test there),
/// so selection workers own whole sampling shards.
pub const SELECT_SHARDS: usize = 64;

/// Splits `0..len` into `shards` contiguous balanced ranges: shard `i`
/// gets `len / shards`, plus one more when `i < len % shards` — the same
/// arithmetic as `tim_core::parallel::shard_layout`, so range `i` holds
/// exactly sampling shard `i`'s sets when `len` is a pool's θ.
pub fn shard_prefix_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards >= 1, "shards must be at least 1");
    let per = len / shards;
    let extra = len % shards;
    let mut start = 0usize;
    (0..shards)
        .map(|i| {
            let count = per + usize::from(i < extra);
            let r = start..start + count;
            start += count;
            r
        })
        .collect()
}

/// Partitions `0..len` set ids into `threads` contiguous ranges of whole
/// [`SELECT_SHARDS`] shards (`ceil(SELECT_SHARDS / threads)` shards per
/// worker, like `tim_core::parallel`'s sampling chunks). Workers beyond
/// the shard count own empty ranges.
pub fn worker_set_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    assert!(threads >= 1, "threads must be at least 1");
    let shards = shard_prefix_ranges(len, SELECT_SHARDS);
    let chunk = SELECT_SHARDS.div_ceil(threads);
    let bound = |shard: usize| {
        if shard >= SELECT_SHARDS {
            len
        } else {
            shards[shard].start
        }
    };
    (0..threads)
        .map(|t| bound(t * chunk)..bound((t + 1) * chunk))
        .collect()
}

/// The worker index owning node `u` under [`shard_prefix_ranges`]`(n,
/// threads)`, in O(1): the first `extra = n % threads` ranges hold `per +
/// 1` nodes, the rest `per`. Lazy workers use this to route each dirty
/// node to the one consumer whose range holds it.
fn node_owner(per: usize, extra: usize, u: usize) -> usize {
    debug_assert!(per >= 1, "threads are clamped to the universe");
    let cut = (per + 1) * extra;
    if u < cut {
        u / (per + 1)
    } else {
        extra + (u - cut) / per
    }
}

/// The ids of the sets containing `v` whose id falls in `range` — one
/// worker's slice of the apply phase. The inverted index stores set ids
/// ascending (heap builds produce them so; the mapped backing validates
/// it at open), so this is two binary searches on
/// [`SetsAccess::sets_containing`].
///
/// # Panics
/// Panics if the collection's inverted index is stale.
pub fn sets_in_range<'a, C: SetsAccess>(
    collection: &'a C,
    v: NodeId,
    range: &Range<usize>,
) -> &'a [u32] {
    let ids = collection.sets_containing(v);
    debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "index ids not sorted");
    let lo = ids.partition_point(|&s| (s as usize) < range.start);
    let hi = ids.partition_point(|&s| (s as usize) < range.end);
    &ids[lo..hi]
}

/// One worker's slice of the apply phase: covers `node`'s still-uncovered
/// sets within `sets` (a `covered[set_id - sets.start]` bitmap slice) and
/// decrements every member's gain atomically. When `dirty` is given it is
/// reset to the slice's **dirty nodes** — the distinct members whose gain
/// this call changed, sorted ascending — which is the invalidation set
/// the lazy strategy ships between workers: a node outside it cannot have
/// changed gain this round. Returns the newly covered count.
///
/// # Panics
/// Panics if the collection's inverted index is stale.
pub fn apply_pick_in_range<C: SetsAccess>(
    collection: &C,
    node: NodeId,
    sets: &Range<usize>,
    covered: &mut [bool],
    gain: &[AtomicUsize],
    mut dirty: Option<&mut Vec<NodeId>>,
) -> usize {
    if let Some(d) = dirty.as_deref_mut() {
        d.clear();
    }
    let mut newly = 0usize;
    for &set_id in sets_in_range(collection, node, sets) {
        let s = set_id as usize;
        if !covered[s - sets.start] {
            covered[s - sets.start] = true;
            newly += 1;
            for &u in collection.set(s) {
                gain[u as usize].fetch_sub(1, Relaxed);
                if let Some(d) = dirty.as_deref_mut() {
                    d.push(u);
                }
            }
        }
    }
    if let Some(d) = dirty {
        d.sort_unstable();
        d.dedup();
    }
    newly
}

/// One worker's report for one greedy round, over its node range.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardVote {
    /// The highest `(current_gain, node)` tuple among the range's
    /// unselected nodes with positive gain, if any.
    pub best: Option<(usize, NodeId)>,
    /// The smallest unselected node id in the range, if any.
    pub min_unselected: Option<NodeId>,
}

/// The merged outcome of one greedy round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundPick {
    /// A positive-gain argmax exists: select `node`, covering `gain`
    /// still-uncovered sets.
    Select {
        /// The chosen node.
        node: NodeId,
        /// Its marginal coverage count.
        gain: usize,
    },
    /// Every unselected node has gain 0: pad with the smallest
    /// unselected id, at marginal 0.
    Pad(NodeId),
    /// Every node is already selected.
    Exhausted,
}

/// The deterministic reduction at the heart of the sharded solver: the
/// serial argmax `max (gain, node)` (ties toward the **largest** id),
/// falling back to the smallest unselected id when every gain is zero —
/// exactly the serial lazy-heap's selection and padding order. Pure and
/// associative-by-construction: any vote partition merges to the same
/// pick.
pub fn merge_votes(votes: &[ShardVote]) -> RoundPick {
    let best = votes
        .iter()
        .filter_map(|v| v.best)
        .max_by_key(|&(gain, node)| (gain, node));
    if let Some((gain, node)) = best {
        return RoundPick::Select { node, gain };
    }
    match votes.iter().filter_map(|v| v.min_unselected).min() {
        Some(node) => RoundPick::Pad(node),
        None => RoundPick::Exhausted,
    }
}

/// Per-worker mailbox the barrier-phased rounds communicate through.
/// Plain slots written before / read after a [`Barrier`] (which provides
/// the happens-before edges), so `Relaxed` suffices throughout.
struct WorkerSlot {
    /// Vote: best local gain (0 = no candidate) and its node.
    best_gain: AtomicUsize,
    best_node: AtomicU32,
    /// Vote: smallest unselected node id (`u32::MAX` = none).
    min_unselected: AtomicU32,
    /// Apply: sets newly covered in this worker's set range this round.
    newly: AtomicUsize,
}

/// [`greedy_max_cover_sharded_indexed`] over a `&mut` collection,
/// building the inverted index first (the exact analogue of
/// [`greedy_max_cover`](crate::greedy_max_cover)). Runs the **eager**
/// strategy; see [`greedy_max_cover_sharded_with`] for the knob.
pub fn greedy_max_cover_sharded(
    collection: &mut SetCollection,
    k: usize,
    threads: usize,
) -> CoverResult {
    greedy_max_cover_sharded_with(collection, k, threads, SelectStrategy::Eager)
}

/// [`greedy_max_cover_sharded_indexed_with`] over a `&mut` collection,
/// building the inverted index first.
pub fn greedy_max_cover_sharded_with(
    collection: &mut SetCollection,
    k: usize,
    threads: usize,
    strategy: SelectStrategy,
) -> CoverResult {
    collection.ensure_inverted_index();
    greedy_max_cover_sharded_indexed_with(collection, k, threads, strategy)
}

/// Sharded greedy max-coverage over a shared collection with a built
/// inverted index, using the **eager** full-scan strategy (PR 8's
/// original solver). Byte-identical to [`greedy_max_cover_indexed`](crate::greedy_max_cover_indexed) —
/// seeds, marginals, and covered count — at **any** `threads` value;
/// `threads <= 1` runs the serial solver directly.
///
/// # Panics
/// Panics if the inverted index is stale
/// ([`SetsAccess::has_inverted_index`] is false).
pub fn greedy_max_cover_sharded_indexed<C: SetsAccess>(
    collection: &C,
    k: usize,
    threads: usize,
) -> CoverResult {
    greedy_max_cover_sharded_indexed_with(collection, k, threads, SelectStrategy::Eager)
}

/// Sharded greedy max-coverage with an explicit [`SelectStrategy`].
/// Strategy and thread count may only ever change latency — the result
/// stays byte-identical to [`greedy_max_cover_indexed`](crate::greedy_max_cover_indexed).
///
/// # Panics
/// Panics if the inverted index is stale
/// ([`SetsAccess::has_inverted_index`] is false).
pub fn greedy_max_cover_sharded_indexed_with<C: SetsAccess>(
    collection: &C,
    k: usize,
    threads: usize,
    strategy: SelectStrategy,
) -> CoverResult {
    greedy_max_cover_sharded_indexed_stats(collection, k, threads, strategy).0
}

/// [`greedy_max_cover_sharded_indexed_with`] plus the run's [`EvalStats`]
/// (candidate evaluations, heap re-pushes, and dirty-set sizes summed
/// over workers). `threads <= 1` and `k == 0` delegate to the serial
/// instrumented solver, so the stats stay comparable across the whole
/// `select_threads` range.
///
/// # Panics
/// Panics if the inverted index is stale
/// ([`SetsAccess::has_inverted_index`] is false).
pub fn greedy_max_cover_sharded_indexed_stats<C: SetsAccess>(
    collection: &C,
    k: usize,
    threads: usize,
    strategy: SelectStrategy,
) -> (CoverResult, EvalStats) {
    assert!(
        collection.has_inverted_index(),
        "inverted index is stale; call ensure_inverted_index first"
    );
    let n = collection.universe();
    let k = k.min(n);
    // More workers than nodes would leave some with nothing to vote on.
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || k == 0 {
        return greedy_max_cover_indexed_stats(collection, k);
    }
    let lazy = strategy.is_lazy();

    let node_ranges = shard_prefix_ranges(n, threads);
    let set_ranges = worker_set_ranges(collection.len(), threads);
    let (per, extra) = (n / threads, n % threads);
    let gain: Vec<AtomicUsize> = (0..n as NodeId)
        .map(|v| AtomicUsize::new(collection.degree(v)))
        .collect();
    let slots: Vec<WorkerSlot> = (0..threads)
        .map(|_| WorkerSlot {
            best_gain: AtomicUsize::new(0),
            best_node: AtomicU32::new(u32::MAX),
            min_unselected: AtomicU32::new(u32::MAX),
            newly: AtomicUsize::new(0),
        })
        .collect();
    // Dirty mailboxes, one per (producer, consumer) pair: producer `p`
    // appends into `dirty[p * threads + c]` during its apply phase, the
    // single consumer `c` drains it during its next vote phase. The round
    // barriers order every write before every read (and every drain
    // before the next write), so a plain Mutex per cell suffices and is
    // never contended.
    let dirty: Vec<Mutex<Vec<NodeId>>> = (0..threads * threads)
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    let barrier = Barrier::new(threads);
    let total_stats = Mutex::new(EvalStats::default());

    let mut result = CoverResult {
        seeds: Vec::with_capacity(k),
        marginal: Vec::with_capacity(k),
        covered: 0,
    };

    // One worker body, run by `threads - 1` scoped threads plus the
    // caller's thread (worker 0, which also records the rounds).
    let run_worker = |t: usize, result: Option<&mut CoverResult>| {
        let nodes = node_ranges[t].clone();
        let sets = set_ranges[t].clone();
        let mut selected = vec![false; nodes.len()];
        let mut covered = vec![false; sets.len()];
        let mut stats = EvalStats::default();
        let mut recorder = result;

        // Lazy-strategy state: the CELF heap over this worker's range,
        // the vote carried from the previous round (`None` = not yet
        // computed, `Some(None)` = no positive-gain candidate — reusable
        // forever, since gains never increase), the monotone padding
        // cursor, and reusable dirty buffers.
        let mut heap: BinaryHeap<(usize, NodeId)> = if lazy {
            nodes
                .clone()
                .filter(|&v| collection.degree(v as NodeId) > 0)
                .map(|v| (collection.degree(v as NodeId), v as NodeId))
                .collect()
        } else {
            BinaryHeap::new()
        };
        let mut cached: Option<Option<(usize, NodeId)>> = None;
        let mut pad_cursor = nodes.start;
        let mut dirty_local: Vec<NodeId> = Vec::new();
        let mut outbox: Vec<Vec<NodeId>> = vec![Vec::new(); if lazy { threads } else { 0 }];

        for _round in 0..k {
            // Vote phase: local argmax and local padding candidate.
            let (best, min_unselected) = if lazy {
                // Drain incoming dirt from the previous apply phase. The
                // cached vote survives only if its node's gain is
                // untouched (gains elsewhere in the range can only have
                // decreased, so they cannot overtake it).
                let mut cached_node_dirty = false;
                for p in 0..threads {
                    let mut cell = dirty[p * threads + t].lock().unwrap();
                    // A cell holds one producer's single sorted append
                    // per round (drained here before the next), so a
                    // binary search suffices.
                    if let Some(Some((_, v))) = cached {
                        if cell.binary_search(&v).is_ok() {
                            cached_node_dirty = true;
                        }
                    }
                    cell.clear();
                }
                let reusable = match cached {
                    Some(Some((_, v))) => !cached_node_dirty && !selected[v as usize - nodes.start],
                    Some(None) => true,
                    None => false,
                };
                let best = if reusable {
                    cached.unwrap()
                } else {
                    // CELF lazy pops: a popped entry whose cached gain is
                    // still current is the exact range argmax, because
                    // every other entry's cached gain is an upper bound
                    // on its current gain (submodularity).
                    let found = loop {
                        match heap.pop() {
                            Some((stored, v)) => {
                                if selected[v as usize - nodes.start] {
                                    continue;
                                }
                                stats.evals += 1;
                                let current = gain[v as usize].load(Relaxed);
                                if stored == current {
                                    // Fresh: keep the entry for later
                                    // rounds and vote with it.
                                    heap.push((current, v));
                                    break Some((current, v));
                                }
                                if current > 0 {
                                    heap.push((current, v));
                                    stats.repushes += 1;
                                }
                            }
                            None => break None,
                        }
                    };
                    cached = Some(found);
                    found
                };
                while pad_cursor < nodes.end && selected[pad_cursor - nodes.start] {
                    pad_cursor += 1;
                }
                let min = if pad_cursor < nodes.end {
                    pad_cursor as NodeId
                } else {
                    u32::MAX
                };
                (best, min)
            } else {
                let mut best: Option<(usize, NodeId)> = None;
                let mut min_unselected = u32::MAX;
                for v in nodes.clone() {
                    if selected[v - nodes.start] {
                        continue;
                    }
                    let v = v as NodeId;
                    if min_unselected == u32::MAX {
                        min_unselected = v;
                    }
                    stats.evals += 1;
                    let g = gain[v as usize].load(Relaxed);
                    if g > 0 && best.is_none_or(|b| (g, v) > b) {
                        best = Some((g, v));
                    }
                }
                (best, min_unselected)
            };
            let slot = &slots[t];
            let (bg, bv) = best.unwrap_or((0, u32::MAX));
            slot.best_gain.store(bg, Relaxed);
            slot.best_node.store(bv, Relaxed);
            slot.min_unselected.store(min_unselected, Relaxed);
            barrier.wait();

            // Merge phase, replicated: every worker decodes the same
            // votes and reduces them identically.
            let votes: Vec<ShardVote> = slots
                .iter()
                .map(|s| {
                    let g = s.best_gain.load(Relaxed);
                    let min = s.min_unselected.load(Relaxed);
                    ShardVote {
                        best: (g > 0).then(|| (g, s.best_node.load(Relaxed))),
                        min_unselected: (min != u32::MAX).then_some(min),
                    }
                })
                .collect();
            let pick = merge_votes(&votes);

            // Apply phase: mark the pick selected in its owner's range,
            // and cover the chosen node's sets within this worker's
            // set-id slice, decrementing member gains atomically. Lazy
            // workers also route each dirty node to its owner's mailbox.
            let chosen = match pick {
                RoundPick::Select { node, .. } => {
                    let newly = apply_pick_in_range(
                        collection,
                        node,
                        &sets,
                        &mut covered,
                        &gain,
                        lazy.then_some(&mut dirty_local),
                    );
                    slot.newly.store(newly, Relaxed);
                    if lazy {
                        stats.dirty += dirty_local.len();
                        for &u in &dirty_local {
                            outbox[node_owner(per, extra, u as usize)].push(u);
                        }
                        for (c, buf) in outbox.iter_mut().enumerate() {
                            if !buf.is_empty() {
                                dirty[t * threads + c].lock().unwrap().append(buf);
                            }
                        }
                    }
                    node
                }
                RoundPick::Pad(node) => node,
                // k is clamped to n and every round selects a distinct
                // node, so rounds never outrun the universe.
                RoundPick::Exhausted => unreachable!("fewer rounds than nodes"),
            };
            if nodes.contains(&(chosen as usize)) {
                selected[chosen as usize - nodes.start] = true;
            }
            barrier.wait();

            // Record phase (worker 0 only): the merged marginal is the
            // sum of the per-worker newly-covered counts — the other
            // workers are already voting on the next round, which cannot
            // touch the `newly` slots before the next barrier.
            if let Some(rec) = recorder.as_deref_mut() {
                match pick {
                    RoundPick::Select { node, .. } => {
                        let newly: usize = slots.iter().map(|s| s.newly.load(Relaxed)).sum();
                        debug_assert_eq!(gain[node as usize].load(Relaxed), 0);
                        rec.covered += newly;
                        rec.seeds.push(node);
                        rec.marginal.push(newly);
                    }
                    RoundPick::Pad(node) => {
                        rec.seeds.push(node);
                        rec.marginal.push(0);
                    }
                    RoundPick::Exhausted => unreachable!(),
                }
            }
        }
        stats.rounds = k;
        total_stats.lock().unwrap().absorb(&stats);
    };

    std::thread::scope(|scope| {
        for t in 1..threads {
            let worker = &run_worker;
            scope.spawn(move || worker(t, None));
        }
        run_worker(0, Some(&mut result));
    });
    let stats = total_stats.into_inner().unwrap();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_max_cover, greedy_max_cover_indexed};
    use tim_rng::{RandomSource, Rng};

    fn collection(sets: &[&[NodeId]], n: usize) -> SetCollection {
        let mut c = SetCollection::new(n);
        for s in sets {
            c.push(s);
        }
        c
    }

    fn random_collection(rng: &mut Rng, n: usize, sets: usize, max_size: usize) -> SetCollection {
        let mut c = SetCollection::new(n);
        for _ in 0..sets {
            let size = rng.next_index(max_size + 1);
            let mut members: Vec<NodeId> = (0..size).map(|_| rng.next_index(n) as u32).collect();
            members.sort_unstable();
            members.dedup();
            c.push(&members);
        }
        c
    }

    const STRATEGIES: [SelectStrategy; 3] = [
        SelectStrategy::Eager,
        SelectStrategy::Lazy,
        SelectStrategy::Auto,
    ];

    #[test]
    fn shard_prefix_ranges_are_balanced_and_cover() {
        for (len, shards) in [(0, 4), (1, 4), (7, 3), (64, 64), (100, 64), (5, 8)] {
            let ranges = shard_prefix_ranges(len, shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            let mut total = 0;
            let mut prev_end = 0;
            for r in &ranges {
                assert_eq!(r.start, prev_end, "ranges must be contiguous");
                prev_end = r.end;
                total += r.len();
                assert!(r.len() == len / shards || r.len() == len / shards + 1);
            }
            assert_eq!(total, len);
        }
    }

    #[test]
    fn node_owner_matches_the_prefix_ranges() {
        for (n, threads) in [(1, 1), (7, 3), (8, 3), (64, 8), (100, 7), (5, 5)] {
            let ranges = shard_prefix_ranges(n, threads);
            let (per, extra) = (n / threads, n % threads);
            for u in 0..n {
                let want = ranges.iter().position(|r| r.contains(&u)).unwrap();
                assert_eq!(
                    node_owner(per, extra, u),
                    want,
                    "n={n} threads={threads} u={u}"
                );
            }
        }
    }

    #[test]
    fn worker_set_ranges_cover_and_respect_shard_boundaries() {
        for (len, threads) in [(0, 2), (100, 1), (100, 2), (100, 8), (100, 100), (3, 4)] {
            let ranges = worker_set_ranges(len, threads);
            assert_eq!(ranges.len(), threads);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            let shards = shard_prefix_ranges(len, SELECT_SHARDS);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                // Worker boundaries always land on shard boundaries.
                assert!(
                    w[0].end == len || shards.iter().any(|s| s.start == w[0].end),
                    "len={len} threads={threads}: boundary {} off-shard",
                    w[0].end
                );
            }
        }
    }

    #[test]
    fn sets_in_range_partitions_the_membership_list() {
        let mut c = collection(&[&[1], &[0, 1], &[1, 2], &[2], &[1]], 3);
        c.ensure_inverted_index();
        assert_eq!(c.sets_containing(1), &[0, 1, 2, 4]);
        assert_eq!(sets_in_range(&c, 1, &(0..2)), &[0, 1]);
        assert_eq!(sets_in_range(&c, 1, &(2..5)), &[2, 4]);
        assert_eq!(sets_in_range(&c, 1, &(3..4)), &[] as &[u32]);
        assert_eq!(sets_in_range(&c, 1, &(0..5)), &[0, 1, 2, 4]);
        // Any partition of 0..len splits the list without loss.
        for mid in 0..=5 {
            let left = sets_in_range(&c, 1, &(0..mid)).len();
            let right = sets_in_range(&c, 1, &(mid..5)).len();
            assert_eq!(left + right, 4);
        }
    }

    #[test]
    fn apply_pick_collects_exactly_the_changed_gains() {
        let mut c = collection(&[&[1], &[0, 1], &[1, 2], &[2], &[1]], 3);
        c.ensure_inverted_index();
        let gain: Vec<AtomicUsize> = (0..3).map(|v| AtomicUsize::new(c.degree(v))).collect();
        let before: Vec<usize> = gain.iter().map(|g| g.load(Relaxed)).collect();
        let mut covered = vec![false; c.len()];
        // Pre-cover set 1 so node 0 must stay clean.
        covered[1] = true;
        let mut dirty = vec![99u32]; // stale content must be cleared
        let newly = apply_pick_in_range(&c, 1, &(0..5), &mut covered, &gain, Some(&mut dirty));
        assert_eq!(newly, 3, "sets 0, 2, 4 newly covered");
        assert_eq!(dirty, vec![1, 2], "members of newly covered sets only");
        for v in 0..3u32 {
            let changed = gain[v as usize].load(Relaxed) != before[v as usize];
            assert_eq!(changed, dirty.contains(&v), "node {v}");
        }
    }

    #[test]
    fn merge_votes_reduces_like_the_serial_heap() {
        // Max (gain, node), ties toward the larger id.
        let pick = merge_votes(&[
            ShardVote {
                best: Some((3, 7)),
                min_unselected: Some(0),
            },
            ShardVote {
                best: Some((3, 9)),
                min_unselected: Some(8),
            },
            ShardVote {
                best: Some((2, 11)),
                min_unselected: None,
            },
        ]);
        assert_eq!(pick, RoundPick::Select { node: 9, gain: 3 });
        // All-zero gains pad with the globally smallest unselected id.
        let pick = merge_votes(&[
            ShardVote {
                best: None,
                min_unselected: Some(5),
            },
            ShardVote {
                best: None,
                min_unselected: Some(2),
            },
        ]);
        assert_eq!(pick, RoundPick::Pad(2));
        // Nothing left anywhere.
        assert_eq!(merge_votes(&[ShardVote::default()]), RoundPick::Exhausted);
        assert_eq!(merge_votes(&[]), RoundPick::Exhausted);
    }

    #[test]
    fn sharded_matches_serial_on_fixed_instances() {
        let cases: &[(&[&[NodeId]], usize, usize)] = &[
            (&[&[9, 0], &[9, 1], &[9, 2], &[3]], 10, 2),
            (&[&[0, 1], &[1, 2], &[2, 0], &[3, 1]], 4, 4),
            (&[&[0]], 5, 3),                // padding rounds
            (&[&[0, 1, 2], &[2, 3]], 5, 5), // covers everything then pads
        ];
        for &(sets, n, k) in cases {
            let mut c = collection(sets, n);
            let want = greedy_max_cover(&mut c, k);
            for threads in [1, 2, 3, 4, 8, 64, 100] {
                for strategy in STRATEGIES {
                    let got = greedy_max_cover_sharded_indexed_with(&c, k, threads, strategy);
                    assert_eq!(got, want, "threads={threads} {strategy} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn sharded_matches_serial_on_random_instances() {
        let mut rng = Rng::seed_from_u64(0x5EED);
        for trial in 0..30 {
            let n = 2 + rng.next_index(60);
            let sets = rng.next_index(120);
            let mut c = random_collection(&mut rng, n, sets, 6);
            let k = 1 + rng.next_index(n);
            let want = greedy_max_cover(&mut c, k);
            for threads in [2, 3, 4, 7, 8] {
                for strategy in STRATEGIES {
                    let got = greedy_max_cover_sharded_indexed_with(&c, k, threads, strategy);
                    assert_eq!(got, want, "trial={trial} threads={threads} {strategy}");
                }
            }
        }
    }

    #[test]
    fn lazy_evaluates_fewer_candidates_than_eager() {
        // A skewed instance with many rounds: the eager scan pays the
        // full range every round, the lazy heap a handful of pops.
        let mut rng = Rng::seed_from_u64(0xCE1F);
        let mut c = random_collection(&mut rng, 400, 2_000, 8);
        c.ensure_inverted_index();
        let (eager, es) = greedy_max_cover_sharded_indexed_stats(&c, 40, 4, SelectStrategy::Eager);
        let (lazy, ls) = greedy_max_cover_sharded_indexed_stats(&c, 40, 4, SelectStrategy::Lazy);
        assert_eq!(eager, lazy);
        assert_eq!(es.rounds, 40);
        assert_eq!(ls.rounds, 40);
        assert_eq!(es.repushes, 0, "the eager scan keeps no heap");
        assert_eq!(es.dirty, 0, "the eager scan tracks no dirt");
        assert!(ls.dirty > 0, "selected rounds must report dirty nodes");
        assert!(
            ls.evals * 5 <= es.evals,
            "lazy {} vs eager {} evaluations",
            ls.evals,
            es.evals
        );
    }

    #[test]
    fn mut_entry_point_builds_the_index() {
        let mut c = collection(&[&[0, 1], &[1, 2]], 3);
        assert!(!c.has_inverted_index());
        let got = greedy_max_cover_sharded(&mut c, 2, 4);
        assert!(c.has_inverted_index());
        assert_eq!(got, greedy_max_cover_indexed(&c, 2));
        let mut c2 = collection(&[&[0, 1], &[1, 2]], 3);
        let lazy = greedy_max_cover_sharded_with(&mut c2, 2, 4, SelectStrategy::Lazy);
        assert_eq!(lazy, got);
    }

    #[test]
    fn empty_collection_pads_identically() {
        let mut c = SetCollection::new(4);
        c.ensure_inverted_index();
        let want = greedy_max_cover_indexed(&c, 3);
        for threads in [2, 4] {
            for strategy in STRATEGIES {
                assert_eq!(
                    greedy_max_cover_sharded_indexed_with(&c, 3, threads, strategy),
                    want
                );
            }
        }
        assert_eq!(want.seeds, vec![0, 1, 2], "padding picks smallest ids");
    }

    #[test]
    fn k_larger_than_universe_is_clamped() {
        let mut c = collection(&[&[0, 1]], 2);
        c.ensure_inverted_index();
        let got = greedy_max_cover_sharded_indexed(&c, 10, 4);
        assert_eq!(got.seeds.len(), 2);
        assert_eq!(got, greedy_max_cover_indexed(&c, 10));
    }

    #[test]
    fn single_thread_stats_match_the_serial_solver() {
        let mut c = collection(&[&[9, 0], &[9, 1], &[9, 2], &[3], &[1, 2]], 10);
        c.ensure_inverted_index();
        let want = greedy_max_cover_indexed_stats(&c, 3);
        for strategy in STRATEGIES {
            let got = greedy_max_cover_sharded_indexed_stats(&c, 3, 1, strategy);
            assert_eq!(got, want, "{strategy}");
        }
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_index_panics() {
        let c = collection(&[&[0, 1]], 3);
        let _ = greedy_max_cover_sharded_indexed(&c, 1, 2);
    }
}
