//! Set storage and greedy maximum coverage.
//!
//! Step 2 of RIS/TIM is a **maximum coverage** instance (§2.3): given the
//! sampled RR sets, pick `k` nodes covering as many sets as possible. The
//! classic greedy algorithm achieves the `(1 − 1/e)` factor that, combined
//! with the concentration argument of Lemma 3, yields TIM's
//! `(1 − 1/e − ε)` guarantee (Theorem 1).
//!
//! - [`SetCollection`] — a flat arena of node sets over a universe
//!   `0..n`, with an inverted index (node → sets containing it). The arena
//!   layout is what makes TIM's node-selection phase memory-bound rather
//!   than allocator-bound; its size is exactly what the paper's Figure 12
//!   measures.
//! - [`greedy_max_cover`] — lazy-heap greedy (CELF-style; exact for
//!   submodular coverage).
//! - [`greedy_max_cover_bucket`] — bucket-queue greedy with the linear-time
//!   bound of \[3\]'s Step 2.
//! - [`greedy_max_cover_sharded`] — the lazy-heap contract parallelized
//!   across worker threads (see [`sharded`]), **byte-identical** to
//!   [`greedy_max_cover_indexed`] at any thread count. A
//!   [`SelectStrategy`] knob picks how each worker finds its local argmax
//!   — an eager full-range scan or a CELF-style lazy heap with dirty-node
//!   invalidation — without changing a single answer byte; [`EvalStats`]
//!   counts the algorithmic work either way.
//!
//! The heap and bucket solvers return identical coverage values
//! (tie-breaking may differ); the criterion bench `max_cover` compares
//! their constants.
//!
//! The `&mut` in the solver entry points exists only to build the lazy
//! inverted index; once [`SetCollection::has_inverted_index`] holds, the
//! `*_indexed` variants solve the same instance through a shared `&`
//! reference — which is what lets `tim_engine`/`tim_server` answer many
//! queries concurrently against one immutable pool.
//!
//! The `*_indexed` solvers are generic over the [`SetsAccess`] backing
//! seam: [`SetCollection`] serves from the heap, [`MmapSets`] serves
//! zero-copy from a mapped `.timp` v2 pool file whose inverted index was
//! persisted at spill time, and [`SetsStore`]/[`SetsView`] carry the
//! dispatch (mirroring `tim_graph::GraphStore`/`CsrView`). Selection
//! never mutates a collection, so a read-only mapping answers the same
//! queries — byte-identically — without loading the pool onto the heap.

mod collection;
mod greedy;
mod mmap_sets;
pub mod sharded;
mod store;
mod strategy;

pub use collection::{build_inverted_index, count_covered_indexed, SetCollection, SetsAccess};
pub use greedy::{
    greedy_max_cover, greedy_max_cover_bucket, greedy_max_cover_bucket_indexed,
    greedy_max_cover_indexed, greedy_max_cover_indexed_stats, CoverResult,
};
pub use mmap_sets::{MmapSets, MmapSetsLayout, SETS_SECTION_COUNT, SETS_SECTION_NAMES};
pub use sharded::{
    greedy_max_cover_sharded, greedy_max_cover_sharded_indexed,
    greedy_max_cover_sharded_indexed_stats, greedy_max_cover_sharded_indexed_with,
    greedy_max_cover_sharded_with,
};
pub use store::{SetsStore, SetsView};
pub use strategy::{EvalStats, SelectStrategy};
