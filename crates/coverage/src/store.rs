//! Backing-agnostic handles over heap and mapped set collections.
//!
//! The pool-side analogue of `tim_graph`'s `GraphStore`/`CsrView`:
//! [`SetsStore`] owns a collection with either backing, [`SetsView`]
//! borrows one for the duration of an operation. Code that merely reads
//! takes a view (and either dispatches per call through the trait impl
//! or matches once to hand the concrete backing to a generic solver);
//! code that must mutate — pool growth — calls
//! [`SetsStore::make_heap`], which detaches from a read-only mapping by
//! materializing a heap copy.

use crate::collection::{SetCollection, SetsAccess};
use crate::mmap_sets::MmapSets;
use std::sync::Arc;
use tim_graph::NodeId;

#[derive(Debug, Clone)]
enum Inner {
    Heap(SetCollection),
    Mmap(Arc<MmapSets>),
}

/// Owner of an RR-set collection served from the heap or from a mapped
/// `.timp` v2 pool file, presenting one API either way.
///
/// The mapped arm is an `Arc` because a mapping is shared, not cloned:
/// `Clone` on a mapped store is a refcount bump, while `Clone` on a
/// heap store copies the arenas (exactly like cloning the collection
/// itself).
#[derive(Debug, Clone)]
pub struct SetsStore {
    inner: Inner,
}

impl SetsStore {
    /// Wraps a heap collection.
    pub fn heap(collection: SetCollection) -> Self {
        Self {
            inner: Inner::Heap(collection),
        }
    }

    /// Wraps a mapped collection.
    pub fn mapped(sets: Arc<MmapSets>) -> Self {
        Self {
            inner: Inner::Mmap(sets),
        }
    }

    /// A borrowed view for the duration of one operation.
    #[inline]
    pub fn view(&self) -> SetsView<'_> {
        match &self.inner {
            Inner::Heap(c) => SetsView::Heap(c),
            Inner::Mmap(m) => SetsView::Mmap(m),
        }
    }

    /// True when the backing is a file mapping.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self.inner, Inner::Mmap(_))
    }

    /// The heap collection, if that is the current backing.
    pub fn as_heap(&self) -> Option<&SetCollection> {
        match &self.inner {
            Inner::Heap(c) => Some(c),
            Inner::Mmap(_) => None,
        }
    }

    /// The mapped collection, if that is the current backing.
    pub fn as_mapped(&self) -> Option<&Arc<MmapSets>> {
        match &self.inner {
            Inner::Heap(_) => None,
            Inner::Mmap(m) => Some(m),
        }
    }

    /// Mutable access to the heap backing, converting a mapped backing
    /// into a heap collection in place first (a full materialization:
    /// arena copy plus index rebuild). This is how pool growth detaches
    /// from an immutable mapping before appending fresh sets.
    pub fn make_heap(&mut self) -> &mut SetCollection {
        if let Inner::Mmap(m) = &self.inner {
            self.inner = Inner::Heap(m.to_collection());
        }
        match &mut self.inner {
            Inner::Heap(c) => c,
            Inner::Mmap(_) => unreachable!("converted above"),
        }
    }

    /// Builds the heap backing's inverted index if stale; mapped
    /// backings persist theirs, so this is a no-op there.
    pub fn ensure_inverted_index(&mut self) {
        if let Inner::Heap(c) = &mut self.inner {
            c.ensure_inverted_index();
        }
    }

    /// True when [`SetsAccess::sets_containing`] may be served.
    pub fn has_inverted_index(&self) -> bool {
        match &self.inner {
            Inner::Heap(c) => c.has_inverted_index(),
            Inner::Mmap(_) => true,
        }
    }

    /// Universe size.
    #[inline]
    pub fn universe(&self) -> usize {
        self.view().universe()
    }

    /// Number of sets stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.view().len()
    }

    /// True when no sets are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.view().is_empty()
    }

    /// Total number of members across all sets.
    #[inline]
    pub fn total_members(&self) -> usize {
        self.view().total_members()
    }

    /// Number of stored sets intersecting `seeds`.
    pub fn count_covered(&self, seeds: &[NodeId]) -> usize {
        self.view().count_covered(seeds)
    }

    /// `F_R(S)`: the fraction of stored sets covered by `seeds`.
    pub fn coverage_fraction(&self, seeds: &[NodeId]) -> f64 {
        self.view().coverage_fraction(seeds)
    }

    /// Heap bytes held by the backing (a mapped backing holds its
    /// arenas in the page cache, not on the heap — see
    /// [`mapped_bytes`](Self::mapped_bytes)).
    pub fn memory_bytes(&self) -> usize {
        match &self.inner {
            Inner::Heap(c) => c.memory_bytes(),
            Inner::Mmap(_) => 0,
        }
    }

    /// Bytes of the underlying file mapping (0 for a heap backing).
    pub fn mapped_bytes(&self) -> usize {
        match &self.inner {
            Inner::Heap(_) => 0,
            Inner::Mmap(m) => m.mapped_bytes(),
        }
    }
}

impl From<SetCollection> for SetsStore {
    fn from(collection: SetCollection) -> Self {
        Self::heap(collection)
    }
}

impl From<Arc<MmapSets>> for SetsStore {
    fn from(sets: Arc<MmapSets>) -> Self {
        Self::mapped(sets)
    }
}

impl From<MmapSets> for SetsStore {
    fn from(sets: MmapSets) -> Self {
        Self::mapped(Arc::new(sets))
    }
}

/// A borrowed view of either backing.
///
/// Implements [`SetsAccess`] by dispatching per call — fine for
/// metadata and one-shot lookups. Hot paths (a whole greedy selection)
/// should instead match once and hand the concrete backing to the
/// generic solver, so the inner loops monomorphize:
///
/// ```
/// use tim_coverage::{greedy_max_cover_indexed, SetsView};
/// # use tim_coverage::SetCollection;
/// # let mut c = SetCollection::new(3);
/// # c.push(&[0, 1]);
/// # c.ensure_inverted_index();
/// # let view = SetsView::Heap(&c);
/// let cover = match view {
///     SetsView::Heap(c) => greedy_max_cover_indexed(c, 2),
///     SetsView::Mmap(m) => greedy_max_cover_indexed(m, 2),
/// };
/// assert_eq!(cover.seeds.len(), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub enum SetsView<'a> {
    /// Heap arenas.
    Heap(&'a SetCollection),
    /// A mapped `.timp` v2 file.
    Mmap(&'a MmapSets),
}

impl SetsView<'_> {
    /// Number of stored sets intersecting `seeds` (monomorphized per
    /// backing; requires the heap backing's index to be built).
    pub fn count_covered(&self, seeds: &[NodeId]) -> usize {
        match self {
            SetsView::Heap(c) => c.count_covered(seeds),
            SetsView::Mmap(m) => m.count_covered(seeds),
        }
    }

    /// `F_R(S)`: the fraction of stored sets covered by `seeds`.
    pub fn coverage_fraction(&self, seeds: &[NodeId]) -> f64 {
        match self {
            SetsView::Heap(c) => c.coverage_fraction(seeds),
            SetsView::Mmap(m) => m.coverage_fraction(seeds),
        }
    }
}

impl SetsAccess for SetsView<'_> {
    #[inline]
    fn universe(&self) -> usize {
        match self {
            SetsView::Heap(c) => c.universe(),
            SetsView::Mmap(m) => m.universe(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            SetsView::Heap(c) => c.len(),
            SetsView::Mmap(m) => m.len(),
        }
    }

    #[inline]
    fn total_members(&self) -> usize {
        match self {
            SetsView::Heap(c) => c.total_members(),
            SetsView::Mmap(m) => m.total_members(),
        }
    }

    #[inline]
    fn set(&self, i: usize) -> &[NodeId] {
        match self {
            SetsView::Heap(c) => c.set(i),
            SetsView::Mmap(m) => m.set(i),
        }
    }

    #[inline]
    fn has_inverted_index(&self) -> bool {
        match self {
            SetsView::Heap(c) => c.has_inverted_index(),
            SetsView::Mmap(_) => true,
        }
    }

    #[inline]
    fn sets_containing(&self, v: NodeId) -> &[u32] {
        match self {
            SetsView::Heap(c) => c.sets_containing(v),
            SetsView::Mmap(m) => m.sets_containing(v),
        }
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        match self {
            SetsView::Heap(c) => c.degree(v),
            SetsView::Mmap(m) => m.degree(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SetCollection {
        let mut c = SetCollection::new(5);
        c.push(&[0, 1]);
        c.push(&[1, 2]);
        c.push(&[3]);
        c.ensure_inverted_index();
        c
    }

    #[test]
    fn heap_store_delegates() {
        let c = sample();
        let store = SetsStore::from(c.clone());
        assert!(!store.is_mapped());
        assert!(store.as_heap().is_some());
        assert!(store.as_mapped().is_none());
        assert_eq!(store.len(), 3);
        assert_eq!(store.universe(), 5);
        assert_eq!(store.total_members(), 5);
        assert!(store.has_inverted_index());
        assert_eq!(store.count_covered(&[1]), c.count_covered(&[1]));
        assert_eq!(store.coverage_fraction(&[3]), c.coverage_fraction(&[3]));
        assert!(store.memory_bytes() > 0);
        assert_eq!(store.mapped_bytes(), 0);
        match store.view() {
            SetsView::Heap(h) => assert_eq!(h.len(), 3),
            SetsView::Mmap(_) => panic!("heap store must yield a heap view"),
        }
    }

    #[test]
    fn make_heap_is_identity_on_heap_stores() {
        let mut store = SetsStore::heap(sample());
        store.make_heap().push(&[4]);
        assert_eq!(store.len(), 4);
        assert!(!store.has_inverted_index(), "push invalidates the index");
        store.ensure_inverted_index();
        assert!(store.has_inverted_index());
    }

    #[test]
    fn view_trait_dispatch_matches_inherent_access() {
        let c = sample();
        let view = SetsView::Heap(&c);
        assert_eq!(SetsAccess::len(&view), 3);
        assert_eq!(SetsAccess::universe(&view), 5);
        assert_eq!(SetsAccess::set(&view, 0), &[0, 1]);
        assert_eq!(SetsAccess::sets_containing(&view, 1), &[0, 1]);
        assert_eq!(SetsAccess::degree(&view, 1), 2);
        assert!(SetsAccess::has_inverted_index(&view));
        assert!(!SetsAccess::is_empty(&view));
    }
}
