//! Zero-copy RR-set collections served straight from mapped pool files.
//!
//! [`MmapSets`] is the out-of-core backing behind the [`SetsAccess`]
//! seam: the four arrays a [`SetCollection`](crate::SetCollection) holds
//! on the heap (set offsets, member arena, inverted-index offsets,
//! inverted-index arena), read as naturally-aligned slices out of a
//! read-only [`tim_graph::Mmap`]. The `.timp` v2 format persists the
//! inverted index precisely so this type never has to build one — open
//! costs a handful of sequential validation scans, and the first greedy
//! selection walks posting lists straight out of the page cache.
//!
//! The *format* (magic, header, section table) is owned by `tim_engine`;
//! this module only consumes the parsed [`MmapSetsLayout`] — resolved
//! section positions, counts, and recorded digests. Validation splits
//! along what each check actually protects:
//!
//! - **bounds** are checked eagerly in [`MmapSets::from_map`] (offset
//!   arrays monotone and ending at the arena length, members below the
//!   universe, posting entries below the set count — each a single
//!   vectorizable scan), so every accessor and every solver index is in
//!   bounds afterwards: a hostile file cannot make a mapped collection
//!   read out of range, only answer wrongly
//! - **answer integrity** ([`MmapSets::verify`]): the semantic
//!   cross-checks (posting lists strictly ascending, per-node lengths
//!   matching the arena's occurrence counts) plus the full per-section
//!   FNV-1a pass. Deferred so opening a multi-gigabyte pool stays
//!   cheap; callers that serve answers from the mapping (the server's
//!   pool cache does) run it once per restore.

use crate::collection::{count_covered_indexed, SetCollection, SetsAccess};
use tim_graph::snapshot::Fnv1a;
use tim_graph::{Mmap, NodeId};

/// Number of sections a mapped pool exposes, in canonical order: set
/// offsets, member arena, inverted-index offsets, inverted-index arena.
pub const SETS_SECTION_COUNT: usize = 4;

/// Human-readable section names, indexed like
/// [`MmapSetsLayout::sections`].
pub const SETS_SECTION_NAMES: [&str; SETS_SECTION_COUNT] =
    ["offsets", "data", "inv_offsets", "inv_data"];

/// Where the four sections of a mapped pool live, as resolved by the
/// format parser (`tim_engine`'s `.timp` v2 header and section table).
///
/// Byte offsets index the whole mapping; digests are the section
/// table's recorded FNV-1a values, checked lazily by
/// [`MmapSets::verify`]. Section byte lengths are implied by the counts
/// (`u64` offsets arrays, `u32` arenas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmapSetsLayout {
    /// Universe size `n`; members are node ids in `0..n`.
    pub universe: usize,
    /// Number of sets.
    pub num_sets: usize,
    /// Total members across all sets (arena length).
    pub total_members: usize,
    /// Byte offset of each section in canonical order: `offsets`,
    /// `data`, `inv_offsets`, `inv_data`.
    pub sections: [usize; SETS_SECTION_COUNT],
    /// Expected FNV-1a digest of each section, same order.
    pub section_fnv: [u64; SETS_SECTION_COUNT],
}

impl MmapSetsLayout {
    /// Byte length of section `i` implied by the counts, or `None` on
    /// arithmetic overflow (a hostile header).
    pub fn section_len(&self, i: usize) -> Option<u64> {
        let count = match i {
            0 => (self.num_sets as u64).checked_add(1)?,
            1 | 3 => self.total_members as u64,
            2 => (self.universe as u64).checked_add(1)?,
            _ => return None,
        };
        let width = if i == 0 || i == 2 { 8 } else { 4 };
        count.checked_mul(width)
    }
}

/// An RR-set collection served zero-copy from a mapped `.timp` v2 pool
/// file — the out-of-core sibling of [`SetCollection`](crate::SetCollection),
/// with the inverted index read from disk instead of rebuilt.
///
/// Construction ([`from_map`](MmapSets::from_map)) validates every
/// bound, so the [`SetsAccess`] accessors are panic-free for in-range
/// arguments and the greedy solvers can run over the mapping directly;
/// selection never mutates the collection, which is why a `PROT_READ`
/// mapping suffices. Whether the mapping also *means* what it says —
/// index consistent with the arena, digests intact — is
/// [`verify`](MmapSets::verify)'s deferred question. Growth is the one
/// operation a mapping cannot serve —
/// [`to_collection`](MmapSets::to_collection) materializes a heap copy
/// for it.
#[derive(Debug)]
pub struct MmapSets {
    map: Mmap,
    n: usize,
    num_sets: usize,
    total_members: usize,
    /// Validated byte offset of each section in the mapping.
    sections: [usize; SETS_SECTION_COUNT],
    /// Expected digest of each section, checked by `verify`.
    section_fnv: [u64; SETS_SECTION_COUNT],
}

impl MmapSets {
    /// Wraps a mapping whose section positions the format parser has
    /// resolved, validating the bounds and alignment of the four arrays
    /// so every later accessor is in range. Errors describe the first
    /// violation; the mapping is dropped (unmapped) on failure.
    pub fn from_map(map: Mmap, layout: &MmapSetsLayout) -> Result<MmapSets, String> {
        if layout.num_sets > u32::MAX as usize {
            return Err(format!(
                "set count {} exceeds the u32 set-id space",
                layout.num_sets
            ));
        }
        for (i, &name) in SETS_SECTION_NAMES.iter().enumerate() {
            let len = layout
                .section_len(i)
                .ok_or_else(|| format!("{name} section length overflows"))?;
            let start = layout.sections[i] as u64;
            let end = start
                .checked_add(len)
                .ok_or_else(|| format!("{name} section end overflows"))?;
            if end > map.len() as u64 {
                return Err(format!(
                    "{name} section [{start}, {end}) leaves the {}-byte mapping",
                    map.len()
                ));
            }
            let align = if i == 0 || i == 2 { 8 } else { 4 };
            if layout.sections[i] % align != 0 {
                return Err(format!(
                    "{name} section offset {start} is not {align}-aligned"
                ));
            }
        }
        let sets = MmapSets {
            map,
            n: layout.universe,
            num_sets: layout.num_sets,
            total_members: layout.total_members,
            sections: layout.sections,
            section_fnv: layout.section_fnv,
        };
        sets.validate_structure()?;
        // The scans above were sequential; selection access (posting
        // lists, then member lists) hops around both arenas.
        sets.map.advise_random();
        Ok(sets)
    }

    /// The bounds scans that make every later accessor in-bounds:
    /// offset arrays monotone and ending at the arena length, members
    /// below the universe, posting entries below the set count. Each is
    /// a single branch-free pass the compiler vectorizes (`windows`
    /// comparisons, slice `max`), so opening a pool costs a few
    /// sequential sweeps — there is no per-node work here.
    ///
    /// These are the memory-safety half of validation: afterwards a
    /// hostile file can still *lie* (posting lists out of order or
    /// inconsistent with the arena) but never push an accessor or a
    /// solver index out of range. The lying is what
    /// [`validate_semantics`](MmapSets::validate_semantics) — run by
    /// `verify` — catches.
    fn validate_structure(&self) -> Result<(), String> {
        let total = self.total_members as u64;
        let offsets = self.raw_offsets();
        if offsets.first() != Some(&0) {
            return Err("set offsets must start at 0".into());
        }
        if offsets.last() != Some(&total) {
            return Err(format!("set offsets must end at the arena length {total}"));
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("set offsets must be non-decreasing".into());
        }
        if let Some(&v) = self.raw_data().iter().max() {
            if v as usize >= self.n {
                return Err(format!("member {v} out of universe 0..{}", self.n));
            }
        }
        let inv_offsets = self.raw_inv_offsets();
        if inv_offsets.first() != Some(&0) {
            return Err("inverted offsets must start at 0".into());
        }
        if inv_offsets.last() != Some(&total) {
            return Err(format!(
                "inverted offsets must end at the arena length {total}"
            ));
        }
        if !inv_offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("inverted offsets must be non-decreasing".into());
        }
        if let Some(&s) = self.raw_inv_data().iter().max() {
            if s as usize >= self.num_sets {
                return Err(format!(
                    "posting entry {s} out of set range 0..{}",
                    self.num_sets
                ));
            }
        }
        Ok(())
    }

    /// The answer-integrity half of validation, deferred into
    /// [`verify`](MmapSets::verify): posting lists strictly ascending
    /// per node, and each node's posting-list length equal to its
    /// occurrence count in the member arena — the two arenas must
    /// describe the same incidence sizes, or greedy coverage counts go
    /// wrong. Costs one occurrence-counting pass over the member arena
    /// plus one per-node posting walk; every index it takes is already
    /// bounded by [`validate_structure`](MmapSets::validate_structure).
    fn validate_semantics(&self) -> Result<(), String> {
        let mut counts = vec![0u64; self.n];
        for &v in self.raw_data() {
            counts[v as usize] += 1;
        }
        let inv_offsets = self.raw_inv_offsets();
        let inv_data = self.raw_inv_data();
        for v in 0..self.n {
            let (lo, hi) = (inv_offsets[v] as usize, inv_offsets[v + 1] as usize);
            if (hi - lo) as u64 != counts[v] {
                return Err(format!(
                    "node {v} posting list holds {} entries but occurs {} times in the arena",
                    hi - lo,
                    counts[v]
                ));
            }
            let list = &inv_data[lo..hi];
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("node {v} posting list is not strictly ascending"));
            }
        }
        Ok(())
    }

    /// Byte length of section `i` (validated at construction).
    #[inline]
    fn section_len(&self, i: usize) -> usize {
        let count = match i {
            0 => self.num_sets + 1,
            2 => self.n + 1,
            _ => self.total_members,
        };
        count * if i == 0 || i == 2 { 8 } else { 4 }
    }

    /// Set boundaries as stored: `u64` entries, `len() + 1` of them.
    #[inline]
    pub fn raw_offsets(&self) -> &[u64] {
        self.map.u64s(self.sections[0], self.num_sets + 1)
    }

    /// The flat member arena (all sets concatenated back to back).
    #[inline]
    pub fn raw_data(&self) -> &[NodeId] {
        self.map.u32s(self.sections[1], self.total_members)
    }

    /// Inverted-index boundaries: `universe() + 1` `u64` entries.
    #[inline]
    pub fn raw_inv_offsets(&self) -> &[u64] {
        self.map.u64s(self.sections[2], self.n + 1)
    }

    /// The flat posting arena (set ids, ascending per node).
    #[inline]
    pub fn raw_inv_data(&self) -> &[u32] {
        self.map.u32s(self.sections[3], self.total_members)
    }

    /// Universe size.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of sets stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_sets
    }

    /// True when no sets are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_sets == 0
    }

    /// Total number of members across all sets.
    #[inline]
    pub fn total_members(&self) -> usize {
        self.total_members
    }

    /// The members of set `i`.
    #[inline]
    pub fn set(&self, i: usize) -> &[NodeId] {
        let offsets = self.raw_offsets();
        &self.raw_data()[offsets[i] as usize..offsets[i + 1] as usize]
    }

    /// Ids of the sets containing `v`, ascending — read straight from
    /// the persisted index.
    #[inline]
    pub fn sets_containing(&self, v: NodeId) -> &[u32] {
        let v = v as usize;
        let inv = self.raw_inv_offsets();
        &self.raw_inv_data()[inv[v] as usize..inv[v + 1] as usize]
    }

    /// Number of sets containing `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.sets_containing(v).len()
    }

    /// Number of stored sets intersecting `seeds` (the mapped analogue
    /// of [`SetCollection::count_covered`]; the index is always
    /// available here).
    pub fn count_covered(&self, seeds: &[NodeId]) -> usize {
        count_covered_indexed(self, seeds)
    }

    /// `F_R(S)`: the fraction of stored sets covered by `seeds`.
    pub fn coverage_fraction(&self, seeds: &[NodeId]) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.count_covered(seeds) as f64 / self.len() as f64
    }

    /// Bytes of the underlying mapping (the whole pool file). The heap
    /// footprint of a mapped collection is a few words; this is the
    /// figure that corresponds to a heap collection's
    /// [`memory_bytes`](crate::SetCollection::memory_bytes).
    #[inline]
    pub fn mapped_bytes(&self) -> usize {
        self.map.len()
    }

    /// The deferred answer-integrity audit: the semantic cross-checks
    /// (posting lists ascending and consistent with the member arena's
    /// occurrence counts), then every section's FNV-1a digest against
    /// the values the format parser recorded, streaming each section
    /// once. [`from_map`](MmapSets::from_map) validates only what
    /// memory safety needs; a caller that will *serve answers* from the
    /// mapping runs this once first — the server's pool cache does so
    /// on every restore.
    pub fn verify(&self) -> Result<(), String> {
        self.validate_semantics()?;
        for (i, &name) in SETS_SECTION_NAMES.iter().enumerate() {
            let start = self.sections[i];
            let mut hasher = Fnv1a::new();
            hasher.update(&self.map.bytes()[start..start + self.section_len(i)]);
            let got = hasher.finish();
            if got != self.section_fnv[i] {
                return Err(format!(
                    "{name} section checksum mismatch: file says {:#018x}, content hashes to {got:#018x}",
                    self.section_fnv[i]
                ));
            }
        }
        Ok(())
    }

    /// Materializes a heap [`SetCollection`] with a freshly built
    /// inverted index. This is the escape hatch pool *growth* takes:
    /// the mapping is immutable, so resampling to a larger θ copies to
    /// the heap, appends there, and later spills a fresh file.
    pub fn to_collection(&self) -> SetCollection {
        let offsets: Vec<usize> = self.raw_offsets().iter().map(|&o| o as usize).collect();
        let mut c = SetCollection::from_raw_parts(self.n, self.raw_data().to_vec(), offsets)
            .expect("structure validated at open");
        c.ensure_inverted_index();
        c
    }
}

impl SetsAccess for MmapSets {
    #[inline]
    fn universe(&self) -> usize {
        MmapSets::universe(self)
    }

    #[inline]
    fn len(&self) -> usize {
        MmapSets::len(self)
    }

    #[inline]
    fn total_members(&self) -> usize {
        MmapSets::total_members(self)
    }

    #[inline]
    fn set(&self, i: usize) -> &[NodeId] {
        MmapSets::set(self, i)
    }

    #[inline]
    fn has_inverted_index(&self) -> bool {
        true
    }

    #[inline]
    fn sets_containing(&self, v: NodeId) -> &[u32] {
        MmapSets::sets_containing(self, v)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        MmapSets::degree(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_max_cover_bucket_indexed, greedy_max_cover_indexed};
    use crate::sharded::greedy_max_cover_sharded_indexed;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "tim_mmap_sets_{}_{tag}_{seq}.bin",
            std::process::id()
        ))
    }

    /// Serializes the collection's four arrays into consecutive
    /// 64-aligned sections (no header — tests drive `MmapSets`
    /// directly with a hand-built layout; the real `.timp` framing
    /// lives in `tim_engine`).
    fn write_sections(c: &mut SetCollection, tag: &str) -> (PathBuf, MmapSetsLayout) {
        c.ensure_inverted_index();
        let (inv_offsets, inv_data) = c.raw_inverted().unwrap();
        let mut bytes = Vec::new();
        let mut sections = [0usize; SETS_SECTION_COUNT];
        let mut section_fnv = [0u64; SETS_SECTION_COUNT];
        let parts: [Vec<u8>; SETS_SECTION_COUNT] = [
            c.raw_offsets()
                .iter()
                .flat_map(|&o| (o as u64).to_le_bytes())
                .collect(),
            c.raw_data().iter().flat_map(|&v| v.to_le_bytes()).collect(),
            inv_offsets
                .iter()
                .flat_map(|&o| (o as u64).to_le_bytes())
                .collect(),
            inv_data.iter().flat_map(|&s| s.to_le_bytes()).collect(),
        ];
        for (i, part) in parts.iter().enumerate() {
            while bytes.len() % 64 != 0 {
                bytes.push(0);
            }
            sections[i] = bytes.len();
            let mut hasher = Fnv1a::new();
            hasher.update(part);
            section_fnv[i] = hasher.finish();
            bytes.extend_from_slice(part);
        }
        let path = temp_path(tag);
        std::fs::write(&path, &bytes).unwrap();
        (
            path,
            MmapSetsLayout {
                universe: c.universe(),
                num_sets: c.len(),
                total_members: c.total_members(),
                sections,
                section_fnv,
            },
        )
    }

    fn sample() -> SetCollection {
        let mut c = SetCollection::new(6);
        c.push(&[0, 1]);
        c.push(&[1, 2]);
        c.push(&[3]);
        c.push(&[1, 3, 4]);
        c.push(&[]);
        c
    }

    fn open(path: &PathBuf, layout: &MmapSetsLayout) -> Result<MmapSets, String> {
        let map = Mmap::open(path).expect("map test file");
        MmapSets::from_map(map, layout)
    }

    #[test]
    fn mapped_accessors_match_the_heap_collection() {
        let mut c = sample();
        let (path, layout) = write_sections(&mut c, "roundtrip");
        let m = open(&path, &layout).unwrap();
        assert_eq!(m.universe(), c.universe());
        assert_eq!(m.len(), c.len());
        assert_eq!(m.total_members(), c.total_members());
        assert!(m.has_inverted_index());
        for i in 0..c.len() {
            assert_eq!(m.set(i), c.set(i), "set {i}");
        }
        for v in 0..c.universe() as NodeId {
            assert_eq!(m.sets_containing(v), c.sets_containing(v), "node {v}");
            assert_eq!(m.degree(v), c.degree(v));
        }
        assert_eq!(m.count_covered(&[1, 3]), c.count_covered(&[1, 3]));
        assert_eq!(m.coverage_fraction(&[1]), c.coverage_fraction(&[1]));
        assert!(m.mapped_bytes() > 0);
        m.verify().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solvers_agree_across_backings() {
        use tim_rng::{RandomSource, Rng};
        let mut rng = Rng::seed_from_u64(0x7007);
        for trial in 0..10 {
            let n = 3 + rng.next_index(40);
            let mut c = SetCollection::new(n);
            for _ in 0..rng.next_index(90) {
                let size = rng.next_index(5);
                let mut members: Vec<NodeId> =
                    (0..size).map(|_| rng.next_index(n) as u32).collect();
                members.sort_unstable();
                members.dedup();
                c.push(&members);
            }
            let (path, layout) = write_sections(&mut c, "solvers");
            let m = open(&path, &layout).unwrap();
            let k = 1 + rng.next_index(6);
            assert_eq!(
                greedy_max_cover_indexed(&m, k),
                greedy_max_cover_indexed(&c, k),
                "trial {trial} heap solver"
            );
            assert_eq!(
                greedy_max_cover_bucket_indexed(&m, k),
                greedy_max_cover_bucket_indexed(&c, k),
                "trial {trial} bucket solver"
            );
            for threads in [2, 4] {
                assert_eq!(
                    greedy_max_cover_sharded_indexed(&m, k, threads),
                    greedy_max_cover_sharded_indexed(&c, k, threads),
                    "trial {trial} sharded x{threads}"
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn empty_collection_maps() {
        let mut c = SetCollection::new(4);
        let (path, layout) = write_sections(&mut c, "empty");
        let m = open(&path, &layout).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.coverage_fraction(&[0, 1]), 0.0);
        assert_eq!(greedy_max_cover_indexed(&m, 2).seeds, vec![0, 1]);
        m.verify().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn to_collection_round_trips() {
        let mut c = sample();
        let (path, layout) = write_sections(&mut c, "materialize");
        let m = open(&path, &layout).unwrap();
        let back = m.to_collection();
        assert_eq!(back.len(), c.len());
        assert!(back.has_inverted_index());
        for i in 0..c.len() {
            assert_eq!(back.set(i), c.set(i));
        }
        for v in 0..c.universe() as NodeId {
            assert_eq!(back.sets_containing(v), c.sets_containing(v));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hostile_layouts_error_cleanly() {
        let mut c = sample();
        let (path, layout) = write_sections(&mut c, "hostile");

        // Section past EOF.
        let mut bad = layout;
        bad.sections[3] = 1 << 20;
        assert!(open(&path, &bad).unwrap_err().contains("leaves"));

        // Misaligned u64 section.
        let mut bad = layout;
        bad.sections[2] += 4;
        assert!(open(&path, &bad).unwrap_err().contains("aligned"));

        // Counts that overflow the section arithmetic.
        let mut bad = layout;
        bad.num_sets = usize::MAX - 1;
        let err = open(&path, &bad).unwrap_err();
        assert!(
            err.contains("overflow") || err.contains("u32 set-id space"),
            "{err}"
        );

        // Universe shrunk below the stored members.
        let mut bad = layout;
        bad.universe = 2;
        // inv_offsets length changes with the universe, so point the
        // parse at a consistent prefix: the member check fires first.
        assert!(open(&path, &bad).unwrap_err().contains("out of universe"));

        // Swapping the two offset sections breaks monotonicity/ends.
        let mut bad = layout;
        bad.sections.swap(0, 2);
        assert!(open(&path, &bad).is_err());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inconsistent_inverted_index_is_rejected() {
        let mut c = sample();
        let (path, layout) = write_sections(&mut c, "badinv");
        let mut bytes = std::fs::read(&path).unwrap();

        // Point node 0's posting list at a set id past the count: an
        // out-of-bounds solver index, so the *open* bounds scan fires.
        let off = layout.sections[3];
        let huge = (layout.num_sets as u32 + 7).to_le_bytes();
        bytes[off..off + 4].copy_from_slice(&huge);
        let tampered = temp_path("badinv_id");
        std::fs::write(&tampered, &bytes).unwrap();
        let err = open(&tampered, &layout).unwrap_err();
        assert!(err.contains("out of set range"), "{err}");
        std::fs::remove_file(&tampered).ok();

        // Shift one inverted boundary: every index stays in range (so
        // open accepts the mapping) but some node's list length stops
        // matching its arena occurrence count — a lie about *answers*,
        // which is verify's half of the contract.
        let mut bytes = std::fs::read(&path).unwrap();
        let off = layout.sections[2] + 8; // inv_offsets[1]
        let skew = (u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) + 1).to_le_bytes();
        bytes[off..off + 8].copy_from_slice(&skew);
        let tampered = temp_path("badinv_len");
        std::fs::write(&tampered, &bytes).unwrap();
        let m = open(&tampered, &layout).expect("bounds-valid mapping opens");
        let err = m.verify().unwrap_err();
        assert!(err.contains("occurs") || err.contains("ascending"), "{err}");
        std::fs::remove_file(&tampered).ok();

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_catches_silent_bit_flips() {
        let mut c = sample();
        let (path, layout) = write_sections(&mut c, "bitflip");
        let mut bytes = std::fs::read(&path).unwrap();
        // Inter-section padding is outside both the structural scans
        // and the digests: corrupting it changes nothing.
        if layout.sections[1] > 0 {
            bytes[layout.sections[1] - 1] ^= 0xFF;
        }
        let padded = temp_path("bitflip_pad");
        std::fs::write(&padded, &bytes).unwrap();
        let m = open(&padded, &layout).unwrap();
        m.verify().unwrap();
        std::fs::remove_file(&padded).ok();

        // A digest mismatch in the layout is reported by verify() even
        // though open() (structure only) succeeds.
        let mut bad = layout;
        bad.section_fnv[1] ^= 1;
        let m = open(&path, &bad).unwrap();
        let err = m.verify().unwrap_err();
        assert!(err.contains("data section checksum mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
