//! Greedy maximum-coverage solvers (Algorithm 1, lines 3–7).
//!
//! Maximum coverage is NP-hard; the greedy algorithm that repeatedly picks
//! the node covering the most still-uncovered sets is a `(1 − 1/e)`
//! approximation (Vazirani \[29\]), and that factor is what Theorem 1's
//! guarantee rests on.
//!
//! Two implementations with identical greedy semantics:
//!
//! - [`greedy_max_cover`]: a lazy max-heap. Coverage gain is submodular
//!   (marginal counts only decrease), so re-evaluating a popped entry whose
//!   stored gain is stale and pushing it back is exact — the same trick
//!   CELF applies to spread estimation.
//! - [`greedy_max_cover_bucket`]: bucket queue indexed by count, giving the
//!   O(Σ|R|) linear-time bound quoted in §3.1.

use crate::strategy::EvalStats;
use crate::{SetCollection, SetsAccess};
use std::collections::BinaryHeap;
use tim_graph::NodeId;

/// Result of a greedy max-coverage run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverResult {
    /// The selected nodes, in selection order.
    pub seeds: Vec<NodeId>,
    /// Marginal number of sets newly covered by each selected node.
    pub marginal: Vec<usize>,
    /// Total number of sets covered by `seeds`.
    pub covered: usize,
}

impl CoverResult {
    /// Fraction of the collection's sets covered by the selection.
    pub fn coverage_fraction(&self, total_sets: usize) -> f64 {
        if total_sets == 0 {
            0.0
        } else {
            self.covered as f64 / total_sets as f64
        }
    }
}

/// Greedy max-coverage with a lazy max-heap.
///
/// Picks `k` distinct nodes (padding with arbitrary unselected nodes once
/// every set is covered, so the result always has `min(k, n)` seeds, as
/// Algorithm 1 always returns a size-`k` set).
///
/// ```
/// use tim_coverage::{greedy_max_cover, SetCollection};
///
/// let mut sets = SetCollection::new(5);
/// sets.push(&[0, 1]);
/// sets.push(&[0, 2]);
/// sets.push(&[3]);
/// let cover = greedy_max_cover(&mut sets, 2);
/// assert_eq!(cover.seeds[0], 0); // covers two sets
/// assert_eq!(cover.covered, 3);
/// ```
pub fn greedy_max_cover(collection: &mut SetCollection, k: usize) -> CoverResult {
    collection.ensure_inverted_index();
    greedy_max_cover_indexed(collection, k)
}

/// [`greedy_max_cover`] over a shared (`&`) collection whose inverted
/// index is already built — generic over the [`SetsAccess`] backing, so
/// the same monomorphized loop serves heap collections and mapped
/// `.timp` v2 pools.
///
/// The solver itself never mutates the collection — the `&mut` in
/// [`greedy_max_cover`] exists only to build the lazy index. Hot query
/// paths that keep the index warm (e.g. `tim_engine`'s shared pools
/// serving concurrent readers) call this variant directly.
///
/// # Panics
/// Panics if the inverted index is stale
/// ([`SetsAccess::has_inverted_index`] is false).
pub fn greedy_max_cover_indexed<C: SetsAccess>(collection: &C, k: usize) -> CoverResult {
    greedy_max_cover_indexed_stats(collection, k).0
}

/// [`greedy_max_cover_indexed`] with its [`EvalStats`] work counters:
/// `evals` counts heap pops whose gain was compared against the current
/// table, `repushes` the stale entries refiled. The `CoverResult` is the
/// same object the uninstrumented entry point returns.
///
/// # Panics
/// Panics if the inverted index is stale
/// ([`SetsAccess::has_inverted_index`] is false).
pub fn greedy_max_cover_indexed_stats<C: SetsAccess>(
    collection: &C,
    k: usize,
) -> (CoverResult, EvalStats) {
    assert!(
        collection.has_inverted_index(),
        "inverted index is stale; call ensure_inverted_index first"
    );
    let n = collection.universe();
    let k = k.min(n);

    let mut covered = vec![false; collection.len()];
    // Current marginal gain per node; starts at the hypergraph degree.
    let mut gain: Vec<usize> = (0..n as NodeId).map(|v| collection.degree(v)).collect();
    let mut selected = vec![false; n];

    // Heap of (stored_gain, node); stale entries are detected by comparing
    // against `gain[node]` and reinserted with the current value.
    let mut heap: BinaryHeap<(usize, NodeId)> = (0..n as NodeId)
        .filter(|&v| gain[v as usize] > 0)
        .map(|v| (gain[v as usize], v))
        .collect();

    let mut result = CoverResult {
        seeds: Vec::with_capacity(k),
        marginal: Vec::with_capacity(k),
        covered: 0,
    };
    let mut stats = EvalStats::default();

    while result.seeds.len() < k {
        stats.rounds += 1;
        let best = loop {
            match heap.pop() {
                Some((stored, v)) => {
                    if selected[v as usize] {
                        continue;
                    }
                    stats.evals += 1;
                    let current = gain[v as usize];
                    if stored == current {
                        break Some(v);
                    }
                    if current > 0 {
                        heap.push((current, v));
                        stats.repushes += 1;
                    }
                }
                None => break None,
            }
        };
        match best {
            Some(v) => {
                selected[v as usize] = true;
                let mut newly = 0usize;
                for &set_id in collection.sets_containing(v) {
                    let s = set_id as usize;
                    if !covered[s] {
                        covered[s] = true;
                        newly += 1;
                        for &u in collection.set(s) {
                            gain[u as usize] -= 1;
                        }
                    }
                }
                debug_assert_eq!(gain[v as usize], 0);
                result.covered += newly;
                result.seeds.push(v);
                result.marginal.push(newly);
            }
            None => {
                // All remaining nodes have zero gain: pad with arbitrary
                // unselected nodes so |S| = k, as Algorithm 1 requires.
                let pad = (0..n as NodeId).find(|&v| !selected[v as usize]);
                match pad {
                    Some(v) => {
                        selected[v as usize] = true;
                        result.seeds.push(v);
                        result.marginal.push(0);
                    }
                    None => {
                        // The universe ran out before round k: the round
                        // did no work, so do not count it.
                        stats.rounds -= 1;
                        break;
                    }
                }
            }
        }
    }
    (result, stats)
}

/// Greedy max-coverage with a bucket queue (linear-time variant).
///
/// Functionally identical to [`greedy_max_cover`]; kept separate as the
/// DESIGN.md ablation target for the selection data structure.
pub fn greedy_max_cover_bucket(collection: &mut SetCollection, k: usize) -> CoverResult {
    collection.ensure_inverted_index();
    greedy_max_cover_bucket_indexed(collection, k)
}

/// [`greedy_max_cover_bucket`] over a shared (`&`) collection whose
/// inverted index is already built; see [`greedy_max_cover_indexed`] for
/// why the `&self` variant exists and what the generic parameter buys.
///
/// # Panics
/// Panics if the inverted index is stale
/// ([`SetsAccess::has_inverted_index`] is false).
pub fn greedy_max_cover_bucket_indexed<C: SetsAccess>(collection: &C, k: usize) -> CoverResult {
    assert!(
        collection.has_inverted_index(),
        "inverted index is stale; call ensure_inverted_index first"
    );
    let n = collection.universe();
    let k = k.min(n);

    let mut covered = vec![false; collection.len()];
    let mut gain: Vec<usize> = (0..n as NodeId).map(|v| collection.degree(v)).collect();
    let mut selected = vec![false; n];

    let max_gain = gain.iter().copied().max().unwrap_or(0);
    // buckets[g] holds candidate nodes whose gain was g at insertion; stale
    // entries are filtered on pop (gains only decrease, so scanning from the
    // top bucket downward is amortised linear).
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_gain + 1];
    for v in 0..n as NodeId {
        if gain[v as usize] > 0 {
            buckets[gain[v as usize]].push(v);
        }
    }
    let mut cursor = max_gain;

    let mut result = CoverResult {
        seeds: Vec::with_capacity(k),
        marginal: Vec::with_capacity(k),
        covered: 0,
    };

    while result.seeds.len() < k {
        // Find the true current maximum by draining stale entries.
        let mut best: Option<NodeId> = None;
        while cursor > 0 {
            match buckets[cursor].pop() {
                Some(v) => {
                    if selected[v as usize] {
                        continue;
                    }
                    let g = gain[v as usize];
                    if g == cursor {
                        best = Some(v);
                        break;
                    }
                    if g > 0 {
                        buckets[g].push(v); // re-file at current gain
                    }
                }
                None => cursor -= 1,
            }
        }
        match best {
            Some(v) => {
                selected[v as usize] = true;
                let mut newly = 0usize;
                for &set_id in collection.sets_containing(v) {
                    let s = set_id as usize;
                    if !covered[s] {
                        covered[s] = true;
                        newly += 1;
                        for &u in collection.set(s) {
                            gain[u as usize] -= 1;
                        }
                    }
                }
                result.covered += newly;
                result.seeds.push(v);
                result.marginal.push(newly);
            }
            None => {
                let pad = (0..n as NodeId).find(|&v| !selected[v as usize]);
                match pad {
                    Some(v) => {
                        selected[v as usize] = true;
                        result.seeds.push(v);
                        result.marginal.push(0);
                    }
                    None => break,
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection(sets: &[&[NodeId]], n: usize) -> SetCollection {
        let mut c = SetCollection::new(n);
        for s in sets {
            c.push(s);
        }
        c
    }

    #[test]
    fn picks_the_dominant_node_first() {
        // Node 9 covers 3 sets, others 1 each.
        let mut c = collection(&[&[9, 0], &[9, 1], &[9, 2], &[3]], 10);
        let r = greedy_max_cover(&mut c, 2);
        assert_eq!(r.seeds[0], 9);
        assert_eq!(r.marginal[0], 3);
        assert_eq!(r.seeds[1], 3);
        assert_eq!(r.covered, 4);
    }

    #[test]
    fn bucket_variant_agrees_on_coverage() {
        let mut c1 = collection(&[&[9, 0], &[9, 1], &[9, 2], &[3]], 10);
        let mut c2 = c1.clone();
        let a = greedy_max_cover(&mut c1, 2);
        let b = greedy_max_cover_bucket(&mut c2, 2);
        assert_eq!(a.covered, b.covered);
        assert_eq!(a.seeds[0], b.seeds[0]);
    }

    #[test]
    fn marginal_gains_are_non_increasing_in_effect() {
        // Greedy marginals on a coverage instance are non-increasing.
        let mut c = collection(&[&[0, 1], &[0, 2], &[0, 3], &[1, 2], &[4], &[4, 1]], 6);
        let r = greedy_max_cover(&mut c, 4);
        for w in r.marginal.windows(2) {
            assert!(
                w[0] >= w[1],
                "marginals must be non-increasing: {:?}",
                r.marginal
            );
        }
    }

    #[test]
    fn covered_equals_sum_of_marginals_and_matches_fraction() {
        let mut c = collection(&[&[0], &[1], &[2], &[0, 1]], 4);
        let r = greedy_max_cover(&mut c, 3);
        assert_eq!(r.covered, r.marginal.iter().sum::<usize>());
        let frac = r.coverage_fraction(c.len());
        assert_eq!(frac, r.covered as f64 / 4.0);
        assert_eq!(c.count_covered(&r.seeds), r.covered);
    }

    #[test]
    fn greedy_is_optimal_on_small_instances() {
        // Brute-force check of the (1 - 1/e) bound — on tiny instances
        // greedy is usually optimal; we check it is never below the bound.
        let sets: Vec<&[NodeId]> = vec![&[0, 1, 2], &[2, 3], &[3, 4], &[4, 0], &[1, 3]];
        let n = 5;
        for k in 1..=3 {
            let mut c = collection(&sets, n);
            let greedy = greedy_max_cover(&mut c, k);
            // Brute force all k-subsets of the universe.
            let mut best = 0;
            let nodes: Vec<NodeId> = (0..n as NodeId).collect();
            let mut idx = vec![0usize; k];
            fn combos(
                nodes: &[NodeId],
                k: usize,
                start: usize,
                cur: &mut Vec<NodeId>,
                best: &mut usize,
                c: &SetCollection,
            ) {
                if cur.len() == k {
                    *best = (*best).max(c.count_covered(cur));
                    return;
                }
                for i in start..nodes.len() {
                    cur.push(nodes[i]);
                    combos(nodes, k, i + 1, cur, best, c);
                    cur.pop();
                }
            }
            let mut cur = Vec::new();
            combos(&nodes, k, 0, &mut cur, &mut best, &c);
            idx.clear();
            let bound = (1.0 - 1.0 / std::f64::consts::E) * best as f64;
            assert!(
                greedy.covered as f64 >= bound - 1e-9,
                "k={k}: greedy {} below bound {bound} (opt {best})",
                greedy.covered
            );
        }
    }

    #[test]
    fn pads_to_k_seeds_when_everything_is_covered() {
        let mut c = collection(&[&[0]], 5);
        let r = greedy_max_cover(&mut c, 3);
        assert_eq!(r.seeds.len(), 3);
        assert_eq!(r.covered, 1);
        // Padded seeds contribute zero marginal.
        assert_eq!(r.marginal[1], 0);
        assert_eq!(r.marginal[2], 0);

        let mut c2 = collection(&[&[0]], 5);
        let r2 = greedy_max_cover_bucket(&mut c2, 3);
        assert_eq!(r2.seeds.len(), 3);
    }

    #[test]
    fn k_larger_than_universe_is_clamped() {
        let mut c = collection(&[&[0, 1]], 2);
        let r = greedy_max_cover(&mut c, 10);
        assert_eq!(r.seeds.len(), 2);
    }

    #[test]
    fn seeds_are_distinct() {
        let mut c = collection(&[&[0, 1], &[1, 2], &[2, 0], &[3, 1]], 4);
        for k in 1..=4 {
            let mut cc = c.clone();
            let r = greedy_max_cover(&mut cc, k);
            let mut s = r.seeds.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), r.seeds.len(), "duplicate seeds at k={k}");
            let mut cc2 = c.clone();
            let r2 = greedy_max_cover_bucket(&mut cc2, k);
            let mut s2 = r2.seeds.clone();
            s2.sort_unstable();
            s2.dedup();
            assert_eq!(s2.len(), r2.seeds.len());
        }
        let _ = &mut c;
    }

    #[test]
    fn indexed_variants_match_the_mutable_entry_points() {
        let mut c = collection(&[&[9, 0], &[9, 1], &[9, 2], &[3], &[1, 2]], 10);
        let want_heap = greedy_max_cover(&mut c.clone(), 3);
        let want_bucket = greedy_max_cover_bucket(&mut c.clone(), 3);
        c.ensure_inverted_index();
        let shared: &SetCollection = &c;
        assert_eq!(greedy_max_cover_indexed(shared, 3), want_heap);
        assert_eq!(greedy_max_cover_bucket_indexed(shared, 3), want_bucket);
    }

    #[test]
    fn stats_variant_counts_lazy_heap_work() {
        let mut c = collection(&[&[9, 0], &[9, 1], &[9, 2], &[3], &[1, 2]], 10);
        c.ensure_inverted_index();
        let (result, stats) = greedy_max_cover_indexed_stats(&c, 3);
        assert_eq!(result, greedy_max_cover_indexed(&c, 3));
        assert_eq!(stats.rounds, 3);
        // Every selected round evaluates at least the fresh argmax pop.
        assert!(stats.evals >= stats.rounds, "{stats:?}");
        assert_eq!(stats.dirty, 0, "serial solver tracks no dirt");
        // Padding rounds (everything covered) still count as rounds.
        let mut tiny = collection(&[&[0]], 5);
        tiny.ensure_inverted_index();
        let (r, s) = greedy_max_cover_indexed_stats(&tiny, 4);
        assert_eq!(r.seeds.len(), 4);
        assert_eq!(s.rounds, 4);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn indexed_variant_panics_without_an_index() {
        let c = collection(&[&[0, 1]], 3);
        let _ = greedy_max_cover_indexed(&c, 1);
    }

    #[test]
    fn empty_collection_still_returns_k_seeds() {
        let mut c = SetCollection::new(4);
        let r = greedy_max_cover(&mut c, 2);
        assert_eq!(r.seeds.len(), 2);
        assert_eq!(r.covered, 0);
    }

    #[test]
    fn variants_agree_on_random_instances() {
        use tim_rng::{RandomSource, Rng};
        let mut rng = Rng::seed_from_u64(42);
        for trial in 0..20 {
            let n = 30;
            let mut c = SetCollection::new(n);
            let sets = 50;
            for _ in 0..sets {
                let size = 1 + rng.next_index(5);
                let members: Vec<NodeId> = {
                    let mut m: Vec<NodeId> =
                        (0..size).map(|_| rng.next_index(n) as NodeId).collect();
                    m.sort_unstable();
                    m.dedup();
                    m
                };
                c.push(&members);
            }
            let mut c2 = c.clone();
            let k = 1 + rng.next_index(8);
            let a = greedy_max_cover(&mut c, k);
            let b = greedy_max_cover_bucket(&mut c2, k);
            // Tie-breaking may differ, but every greedy run is a
            // (1 - 1/e)-approximation, so neither can fall below that
            // fraction of the other.
            let (lo, hi) = (a.covered.min(b.covered), a.covered.max(b.covered));
            assert!(
                lo as f64 >= (1.0 - 1.0 / std::f64::consts::E) * hi as f64,
                "trial {trial} k={k}: {lo} vs {hi}"
            );
        }
    }
}
