//! The selection-strategy knob and the solver work counters.
//!
//! [`SelectStrategy`] picks how the sharded greedy solver finds each
//! round's per-worker argmax — an eager full-range scan or a CELF-style
//! lazy heap — and [`EvalStats`] measures the algorithmic work either way
//! (candidates evaluated, heap re-pushes, dirty-set sizes), so the lazy
//! win is visible as an evaluation-count reduction even on a single-core
//! box where wall-clock cannot show it. The strategy never changes an
//! answer byte; it only changes how much work finding the answer takes.

use std::fmt;
use std::str::FromStr;

/// How the sharded greedy solver locates each round's local argmax.
///
/// Both strategies produce **byte-identical** results (seeds, marginals,
/// covered counts) — the vote/merge/apply protocol and its deterministic
/// tie-breaks are shared — so this knob, like `select_threads`, may be
/// tuned freely per deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SelectStrategy {
    /// Full node-range scan every round: O(n/threads) gain loads per
    /// worker per round, no per-worker state between rounds.
    Eager,
    /// CELF-style lazy max-heap per worker with dirty-node invalidation:
    /// pops re-evaluate only entries whose cached gain still exceeds the
    /// worker's best, and untouched workers reuse last round's vote
    /// without touching their heap at all.
    Lazy,
    /// Let the library choose; currently resolves to [`Lazy`](SelectStrategy::Lazy)
    /// (`SelectStrategy::Lazy`), the strategy that wins at every k on the
    /// bench pools.
    #[default]
    Auto,
}

impl SelectStrategy {
    /// True when the resolved strategy is the lazy solver (`Auto`
    /// resolves to `Lazy`).
    #[inline]
    pub fn is_lazy(self) -> bool {
        !matches!(self, SelectStrategy::Eager)
    }

    /// The canonical spelling accepted by [`FromStr`].
    pub fn as_str(self) -> &'static str {
        match self {
            SelectStrategy::Eager => "eager",
            SelectStrategy::Lazy => "lazy",
            SelectStrategy::Auto => "auto",
        }
    }
}

impl fmt::Display for SelectStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for SelectStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "eager" => Ok(SelectStrategy::Eager),
            "lazy" => Ok(SelectStrategy::Lazy),
            "auto" => Ok(SelectStrategy::Auto),
            other => Err(format!(
                "unknown select strategy '{other}' (expected eager, lazy, or auto)"
            )),
        }
    }
}

/// Work counters for one greedy max-coverage run.
///
/// The counters measure *algorithmic* work, not wall-clock: `evals` is
/// the number of candidate nodes whose current gain was inspected while
/// searching for an argmax (the serial CELF heap and the lazy sharded
/// solver keep this near O(1) per round; the eager scan pays the full
/// range every round), `repushes` counts stale heap entries refiled at
/// their current gain, and `dirty` counts the distinct nodes per worker
/// slice whose gain the apply phase changed (the invalidation traffic the
/// lazy solver pays instead of rescanning).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Greedy rounds run (selected seeds plus padding rounds).
    pub rounds: usize,
    /// Candidate gain evaluations across all rounds and workers.
    pub evals: usize,
    /// Stale lazy-heap entries re-pushed at their current gain.
    pub repushes: usize,
    /// Gain-invalidation events: distinct dirty nodes per worker slice,
    /// summed over rounds (0 for solvers that do not track dirt).
    pub dirty: usize,
}

impl EvalStats {
    /// Mean candidate evaluations per greedy round (0 when no rounds ran).
    pub fn evals_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.evals as f64 / self.rounds as f64
        }
    }

    /// Accumulates another worker's counters into this one. `rounds` is
    /// taken as the max, not the sum — workers run the same rounds.
    pub fn absorb(&mut self, other: &EvalStats) {
        self.rounds = self.rounds.max(other.rounds);
        self.evals += other.evals;
        self.repushes += other.repushes;
        self.dirty += other.dirty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_round_trips_through_strings() {
        for s in [
            SelectStrategy::Eager,
            SelectStrategy::Lazy,
            SelectStrategy::Auto,
        ] {
            assert_eq!(s.as_str().parse::<SelectStrategy>().unwrap(), s);
            assert_eq!(format!("{s}"), s.as_str());
        }
        assert_eq!(SelectStrategy::default(), SelectStrategy::Auto);
        let err = "greedy".parse::<SelectStrategy>().unwrap_err();
        assert!(err.contains("greedy") && err.contains("eager"), "{err}");
    }

    #[test]
    fn auto_resolves_to_lazy() {
        assert!(SelectStrategy::Auto.is_lazy());
        assert!(SelectStrategy::Lazy.is_lazy());
        assert!(!SelectStrategy::Eager.is_lazy());
    }

    #[test]
    fn stats_absorb_sums_work_and_maxes_rounds() {
        let mut a = EvalStats {
            rounds: 5,
            evals: 10,
            repushes: 2,
            dirty: 7,
        };
        let b = EvalStats {
            rounds: 5,
            evals: 4,
            repushes: 1,
            dirty: 3,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            EvalStats {
                rounds: 5,
                evals: 14,
                repushes: 3,
                dirty: 10,
            }
        );
        assert_eq!(a.evals_per_round(), 14.0 / 5.0);
        assert_eq!(EvalStats::default().evals_per_round(), 0.0);
    }
}
