//! Differential determinism suite for sharded selection: full TCP
//! transcripts under `--select-threads 1/2/4/8` and every
//! `--select-strategy` must be byte-identical to the serial replay —
//! selections, fast selections, spreads, marginals, and batches — on
//! both heap and mmap backings, including a pool-growth race
//! mid-session. Thread count and strategy may only ever change latency,
//! never a single answer byte.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use tim_core::SelectStrategy;
use tim_diffusion::IndependentCascade;
use tim_graph::{gen, snapshot, weights, Graph};
use tim_server::{GraphCatalog, Server, ServerConfig, ServerState};

fn wc_graph(n: usize, seed: u64) -> Graph {
    let mut g = gen::barabasi_albert(n, 3, 0.0, seed);
    weights::assign_weighted_cascade(&mut g);
    g
}

fn config(mmap: bool, select_threads: usize) -> ServerConfig {
    ServerConfig {
        threads: 2,
        epsilon: 1.0,
        seed: 5,
        k_max: 4,
        sample_threads: 1,
        select_threads,
        // Both backings serve the probabilities baked into the snapshot.
        weights: "keep".to_string(),
        mmap,
        ..ServerConfig::default()
    }
}

fn config_with(mmap: bool, select_threads: usize, strategy: SelectStrategy) -> ServerConfig {
    ServerConfig {
        select_strategy: strategy,
        ..config(mmap, select_threads)
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tim_sharded_select_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a weighted graph (sparse `v*10+3` labels) as a v2 snapshot.
fn write_v2(dir: &std::path::Path, name: &str, n: usize, seed: u64) -> std::path::PathBuf {
    let g = wc_graph(n, seed);
    let labels: Vec<u64> = (0..g.n() as u64).map(|v| v * 10 + 3).collect();
    let path = dir.join(format!("{name}.timg"));
    snapshot::save_snapshot_v2(&g, &labels, &path).unwrap();
    path
}

fn state_over(
    path: &std::path::Path,
    config: ServerConfig,
) -> Arc<ServerState<IndependentCascade>> {
    let catalog = GraphCatalog::new(IndependentCascade, "ic", config);
    catalog.add_path("g", path).unwrap();
    Arc::new(ServerState::from_catalog(catalog, "g").unwrap())
}

/// Sends `lines` over one real TCP connection; returns the response lines.
fn run_client(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    for l in lines {
        stream.write_all(l.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
}

/// Serves `path` with the given config and plays `lines` through one TCP
/// client, returning the full transcript.
fn tcp_transcript(path: &std::path::Path, config: ServerConfig, lines: &[&str]) -> Vec<String> {
    let state = state_over(path, config);
    let server = Server::bind(state, "127.0.0.1:0").unwrap();
    let handle = server.start();
    let out = run_client(handle.addr(), lines);
    handle.stop();
    out
}

/// The query mix the differential contract covers: deep and fast
/// selections (full-pool greedy), an ε-override (subset greedy), spreads,
/// marginals, and a batch. Labels are the sparse `v*10+3` form.
const MIX: &[&str] = &[
    "ping",
    "select 4",
    "select 2",
    "select 3 eps=0.5",
    "select 2 fast",
    "eval 3,13,23",
    "marginal 3,13 23",
    "batch 3",
    "select 1",
    "eval 3",
    "ping",
    "graphs",
    "stats",
];

#[test]
fn select_threads_transcripts_match_serial_on_heap_and_mmap() {
    let dir = tmpdir("transcripts");
    let path = write_v2(&dir, "g", 150, 1);

    for mmap in [false, true] {
        let serial = tcp_transcript(&path, config(mmap, 1), MIX);
        assert!(
            serial.iter().any(|l| l.starts_with("seeds: ")),
            "mix must exercise selection, got {serial:?}"
        );
        for threads in [2usize, 4, 8] {
            let sharded = tcp_transcript(&path, config(mmap, threads), MIX);
            assert_eq!(
                sharded, serial,
                "mmap={mmap} select_threads={threads}: transcript diverged from serial"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn select_threads_zero_means_all_cores_and_stays_identical() {
    let dir = tmpdir("auto");
    let path = write_v2(&dir, "g", 140, 2);
    let serial = tcp_transcript(&path, config(false, 1), MIX);
    let auto = tcp_transcript(&path, config(false, 0), MIX);
    assert_eq!(auto, serial, "select_threads=0 (all cores) diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pool_growth_race_mid_session_stays_deterministic() {
    // Client A forces pool growth mid-session (ε tightens 1.0 → 0.35, a
    // ~8x θ demand, exercising the SharedEngine write upgrade under the
    // sharded solver) while client B hammers warm-pool queries on a
    // second connection. Each client's per-session transcript must be
    // byte-identical across thread counts — on both backings.
    let dir = tmpdir("growth");
    let path = write_v2(&dir, "g", 150, 3);
    let a_mix = [
        "select 3",
        "select 4 eps=0.35", // grows the pool mid-session
        "select 2",
        "select 3 eps=0.35",
        "eval 3,13",
    ];
    let b_mix = [
        "select 2",
        "marginal 3,13 23",
        "select 2 fast",
        "eval 3,13,23",
        "select 4",
    ];

    let race = |mmap: bool, select_threads: usize| -> (Vec<String>, Vec<String>) {
        let state = state_over(&path, config(mmap, select_threads));
        let server = Server::bind(state, "127.0.0.1:0").unwrap();
        let handle = server.start();
        let addr = handle.addr();
        let a = std::thread::spawn(move || run_client(addr, &a_mix));
        let b = std::thread::spawn(move || run_client(addr, &b_mix));
        let out = (a.join().unwrap(), b.join().unwrap());
        handle.stop();
        out
    };

    for mmap in [false, true] {
        let (a_serial, b_serial) = race(mmap, 1);
        assert!(
            a_serial.iter().all(|l| !l.starts_with("error")),
            "{a_serial:?}"
        );
        for threads in [2usize, 4, 8] {
            let (a, b) = race(mmap, threads);
            assert_eq!(a, a_serial, "mmap={mmap} t={threads}: grower diverged");
            assert_eq!(b, b_serial, "mmap={mmap} t={threads}: reader diverged");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn per_graph_select_threads_override_parses_and_stays_identical() {
    // The `::select_threads=` catalog override reconfigures one tenant;
    // answers still cannot depend on it.
    let dir = tmpdir("override");
    let path = write_v2(&dir, "g", 130, 4);

    let with_override = |spec: Option<&str>| -> Vec<String> {
        let catalog = GraphCatalog::new(IndependentCascade, "ic", config(false, 1));
        match spec {
            Some(s) => {
                let overrides = tim_graph::catalog::GraphOverrides::parse(s).unwrap();
                catalog.add_path_with("g", &path, overrides).unwrap();
            }
            None => catalog.add_path("g", &path).unwrap(),
        }
        let state = Arc::new(ServerState::from_catalog(catalog, "g").unwrap());
        let server = Server::bind(state, "127.0.0.1:0").unwrap();
        let handle = server.start();
        let out = run_client(handle.addr(), MIX);
        handle.stop();
        out
    };

    let serial = with_override(None);
    for spec in [
        "select_threads=4",
        "select_threads=0",
        "select_strategy=lazy",
        "select_strategy=eager",
        "select_threads=4,select_strategy=lazy",
        "select_threads=8,select_strategy=eager",
    ] {
        assert_eq!(with_override(Some(spec)), serial, "{spec} diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn select_strategy_transcripts_match_serial_on_heap_and_mmap() {
    // Full tim/3 transcripts under every (strategy, thread count) combo
    // must match the serial replay byte-for-byte on both backings: the
    // lazy heaps and the eager scans are the same argmax.
    let dir = tmpdir("strategy");
    let path = write_v2(&dir, "g", 150, 6);

    for mmap in [false, true] {
        let serial = tcp_transcript(&path, config(mmap, 1), MIX);
        assert!(
            serial.iter().any(|l| l.starts_with("seeds: ")),
            "mix must exercise selection, got {serial:?}"
        );
        for strategy in [
            SelectStrategy::Eager,
            SelectStrategy::Lazy,
            SelectStrategy::Auto,
        ] {
            for threads in [2usize, 8] {
                let sharded = tcp_transcript(&path, config_with(mmap, threads, strategy), MIX);
                assert_eq!(
                    sharded, serial,
                    "mmap={mmap} t={threads} {strategy}: transcript diverged from serial"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pool_growth_race_stays_deterministic_under_every_strategy() {
    // The mid-session pool growth from the race test above, replayed
    // under the lazy strategy: growing the pool swaps the SetCollection
    // under the solver, so every worker's cached heap state is rebuilt
    // from scratch. Transcripts must still match serial on both backings.
    let dir = tmpdir("growth_strategy");
    let path = write_v2(&dir, "g", 150, 7);
    let a_mix = [
        "select 3",
        "select 4 eps=0.35", // grows the pool mid-session
        "select 2",
        "select 3 eps=0.35",
        "eval 3,13",
    ];
    let b_mix = [
        "select 2",
        "marginal 3,13 23",
        "select 2 fast",
        "eval 3,13,23",
        "select 4",
    ];

    let race = |mmap: bool, threads: usize, strategy: SelectStrategy| {
        let state = state_over(&path, config_with(mmap, threads, strategy));
        let server = Server::bind(state, "127.0.0.1:0").unwrap();
        let handle = server.start();
        let addr = handle.addr();
        let a = std::thread::spawn(move || run_client(addr, &a_mix));
        let b = std::thread::spawn(move || run_client(addr, &b_mix));
        let out = (a.join().unwrap(), b.join().unwrap());
        handle.stop();
        out
    };

    for mmap in [false, true] {
        let (a_serial, b_serial) = race(mmap, 1, SelectStrategy::Eager);
        assert!(
            a_serial.iter().all(|l| !l.starts_with("error")),
            "{a_serial:?}"
        );
        for strategy in [SelectStrategy::Eager, SelectStrategy::Lazy] {
            for threads in [4usize, 8] {
                let (a, b) = race(mmap, threads, strategy);
                assert_eq!(
                    a, a_serial,
                    "mmap={mmap} t={threads} {strategy}: grower diverged"
                );
                assert_eq!(
                    b, b_serial,
                    "mmap={mmap} t={threads} {strategy}: reader diverged"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
