//! Event-loop serving acceptance: thousands of truly concurrent
//! sessions produce byte-identical transcripts vs a serial replay, idle
//! connections are reaped without disturbing active ones, admission
//! control refuses over-cap connections, graceful drain answers what is
//! in flight, and the oversized-line close discipline survives the
//! nonblocking rewrite.
#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use tim_diffusion::IndependentCascade;
use tim_server::{
    fanin, LabelMap, Server, ServerConfig, ServerHandle, ServerState, AT_CAPACITY_REPLY,
    IDLE_TIMEOUT_REPLY, OVERSIZED_LINE_REPLY,
};

fn config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        pool_cache: 4,
        epsilon: 0.8,
        ell: 1.0,
        seed: 7,
        k_max: 8,
        sample_threads: 1,
        event_loop: true,
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (Arc<ServerState<IndependentCascade>>, ServerHandle) {
    let mut g = tim_graph::gen::barabasi_albert(300, 4, 0.0, 1);
    tim_graph::weights::assign_weighted_cascade(&mut g);
    let labels = LabelMap::identity(g.n());
    let state = Arc::new(ServerState::new(
        g,
        labels,
        IndependentCascade,
        "ic",
        config,
    ));
    // Warm the default pool: every script below stays within the warmed
    // θ, so answers are interleaving-independent (the determinism
    // contract the transcript diff relies on).
    state.warm_default();
    let server = Server::bind(Arc::clone(&state), "127.0.0.1:0").unwrap();
    (state, server.start())
}

/// The transcript a script *must* produce: the same lines through the
/// same state's session machinery, serially.
fn serial_replay(state: &ServerState<IndependentCascade>, script: &[&str]) -> Vec<u8> {
    let mut session = state.session();
    let mut out = Vec::new();
    for line in script {
        for a in session.push_line(line) {
            out.extend_from_slice(a.as_bytes());
            out.push(b'\n');
        }
    }
    for a in session.finish() {
        out.extend_from_slice(a.as_bytes());
        out.push(b'\n');
    }
    out
}

fn wire(script: &[&str]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for line in script {
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
    }
    bytes
}

#[test]
fn thousand_concurrent_sessions_match_serial_replay() {
    let (state, handle) = start(config());
    let addr = handle.addr();

    // A rotation of scripts covering the protocol surface: pool queries,
    // session verbs, batches (pipelined: the whole script is written
    // before any answer is read).
    let variants: Vec<Vec<&str>> = vec![
        vec!["ping", "select 3", "eval 0,1"],
        vec!["select 5", "marginal 0 1", "ping"],
        vec!["batch 3", "ping", "select 2", "eval 1,2"],
        vec!["graphs", "use default", "select 4 fast"],
        vec!["# comment", "", "stats", "select 1"],
    ];
    let expected: Vec<Vec<u8>> = variants.iter().map(|s| serial_replay(&state, s)).collect();

    const SESSIONS: usize = 1024;
    let scripts: Vec<Vec<u8>> = (0..SESSIONS)
        .map(|i| wire(&variants[i % variants.len()]))
        .collect();
    // max_in_flight = session count: every session is open at once.
    let report = fanin::drive_sessions(addr, &scripts, SESSIONS, Duration::from_secs(300)).unwrap();
    assert_eq!(report.outcomes.len(), SESSIONS);
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let want = &expected[i % variants.len()];
        assert_eq!(
            &outcome.transcript,
            want,
            "session {i}: fan-in transcript diverged from serial replay\n got: {:?}\nwant: {:?}",
            String::from_utf8_lossy(&outcome.transcript),
            String::from_utf8_lossy(want),
        );
    }
    handle.stop();
}

#[test]
fn idle_connections_are_reaped_without_disturbing_active_ones() {
    let mut cfg = config();
    cfg.idle_timeout = Some(Duration::from_millis(300));
    let (_state, handle) = start(cfg);
    let addr = handle.addr();

    let idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut active = TcpStream::connect(addr).unwrap();
    active
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Keep the active connection busy well past several idle timeouts.
    let mut active_reader = BufReader::new(active.try_clone().unwrap());
    let mut answer = String::new();
    for _ in 0..10 {
        active.write_all(b"ping\n").unwrap();
        answer.clear();
        active_reader.read_line(&mut answer).unwrap();
        assert_eq!(
            answer.trim_end(),
            "pong tim/3",
            "active session undisturbed"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // ~1s of silence vs a 300ms timeout: the idle connection must be
    // gone, with the best-effort notice first.
    let mut gone = String::new();
    let mut idle_reader = BufReader::new(idle);
    idle_reader.read_line(&mut gone).unwrap();
    assert_eq!(gone.trim_end(), IDLE_TIMEOUT_REPLY);
    gone.clear();
    assert_eq!(idle_reader.read_line(&mut gone).unwrap(), 0, "then EOF");

    // The active connection still finishes a clean session.
    active.write_all(b"ping\n").unwrap();
    answer.clear();
    active_reader.read_line(&mut answer).unwrap();
    assert_eq!(answer.trim_end(), "pong tim/3");
    handle.stop();
}

#[test]
fn max_conns_refuses_and_recovers() {
    let mut cfg = config();
    cfg.max_conns = Some(2);
    let (_state, handle) = start(cfg);
    let addr = handle.addr();

    let ping = |stream: &mut TcpStream| {
        stream.write_all(b"ping\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert_eq!(line.trim_end(), "pong tim/3");
    };

    // Fill the admission budget and *confirm* both slots are counted
    // (the pong proves the connection was admitted, not just queued).
    let mut a = TcpStream::connect(addr).unwrap();
    ping(&mut a);
    let mut b = TcpStream::connect(addr).unwrap();
    ping(&mut b);

    // One over: refused with the capacity notice, then EOF.
    let over = TcpStream::connect(addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reply = String::new();
    let mut over_reader = BufReader::new(over);
    over_reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), AT_CAPACITY_REPLY);
    reply.clear();
    assert_eq!(over_reader.read_line(&mut reply).unwrap(), 0);

    // Releasing a slot re-opens admission. Refused attempts can see a
    // reset instead of the notice (the refusal is best-effort), so the
    // retry loop tolerates any error and only counts a clean pong.
    drop(a);
    let mut admitted = None;
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(20));
        let Ok(mut c) = TcpStream::connect(addr) else {
            continue;
        };
        c.set_read_timeout(Some(Duration::from_secs(10))).ok();
        if c.write_all(b"ping\n").is_err() {
            continue;
        }
        let Ok(clone) = c.try_clone() else { continue };
        let mut line = String::new();
        if BufReader::new(clone).read_line(&mut line).is_err() {
            continue;
        }
        if line.trim_end() == "pong tim/3" {
            admitted = Some(c);
            break;
        }
    }
    assert!(admitted.is_some(), "slot freed by the close was reusable");
    handle.stop();
}

#[test]
fn graceful_drain_answers_in_flight_queries() {
    let (_state, handle) = start(config());
    let addr = handle.addr();

    // The client pipelines two requests and *never* half-closes: only
    // the drain can end this session.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    conn.write_all(b"ping\nselect 3\n").unwrap();
    // Let the server take the bytes before stop flips.
    std::thread::sleep(Duration::from_millis(200));
    let stopper = std::thread::spawn(move || handle.stop());

    let mut transcript = String::new();
    BufReader::new(&mut conn)
        .read_to_string(&mut transcript)
        .unwrap();
    let lines: Vec<&str> = transcript.lines().collect();
    assert_eq!(
        lines.len(),
        2,
        "both in-flight requests answered: {lines:?}"
    );
    assert_eq!(lines[0], "pong tim/3");
    assert!(lines[1].starts_with("seeds: "), "got: {}", lines[1]);
    stopper.join().unwrap();
}

#[test]
fn oversized_line_is_answered_then_connection_drains() {
    let (_state, handle) = start(config());
    let addr = handle.addr();

    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // 2 MiB without a newline: over the cap, delivered while the server
    // is already discarding.
    let big = vec![b'a'; 2 << 20];
    conn.write_all(&big).unwrap();
    let mut reply = String::new();
    let mut reader = BufReader::new(conn);
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), OVERSIZED_LINE_REPLY);
    reply.clear();
    assert_eq!(reader.read_line(&mut reply).unwrap(), 0, "half-closed");
    handle.stop();
}

#[test]
fn event_loop_matches_blocking_server_transcripts() {
    // The same scripts through both serving cores must agree byte for
    // byte — the "same state machine" claim, tested end to end.
    let script = [
        "ping", "select 3", "eval 0,1", "batch 2", "ping", "select 2",
    ];
    let run = |event_loop: bool| -> Vec<u8> {
        let mut cfg = config();
        cfg.event_loop = event_loop;
        let (_state, handle) = start(cfg);
        let report =
            fanin::drive_sessions(handle.addr(), &[wire(&script)], 1, Duration::from_secs(60))
                .unwrap();
        handle.stop();
        report.outcomes.into_iter().next().unwrap().transcript
    };
    let ev = run(true);
    let blocking = run(false);
    assert!(!ev.is_empty());
    assert_eq!(ev, blocking);
}
