//! The multi-graph serving contract (`tim/2`, unchanged under `tim/3`):
//!
//! - one server instance serves several named graphs: concurrent clients
//!   pinned to different graphs — plus one switching graphs mid-session
//!   via `use` — receive response streams byte-identical to a serial
//!   single-graph replay through an exclusive `QueryEngine`;
//! - `batch` sessions are byte-identical to the same lines unbatched;
//! - every `tim/1` request line from docs/PROTOCOL.md works verbatim
//!   against a `tim/2` server;
//! - idle graphs are evicted under `max_loaded` and reload
//!   deterministically.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use tim_diffusion::IndependentCascade;
use tim_engine::QueryEngine;
use tim_graph::{gen, io, weights, Graph};
use tim_server::{
    protocol, GraphCatalog, LabelMap, Server, ServerConfig, ServerHandle, ServerState,
};

fn config() -> ServerConfig {
    ServerConfig {
        threads: 4,
        pool_cache: 4,
        epsilon: 0.8,
        ell: 1.0,
        seed: 7,
        k_max: 8,
        sample_threads: 2,
        ..ServerConfig::default()
    }
}

/// The generated source of catalog graph `i` (before weights).
fn raw_graph(i: u64) -> Graph {
    gen::barabasi_albert(200 + 40 * i as usize, 4, 0.0, i + 1)
}

/// Writes graph `i` as a text edge list and returns the path — the
/// lazily loaded, weight-spec'd path the catalog exercises.
fn graph_file(dir: &std::path::Path, i: u64) -> PathBuf {
    let path = dir.join(format!("g{i}.txt"));
    io::save_edge_list(&raw_graph(i), &path).unwrap();
    path
}

/// A server whose catalog holds `g0` resident plus `g1`/`g2` lazily
/// loaded from disk; sessions start on `g0`.
fn start_server(
    dir: &std::path::Path,
    max_loaded: usize,
) -> (Arc<ServerState<IndependentCascade>>, ServerHandle) {
    let mut cfg = config();
    cfg.max_loaded = max_loaded;
    let catalog = GraphCatalog::new(IndependentCascade, "ic", cfg);
    let mut g0 = raw_graph(0);
    weights::assign_weighted_cascade(&mut g0);
    let n0 = g0.n();
    catalog
        .add_resident("g0", g0, LabelMap::identity(n0))
        .unwrap();
    for i in [1u64, 2] {
        catalog
            .add_path(format!("g{i}"), graph_file(dir, i))
            .unwrap();
    }
    let state = Arc::new(ServerState::from_catalog(catalog, "g0").unwrap());
    let server = Server::bind(Arc::clone(&state), "127.0.0.1:0").unwrap();
    let handle = server.start();
    (state, handle)
}

/// Serial single-graph ground truth: the same lines through an exclusive
/// `QueryEngine` for graph `i`, built exactly the way the catalog builds
/// it (load + weight spec for path graphs), via the very same protocol
/// implementation.
fn serial_replay(dir: &std::path::Path, i: u64, lines: &[&str]) -> Vec<String> {
    let cfg = config();
    let (graph, labels) = if i == 0 {
        let mut g = raw_graph(0);
        weights::assign_weighted_cascade(&mut g);
        let n = g.n();
        (g, LabelMap::identity(n))
    } else {
        let loaded = io::load_graph(dir.join(format!("g{i}.txt")), false).unwrap();
        let mut g = loaded.graph;
        weights::assign_weighted_cascade(&mut g);
        (g, LabelMap::new(loaded.labels))
    };
    let mut engine = QueryEngine::new(graph, IndependentCascade, "ic")
        .epsilon(cfg.epsilon)
        .ell(cfg.ell)
        .seed(cfg.seed)
        .threads(cfg.sample_threads)
        .k_max(cfg.k_max);
    engine.warm();
    lines
        .iter()
        .filter_map(|l| protocol::handle_line(&mut engine, &labels, l).map(|r| r.line))
        .collect()
}

/// Sends `lines` over one connection and collects the response lines.
fn run_client(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    for l in lines {
        stream.write_all(l.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tim_multi_graph_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Queries that stay within the warmed pool, so every answer (including
/// eval/marginal coverage values) is interleaving-independent.
const SCRIPT: &[&str] = &[
    "select 1",
    "select 4",
    "eval 0,1,2",
    "marginal 0,1 2",
    "select 8",
    "select 3 fast",
    "ping",
    "bogus",
];

#[test]
fn concurrent_clients_on_different_graphs_match_serial_replay() {
    let dir = tmpdir("pinned");
    let (state, handle) = start_server(&dir, 8);
    let addr = handle.addr();

    // Expected stream per pinned client: `using gX` then the replay.
    let expect: Vec<Vec<String>> = (0..3u64)
        .map(|i| {
            let mut want = vec![format!("using g{i}")];
            want.extend(serial_replay(&dir, i, SCRIPT));
            want
        })
        .collect();

    // The switching client: g1 then g2 mid-session, one connection.
    let mut switch_lines: Vec<String> = vec!["use g1".into()];
    switch_lines.extend(SCRIPT.iter().map(|s| s.to_string()));
    switch_lines.push("use g2".into());
    switch_lines.extend(SCRIPT.iter().map(|s| s.to_string()));
    let mut switch_want = vec!["using g1".to_string()];
    switch_want.extend(serial_replay(&dir, 1, SCRIPT));
    switch_want.push("using g2".to_string());
    switch_want.extend(serial_replay(&dir, 2, SCRIPT));

    // 6 pinned clients (2 per graph) + 1 switcher, all concurrent.
    let mut clients = Vec::new();
    for round in 0..2 {
        for i in 0..3u64 {
            let mut lines: Vec<String> = vec![format!("use g{i}")];
            lines.extend(SCRIPT.iter().map(|s| s.to_string()));
            let want = expect[i as usize].clone();
            clients.push(std::thread::spawn(move || {
                let got = run_client(addr, &lines);
                assert_eq!(got, want, "pinned client graph g{i} round {round}");
            }));
        }
    }
    let switcher = std::thread::spawn(move || {
        let got = run_client(addr, &switch_lines);
        assert_eq!(got, switch_want, "switching client");
    });
    for c in clients {
        c.join().unwrap();
    }
    switcher.join().unwrap();

    assert_eq!(state.catalog().len(), 3);
    assert!(state.catalog().stats().loads >= 2, "g1/g2 loaded lazily");
    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batched_sessions_match_line_at_a_time_sessions() {
    let dir = tmpdir("batch");
    let (_state, handle) = start_server(&dir, 8);
    let addr = handle.addr();

    // A batch spanning a `use` switch and an error line, against the
    // same lines sent unbatched.
    let mut body: Vec<String> = SCRIPT.iter().map(|s| s.to_string()).collect();
    body.push("use g1".into());
    body.extend(SCRIPT.iter().map(|s| s.to_string()));
    let unbatched = run_client(addr, &body);

    let mut batched_lines = vec![format!("batch {}", body.len())];
    batched_lines.extend(body.iter().cloned());
    let batched = run_client(addr, &batched_lines);
    assert_eq!(batched, unbatched, "batch is a pure transport optimization");

    // Split across two batches mid-stream: still identical.
    let mut split = vec![format!("batch {}", SCRIPT.len())];
    split.extend(SCRIPT.iter().map(|s| s.to_string()));
    split.push("use g1".into());
    split.push(format!("batch {}", SCRIPT.len()));
    split.extend(SCRIPT.iter().map(|s| s.to_string()));
    assert_eq!(run_client(addr, &split), unbatched);

    // A batch truncated by EOF answers the lines it received.
    let partial = vec![
        "batch 5".to_string(),
        "ping".to_string(),
        "select 2".to_string(),
    ];
    let got = run_client(addr, &partial);
    let want = run_client(addr, &partial[1..]);
    assert_eq!(got, want, "EOF flushes a partial batch");
    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_tim1_request_line_works_verbatim() {
    let dir = tmpdir("tim1");
    let (_state, handle) = start_server(&dir, 8);
    let addr = handle.addr();

    // The complete tim/1 request surface from docs/PROTOCOL.md, verbatim,
    // including framing rules (comments/blank lines answer nothing).
    let lines: Vec<String> = [
        "ping",
        "select 3",
        "select 3 eps=0.5",
        "select 3 ell=2",
        "select 3 eps=0.5 ell=2",
        "select 2 fast",
        "eval 0,1,2",
        "marginal 0,1 2",
        "# comment",
        "",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let got = run_client(addr, &lines);
    assert_eq!(got.len(), 8, "one answer per request, none for comments");
    assert_eq!(
        got[0], "pong tim/3",
        "ping reports the current protocol version"
    );
    for (i, prefix) in [
        (1, "seeds: "),
        (2, "seeds: "),
        (3, "seeds: "),
        (4, "seeds: "),
        (5, "seeds: "),
        (6, "spread: "),
        (7, "marginal: "),
    ] {
        assert!(
            got[i].starts_with(prefix),
            "tim/1 line {:?} answered {:?}",
            lines[i],
            got[i]
        );
    }
    // Unknown verbs still answer the tim/1-specified error shape.
    let err = run_client(addr, &["frobnicate".to_string()]);
    assert_eq!(err, vec!["error: unknown query 'frobnicate'".to_string()]);
    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn idle_graphs_are_evicted_and_reload_deterministically() {
    let dir = tmpdir("evict");
    // max_loaded = 1: with resident g0 pinned, the path graphs g1/g2
    // always exceed the budget once touched, so alternating between them
    // forces eviction + deterministic reload every time.
    let (state, handle) = start_server(&dir, 1);
    let addr = handle.addr();

    let session = |g: &str| {
        run_client(
            addr,
            &[
                format!("use {g}"),
                "select 4".to_string(),
                "eval 0,1".to_string(),
            ],
        )
    };
    let first_g1 = session("g1");
    let first_g2 = session("g2");
    for _ in 0..2 {
        assert_eq!(session("g1"), first_g1, "g1 reloads to identical answers");
        assert_eq!(session("g2"), first_g2, "g2 reloads to identical answers");
    }
    let stats = state.catalog().stats();
    assert!(stats.evictions >= 2, "evictions happened: {stats:?}");
    assert!(
        stats.loads >= 4,
        "graphs reloaded after eviction: {stats:?}"
    );
    assert!(
        state.catalog().loaded_count() <= 2,
        "resident g0 + at most one path graph resident"
    );
    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}
