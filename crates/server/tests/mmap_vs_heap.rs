//! Differential transcript suite: the same v2 snapshot served
//! heap-decoded and mmap-backed must answer every `tim/3` session
//! byte-identically — selections, fast selections, spreads, marginals,
//! batches, admin stats — and must share pool provenance, so pools
//! spilled by one backing warm-start the other.

use tim_diffusion::IndependentCascade;
use tim_graph::{gen, snapshot, weights, Graph};
use tim_server::{GraphCatalog, ServerConfig, ServerState};

fn wc_graph(n: usize, seed: u64) -> Graph {
    let mut g = gen::barabasi_albert(n, 3, 0.0, seed);
    weights::assign_weighted_cascade(&mut g);
    g
}

fn config(mmap: bool) -> ServerConfig {
    ServerConfig {
        threads: 2,
        epsilon: 1.0,
        seed: 5,
        k_max: 4,
        sample_threads: 1,
        // Both backings serve the probabilities baked into the snapshot:
        // mmap serving requires it, and the heap run must match to be a
        // fair differential baseline.
        weights: "keep".to_string(),
        mmap,
        ..ServerConfig::default()
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tim_mmap_vs_heap_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a weighted graph (sparse labels, so the mapped label section is
/// exercised) as a v2 snapshot and returns its path.
fn write_v2(dir: &std::path::Path, name: &str, n: usize, seed: u64) -> std::path::PathBuf {
    let g = wc_graph(n, seed);
    let labels: Vec<u64> = (0..g.n() as u64).map(|v| v * 10 + 3).collect();
    let path = dir.join(format!("{name}.timg"));
    snapshot::save_snapshot_v2(&g, &labels, &path).unwrap();
    path
}

/// Builds a single-graph catalog state over `path`, heap- or mmap-backed.
fn state_over(path: &std::path::Path, config: ServerConfig) -> ServerState<IndependentCascade> {
    let catalog = GraphCatalog::new(IndependentCascade, "ic", config);
    catalog.add_path("g", path).unwrap();
    ServerState::from_catalog(catalog, "g").unwrap()
}

/// Runs one scripted session and returns its full transcript.
fn run_session(state: &ServerState<IndependentCascade>, lines: &[&str]) -> Vec<String> {
    let mut session = state.session();
    let mut out = Vec::new();
    for l in lines {
        out.extend(session.push_line(l));
    }
    out.extend(session.finish());
    out
}

/// The full query mix the differential contract covers. Labels are the
/// sparse `v*10+3` form `write_v2` bakes in.
const MIX: &[&str] = &[
    "ping",
    "select 4",
    "select 2",
    "select 3 eps=0.5",
    "select 2 fast",
    "eval 3,13,23",
    "marginal 3,13 23",
    "batch 3",
    "select 1",
    "eval 3",
    "ping",
    "graphs",
    "stats",
];

#[test]
fn heap_and_mmap_transcripts_are_byte_identical() {
    let dir = tmpdir("transcripts");
    let path = write_v2(&dir, "g", 150, 1);

    let heap_state = state_over(&path, config(false));
    let mmap_state = state_over(&path, config(true));

    let heap = run_session(&heap_state, MIX);
    let mapped = run_session(&mmap_state, MIX);
    assert_eq!(heap, mapped, "transcripts must not depend on the backing");

    // The backing really differs — we compared two code paths, not one.
    assert!(!heap_state.catalog().get("g").unwrap().is_mmap());
    assert!(mmap_state.catalog().get("g").unwrap().is_mmap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pool_provenance_is_backing_independent() {
    let dir = tmpdir("provenance");
    let path = write_v2(&dir, "g", 140, 2);

    let heap_state = state_over(&path, config(false));
    let mmap_state = state_over(&path, config(true));
    let heap_g = heap_state.catalog().get("g").unwrap();
    let mmap_g = mmap_state.catalog().get("g").unwrap();

    // The graph checksum — the root of every pool key — must be computed
    // from content, never from the backing.
    assert_eq!(heap_g.graph_checksum(), mmap_g.graph_checksum());
    assert_eq!(heap_g.key_for(None, None), mmap_g.key_for(None, None));
    assert_eq!(
        heap_g.key_for(Some(0.5), None),
        mmap_g.key_for(Some(0.5), None)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pools_spilled_by_heap_serving_warm_start_mmap_serving() {
    let dir = tmpdir("spill");
    let path = write_v2(&dir, "g", 150, 3);
    let pool_dir = dir.join("pools");
    let mix = [
        "select 4",
        "select 3 eps=0.5",
        "select 2 fast",
        "eval 3,13",
        "marginal 3 13",
    ];

    // Cold heap phase: build the default and ε-override pools, spill
    // them through the write-back store.
    let cold_state = state_over(
        &path,
        ServerConfig {
            pool_dir: Some(pool_dir.clone()),
            persist_pools: true,
            ..config(false)
        },
    );
    let cold = run_session(&cold_state, &mix);
    let s = cold_state.catalog().get("g").unwrap().cache_stats();
    assert_eq!((s.builds, s.loads), (2, 0), "cold heap run samples");
    assert!(s.spills >= 2, "both pools spilled");
    drop(cold_state);

    // Warm mmap phase: a fresh mmap-backed process image over the same
    // pool store answers byte-identically with ZERO builds — only
    // possible if its pool keys match the heap run's exactly.
    let warm_state = state_over(
        &path,
        ServerConfig {
            pool_dir: Some(pool_dir.clone()),
            persist_pools: false,
            ..config(true)
        },
    );
    let warm = run_session(&warm_state, &mix);
    assert_eq!(warm, cold, "mmap restart transcript byte-identical");
    let g = warm_state.catalog().get("g").unwrap();
    assert!(g.is_mmap());
    let s = g.cache_stats();
    assert_eq!(
        (s.builds, s.loads),
        (0, 2),
        "warm mmap run loads, never builds"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_v2_attach_fails_without_poisoning_the_slot() {
    let dir = tmpdir("corrupt");
    let path = write_v2(&dir, "g", 120, 9);
    let pristine = std::fs::read(&path).unwrap();

    // Corrupt the file (flip a count byte under the header checksum),
    // then attach it mmap-backed: the first use must fail cleanly...
    let mut bad = pristine.clone();
    bad[20] ^= 0xFF;
    std::fs::write(&path, &bad).unwrap();
    let state = state_over(&path, config(true));
    let mut session = state.session();
    let answers = session.push_line("select 2");
    assert!(
        answers[0].starts_with("error: "),
        "corrupt mapping must answer an error, got {answers:?}"
    );

    // ...and must NOT poison the slot: after the file is repaired in
    // place, the same catalog entry loads and serves normally.
    std::fs::write(&path, &pristine).unwrap();
    let answers = session.push_line("select 2");
    assert!(
        answers[0].starts_with("seeds: "),
        "repaired slot must serve, got {answers:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_sessions_on_both_backings_stay_identical() {
    // Interleave two sessions per backing (the batch verb included) and
    // check the per-session transcripts pairwise — parallel pool reuse on
    // a mapped graph must not desynchronize anything.
    let dir = tmpdir("interleave");
    let path = write_v2(&dir, "g", 130, 4);
    let a_mix = ["select 3", "eval 3,13", "select 2 fast"];
    let b_mix = ["batch 2", "select 2", "marginal 3 13", "stats"];

    let transcripts = |mmap: bool| -> (Vec<String>, Vec<String>) {
        let state = state_over(&path, config(mmap));
        let mut a = state.session();
        let mut b = state.session();
        let (mut ta, mut tb) = (Vec::new(), Vec::new());
        // Strict alternation: a1 b1 a2 b2 ...
        for i in 0..a_mix.len().max(b_mix.len()) {
            if let Some(l) = a_mix.get(i) {
                ta.extend(a.push_line(l));
            }
            if let Some(l) = b_mix.get(i) {
                tb.extend(b.push_line(l));
            }
        }
        ta.extend(a.finish());
        tb.extend(b.finish());
        (ta, tb)
    };

    let (heap_a, heap_b) = transcripts(false);
    let (mmap_a, mmap_b) = transcripts(true);
    assert_eq!(heap_a, mmap_a);
    assert_eq!(heap_b, mmap_b);
    std::fs::remove_dir_all(&dir).ok();
}
