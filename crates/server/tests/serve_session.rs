//! TCP-level session behavior: framing, error replies, the pool cache's
//! cold-miss/hit/eviction lifecycle, and oversized-line defense.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use tim_diffusion::IndependentCascade;
use tim_graph::{gen, weights};
use tim_server::{LabelMap, Server, ServerConfig, ServerHandle, ServerState};

fn start(pool_cache: usize) -> (Arc<ServerState<IndependentCascade>>, ServerHandle) {
    let mut g = gen::barabasi_albert(150, 3, 0.0, 2);
    weights::assign_weighted_cascade(&mut g);
    let labels = LabelMap::identity(g.n());
    let state = Arc::new(ServerState::new(
        g,
        labels,
        IndependentCascade,
        "ic",
        ServerConfig {
            threads: 2,
            pool_cache,
            epsilon: 1.0,
            ell: 1.0,
            seed: 5,
            k_max: 4,
            sample_threads: 1,
            ..ServerConfig::default()
        },
    ));
    let server = Server::bind(Arc::clone(&state), "127.0.0.1:0").unwrap();
    let handle = server.start();
    (state, handle)
}

fn session(addr: SocketAddr, input: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(input.as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
}

#[test]
fn one_answer_line_per_request_line_matches_handle() {
    let (state, handle) = start(4);
    let input = "ping\nselect 2\n# comment\n\neval 0,1\nmarginal 0 1\nnope\n";
    let got = session(handle.addr(), input);
    let want: Vec<String> = input.lines().filter_map(|l| state.handle(l)).collect();
    assert_eq!(got, want);
    assert_eq!(got.len(), 5, "comments and blanks produce no answer");
    assert_eq!(got[0], "pong tim/3");
    assert!(got[4].starts_with("error: unknown query"));
    handle.stop();
}

#[test]
fn cache_lifecycle_over_tcp_cold_miss_hit_evict() {
    let (state, handle) = start(2);
    let addr = handle.addr();
    assert_eq!(state.cached_pools(), 0);

    // Cold miss: first default query builds the pool.
    session(addr, "select 2\n");
    let s1 = state.cache_stats();
    assert_eq!((s1.misses, s1.evictions), (1, 0));
    assert_eq!(state.cached_pools(), 1);

    // Hit: a second connection reuses it.
    session(addr, "select 2\nselect 3\n");
    assert_eq!(state.cache_stats().misses, 1);

    // Distinct ε mixes get their own pools; capacity 2 forces the LRU
    // (the default pool, untouched since) out on the third mix.
    session(addr, "select 2 eps=0.9\n");
    assert_eq!(state.cached_pools(), 2);
    session(addr, "select 2 eps=0.8\n");
    let s2 = state.cache_stats();
    assert_eq!(state.cached_pools(), 2);
    assert_eq!(s2.evictions, 1);

    // The evicted default pool is a cold miss again — lazily rebuilt,
    // same answers (provenance-determined).
    let a = session(addr, "select 2\n");
    let b = session(addr, "select 2\n");
    assert_eq!(a, b);
    assert!(state.cache_stats().misses >= 4);
    handle.stop();
}

#[test]
fn oversized_line_answers_error_and_closes() {
    let (_state, handle) = start(1);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // 1 MiB + slack of 'a' with no newline.
    let chunk = vec![b'a'; (1 << 20) + 64];
    stream.write_all(&chunk).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let lines: Vec<String> = BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines.len(), 1);
    assert!(lines[0].starts_with("error: request line exceeds"));
    handle.stop();
}

#[test]
fn line_of_exactly_the_limit_is_served() {
    // The 1 MiB cap excludes the newline: a comment line of exactly
    // 2^20 content bytes must pass, and the session must continue.
    let (_state, handle) = start(1);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut comment = vec![b'#'; 1];
    comment.resize(1 << 20, b'a');
    stream.write_all(&comment).unwrap();
    stream.write_all(b"\nping\n").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let lines: Vec<String> = BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines, vec!["pong tim/3".to_string()]);
    handle.stop();
}

#[test]
fn many_sequential_connections_are_served() {
    let (_state, handle) = start(1);
    let addr = handle.addr();
    let first = session(addr, "select 3\n");
    for _ in 0..10 {
        assert_eq!(session(addr, "select 3\n"), first);
    }
    handle.stop();
}
