//! Warm-state tenancy end to end: a server restart with `--pool-dir`
//! serves a previously seen query mix with **zero** pool builds
//! (counter-asserted) and byte-identical responses, and runtime
//! attach/detach leaves concurrent sessions on other graphs
//! byte-identical to a static-catalog replay.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use tim_diffusion::IndependentCascade;
use tim_graph::catalog::GraphOverrides;
use tim_graph::{gen, weights, Graph};
use tim_server::{GraphCatalog, LabelMap, Server, ServerConfig, ServerState};

fn wc_graph(n: usize, seed: u64) -> Graph {
    let mut g = gen::barabasi_albert(n, 3, 0.0, seed);
    weights::assign_weighted_cascade(&mut g);
    g
}

fn config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        epsilon: 1.0,
        seed: 5,
        k_max: 4,
        sample_threads: 1,
        ..ServerConfig::default()
    }
}

/// Scripted TCP session: send every line, half-close, read the full
/// response transcript.
fn tcp_session(addr: std::net::SocketAddr, lines: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(lines.as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tim_warm_restart_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn restart_with_pool_dir_serves_warm_with_zero_rebuilds() {
    let dir = tmpdir("restart");
    let pool_dir = dir.join("pools");
    // The query mix: default pool, an ε-override pool, fast prefix,
    // coverage queries — everything whose answers depend on pool bytes.
    let mix = "ping\nselect 4\nselect 2\nselect 3 eps=0.5\nselect 2 fast\neval 0,1,2\nmarginal 0,1 2\nstats\n";

    let state = |persist: bool| {
        let g = wc_graph(150, 1);
        let n = g.n();
        Arc::new(ServerState::new(
            g,
            LabelMap::identity(n),
            IndependentCascade,
            "ic",
            ServerConfig {
                pool_dir: Some(pool_dir.clone()),
                persist_pools: persist,
                ..config()
            },
        ))
    };

    // Cold phase: serve, build pools (write-through spills them), stop.
    let cold_state = state(true);
    let server = Server::bind(Arc::clone(&cold_state), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let handle = server.start();
    let cold = tcp_session(addr, mix);
    handle.stop();
    let s = cold_state.default_state().cache_stats();
    assert_eq!(s.builds, 2, "cold run samples default + override pools");
    assert_eq!(s.loads, 0);
    assert!(s.spills >= 2, "both pools spilled at build");
    drop(cold_state);

    // Warm phase: a fresh process image (new state, same pool dir,
    // read-through only) must answer byte-identically without sampling.
    let warm_state = state(false);
    let server = Server::bind(Arc::clone(&warm_state), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let handle = server.start();
    let warm = tcp_session(addr, mix);
    handle.stop();
    assert_eq!(warm, cold, "restart transcript byte-identical");
    let s = warm_state.default_state().cache_stats();
    assert_eq!(s.builds, 0, "warm restart builds nothing");
    assert_eq!(s.loads, 2, "both pools loaded from the store");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mmap_pools_restart_serves_mapped_zero_build_byte_identical() {
    let dir = tmpdir("mmap_restart");
    let pool_dir = dir.join("pools");
    // Everything whose answer depends on pool bytes, the batch verb
    // included: default pool, an ε-override pool, fast prefix, coverage.
    let mix = "ping\nselect 4\nselect 2\nselect 3 eps=0.5\nselect 2 fast\n\
               eval 0,1,2\nmarginal 0,1 2\nbatch 3\nselect 3\neval 0,3\nmarginal 0 2\nstats\n";

    let state = |persist: bool, mmap_pools: bool, strategy: tim_core::SelectStrategy| {
        let g = wc_graph(150, 1);
        let n = g.n();
        Arc::new(ServerState::new(
            g,
            LabelMap::identity(n),
            IndependentCascade,
            "ic",
            ServerConfig {
                pool_dir: Some(pool_dir.clone()),
                persist_pools: persist,
                mmap_pools,
                select_strategy: strategy,
                admin: true,
                ..config()
            },
        ))
    };
    let serve = |state: &Arc<ServerState<IndependentCascade>>, lines: &str| {
        let server = Server::bind(Arc::clone(state), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.start();
        let out = tcp_session(addr, lines);
        handle.stop();
        out
    };

    // Cold phase: heap serving builds and spills both pools (v2 files).
    let cold_state = state(true, false, tim_core::SelectStrategy::Auto);
    let cold = serve(&cold_state, mix);
    assert_eq!(cold_state.default_state().cache_stats().builds, 2);
    drop(cold_state);

    // Heap warm restart is the reference transcript.
    let heap_state = state(false, false, tim_core::SelectStrategy::Auto);
    let heap = serve(&heap_state, mix);
    assert_eq!(heap, cold, "heap restart transcript byte-identical");
    drop(heap_state);

    // Mapped warm restart, under both selection strategies: byte-identical
    // to heap serving, zero builds, and the store counters prove the pools
    // really were mapped (and checksum-verified), not decoded.
    for strategy in [
        tim_core::SelectStrategy::Eager,
        tim_core::SelectStrategy::Lazy,
    ] {
        let strat_state = state(false, false, strategy);
        let strat = serve(&strat_state, mix);
        drop(strat_state);

        let mapped_state = state(false, true, strategy);
        let mapped = serve(&mapped_state, format!("{mix}stats pools\n").as_str());
        let (answers, pools_line) = mapped.split_at(mapped.len() - 1);
        assert_eq!(answers, &strat[..], "mapped transcript byte-identical");
        assert_eq!(strat, cold, "strategy never changes answers");
        let s = mapped_state.default_state().cache_stats();
        assert_eq!((s.builds, s.loads), (0, 2), "mapped restart builds nothing");
        for part in [
            "builds=0",
            "quarantined=0",
            "mmap_opens=2",
            "verifies=2",
            "heap_loads=0",
        ] {
            assert!(
                pools_line[0].contains(part),
                "want {part} in {}",
                pools_line[0]
            );
        }
        drop(mapped_state);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn growth_on_mapped_pool_races_readers_and_stays_byte_identical() {
    let dir = tmpdir("mmap_growth");
    let pool_dir = dir.join("pools");
    let state = |persist: bool, mmap_pools: bool| {
        let g = wc_graph(150, 1);
        let n = g.n();
        Arc::new(ServerState::new(
            g,
            LabelMap::identity(n),
            IndependentCascade,
            "ic",
            ServerConfig {
                pool_dir: Some(pool_dir.clone()),
                persist_pools: persist,
                mmap_pools,
                ..config()
            },
        ))
    };

    // Reader sessions stay within the provisioned k_max=4; the grower
    // asks for k=6, which forces ensure_theta to resample — on a mapped
    // pool that swaps the backing heap-side mid-serve.
    let readers: [&str; 2] = [
        "select 3\neval 0,1\nselect 2 fast\nmarginal 0 2\nselect 4\n",
        "select 2\nmarginal 0,1 3\neval 2,3\nselect 3 fast\nselect 4\n",
    ];
    let grower = "select 6\nselect 3\neval 0,1\n";

    // Spill once, then capture the heap-restart reference transcripts
    // serially (growth included).
    let cold_state = state(true, false);
    let server = Server::bind(Arc::clone(&cold_state), "127.0.0.1:0").unwrap();
    let (addr, handle) = (server.local_addr(), server.start());
    tcp_session(addr, "select 4\n");
    handle.stop();
    drop(cold_state);

    let heap_state = state(false, false);
    let server = Server::bind(Arc::clone(&heap_state), "127.0.0.1:0").unwrap();
    let (addr, handle) = (server.local_addr(), server.start());
    let want_grow = tcp_session(addr, grower);
    let want_readers: Vec<Vec<String>> = readers.iter().map(|r| tcp_session(addr, r)).collect();
    handle.stop();
    drop(heap_state);

    // Mapped restart: the grower races the readers. Answers must match
    // the serial heap reference line for line regardless of interleaving.
    let mapped_state = state(false, true);
    let server = Server::bind(Arc::clone(&mapped_state), "127.0.0.1:0").unwrap();
    let (addr, handle) = (server.local_addr(), server.start());
    std::thread::scope(|scope| {
        let grow = scope.spawn(move || tcp_session(addr, grower));
        let got: Vec<_> = readers
            .iter()
            .map(|r| scope.spawn(move || tcp_session(addr, r)))
            .collect();
        assert_eq!(grow.join().unwrap(), want_grow, "grower byte-identical");
        for (th, want) in got.into_iter().zip(&want_readers) {
            assert_eq!(&th.join().unwrap(), want, "reader byte-identical");
        }
    });
    handle.stop();
    assert_eq!(
        mapped_state.default_state().cache_stats().builds,
        0,
        "growth resamples in place, never a cold build"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn attach_detach_mid_session_leaves_other_graphs_byte_identical() {
    let dir = tmpdir("attach");
    // Path-backed graphs so attach/detach exercise the real load path.
    let write = |name: &str, seed: u64| {
        let path = dir.join(format!("{name}.txt"));
        tim_graph::io::save_edge_list(&wc_graph(120, seed), &path).unwrap();
        path
    };
    let (pa, pb, pc) = (write("a", 1), write("b", 2), write("c", 3));
    let on_a = ["select 3", "select 2 eps=0.8", "eval 0,1", "select 2 fast"];
    let on_b = ["select 2", "marginal 0 1"];

    // Ground truth: a static single-graph catalog per graph, replayed
    // serially with no catalog mutation anywhere near it.
    let replay = |path: &std::path::Path, lines: &[&str]| -> Vec<String> {
        let catalog = GraphCatalog::new(IndependentCascade, "ic", config());
        catalog.add_path("only", path).unwrap();
        let state = ServerState::from_catalog(catalog, "only").unwrap();
        let mut session = state.session();
        let mut out = Vec::new();
        for l in lines {
            out.extend(session.push_line(l));
        }
        out.extend(session.finish());
        out
    };
    let want_a: Vec<String> = [replay(&pa, &on_a[..2]), replay(&pa, &on_a[2..])]
        .concat()
        .to_vec();
    let want_b = replay(&pb, &on_b);

    // Dynamic catalog: sessions on a and b run while c is attached,
    // queried, and b is detached between their chunks.
    let catalog = GraphCatalog::new(
        IndependentCascade,
        "ic",
        ServerConfig {
            admin: true,
            ..config()
        },
    );
    catalog.add_path("a", &pa).unwrap();
    catalog.add_path("b", &pb).unwrap();
    let state = ServerState::from_catalog(catalog, "a").unwrap();

    let mut sess_a = state.session();
    let mut sess_b = state.session();
    let mut admin = state.session();
    assert_eq!(admin.push_line("use b"), ["using b"]);

    let mut got_a: Vec<String> = Vec::new();
    let mut got_b: Vec<String> = Vec::new();
    for l in &on_a[..2] {
        got_a.extend(sess_a.push_line(l));
    }
    got_b.extend(sess_b.push_line("use b"));
    got_b.extend(sess_b.push_line(on_b[0]));

    // Mid-session mutation: attach c, query it, detach b.
    assert_eq!(
        admin.push_line(&format!("attach c={}", pc.display())),
        ["attached c".to_string()]
    );
    let mut on_c = state.session();
    assert_eq!(on_c.push_line("use c"), ["using c"]);
    assert!(on_c.push_line("select 2")[0].starts_with("seeds: "));
    assert_eq!(admin.push_line("detach b"), ["detached b"]);
    assert!(!state.catalog().contains("b"));

    // The in-flight sessions finish undisturbed: sess_b drains on its
    // held state, sess_a never notices anything.
    for l in &on_a[2..] {
        got_a.extend(sess_a.push_line(l));
    }
    got_b.extend(sess_b.push_line(on_b[1]));
    got_a.extend(sess_a.finish());
    got_b.extend(sess_b.finish());

    assert_eq!(got_b.remove(0), "using b");
    assert_eq!(got_a, want_a, "session on a == static-catalog replay");
    assert_eq!(got_b, want_b, "drained session on b == static replay");

    // A session that tries b *after* the detach is cleanly rejected.
    let mut late = state.session();
    assert_eq!(
        late.push_line("use b"),
        ["error: use: unknown graph 'b'".to_string()]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn attached_tenant_with_existing_store_starts_warm() {
    // The "newly attached tenant pays the cold build again" half of the
    // motivation: a tenant attached at runtime whose pool store already
    // has state must start warm.
    let dir = tmpdir("tenant");
    let pool_dir = dir.join("pools");
    let path = dir.join("t.txt");
    tim_graph::io::save_edge_list(&wc_graph(130, 7), &path).unwrap();
    let overrides = GraphOverrides::parse("eps=0.9,seed=11").unwrap();

    let make_state = || {
        let catalog = GraphCatalog::new(
            IndependentCascade,
            "ic",
            ServerConfig {
                admin: true,
                pool_dir: Some(pool_dir.clone()),
                persist_pools: true,
                ..config()
            },
        );
        catalog
            .add_resident("main", wc_graph(150, 1), LabelMap::identity(150))
            .unwrap();
        ServerState::from_catalog(catalog, "main").unwrap()
    };

    // First life: attach the tenant, query it (builds + spills), detach.
    let state = make_state();
    let mut s = state.session();
    assert_eq!(
        s.push_line(&format!("attach t={}::eps=0.9,seed=11", path.display())),
        ["attached t"]
    );
    s.push_line("use t");
    let first = s.push_line("select 3");
    let t_state = state.catalog().get("t").unwrap();
    assert_eq!(t_state.cache_stats().builds, 1);
    drop(s);
    drop(t_state);
    state.catalog().detach("t").unwrap();

    // Second life (fresh process image): the same tenant attaches with
    // the same overrides and answers from its store — zero builds.
    let state = make_state();
    state.catalog().attach_path("t", &path, overrides).unwrap();
    let mut s = state.session();
    s.push_line("use t");
    assert_eq!(s.push_line("select 3"), first, "warm tenant, same bytes");
    let t_state = state.catalog().get("t").unwrap();
    assert_eq!(t_state.cache_stats().builds, 0, "no cold build");
    assert_eq!(t_state.cache_stats().loads, 1);
    std::fs::remove_dir_all(&dir).ok();
}
