//! The serving determinism contract: N concurrent clients receive
//! responses byte-identical to a serial replay of the same commands
//! through an exclusive `QueryEngine`, for any interleaving.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use tim_diffusion::IndependentCascade;
use tim_engine::QueryEngine;
use tim_graph::{gen, weights, Graph};
use tim_server::{protocol, LabelMap, Server, ServerConfig, ServerState};

fn wc_graph() -> Graph {
    let mut g = gen::barabasi_albert(300, 4, 0.0, 1);
    weights::assign_weighted_cascade(&mut g);
    g
}

fn config() -> ServerConfig {
    ServerConfig {
        threads: 4,
        pool_cache: 4,
        epsilon: 0.8,
        ell: 1.0,
        seed: 7,
        k_max: 8,
        sample_threads: 2,
        ..ServerConfig::default()
    }
}

/// Serial ground truth: the same lines through an exclusive engine with
/// the same provenance, via the very same protocol implementation.
fn serial_replay(lines: &[String]) -> Vec<String> {
    let g = wc_graph();
    let labels = LabelMap::identity(g.n());
    let cfg = config();
    let mut engine = QueryEngine::new(g, IndependentCascade, "ic")
        .epsilon(cfg.epsilon)
        .ell(cfg.ell)
        .seed(cfg.seed)
        .threads(cfg.sample_threads)
        .k_max(cfg.k_max);
    engine.warm();
    lines
        .iter()
        .filter_map(|l| protocol::handle_line(&mut engine, &labels, l).map(|r| r.line))
        .collect()
}

fn start_server() -> (
    Arc<ServerState<IndependentCascade>>,
    tim_server::ServerHandle,
) {
    let g = wc_graph();
    let labels = LabelMap::identity(g.n());
    let state = Arc::new(ServerState::new(
        g,
        labels,
        IndependentCascade,
        "ic",
        config(),
    ));
    let server = Server::bind(Arc::clone(&state), "127.0.0.1:0").unwrap();
    (state, server.start())
}

/// Sends `lines` over one connection and collects the response lines.
fn run_client(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    for l in lines {
        stream.write_all(l.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
}

#[test]
fn interleaved_clients_get_byte_identical_answers() {
    // Every command stays within the warmed pool, so every answer —
    // including eval/marginal coverage values — is a pure function of
    // provenance + query, independent of interleaving.
    let script: Vec<String> = [
        "# warm-pool session",
        "select 1",
        "select 4",
        "marginal 0 1",
        "select 8",
        "eval 0,1,2",
        "",
        "select 2 fast",
        "marginal 0,1 2",
        "ping",
        "select 5",
        "bogus query",
        "eval 0,5",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let want = serial_replay(&script);
    assert_eq!(want.len(), 11, "9 answers + 1 pong + 1 error");

    let (_state, handle) = start_server();
    let addr = handle.addr();
    let clients: Vec<_> = (0..6)
        .map(|i| {
            let script = script.clone();
            std::thread::spawn(move || {
                // Rotate each client's command order so the worker
                // threads genuinely interleave different queries.
                let mut rotated: Vec<String> = script.clone();
                rotated.rotate_left(i % script.len());
                (rotated.clone(), run_client(addr, &rotated))
            })
        })
        .collect();

    // Answers must match a serial replay of each client's own order.
    for c in clients {
        let (sent, got) = c.join().unwrap();
        assert_eq!(got, serial_replay(&sent));
    }
    handle.stop();
}

#[test]
fn pool_growth_keeps_exact_replay_byte_identical() {
    // k = 12 > k_max = 8 forces the default pool to grow mid-session.
    // Exact-replay selects carve their plan's θ-prefix out of whatever
    // the pool holds, so even clients racing the growth get answers
    // byte-identical to the serial replay.
    let script: Vec<String> = ["select 12", "select 3", "select 8", "select 1"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let want = serial_replay(&script);

    let (_state, handle) = start_server();
    let addr = handle.addr();
    let clients: Vec<_> = (0..4)
        .map(|i| {
            let script = script.clone();
            std::thread::spawn(move || {
                let mut rotated = script.clone();
                rotated.rotate_left(i % script.len());
                (rotated.clone(), run_client(addr, &rotated))
            })
        })
        .collect();
    for c in clients {
        let (sent, got) = c.join().unwrap();
        // Same multiset of answers as the serial replay, in the client's
        // own command order.
        let mut expect: Vec<String> = serial_replay(&sent);
        assert_eq!(got, expect);
        expect.sort();
        let mut sorted_want = want.clone();
        sorted_want.sort();
        assert_eq!(expect, sorted_want);
    }
    handle.stop();
}
