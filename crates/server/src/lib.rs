//! **`tim_server`** — a concurrent influence-query server over shared,
//! immutable RR-set pools.
//!
//! TIM/TIM+ (Tang, Xiao, Shi; SIGMOD 2014) splits influence maximization
//! into an expensive sampling phase and a cheap greedy phase; `tim_engine`
//! already makes the sampled pool a persistent, provenance-pinned asset.
//! This crate adds the deployment shape that split makes practical: **one
//! long-lived process answering many simultaneous queries** against pools
//! it builds once and shares read-only.
//!
//! Three layers, each usable on its own:
//!
//! - [`protocol`] — the newline-delimited query protocol shared verbatim
//!   with `tim query` (normative spec: `docs/PROTOCOL.md`). Parsing
//!   ([`protocol::parse_query`]) is split from execution
//!   ([`protocol::execute`]) so a server can route a parsed query to the
//!   right pool before running it; [`protocol::QueryBackend`] abstracts
//!   over an exclusive [`tim_engine::QueryEngine`] and a shared
//!   [`tim_engine::SharedEngine`], which is what keeps `tim query` and
//!   `tim serve` byte-identical by construction.
//! - [`cache`] — [`cache::PoolCache`], an LRU cache of
//!   [`tim_engine::SharedEngine`]s keyed by pool provenance
//!   `(graph checksum, model, seed, ε, ℓ)`. Distinct query mixes reuse or
//!   lazily build pools; a cold build never holds the cache lock, so it
//!   never blocks readers of other pools.
//! - [`server`] — [`server::Server`], a multi-threaded TCP server:
//!   [`server::ServerState`] (graph + label map + pool cache) shared via
//!   `Arc` across worker threads that each accept and serve connections.
//!
//! # Determinism under concurrency
//!
//! Exact-replay `select` answers are pure functions of the pool's
//! provenance and the query — concurrent clients receive byte-identical
//! responses to a serial replay under **any** interleaving. `eval`,
//! `marginal`, and `select … fast` answers are pure functions of the
//! provenance, the query, *and the pool's current θ*; θ only changes when
//! a query demands growth, so sessions whose queries stay within the
//! warmed pool are interleaving-independent too. See ARCHITECTURE.md
//! §"Concurrency guarantees" and the `concurrent_determinism` integration
//! test.

pub mod cache;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, PoolCache, PoolKey};
pub use protocol::{execute, parse_query, LabelMap, ParsedLine, Query, QueryBackend, Reply};
pub use server::{Server, ServerConfig, ServerHandle, ServerState};
