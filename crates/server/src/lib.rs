//! **`tim_server`** — a concurrent, multi-graph influence-query server
//! over shared, immutable RR-set pools.
//!
//! TIM/TIM+ (Tang, Xiao, Shi; SIGMOD 2014) splits influence maximization
//! into an expensive sampling phase and a cheap greedy phase; `tim_engine`
//! already makes the sampled pool a persistent, provenance-pinned asset.
//! This crate adds the deployment shape that split makes practical: **one
//! long-lived process answering many simultaneous queries against many
//! named graphs** from pools it builds once and shares read-only.
//!
//! Five layers, each usable on its own:
//!
//! - [`protocol`] — the newline-delimited query protocol (`tim/2`, a
//!   strict superset of `tim/1`; normative spec: `docs/PROTOCOL.md`),
//!   shared verbatim with `tim query`. Parsing
//!   ([`protocol::parse_request`] / [`protocol::parse_query`]) is split
//!   from execution ([`protocol::execute`]) so a server can route a
//!   parsed query to the right graph and pool before running it;
//!   [`protocol::QueryBackend`] abstracts over an exclusive
//!   [`tim_engine::QueryEngine`], a shared [`tim_engine::SharedEngine`],
//!   and the batch read-guard backend. The module also owns the 1 MiB
//!   line framing ([`protocol::CappedLineReader`]) both transports share.
//! - [`cache`] — [`cache::PoolCache`], an LRU cache of
//!   [`tim_engine::SharedEngine`]s keyed by pool provenance
//!   `(graph checksum, model, seed, ε, ℓ)`. Distinct query mixes reuse or
//!   lazily build pools; a cold build never holds the cache lock, so it
//!   never blocks readers of other pools.
//! - [`catalog`] — [`catalog::GraphCatalog`], named graphs loaded lazily
//!   behind per-graph locks, each with its own [`cache::PoolCache`]
//!   budget, plus LRU eviction of idle graphs; [`catalog::GraphState`] is
//!   one graph's serving state.
//! - [`session`] — [`session::Session`], the per-connection `tim/2` state
//!   machine: current graph (`use`), cached default-engine handle, and
//!   `batch` execution that amortizes lock acquisition and IO without
//!   changing a single answer byte.
//! - [`server`] — [`server::Server`], a multi-threaded TCP server:
//!   [`server::ServerState`] (catalog + defaults) shared via `Arc` across
//!   worker threads that each accept and serve connections.
//!
//! Plus the event-loop serving core (Linux-only, like epoll):
//!
//! - [`reactor`] — the raw epoll substrate: a level-triggered
//!   [`reactor::Poller`] over direct libc bindings (no crates.io here,
//!   so no mio/tokio), a [`reactor::TimerWheel`] for idle deadlines, and
//!   a nonblocking TCP connect for the fan-in driver.
//! - [`event_loop`] — reactor shards driving many [`session::Session`]s
//!   per thread (`ServerConfig::event_loop`): resumable line reads,
//!   buffered writes with backpressure, pipelining, `--idle-timeout`
//!   reaping, `--max-conns` admission, graceful drain. Same state
//!   machine as the blocking server, so answer bytes are identical by
//!   construction.
//! - [`fanin`] — the client-side mirror: one thread driving thousands of
//!   concurrent scripted sessions, used by the `c10k_fanin` bench and
//!   the event-loop integration tests to diff fan-in transcripts against
//!   serial replays.
//!
//! # Determinism under concurrency
//!
//! Exact-replay `select` answers are pure functions of the pool's
//! provenance and the query — concurrent clients receive byte-identical
//! responses to a serial replay under **any** interleaving. `eval`,
//! `marginal`, and `select … fast` answers are pure functions of the
//! provenance, the query, *and the pool's current θ*; θ only changes when
//! a query demands growth, so sessions whose queries stay within the
//! warmed pool are interleaving-independent too. Graphs are isolated by
//! construction (separate pools, separate caches), so multi-tenant
//! traffic cannot perturb another graph's answers; batching is a pure
//! transport/locking optimization. See ARCHITECTURE.md §"Concurrency
//! guarantees" and the `concurrent_determinism` / `multi_graph`
//! integration tests.

pub mod cache;
pub mod catalog;
#[cfg(target_os = "linux")]
pub mod event_loop;
#[cfg(target_os = "linux")]
pub mod fanin;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
pub mod session;

pub use cache::{CacheStats, PoolCache, PoolKey};
pub use catalog::{CatalogStats, GraphCatalog, GraphState};
#[cfg(target_os = "linux")]
pub use event_loop::{AT_CAPACITY_REPLY, IDLE_TIMEOUT_REPLY};
#[cfg(target_os = "linux")]
pub use fanin::{drive_sessions, latency_stats, FaninReport, LatencyStats, SessionOutcome};
pub use protocol::{
    execute, parse_query, parse_request, CappedLine, CappedLineReader, LabelMap, ParsedLine,
    ParsedRequest, PollLine, Query, QueryBackend, Reply, Request, MAX_BATCH, MAX_BATCH_BYTES,
    MAX_LINE_BYTES, OVERSIZED_BATCH_REPLY, OVERSIZED_LINE_REPLY, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ServerHandle, ServerState, DEFAULT_GRAPH_NAME};
pub use session::Session;
