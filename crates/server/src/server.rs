//! The multi-threaded TCP server: shared state + worker accept loops.
//!
//! The design is deliberately boring: `N` worker threads share one
//! [`TcpListener`] (kernel-balanced `accept`) and one immutable
//! [`ServerState`] behind an `Arc`. Each connection is served to
//! completion by the worker that accepted it, through its own
//! [`Session`] (current graph, pending batch) — per-connection state
//! lives in the session, everything heavy (graphs, pools) is shared.
//! Query concurrency *within* a pool is the [`SharedEngine`]
//! read-fast-path; pool *diversity* across query mixes is the per-graph
//! [`PoolCache`](crate::cache::PoolCache); graph *diversity* across
//! tenants is the [`GraphCatalog`].
//!
//! [`SharedEngine`]: tim_engine::SharedEngine

use crate::cache::{CacheStats, PoolKey};
use crate::catalog::{CatalogStats, GraphCatalog, GraphState};
use crate::protocol::{CappedLine, CappedLineReader, LabelMap, OVERSIZED_LINE_REPLY};
use crate::session::Session;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use tim_diffusion::BackingModel;
use tim_engine::{QueryEngine, SharedEngine};
use tim_graph::Graph;

pub use crate::protocol::MAX_LINE_BYTES;

/// The catalog name a single-graph server registers its graph under.
pub const DEFAULT_GRAPH_NAME: &str = "default";

/// Server tuning knobs; every field has a serving-friendly default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads, i.e. connections served concurrently (default 4).
    pub threads: usize,
    /// Per-graph pool-cache capacity: distinct `(ε, ℓ)` mixes kept warm
    /// per graph (default 4).
    pub pool_cache: usize,
    /// Default approximation slack ε (default 0.1).
    pub epsilon: f64,
    /// Default failure exponent ℓ (default 1).
    pub ell: f64,
    /// Run seed every query replicates (default 0).
    pub seed: u64,
    /// Seed-set size pools are warmed for (default 50).
    pub k_max: usize,
    /// Sampling threads per pool build; 0 means all cores (default 0).
    pub sample_threads: usize,
    /// Worker threads for the greedy selection phase of each query;
    /// 0 means all cores (default 1 = serial). The sharded solver is
    /// byte-identical to the serial one, so this never changes answers.
    pub select_threads: usize,
    /// How sharded selection workers search their node range: eager
    /// full scans, lazy CELF-style heaps, or auto (default; picks lazy).
    /// Strategy never changes answers — only evaluation counts.
    pub select_strategy: tim_core::SelectStrategy,
    /// Log per-query progress notes to stderr (default false).
    pub verbose: bool,
    /// Weight-model spec applied to lazily loaded catalog graphs
    /// (`tim_graph::weights::apply_spec`; default `"wc"`).
    pub weights: String,
    /// Load lazily loaded catalog graphs as undirected (default false).
    pub undirected: bool,
    /// Serve path-backed graphs as zero-copy mmap views of their v2
    /// `.timg` snapshots instead of decoding them onto the heap
    /// (default false). Requires `weights = "keep"` — probabilities are
    /// baked into the snapshot and cannot be rewritten in place. Answers
    /// are byte-identical to heap serving.
    pub mmap: bool,
    /// Restore persisted `.timp` v2 pools as zero-copy read-only
    /// mappings instead of decoding them onto the heap (default false).
    /// Open is the header plus a few vectorized bounds sweeps, one
    /// deferred integrity scan runs before the pool serves, and the
    /// first select runs greedy over the persisted posting lists
    /// straight out of mapped memory. v1 files fall back to the heap
    /// decode transparently, pool growth stays heap-side, and answers
    /// are byte-identical to heap-restored pools.
    pub mmap_pools: bool,
    /// Most *path-backed* graphs kept loaded at once; the
    /// least-recently-used one is evicted beyond this (default 8).
    /// Resident graphs are pinned and do not consume the budget.
    pub max_loaded: usize,
    /// Root of the persistent warm state: each graph keeps its pools in
    /// a [`tim_engine::PoolStore`] under `<pool_dir>/<graph-name>/`.
    /// `None` (the default) keeps all warm state in memory.
    pub pool_dir: Option<std::path::PathBuf>,
    /// Automatic write-back into the pool stores: spill pools on build,
    /// on eviction when grown, and on periodic session sync. Without it
    /// a configured `pool_dir` is read-through only (plus the explicit
    /// `persist` admin verb). Default false.
    pub persist_pools: bool,
    /// Enable the `tim/3` admin stratum (`attach` / `detach` / `persist`
    /// / `stats pools`). Default false: admin verbs parse but answer
    /// `error: …`.
    pub admin: bool,
    /// Serve through the epoll event loop ([`crate::event_loop`])
    /// instead of thread-per-connection workers: `threads` becomes the
    /// reactor shard count and concurrency is bounded by fds, not
    /// stacks. Default false.
    pub event_loop: bool,
    /// Event-loop mode only: close connections with no socket activity
    /// for this long (best-effort [`crate::event_loop::IDLE_TIMEOUT_REPLY`]
    /// first). `None` (the default) keeps idle connections forever, like
    /// the blocking server.
    pub idle_timeout: Option<std::time::Duration>,
    /// Event-loop mode only: admission cap on concurrent connections;
    /// excess connections get a best-effort
    /// [`crate::event_loop::AT_CAPACITY_REPLY`] and are closed. `None`
    /// (the default) admits until fds run out.
    pub max_conns: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            pool_cache: 4,
            epsilon: 0.1,
            ell: 1.0,
            seed: 0,
            k_max: 50,
            sample_threads: 0,
            select_threads: 1,
            select_strategy: tim_core::SelectStrategy::Auto,
            verbose: false,
            weights: "wc".to_string(),
            undirected: false,
            mmap: false,
            mmap_pools: false,
            max_loaded: 8,
            pool_dir: None,
            persist_pools: false,
            admin: false,
            event_loop: false,
            idle_timeout: None,
            max_conns: None,
        }
    }
}

/// Everything connections share: the graph catalog plus the name of the
/// graph sessions start on. Per-connection state (current graph, pending
/// batch) lives in each [`Session`].
///
/// The single-graph constructor ([`new`](Self::new)) covers the common
/// deployment and the whole `tim/1` surface;
/// [`from_catalog`](Self::from_catalog) is the multi-tenant form.
#[derive(Debug)]
pub struct ServerState<M> {
    catalog: GraphCatalog<M>,
    default_graph: String,
}

impl<M: BackingModel + Send + Clone + 'static> ServerState<M> {
    /// Builds a single-graph state: `graph` is registered resident (never
    /// evicted) under [`DEFAULT_GRAPH_NAME`]. Pools are built lazily on
    /// first use; call [`warm_default`](Self::warm_default) to pay the
    /// default pool's sampling cost at startup instead.
    ///
    /// # Panics
    /// Panics if `labels` does not cover the graph's nodes, or a config
    /// parameter is out of range (non-positive ε/ℓ, zero `k_max`, zero
    /// `threads`, zero `pool_cache`, zero `max_loaded`).
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        labels: LabelMap,
        model: M,
        model_name: impl Into<String>,
        config: ServerConfig,
    ) -> Self {
        assert!(config.threads >= 1, "threads must be at least 1");
        let catalog = GraphCatalog::new(model, model_name, config);
        // add_resident only fails on a graph/label-map mismatch here (the
        // name is fixed and the catalog empty); that must panic now, at
        // construction, never later inside a worker thread.
        if let Err(e) = catalog.add_resident(DEFAULT_GRAPH_NAME, graph, labels) {
            panic!("{e}");
        }
        Self::from_catalog(catalog, DEFAULT_GRAPH_NAME).expect("default graph just registered")
    }

    /// Builds a multi-graph state over `catalog`; sessions start on
    /// `default_graph`, which must be registered.
    pub fn from_catalog(
        catalog: GraphCatalog<M>,
        default_graph: impl Into<String>,
    ) -> Result<Self, String> {
        let default_graph = default_graph.into();
        assert!(catalog.config().threads >= 1, "threads must be at least 1");
        if !catalog.contains(&default_graph) {
            return Err(format!(
                "default graph '{default_graph}' is not in the catalog"
            ));
        }
        Ok(ServerState {
            catalog,
            default_graph,
        })
    }

    /// The graph catalog connections route through.
    pub fn catalog(&self) -> &GraphCatalog<M> {
        &self.catalog
    }

    /// The graph sessions start on.
    pub fn default_graph(&self) -> &str {
        &self.default_graph
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        self.catalog.config()
    }

    /// Catalog effectiveness counters (loads, evictions).
    pub fn catalog_stats(&self) -> CatalogStats {
        self.catalog.stats()
    }

    /// Opens a new protocol session (one per connection).
    pub fn session(&self) -> Session<'_, M> {
        Session::new(self)
    }

    /// The state of the default graph, loading it if needed.
    ///
    /// # Panics
    /// Panics if the default graph fails to load (it cannot: resident
    /// graphs are always loadable, and `from_catalog` checked presence —
    /// a path-backed default with a bad file panics here, which
    /// [`warm_default`](Self::warm_default) surfaces at startup).
    pub fn default_state(&self) -> Arc<GraphState<M>> {
        self.catalog
            .get(&self.default_graph)
            .expect("default graph loads")
    }

    /// Content checksum of the default graph.
    pub fn graph_checksum(&self) -> u64 {
        self.default_state().graph_checksum()
    }

    /// Pool-cache effectiveness counters of the default graph.
    pub fn cache_stats(&self) -> CacheStats {
        self.default_state().cache_stats()
    }

    /// Number of pools currently cached for the default graph.
    pub fn cached_pools(&self) -> usize {
        self.default_state().cached_pools()
    }

    /// The default graph's provenance key at the given ε/ℓ.
    pub fn key_for(&self, eps: Option<f64>, ell: Option<f64>) -> PoolKey {
        self.default_state().key_for(eps, ell)
    }

    /// The default graph's engine for a query at the given ε/ℓ.
    pub fn engine_for(&self, eps: Option<f64>, ell: Option<f64>) -> Arc<SharedEngine<M>> {
        self.default_state().engine_for(eps, ell)
    }

    /// The engine serving default-configuration queries on the default
    /// graph.
    pub fn default_engine(&self) -> Arc<SharedEngine<M>> {
        self.default_state().default_engine()
    }

    /// Builds (or reuses) the default graph's default pool now, returning
    /// its θ — lets a server pay the sampling cost before accepting
    /// connections.
    pub fn warm_default(&self) -> u64 {
        self.default_state().warm_default()
    }

    /// Pre-seeds the default graph's cache with an engine restored from
    /// persistent state (e.g. a `.timp` pool file), keyed by its own
    /// provenance.
    pub fn preload(&self, engine: QueryEngine<M>) -> Arc<SharedEngine<M>> {
        self.default_state().preload(engine)
    }

    /// Handles one protocol line in a throwaway session — the one-line
    /// convenience used by tests and simple embeddings. `None` for
    /// blank/comment lines (and for a `batch` header, whose answers
    /// belong to the lines that never follow), otherwise the answer line.
    /// Session state (`use`) does not persist across calls; use
    /// [`session`](Self::session) for stateful interactions.
    pub fn handle(&self, line: &str) -> Option<String> {
        let mut session = self.session();
        let mut answers = session.push_line(line);
        answers.extend(session.finish());
        debug_assert!(answers.len() <= 1, "one line answers at most once");
        answers.into_iter().next()
    }
}

/// A bound (but not yet serving) query server.
#[derive(Debug)]
pub struct Server<M> {
    state: Arc<ServerState<M>>,
    listener: Arc<TcpListener>,
    addr: SocketAddr,
}

impl<M: BackingModel + Send + Clone + 'static> Server<M> {
    /// Binds to `addr` (use port 0 for an ephemeral port; the bound
    /// address is [`local_addr`](Self::local_addr)).
    pub fn bind(state: Arc<ServerState<M>>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            state,
            listener: Arc::new(listener),
            addr,
        })
    }

    /// The address the server is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Spawns the serving threads and starts accepting connections —
    /// thread-per-connection workers by default, epoll reactor shards
    /// when [`ServerConfig::event_loop`] is set.
    pub fn start(self) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        if self.state.config().event_loop {
            #[cfg(target_os = "linux")]
            {
                let workers =
                    crate::event_loop::spawn_shards(self.state, self.listener, Arc::clone(&stop));
                return ServerHandle {
                    stop,
                    addr: self.addr,
                    workers,
                };
            }
            #[cfg(not(target_os = "linux"))]
            eprintln!("event loop requires Linux (epoll); using thread-per-connection workers");
        }
        let workers = (0..self.state.config().threads)
            .map(|i| {
                let state = Arc::clone(&self.state);
                let listener = Arc::clone(&self.listener);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("tim-serve-{i}"))
                    .spawn(move || {
                        loop {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            let stream = match listener.accept() {
                                Ok((stream, _)) => stream,
                                Err(e) => {
                                    // Persistent accept errors (EMFILE
                                    // under fd exhaustion, …) return
                                    // immediately; back off instead of
                                    // busy-spinning the core.
                                    eprintln!("accept failed: {e}; retrying");
                                    std::thread::sleep(std::time::Duration::from_millis(50));
                                    continue;
                                }
                            };
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            // A dropped connection is the client's
                            // problem, not the server's; a panicked one
                            // (poisoned lock, engine invariant assert)
                            // must not take the worker thread with it.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let _ = serve_connection(&state, stream);
                                }));
                            if outcome.is_err() {
                                eprintln!("connection handler panicked; worker continues");
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ServerHandle {
            stop,
            addr: self.addr,
            workers,
        }
    }
}

/// Handle to a running server: keeps it alive, stops it on demand.
#[derive(Debug)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until every worker exits (i.e. forever, unless another
    /// thread calls [`stop`](Self::stop) — the serve-forever mode of
    /// `tim serve`).
    pub fn wait(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Stops accepting, wakes blocked workers, and joins them. In-flight
    /// connections finish their current accept/serve cycle first.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Release);
        // One wake-up connection per worker: each blocked accept consumes
        // exactly one, re-checks the flag, and exits.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Writes a group of answer lines with one flush — the transport half of
/// batch amortization (and a syscall saving for every multi-line answer).
fn write_answers(writer: &mut TcpStream, answers: &[String]) -> std::io::Result<()> {
    if answers.is_empty() {
        return Ok(());
    }
    let mut out = String::with_capacity(answers.iter().map(|a| a.len() + 1).sum());
    for a in answers {
        out.push_str(a);
        out.push('\n');
    }
    writer.write_all(out.as_bytes())?;
    writer.flush()
}

/// Serves one connection: one session, one answer line per request line,
/// until EOF (a pending batch flushes at EOF).
fn serve_connection<M: BackingModel + Send + Clone + 'static>(
    state: &ServerState<M>,
    stream: TcpStream,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = CappedLineReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut session = state.session();
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line)? {
            CappedLine::Eof => break,
            CappedLine::Oversized => {
                writer.write_all(OVERSIZED_LINE_REPLY.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                // Half-close, then drain (bounded) so the close is
                // graceful and the client reliably reads the error line.
                let _ = writer.shutdown(std::net::Shutdown::Write);
                reader.drain(64 * MAX_LINE_BYTES);
                return Ok(());
            }
            CappedLine::Line => {
                write_answers(&mut writer, &session.push_line(&line))?;
                if session.closed() {
                    // Same close discipline as an oversized line: the
                    // error answer is out; half-close and drain so the
                    // client reliably reads it.
                    let _ = writer.shutdown(std::net::Shutdown::Write);
                    reader.drain(64 * MAX_LINE_BYTES);
                    return Ok(());
                }
            }
        }
    }
    write_answers(&mut writer, &session.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use tim_diffusion::IndependentCascade;
    use tim_graph::{gen, weights};

    fn state(pool_cache: usize) -> ServerState<IndependentCascade> {
        let mut g = gen::barabasi_albert(150, 3, 0.0, 1);
        weights::assign_weighted_cascade(&mut g);
        let n = g.n();
        ServerState::new(
            g,
            LabelMap::identity(n),
            IndependentCascade,
            "ic",
            ServerConfig {
                threads: 2,
                pool_cache,
                epsilon: 1.0,
                ell: 1.0,
                seed: 3,
                k_max: 4,
                sample_threads: 1,
                ..ServerConfig::default()
            },
        )
    }

    #[test]
    fn handle_routes_overrides_to_their_own_pool() {
        let s = state(4);
        assert_eq!(s.cached_pools(), 0);
        assert!(s.handle("select 2").unwrap().starts_with("seeds: "));
        assert_eq!(s.cached_pools(), 1, "default pool built");
        assert!(s.handle("select 2 eps=0.9").unwrap().starts_with("seeds: "));
        assert_eq!(s.cached_pools(), 2, "override pool built");
        // Same override again: reuse, not rebuild.
        s.handle("select 2 eps=0.9").unwrap();
        assert_eq!(s.cached_pools(), 2);
        // eval/marginal/fast go to the default pool.
        assert!(s.handle("eval 0,1").unwrap().starts_with("spread: "));
        assert!(s.handle("marginal 0 1").unwrap().starts_with("marginal: "));
        assert!(s.handle("select 2 fast").unwrap().starts_with("seeds: "));
        assert_eq!(s.cached_pools(), 2);
    }

    #[test]
    fn handle_answers_ping_without_building_a_pool() {
        let s = state(1);
        assert_eq!(s.handle("ping").unwrap(), "pong tim/3");
        assert_eq!(s.cached_pools(), 0);
        assert_eq!(s.handle("# comment"), None);
        assert_eq!(s.handle(""), None);
        assert!(s.handle("nonsense").unwrap().starts_with("error: "));
        assert_eq!(s.cached_pools(), 0);
    }

    #[test]
    fn handle_answers_session_verbs_on_the_default_graph() {
        let s = state(1);
        assert_eq!(s.handle("graphs").unwrap(), "graphs: default");
        assert_eq!(s.handle("use default").unwrap(), "using default");
        assert!(s
            .handle("use nope")
            .unwrap()
            .starts_with("error: use: unknown graph"));
        assert!(s
            .handle("stats")
            .unwrap()
            .starts_with("stats: graph=default n=150 "));
    }

    #[test]
    fn explicit_defaults_share_the_default_pool() {
        let s = state(2);
        s.handle("select 2").unwrap();
        // eps equal to the default maps to the same provenance key.
        s.handle("select 2 eps=1.0").unwrap();
        assert_eq!(s.cached_pools(), 1);
        assert_eq!(s.cache_stats().misses, 1);
    }

    #[test]
    #[should_panic(expected = "label map covers")]
    fn mismatched_label_map_panics_at_construction() {
        let mut g = gen::barabasi_albert(150, 3, 0.0, 1);
        weights::assign_weighted_cascade(&mut g);
        let _ = ServerState::new(
            g,
            LabelMap::identity(10),
            IndependentCascade,
            "ic",
            ServerConfig::default(),
        );
    }

    #[test]
    fn server_start_and_stop_shut_down_cleanly() {
        let s = Arc::new(state(2));
        let server = Server::bind(Arc::clone(&s), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.start();
        // A quick live round trip before shutdown.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"ping\n").unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buf = String::new();
        BufReader::new(&mut conn).read_line(&mut buf).unwrap();
        assert_eq!(buf.trim_end(), "pong tim/3");
        handle.stop();
    }
}
