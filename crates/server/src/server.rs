//! The multi-threaded TCP server: shared state + worker accept loops.
//!
//! The design is deliberately boring: `N` worker threads share one
//! [`TcpListener`] (kernel-balanced `accept`) and one immutable
//! [`ServerState`] behind an `Arc`. Each connection is served to
//! completion by the worker that accepted it — the protocol is
//! line-oriented and stateless per line, so per-connection concurrency
//! comes from running many connections on many workers, all answering
//! from the same shared pools. Query concurrency *within* a pool is the
//! [`SharedEngine`] read-fast-path; pool *diversity* across query mixes
//! is the [`PoolCache`].

use crate::cache::{CacheStats, PoolCache, PoolKey};
use crate::protocol::{execute, parse_query, LabelMap, ParsedLine, Query, Reply};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use tim_diffusion::DiffusionModel;
use tim_engine::{QueryEngine, SharedEngine};
use tim_graph::snapshot::graph_checksum;
use tim_graph::Graph;

/// Longest accepted request line (bytes, excluding the newline). Longer
/// lines answer `error: …` and close the connection (`docs/PROTOCOL.md`).
pub const MAX_LINE_BYTES: u64 = 1 << 20;

/// Server tuning knobs; every field has a serving-friendly default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads, i.e. connections served concurrently (default 4).
    pub threads: usize,
    /// Pool-cache capacity: distinct `(ε, ℓ)` mixes kept warm (default 4).
    pub pool_cache: usize,
    /// Default approximation slack ε (default 0.1).
    pub epsilon: f64,
    /// Default failure exponent ℓ (default 1).
    pub ell: f64,
    /// Run seed every query replicates (default 0).
    pub seed: u64,
    /// Seed-set size pools are warmed for (default 50).
    pub k_max: usize,
    /// Sampling threads per pool build; 0 means all cores (default 0).
    pub sample_threads: usize,
    /// Log per-query progress notes to stderr (default false).
    pub verbose: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            pool_cache: 4,
            epsilon: 0.1,
            ell: 1.0,
            seed: 0,
            k_max: 50,
            sample_threads: 0,
            verbose: false,
        }
    }
}

/// Everything a connection needs, shared immutably across workers: the
/// graph, its label map, the model, the defaults, and the pool cache.
#[derive(Debug)]
pub struct ServerState<M> {
    graph: Arc<Graph>,
    labels: Arc<LabelMap>,
    model: M,
    model_name: String,
    config: ServerConfig,
    graph_checksum: u64,
    cache: PoolCache<M>,
}

impl<M: DiffusionModel + Send + Sync + Clone + 'static> ServerState<M> {
    /// Builds the shared state. Pools are built lazily on first use; call
    /// [`warm_default`](Self::warm_default) to pay the default pool's
    /// sampling cost at startup instead of on the first query.
    ///
    /// # Panics
    /// Panics if `labels` does not cover the graph's nodes, or a config
    /// parameter is out of range (non-positive ε/ℓ, zero `k_max`, zero
    /// `threads`, zero `pool_cache`).
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        labels: LabelMap,
        model: M,
        model_name: impl Into<String>,
        config: ServerConfig,
    ) -> Self {
        let graph: Arc<Graph> = graph.into();
        assert_eq!(
            labels.len(),
            graph.n(),
            "label map must cover every graph node"
        );
        assert!(config.threads >= 1, "threads must be at least 1");
        assert!(config.epsilon > 0.0, "epsilon must be positive");
        assert!(config.ell > 0.0, "ell must be positive");
        assert!(config.k_max >= 1, "k_max must be at least 1");
        let checksum = graph_checksum(&graph);
        ServerState {
            graph,
            labels: Arc::new(labels),
            model,
            model_name: model_name.into(),
            cache: PoolCache::new(config.pool_cache),
            config,
            graph_checksum: checksum,
        }
    }

    /// The label map connections answer through.
    pub fn labels(&self) -> &LabelMap {
        &self.labels
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Content checksum of the served graph.
    pub fn graph_checksum(&self) -> u64 {
        self.graph_checksum
    }

    /// Pool-cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of pools currently cached.
    pub fn cached_pools(&self) -> usize {
        self.cache.len()
    }

    /// The provenance key for a query at the given ε/ℓ (defaults applied).
    pub fn key_for(&self, eps: Option<f64>, ell: Option<f64>) -> PoolKey {
        PoolKey::new(
            self.graph_checksum,
            self.model_name.clone(),
            self.config.seed,
            eps.unwrap_or(self.config.epsilon),
            ell.unwrap_or(self.config.ell),
        )
    }

    fn build_engine(&self, eps: f64, ell: f64) -> SharedEngine<M> {
        let mut engine = QueryEngine::new(
            Arc::clone(&self.graph),
            self.model.clone(),
            self.model_name.clone(),
        )
        .epsilon(eps)
        .ell(ell)
        .seed(self.config.seed)
        .k_max(self.config.k_max);
        if self.config.sample_threads > 0 {
            engine = engine.threads(self.config.sample_threads);
        }
        engine.warm();
        SharedEngine::new(engine)
    }

    /// The engine for a query at the given ε/ℓ: a cache hit reuses the
    /// warm pool, a cold miss builds (and warms) one without blocking
    /// readers of other pools.
    pub fn engine_for(&self, eps: Option<f64>, ell: Option<f64>) -> Arc<SharedEngine<M>> {
        let eps = eps.unwrap_or(self.config.epsilon);
        let ell = ell.unwrap_or(self.config.ell);
        let key = self.key_for(Some(eps), Some(ell));
        self.cache
            .get_or_build(&key, || self.build_engine(eps, ell))
    }

    /// The engine serving default-configuration queries.
    pub fn default_engine(&self) -> Arc<SharedEngine<M>> {
        self.engine_for(None, None)
    }

    /// Builds (or reuses) the default pool now, returning its θ — lets a
    /// server pay the sampling cost before accepting connections.
    pub fn warm_default(&self) -> u64 {
        self.default_engine().pool_theta()
    }

    /// Pre-seeds the cache with an engine restored from persistent state
    /// (e.g. a `.timp` pool file), keyed by its own provenance.
    pub fn preload(&self, engine: QueryEngine<M>) -> Arc<SharedEngine<M>> {
        let meta = engine.pool_meta();
        let key = PoolKey::new(
            meta.graph_checksum,
            meta.model.clone(),
            meta.seed,
            meta.epsilon,
            meta.ell,
        );
        self.cache.insert(key, SharedEngine::new(engine))
    }

    /// Handles one protocol line end-to-end: parse, route to the right
    /// pool, execute. `None` for blank/comment lines, otherwise the
    /// answer line. This is the entire per-line behavior of a connection
    /// (and directly testable without a socket).
    pub fn handle(&self, line: &str) -> Option<String> {
        let query = match parse_query(line) {
            ParsedLine::Empty => return None,
            ParsedLine::Malformed(e) => return Some(format!("error: {e}")),
            ParsedLine::Query(q) => q,
        };
        // Route by provenance: an exact-replay select with ε/ℓ overrides
        // runs against its own pool; everything else (including fast
        // selects, which the parser already pins to pool defaults) runs
        // against the default pool.
        let engine = match &query {
            Query::Select {
                fast: false,
                eps,
                ell,
                ..
            } if eps.is_some() || ell.is_some() => self.engine_for(*eps, *ell),
            Query::Ping => {
                // Liveness must not trigger a pool build.
                return Some(execute(&mut NoBackend, &self.labels, &query).line);
            }
            _ => self.default_engine(),
        };
        let Reply { line, note } = execute(&mut &*engine, &self.labels, &query);
        if self.config.verbose {
            if let Some(note) = note {
                eprintln!("{note}");
            }
        }
        Some(line)
    }
}

/// Backend for queries that never touch an engine (`ping`).
struct NoBackend;

impl crate::protocol::QueryBackend for NoBackend {
    fn select_with(
        &mut self,
        _k: usize,
        _eps: Option<f64>,
        _ell: Option<f64>,
    ) -> tim_engine::QueryOutcome {
        unreachable!("ping never selects")
    }
    fn select_fast(&mut self, _k: usize) -> tim_engine::QueryOutcome {
        unreachable!("ping never selects")
    }
    fn spread(&mut self, _seeds: &[tim_graph::NodeId]) -> f64 {
        unreachable!("ping never evaluates")
    }
    fn marginal_gain(&mut self, _base: &[tim_graph::NodeId], _candidate: tim_graph::NodeId) -> f64 {
        unreachable!("ping never evaluates")
    }
}

/// A bound (but not yet serving) query server.
#[derive(Debug)]
pub struct Server<M> {
    state: Arc<ServerState<M>>,
    listener: Arc<TcpListener>,
    addr: SocketAddr,
}

impl<M: DiffusionModel + Send + Sync + Clone + 'static> Server<M> {
    /// Binds to `addr` (use port 0 for an ephemeral port; the bound
    /// address is [`local_addr`](Self::local_addr)).
    pub fn bind(state: Arc<ServerState<M>>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            state,
            listener: Arc::new(listener),
            addr,
        })
    }

    /// The address the server is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Spawns the worker threads and starts accepting connections.
    pub fn start(self) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..self.state.config.threads)
            .map(|i| {
                let state = Arc::clone(&self.state);
                let listener = Arc::clone(&self.listener);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("tim-serve-{i}"))
                    .spawn(move || {
                        loop {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            let stream = match listener.accept() {
                                Ok((stream, _)) => stream,
                                Err(e) => {
                                    // Persistent accept errors (EMFILE
                                    // under fd exhaustion, …) return
                                    // immediately; back off instead of
                                    // busy-spinning the core.
                                    eprintln!("accept failed: {e}; retrying");
                                    std::thread::sleep(std::time::Duration::from_millis(50));
                                    continue;
                                }
                            };
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            // A dropped connection is the client's
                            // problem, not the server's; a panicked one
                            // (poisoned lock, engine invariant assert)
                            // must not take the worker thread with it.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let _ = serve_connection(&state, stream);
                                }));
                            if outcome.is_err() {
                                eprintln!("connection handler panicked; worker continues");
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ServerHandle {
            stop,
            addr: self.addr,
            workers,
        }
    }
}

/// Handle to a running server: keeps it alive, stops it on demand.
#[derive(Debug)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until every worker exits (i.e. forever, unless another
    /// thread calls [`stop`](Self::stop) — the serve-forever mode of
    /// `tim serve`).
    pub fn wait(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Stops accepting, wakes blocked workers, and joins them. In-flight
    /// connections finish their current accept/serve cycle first.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Release);
        // One wake-up connection per worker: each blocked accept consumes
        // exactly one, re-checks the flag, and exits.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Serves one connection: one answer line per request line, until EOF.
fn serve_connection<M: DiffusionModel + Send + Sync + Clone + 'static>(
    state: &ServerState<M>,
    stream: TcpStream,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    // Limit covers content + newline, so content of exactly
    // MAX_LINE_BYTES is still accepted (the limit is on the line
    // *excluding* its terminator — see docs/PROTOCOL.md).
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_LINE_BYTES + 2);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        reader.set_limit(MAX_LINE_BYTES + 2);
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break; // EOF: client is done.
        }
        let content_len = n - usize::from(line.ends_with('\n'));
        if content_len as u64 > MAX_LINE_BYTES {
            writer.write_all(b"error: request line exceeds the 1 MiB limit\n")?;
            writer.flush()?;
            // Closing with unread bytes in the receive buffer would RST
            // the connection and may discard the error line before the
            // client reads it. Drain (bounded) so the close is graceful.
            let _ = writer.shutdown(std::net::Shutdown::Write);
            let mut raw = reader.into_inner();
            let mut sink = [0u8; 8192];
            let mut drained: u64 = 0;
            while drained < 64 * MAX_LINE_BYTES {
                match raw.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => drained += n as u64,
                }
            }
            return Ok(());
        }
        if let Some(answer) = state.handle(&line) {
            writer.write_all(answer.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::IndependentCascade;
    use tim_graph::{gen, weights};

    fn state(pool_cache: usize) -> ServerState<IndependentCascade> {
        let mut g = gen::barabasi_albert(150, 3, 0.0, 1);
        weights::assign_weighted_cascade(&mut g);
        let n = g.n();
        ServerState::new(
            g,
            LabelMap::identity(n),
            IndependentCascade,
            "ic",
            ServerConfig {
                threads: 2,
                pool_cache,
                epsilon: 1.0,
                ell: 1.0,
                seed: 3,
                k_max: 4,
                sample_threads: 1,
                verbose: false,
            },
        )
    }

    #[test]
    fn handle_routes_overrides_to_their_own_pool() {
        let s = state(4);
        assert_eq!(s.cached_pools(), 0);
        assert!(s.handle("select 2").unwrap().starts_with("seeds: "));
        assert_eq!(s.cached_pools(), 1, "default pool built");
        assert!(s.handle("select 2 eps=0.9").unwrap().starts_with("seeds: "));
        assert_eq!(s.cached_pools(), 2, "override pool built");
        // Same override again: reuse, not rebuild.
        s.handle("select 2 eps=0.9").unwrap();
        assert_eq!(s.cached_pools(), 2);
        // eval/marginal/fast go to the default pool.
        assert!(s.handle("eval 0,1").unwrap().starts_with("spread: "));
        assert!(s.handle("marginal 0 1").unwrap().starts_with("marginal: "));
        assert!(s.handle("select 2 fast").unwrap().starts_with("seeds: "));
        assert_eq!(s.cached_pools(), 2);
    }

    #[test]
    fn handle_answers_ping_without_building_a_pool() {
        let s = state(1);
        assert_eq!(s.handle("ping").unwrap(), "pong tim/1");
        assert_eq!(s.cached_pools(), 0);
        assert_eq!(s.handle("# comment"), None);
        assert_eq!(s.handle(""), None);
        assert!(s.handle("nonsense").unwrap().starts_with("error: "));
        assert_eq!(s.cached_pools(), 0);
    }

    #[test]
    fn explicit_defaults_share_the_default_pool() {
        let s = state(2);
        s.handle("select 2").unwrap();
        // eps equal to the default maps to the same provenance key.
        s.handle("select 2 eps=1.0").unwrap();
        assert_eq!(s.cached_pools(), 1);
        assert_eq!(s.cache_stats().misses, 1);
    }

    #[test]
    fn server_start_and_stop_shut_down_cleanly() {
        let s = Arc::new(state(2));
        let server = Server::bind(Arc::clone(&s), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.start();
        // A quick live round trip before shutdown.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"ping\n").unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buf = String::new();
        BufReader::new(&mut conn).read_line(&mut buf).unwrap();
        assert_eq!(buf.trim_end(), "pong tim/1");
        handle.stop();
    }
}
