//! LRU cache of shared query engines, keyed by pool provenance, with an
//! optional persistent [`PoolStore`] behind it.
//!
//! A serving process sees a *mix* of query configurations: most clients
//! use the deployment defaults, a few ask for a tighter ε or a different
//! ℓ. Each distinct `(graph checksum, model, seed, ε, ℓ)` tuple is its
//! own pool provenance (exactly what `.timp` files pin), so the cache
//! maps that tuple to an [`Arc<SharedEngine>`] — reusing warm pools across
//! connections and lazily building cold ones.
//!
//! With a store attached ([`PoolCache::with_store`]) the cache is
//! **read-through and write-through**: a miss probes the store before
//! sampling (cold miss → disk probe → build only on a true miss), a
//! fresh build is spilled back to disk, and eviction spills a pool that
//! grew since its last spill instead of destroying the work. Warm state
//! thereby survives both eviction and process restarts. With
//! `mmap_pools` on, v2 spills restore as verified zero-copy mappings
//! ([`tim_engine::PoolMmap`]) instead of heap decodes — same answers,
//! no per-restore allocation or index rebuild.
//!
//! Two locking properties matter for serving:
//!
//! - The cache's own mutex is held only for map bookkeeping (lookup,
//!   LRU bump, eviction) — never while sampling or touching disk. A cold
//!   miss resolves on an entry-local [`OnceLock`], so concurrent requests
//!   for the *same* cold key probe/build once (the rest block on that
//!   entry only), and requests for *other* keys are never blocked.
//! - Eviction drops the cache's reference; connections already holding
//!   the `Arc` keep answering against the evicted pool until they finish.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tim_diffusion::BackingModel;
use tim_engine::{PoolId, PoolStore, ProbedPool, SharedEngine};

/// Pool-cache key: the full provenance a pool depends on — exactly the
/// tuple a [`PoolStore`] keys files by, so the cache key *is* the store
/// id (one type, no conversion, impossible to desynchronize). Float
/// parameters are keyed by their exact bit patterns (the same convention
/// `.timp` provenance headers and the engine's plan cache use).
pub type PoolKey = PoolId;

/// Cache effectiveness counters (monotone since construction). The
/// warm-restart claim is checked against these: a restart that serves a
/// previously seen query mix from a pool store shows `loads > 0` and
/// `builds == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an in-memory entry (possibly still resolving).
    pub hits: u64,
    /// Lookups that found no in-memory entry.
    pub misses: u64,
    /// Misses resolved by sampling a pool from scratch (true cold).
    pub builds: u64,
    /// Misses resolved by loading a pool from the store (warm restart /
    /// post-eviction path).
    pub loads: u64,
    /// Pools written (back) to the store — write-through on build,
    /// eviction of a grown pool, or an explicit persist.
    pub spills: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
}

struct Entry<M> {
    engine: OnceLock<Arc<SharedEngine<M>>>,
}

struct Slot<M> {
    last_used: u64,
    entry: Arc<Entry<M>>,
    /// The engine's growth epoch at the last spill into the store;
    /// `None` = this cache never spilled it. A larger current epoch
    /// means the on-disk file is stale.
    spilled_epoch: Option<u64>,
}

struct Inner<M> {
    tick: u64,
    entries: HashMap<PoolKey, Slot<M>>,
    evictions: u64,
}

/// An evicted engine, carried out of the lock so its farewell spill (if
/// it grew) happens without blocking the cache.
struct Evicted<M> {
    engine: Option<Arc<SharedEngine<M>>>,
    spilled_epoch: Option<u64>,
}

/// An LRU cache of [`SharedEngine`]s keyed by [`PoolKey`], optionally
/// backed by a persistent [`PoolStore`]; see the module docs for the
/// locking and write-through contracts.
pub struct PoolCache<M> {
    capacity: usize,
    store: Option<Arc<PoolStore>>,
    /// Automatic write-back (spill on build / eviction / sync) enabled.
    /// [`spill_dirty`](Self::spill_dirty) works regardless — it is the
    /// explicit-persist path.
    persist: bool,
    /// Restore v2 spills as zero-copy mappings ([`ProbedPool::Mapped`])
    /// instead of heap decodes. Mapped restores are checksum-verified
    /// here, before the pool can serve — a corrupt file is quarantined
    /// and the miss falls through to a build, exactly like a failed
    /// heap decode.
    mmap_pools: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    loads: AtomicU64,
    spills: AtomicU64,
    /// Serializes the whole read-epoch → snapshot → write → record
    /// sequence of a spill. Without it, two concurrent spills of one key
    /// could publish the *older* snapshot last while the slot records
    /// the *newer* epoch as clean — permanently losing the growth on
    /// disk. Spills are rare (build, growth flush, eviction, persist),
    /// so one cache-wide mutex is fine; it is never held while the map
    /// mutex is wanted.
    spill_lock: Mutex<()>,
    inner: Mutex<Inner<M>>,
}

impl<M> std::fmt::Debug for PoolCache<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.inner.lock().map(|i| i.entries.len());
        f.debug_struct("PoolCache")
            .field("capacity", &self.capacity)
            .field("len", &len.unwrap_or(0))
            .field(
                "store",
                &self.store.as_ref().map(|s| s.root().to_path_buf()),
            )
            .field("persist", &self.persist)
            .finish()
    }
}

const POISONED: &str = "pool cache mutex poisoned";

impl<M: BackingModel + Clone> PoolCache<M> {
    /// Creates an empty in-memory cache holding at most `capacity`
    /// engines (no persistent store: eviction discards, restarts rebuild).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "pool cache capacity must be at least 1");
        PoolCache {
            capacity,
            store: None,
            persist: false,
            mmap_pools: false,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            spill_lock: Mutex::new(()),
            inner: Mutex::new(Inner {
                tick: 0,
                entries: HashMap::new(),
                evictions: 0,
            }),
        }
    }

    /// Creates a cache backed by a persistent store. Misses probe the
    /// store before building. `persist` enables automatic write-back
    /// (spill on build, on eviction of a grown pool, and on
    /// [`spill_dirty`](Self::spill_dirty) sync); without it the store is
    /// read-only until an explicit [`spill_dirty`](Self::spill_dirty).
    /// `mmap_pools` restores v2 spills as verified zero-copy mappings
    /// instead of heap decodes (v1 files fall back to the heap
    /// transparently); answers are byte-identical either way.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_store(
        capacity: usize,
        store: Arc<PoolStore>,
        persist: bool,
        mmap_pools: bool,
    ) -> Self {
        let mut cache = Self::new(capacity);
        cache.store = Some(store);
        cache.persist = persist;
        cache.mmap_pools = mmap_pools;
        cache
    }

    /// The persistent store behind this cache, if any.
    pub fn store(&self) -> Option<&Arc<PoolStore>> {
        self.store.as_ref()
    }

    /// Looks up `key`, resolving a miss by store probe first
    /// (`restore` attaches a loaded [`ProbedPool`] — heap-decoded or
    /// zero-copy mapped — to the caller's graph; a restore failure
    /// quarantines the file) and samples from scratch with `build` only
    /// on a true miss. Resolution runs without the cache lock;
    /// concurrent callers of the same cold key share one probe/build.
    pub fn get_or_load(
        &self,
        key: &PoolKey,
        restore: impl FnOnce(ProbedPool) -> Result<SharedEngine<M>, String>,
        build: impl FnOnce() -> SharedEngine<M>,
    ) -> Arc<SharedEngine<M>> {
        let (entry, evicted) = self.lookup(key);
        if let Some(evicted) = evicted {
            self.farewell_spill(evicted);
        }
        let mut resolved_fresh = false;
        let mut loaded = false;
        let engine = Arc::clone(entry.engine.get_or_init(|| {
            resolved_fresh = true;
            if let Some(pool) = self.store_probe(key) {
                match restore(pool) {
                    Ok(engine) => {
                        loaded = true;
                        self.loads.fetch_add(1, Ordering::Relaxed);
                        return Arc::new(engine);
                    }
                    Err(e) => {
                        // The file matched its name but not the served
                        // graph/config — foreign state; get it out of
                        // the store and rebuild.
                        if let Some(store) = &self.store {
                            store.quarantine_id(key, &e);
                        }
                    }
                }
            }
            self.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(build())
        }));
        if resolved_fresh && self.store.is_some() {
            if loaded {
                // The on-disk file equals the pool as restored, i.e. at
                // growth epoch 0 (a freshly constructed engine). Record
                // exactly 0 — reading the *current* epoch here would let
                // growth racing between the restore and this line be
                // marked clean and never written back.
                self.note_spilled(key, &entry, 0);
            } else if self.persist {
                // Write-through: a freshly sampled pool is warm state
                // worth keeping; spill before anyone can lose it.
                self.spill_entry(key, &entry, &engine);
            }
        }
        engine
    }

    /// [`get_or_load`](Self::get_or_load) without a restore path: misses
    /// build directly, skipping any store probe. For callers that cannot
    /// attach persisted pools (tests, store-less deployments).
    pub fn get_or_build(
        &self,
        key: &PoolKey,
        build: impl FnOnce() -> SharedEngine<M>,
    ) -> Arc<SharedEngine<M>> {
        let (entry, evicted) = self.lookup(key);
        if let Some(evicted) = evicted {
            self.farewell_spill(evicted);
        }
        let engine = Arc::clone(entry.engine.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(build())
        }));
        engine
    }

    /// Map bookkeeping for a lookup: bump/insert the slot, count the
    /// hit/miss, pick an eviction victim when over capacity. Holds the
    /// cache lock only for this.
    fn lookup(&self, key: &PoolKey) -> (Arc<Entry<M>>, Option<Evicted<M>>) {
        let mut inner = self.inner.lock().expect(POISONED);
        inner.tick += 1;
        let tick = inner.tick;
        if inner.entries.contains_key(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let slot = inner.entries.get_mut(key).expect("entry just checked");
            slot.last_used = tick;
            return (Arc::clone(&slot.entry), None);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let evicted = if inner.entries.len() >= self.capacity {
            Self::evict_lru(&mut inner)
        } else {
            None
        };
        let entry = Arc::new(Entry {
            engine: OnceLock::new(),
        });
        inner.entries.insert(
            key.clone(),
            Slot {
                last_used: tick,
                entry: Arc::clone(&entry),
                spilled_epoch: None,
            },
        );
        (entry, evicted)
    }

    fn store_probe(&self, key: &PoolKey) -> Option<ProbedPool> {
        let store = self.store.as_ref()?;
        let found = match store.probe_backed(key, self.mmap_pools) {
            Ok(found) => found?,
            Err(e) => {
                // IO trouble (permissions, disk): serving must not die —
                // fall through to a build, like a store-less cache.
                eprintln!(
                    "pool store: probe failed in {} ({e}); rebuilding",
                    store.root().display()
                );
                return None;
            }
        };
        if let ProbedPool::Mapped(mapped) = &found {
            // Mapping defers the section checksums; pay them here, once,
            // before the pool can serve. The scan is sequential (and
            // prefaults the pages selection will touch) — it replaces
            // v1's read-everything + decode + index rebuild, not adds
            // to it. A mismatch is corruption: quarantine and rebuild.
            if let Err(e) = store.verify_mapped(mapped) {
                store.quarantine_id(key, &e.to_string());
                return None;
            }
        }
        Some(found)
    }

    /// Spills `engine`'s pool and records the spilled epoch on the slot.
    /// Returns whether the pool actually reached the store — callers
    /// reporting persistence (the `persist` verb) must not claim success
    /// on a failed write.
    fn spill_entry(
        &self,
        key: &PoolKey,
        entry: &Arc<Entry<M>>,
        engine: &Arc<SharedEngine<M>>,
    ) -> bool {
        let Some(store) = &self.store else {
            return false;
        };
        // One spill at a time: epoch-read, snapshot, disk write, and the
        // epoch record must not interleave with another spill of the
        // same key, or the older snapshot could land on disk last while
        // the newer epoch is recorded as clean.
        let _serialized = self.spill_lock.lock().expect(POISONED);
        // Read the epoch BEFORE snapshotting: growth that races with the
        // snapshot stays "dirty" and re-spills later, never the reverse.
        let epoch = engine.growth_epoch();
        match store.spill(&engine.to_pool()) {
            Ok(_) => {
                self.spills.fetch_add(1, Ordering::Relaxed);
                self.note_spilled(key, entry, epoch);
                true
            }
            Err(e) => {
                eprintln!(
                    "pool store: spill failed in {} ({e}); pool stays in memory only",
                    store.root().display()
                );
                false
            }
        }
    }

    /// Records that the on-disk file equals the pool at `epoch`, if the
    /// slot still holds this entry (it may have been evicted meanwhile).
    fn note_spilled(&self, key: &PoolKey, entry: &Arc<Entry<M>>, epoch: u64) {
        let mut inner = self.inner.lock().expect(POISONED);
        if let Some(slot) = inner.entries.get_mut(key) {
            if Arc::ptr_eq(&slot.entry, entry) {
                slot.spilled_epoch = Some(slot.spilled_epoch.map_or(epoch, |s| s.max(epoch)));
            }
        }
    }

    /// Spills an evicted engine whose pool grew since its last spill —
    /// eviction must not destroy warm state. Runs outside the cache lock.
    fn farewell_spill(&self, evicted: Evicted<M>) {
        if !self.persist {
            return;
        }
        let Some(store) = &self.store else { return };
        let Some(engine) = evicted.engine else { return };
        // Same serialization as spill_entry: the farewell snapshot must
        // not land on disk after a newer spill of the same provenance.
        let _serialized = self.spill_lock.lock().expect(POISONED);
        let epoch = engine.growth_epoch();
        if evicted.spilled_epoch.is_some_and(|s| s >= epoch) {
            return; // on-disk copy is current
        }
        match store.spill(&engine.to_pool()) {
            Ok(_) => {
                self.spills.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => eprintln!(
                "pool store: eviction spill failed in {} ({e}); work lost on restart",
                store.root().display()
            ),
        }
    }

    /// Pre-seeds the cache (e.g. with an engine restored from a `.timp`
    /// file at startup), evicting the LRU entry if the cache is full.
    /// Replaces any existing entry for the key.
    pub fn insert(&self, key: PoolKey, engine: SharedEngine<M>) -> Arc<SharedEngine<M>> {
        let shared = Arc::new(engine);
        let entry = Entry {
            engine: OnceLock::new(),
        };
        entry
            .engine
            .set(Arc::clone(&shared))
            .ok()
            .expect("fresh OnceLock");
        let evicted = {
            let mut inner = self.inner.lock().expect(POISONED);
            inner.tick += 1;
            let tick = inner.tick;
            let evicted =
                if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
                    Self::evict_lru(&mut inner)
                } else {
                    None
                };
            inner.entries.insert(
                key,
                Slot {
                    last_used: tick,
                    entry: Arc::new(entry),
                    spilled_epoch: None,
                },
            );
            evicted
        };
        if let Some(evicted) = evicted {
            self.farewell_spill(evicted);
        }
        shared
    }

    /// Spills every resolved pool whose on-disk copy is absent or stale
    /// into the store, returning how many were written. This is the
    /// explicit-persist path (the `persist` admin verb, session sync,
    /// graceful shutdown): it works even when automatic write-back is
    /// off. A no-op (0) without a store.
    pub fn spill_dirty(&self) -> usize {
        if self.store.is_none() {
            return 0;
        }
        let snapshot: Vec<(PoolKey, Arc<Entry<M>>, Option<u64>)> = {
            let inner = self.inner.lock().expect(POISONED);
            inner
                .entries
                .iter()
                .map(|(k, s)| (k.clone(), Arc::clone(&s.entry), s.spilled_epoch))
                .collect()
        };
        let mut written = 0;
        for (key, entry, spilled) in snapshot {
            let Some(engine) = entry.engine.get() else {
                continue; // still resolving; its own path will spill it
            };
            let epoch = engine.growth_epoch();
            if spilled.is_some_and(|s| s >= epoch) {
                continue;
            }
            if self.spill_entry(&key, &entry, engine) {
                written += 1;
            }
        }
        written
    }

    fn evict_lru(inner: &mut Inner<M>) -> Option<Evicted<M>> {
        let oldest = inner
            .entries
            .iter()
            .min_by_key(|(_, s)| s.last_used)
            .map(|(k, _)| k.clone())?;
        let slot = inner.entries.remove(&oldest)?;
        inner.evictions += 1;
        Some(Evicted {
            engine: slot.entry.engine.get().cloned(),
            spilled_epoch: slot.spilled_epoch,
        })
    }

    /// True when `key` currently has an entry (does not touch LRU order).
    pub fn contains(&self, key: &PoolKey) -> bool {
        self.inner.lock().expect(POISONED).entries.contains_key(key)
    }

    /// Number of cached entries (including ones still resolving).
    pub fn len(&self) -> usize {
        self.inner.lock().expect(POISONED).entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            evictions: self.inner.lock().expect(POISONED).evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tim_diffusion::IndependentCascade;
    use tim_engine::QueryEngine;
    use tim_graph::snapshot::graph_checksum;
    use tim_graph::{gen, weights, Graph};

    fn graph() -> Arc<Graph> {
        let mut g = gen::barabasi_albert(120, 3, 0.0, 1);
        weights::assign_weighted_cascade(&mut g);
        Arc::new(g)
    }

    fn key(eps: f64) -> PoolKey {
        PoolKey::new(7, "ic", 0, eps, 1.0)
    }

    /// A provenance-true key for `g` at `eps` — required by store-backed
    /// tests, where the spilled file must match what restore validates.
    fn true_key(g: &Arc<Graph>, eps: f64) -> PoolKey {
        PoolKey::new(graph_checksum(g), "ic", 0, eps, 1.0)
    }

    fn cheap_engine(g: &Arc<Graph>, eps: f64) -> SharedEngine<IndependentCascade> {
        let mut engine = QueryEngine::new(Arc::clone(g), IndependentCascade, "ic")
            .epsilon(eps)
            .threads(1)
            .k_max(2);
        engine.warm();
        SharedEngine::new(engine)
    }

    fn restore(
        g: &Arc<Graph>,
        pool: ProbedPool,
    ) -> Result<SharedEngine<IndependentCascade>, String> {
        match pool {
            ProbedPool::Heap(pool) => {
                QueryEngine::from_pool(Arc::clone(g), IndependentCascade, "ic", pool)
            }
            ProbedPool::Mapped(mapped) => QueryEngine::from_mapped_pool(
                tim_graph::GraphStore::from_arc(Arc::clone(g)),
                IndependentCascade,
                "ic",
                mapped,
            ),
        }
        .map(SharedEngine::new)
        .map_err(|e| e.to_string())
    }

    fn tmp_store(tag: &str) -> (std::path::PathBuf, Arc<PoolStore>) {
        let dir =
            std::env::temp_dir().join(format!("tim_cache_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        (dir.clone(), Arc::new(PoolStore::open(dir).unwrap()))
    }

    #[test]
    fn key_round_trips_floats_bit_exactly() {
        let k = key(0.1);
        assert_eq!(k.epsilon(), 0.1);
        assert_eq!(k.ell(), 1.0);
        assert_ne!(key(0.1), key(0.1 + f64::EPSILON));
        // PoolKey IS the store id — same type, no conversion.
        let id: PoolId = k;
        assert_eq!(id.epsilon(), 0.1);
        assert_eq!(id.model, "ic");
    }

    #[test]
    fn hit_returns_the_same_engine_and_counts() {
        let g = graph();
        let cache = PoolCache::new(2);
        let built = AtomicUsize::new(0);
        let a = cache.get_or_build(&key(1.0), || {
            built.fetch_add(1, Ordering::SeqCst);
            cheap_engine(&g, 1.0)
        });
        let b = cache.get_or_build(&key(1.0), || {
            built.fetch_add(1, Ordering::SeqCst);
            cheap_engine(&g, 1.0)
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                builds: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn lru_entry_is_evicted_and_rebuilt_on_return() {
        let g = graph();
        let cache = PoolCache::new(2);
        let build = |eps: f64| cheap_engine(&g, eps);
        let first = cache.get_or_build(&key(1.0), || build(1.0));
        cache.get_or_build(&key(0.9), || build(0.9));
        // Touch 1.0 so 0.9 becomes the LRU victim.
        cache.get_or_build(&key(1.0), || build(1.0));
        cache.get_or_build(&key(0.8), || build(0.8));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&key(1.0)));
        assert!(!cache.contains(&key(0.9)));
        assert!(cache.contains(&key(0.8)));
        assert_eq!(cache.stats().evictions, 1);

        // The surviving key still serves the original engine…
        let again = cache.get_or_build(&key(1.0), || build(1.0));
        assert!(Arc::ptr_eq(&first, &again));
        // …and the evicted key is a cold miss again.
        let miss_before = cache.stats().misses;
        cache.get_or_build(&key(0.9), || build(0.9));
        assert_eq!(cache.stats().misses, miss_before + 1);
    }

    #[test]
    fn concurrent_cold_misses_build_once() {
        let g = graph();
        let cache = Arc::new(PoolCache::new(2));
        let built = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let (cache, built, g) = (Arc::clone(&cache), Arc::clone(&built), Arc::clone(&g));
                std::thread::spawn(move || {
                    let e = cache.get_or_build(&key(1.0), || {
                        built.fetch_add(1, Ordering::SeqCst);
                        // Make the build window wide enough to overlap.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        cheap_engine(&g, 1.0)
                    });
                    e.pool_theta()
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(built.load(Ordering::SeqCst), 1, "exactly one build");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_preseeds_and_replaces() {
        let g = graph();
        let cache = PoolCache::new(1);
        cache.insert(key(1.0), cheap_engine(&g, 1.0));
        assert_eq!(cache.len(), 1);
        let built = AtomicUsize::new(0);
        let e = cache.get_or_build(&key(1.0), || {
            built.fetch_add(1, Ordering::SeqCst);
            cheap_engine(&g, 1.0)
        });
        assert_eq!(built.load(Ordering::SeqCst), 0, "pre-seeded entry serves");
        assert_eq!(e.warmed_k(), 2);
        // Inserting a different key in a full cache evicts the LRU.
        cache.insert(key(0.5), cheap_engine(&g, 0.5));
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&key(0.5)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn store_backed_miss_builds_spills_then_restores() {
        let g = graph();
        let (dir, store) = tmp_store("roundtrip");
        let k = true_key(&g, 1.0);

        // First process: true miss → build → write-through spill.
        let cache = PoolCache::with_store(2, Arc::clone(&store), true, false);
        let want = cache
            .get_or_load(&k, |p| restore(&g, p), || cheap_engine(&g, 1.0))
            .select(2)
            .seeds;
        let s = cache.stats();
        assert_eq!((s.builds, s.loads, s.spills), (1, 0, 1));
        assert_eq!(store.len(), 1, "pool on disk");

        // Second process (fresh cache, same store): disk hit, no build.
        let cache2 = PoolCache::with_store(2, Arc::clone(&store), true, false);
        let built = AtomicUsize::new(0);
        let got = cache2
            .get_or_load(
                &k,
                |p| restore(&g, p),
                || {
                    built.fetch_add(1, Ordering::SeqCst);
                    cheap_engine(&g, 1.0)
                },
            )
            .select(2)
            .seeds;
        assert_eq!(built.load(Ordering::SeqCst), 0, "zero rebuilds");
        assert_eq!(got, want, "restored pool answers byte-identically");
        let s = cache2.stats();
        assert_eq!((s.builds, s.loads, s.spills), (0, 1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_restore_serves_mapped_verified_and_identical() {
        let g = graph();
        let (dir, store) = tmp_store("mmap");
        let k = true_key(&g, 1.0);

        // First process: build + write-through (spills are v2 by default).
        let cache = PoolCache::with_store(2, Arc::clone(&store), true, false);
        let want = cache
            .get_or_load(&k, |p| restore(&g, p), || cheap_engine(&g, 1.0))
            .select(2)
            .seeds;

        // Second process with mmap_pools on: zero-copy restore, verified,
        // no rebuild, identical answers.
        let cache2 = PoolCache::with_store(2, Arc::clone(&store), true, true);
        let built = AtomicUsize::new(0);
        let engine = cache2.get_or_load(
            &k,
            |p| {
                assert!(matches!(p, ProbedPool::Mapped(_)), "v2 spill must map");
                restore(&g, p)
            },
            || {
                built.fetch_add(1, Ordering::SeqCst);
                cheap_engine(&g, 1.0)
            },
        );
        assert_eq!(built.load(Ordering::SeqCst), 0, "zero rebuilds");
        assert_eq!(engine.select(2).seeds, want, "mapped answers identically");
        let s = store.stats();
        assert_eq!((s.mmap_opens, s.verifies, s.heap_loads), (1, 1, 0));
        assert_eq!(cache2.stats().loads, 1);

        // Growth falls back to the heap and re-dirties the slot; the
        // explicit persist spills the grown pool as a fresh v2 file.
        engine.select_with(2, Some(0.3), None);
        assert_eq!(cache2.spill_dirty(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_spills_grown_pools_and_skips_clean_ones() {
        let g = graph();
        let (dir, store) = tmp_store("evict");
        let cache = PoolCache::with_store(1, Arc::clone(&store), true, false);
        let k1 = true_key(&g, 1.0);
        let e = cache.get_or_load(&k1, |p| restore(&g, p), || cheap_engine(&g, 1.0));
        assert_eq!(cache.stats().spills, 1, "write-through at build");
        // Grow the pool past what was spilled.
        assert!(e.select_with(2, Some(0.3), None).resampled);
        assert_eq!(e.growth_epoch(), 1);
        let theta_grown = e.pool_theta();

        // A second key evicts the first → farewell spill of the growth.
        cache.get_or_load(
            &true_key(&g, 0.9),
            |p| restore(&g, p),
            || cheap_engine(&g, 0.9),
        );
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().spills, 3, "build spill ×2 + farewell spill");
        let reloaded = store.probe(&k1).unwrap().expect("still stored");
        assert_eq!(reloaded.meta.theta, theta_grown, "growth preserved");

        // Evicting the (clean, just-spilled) second entry writes nothing.
        let spills_before = cache.stats().spills;
        cache.get_or_load(&k1, |p| restore(&g, p), || cheap_engine(&g, 1.0));
        assert_eq!(cache.stats().loads, 1, "evicted pool restored from disk");
        assert_eq!(
            cache.stats().spills,
            spills_before,
            "clean eviction is free"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_dirty_persists_growth_even_without_auto_writeback() {
        let g = graph();
        let (dir, store) = tmp_store("dirty");
        // persist = false: the store is read-only until an explicit call.
        let cache = PoolCache::with_store(2, Arc::clone(&store), false, false);
        let k = true_key(&g, 1.0);
        let e = cache.get_or_load(&k, |p| restore(&g, p), || cheap_engine(&g, 1.0));
        assert_eq!(cache.stats().spills, 0, "no automatic write-back");
        assert!(store.is_empty());

        assert_eq!(cache.spill_dirty(), 1, "explicit persist writes it");
        assert_eq!(store.len(), 1);
        assert_eq!(cache.spill_dirty(), 0, "already clean");
        // Growth re-dirties it.
        e.select_with(2, Some(0.3), None);
        assert_eq!(cache.spill_dirty(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_stored_pool_falls_back_to_a_build() {
        let g = graph();
        let (dir, store) = tmp_store("fallback");
        let k = true_key(&g, 1.0);
        {
            let cache = PoolCache::with_store(2, Arc::clone(&store), true, false);
            cache.get_or_load(&k, |p| restore(&g, p), || cheap_engine(&g, 1.0));
        }
        // Corrupt the stored file.
        let path = store.path_for(&k);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();

        let cache2 = PoolCache::with_store(2, Arc::clone(&store), true, false);
        let built = AtomicUsize::new(0);
        cache2.get_or_load(
            &k,
            |p| restore(&g, p),
            || {
                built.fetch_add(1, Ordering::SeqCst);
                cheap_engine(&g, 1.0)
            },
        );
        assert_eq!(built.load(Ordering::SeqCst), 1, "corrupt file → rebuild");
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(cache2.stats().loads, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = PoolCache::<IndependentCascade>::new(0);
    }
}
