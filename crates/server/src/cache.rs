//! LRU cache of shared query engines, keyed by pool provenance.
//!
//! A serving process sees a *mix* of query configurations: most clients
//! use the deployment defaults, a few ask for a tighter ε or a different
//! ℓ. Each distinct `(graph checksum, model, seed, ε, ℓ)` tuple is its
//! own pool provenance (exactly what `.timp` files pin), so the cache
//! maps that tuple to an [`Arc<SharedEngine>`] — reusing warm pools across
//! connections and lazily building cold ones.
//!
//! Two locking properties matter for serving:
//!
//! - The cache's own mutex is held only for map bookkeeping (lookup,
//!   LRU bump, eviction) — never while sampling. A cold build runs on an
//!   entry-local [`OnceLock`], so concurrent requests for the *same* cold
//!   key build once (the rest block on that entry only), and requests for
//!   *other* keys are never blocked by a build.
//! - Eviction drops the cache's reference; connections already holding
//!   the `Arc` keep answering against the evicted pool until they finish.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use tim_diffusion::DiffusionModel;
use tim_engine::SharedEngine;

/// Pool-cache key: the full provenance a pool depends on. Float
/// parameters are keyed by their exact bit patterns (the same convention
/// `.timp` provenance headers and the engine's plan cache use).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PoolKey {
    /// `tim_graph::snapshot::graph_checksum` of the graph (covers
    /// adjacency and probabilities, hence the weight model).
    pub graph_checksum: u64,
    /// Diffusion-model tag (`"ic"` / `"lt"`).
    pub model: String,
    /// Run seed queries replicate.
    pub seed: u64,
    /// Bit pattern of ε.
    pub epsilon_bits: u64,
    /// Bit pattern of ℓ.
    pub ell_bits: u64,
}

impl PoolKey {
    /// Builds a key from the provenance tuple.
    pub fn new(
        graph_checksum: u64,
        model: impl Into<String>,
        seed: u64,
        eps: f64,
        ell: f64,
    ) -> Self {
        PoolKey {
            graph_checksum,
            model: model.into(),
            seed,
            epsilon_bits: eps.to_bits(),
            ell_bits: ell.to_bits(),
        }
    }

    /// The ε this key was built with.
    pub fn epsilon(&self) -> f64 {
        f64::from_bits(self.epsilon_bits)
    }

    /// The ℓ this key was built with.
    pub fn ell(&self) -> f64 {
        f64::from_bits(self.ell_bits)
    }
}

/// Cache effectiveness counters (monotone since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry (possibly still building).
    pub hits: u64,
    /// Lookups that inserted a new entry.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
}

struct Entry<M> {
    engine: OnceLock<Arc<SharedEngine<M>>>,
}

struct Slot<M> {
    last_used: u64,
    entry: Arc<Entry<M>>,
}

struct Inner<M> {
    tick: u64,
    entries: HashMap<PoolKey, Slot<M>>,
    stats: CacheStats,
}

/// An LRU cache of [`SharedEngine`]s keyed by [`PoolKey`]; see the
/// module docs for the locking contract.
pub struct PoolCache<M> {
    capacity: usize,
    inner: Mutex<Inner<M>>,
}

impl<M> std::fmt::Debug for PoolCache<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.inner.lock().map(|i| i.entries.len());
        f.debug_struct("PoolCache")
            .field("capacity", &self.capacity)
            .field("len", &len.unwrap_or(0))
            .finish()
    }
}

const POISONED: &str = "pool cache mutex poisoned";

impl<M: DiffusionModel + Sync + Clone> PoolCache<M> {
    /// Creates an empty cache holding at most `capacity` engines.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "pool cache capacity must be at least 1");
        PoolCache {
            capacity,
            inner: Mutex::new(Inner {
                tick: 0,
                entries: HashMap::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    /// Returns the engine for `key`, building it with `build` on a cold
    /// miss. The build runs without the cache lock; concurrent callers of
    /// the same cold key share one build.
    pub fn get_or_build(
        &self,
        key: &PoolKey,
        build: impl FnOnce() -> SharedEngine<M>,
    ) -> Arc<SharedEngine<M>> {
        let entry = {
            let mut inner = self.inner.lock().expect(POISONED);
            inner.tick += 1;
            let tick = inner.tick;
            if inner.entries.contains_key(key) {
                inner.stats.hits += 1;
                let slot = inner.entries.get_mut(key).expect("entry just checked");
                slot.last_used = tick;
                Arc::clone(&slot.entry)
            } else {
                inner.stats.misses += 1;
                if inner.entries.len() >= self.capacity {
                    Self::evict_lru(&mut inner);
                }
                let entry = Arc::new(Entry {
                    engine: OnceLock::new(),
                });
                inner.entries.insert(
                    key.clone(),
                    Slot {
                        last_used: tick,
                        entry: Arc::clone(&entry),
                    },
                );
                entry
            }
        };
        Arc::clone(entry.engine.get_or_init(|| Arc::new(build())))
    }

    /// Pre-seeds the cache (e.g. with an engine restored from a `.timp`
    /// file at startup), evicting the LRU entry if the cache is full.
    /// Replaces any existing entry for the key.
    pub fn insert(&self, key: PoolKey, engine: SharedEngine<M>) -> Arc<SharedEngine<M>> {
        let shared = Arc::new(engine);
        let entry = Entry {
            engine: OnceLock::new(),
        };
        entry
            .engine
            .set(Arc::clone(&shared))
            .ok()
            .expect("fresh OnceLock");
        let mut inner = self.inner.lock().expect(POISONED);
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            Self::evict_lru(&mut inner);
        }
        inner.entries.insert(
            key,
            Slot {
                last_used: tick,
                entry: Arc::new(entry),
            },
        );
        shared
    }

    fn evict_lru(inner: &mut Inner<M>) {
        if let Some(oldest) = inner
            .entries
            .iter()
            .min_by_key(|(_, s)| s.last_used)
            .map(|(k, _)| k.clone())
        {
            inner.entries.remove(&oldest);
            inner.stats.evictions += 1;
        }
    }

    /// True when `key` currently has an entry (does not touch LRU order).
    pub fn contains(&self, key: &PoolKey) -> bool {
        self.inner.lock().expect(POISONED).entries.contains_key(key)
    }

    /// Number of cached entries (including ones still building).
    pub fn len(&self) -> usize {
        self.inner.lock().expect(POISONED).entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect(POISONED).stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tim_diffusion::IndependentCascade;
    use tim_engine::QueryEngine;
    use tim_graph::{gen, weights, Graph};

    fn graph() -> Arc<Graph> {
        let mut g = gen::barabasi_albert(120, 3, 0.0, 1);
        weights::assign_weighted_cascade(&mut g);
        Arc::new(g)
    }

    fn key(eps: f64) -> PoolKey {
        PoolKey::new(7, "ic", 0, eps, 1.0)
    }

    fn cheap_engine(g: &Arc<Graph>, eps: f64) -> SharedEngine<IndependentCascade> {
        SharedEngine::new(
            QueryEngine::new(Arc::clone(g), IndependentCascade, "ic")
                .epsilon(eps)
                .threads(1)
                .k_max(2),
        )
    }

    #[test]
    fn key_round_trips_floats_bit_exactly() {
        let k = key(0.1);
        assert_eq!(k.epsilon(), 0.1);
        assert_eq!(k.ell(), 1.0);
        assert_ne!(key(0.1), key(0.1 + f64::EPSILON));
    }

    #[test]
    fn hit_returns_the_same_engine_and_counts() {
        let g = graph();
        let cache = PoolCache::new(2);
        let built = AtomicUsize::new(0);
        let a = cache.get_or_build(&key(1.0), || {
            built.fetch_add(1, Ordering::SeqCst);
            cheap_engine(&g, 1.0)
        });
        let b = cache.get_or_build(&key(1.0), || {
            built.fetch_add(1, Ordering::SeqCst);
            cheap_engine(&g, 1.0)
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn lru_entry_is_evicted_and_rebuilt_on_return() {
        let g = graph();
        let cache = PoolCache::new(2);
        let build = |eps: f64| cheap_engine(&g, eps);
        let first = cache.get_or_build(&key(1.0), || build(1.0));
        cache.get_or_build(&key(0.9), || build(0.9));
        // Touch 1.0 so 0.9 becomes the LRU victim.
        cache.get_or_build(&key(1.0), || build(1.0));
        cache.get_or_build(&key(0.8), || build(0.8));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&key(1.0)));
        assert!(!cache.contains(&key(0.9)));
        assert!(cache.contains(&key(0.8)));
        assert_eq!(cache.stats().evictions, 1);

        // The surviving key still serves the original engine…
        let again = cache.get_or_build(&key(1.0), || build(1.0));
        assert!(Arc::ptr_eq(&first, &again));
        // …and the evicted key is a cold miss again.
        let miss_before = cache.stats().misses;
        cache.get_or_build(&key(0.9), || build(0.9));
        assert_eq!(cache.stats().misses, miss_before + 1);
    }

    #[test]
    fn concurrent_cold_misses_build_once() {
        let g = graph();
        let cache = Arc::new(PoolCache::new(2));
        let built = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let (cache, built, g) = (Arc::clone(&cache), Arc::clone(&built), Arc::clone(&g));
                std::thread::spawn(move || {
                    let e = cache.get_or_build(&key(1.0), || {
                        built.fetch_add(1, Ordering::SeqCst);
                        // Make the build window wide enough to overlap.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        cheap_engine(&g, 1.0)
                    });
                    e.pool_theta()
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(built.load(Ordering::SeqCst), 1, "exactly one build");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_preseeds_and_replaces() {
        let g = graph();
        let cache = PoolCache::new(1);
        cache.insert(key(1.0), cheap_engine(&g, 1.0));
        assert_eq!(cache.len(), 1);
        let built = AtomicUsize::new(0);
        let e = cache.get_or_build(&key(1.0), || {
            built.fetch_add(1, Ordering::SeqCst);
            cheap_engine(&g, 1.0)
        });
        assert_eq!(built.load(Ordering::SeqCst), 0, "pre-seeded entry serves");
        assert_eq!(e.warmed_k(), 2);
        // Inserting a different key in a full cache evicts the LRU.
        cache.insert(key(0.5), cheap_engine(&g, 0.5));
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&key(0.5)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = PoolCache::<IndependentCascade>::new(0);
    }
}
