//! Per-connection protocol sessions: the `tim/3` state machine.
//!
//! `tim/1` was stateless per line; `tim/2` gives every connection a
//! [`Session`] holding the *current graph* (switched with `use`), a
//! cached handle to that graph's default engine (so steady-state queries
//! skip the pool-cache mutex entirely), and an optional pending `batch`.
//! `tim/3` adds the **admin stratum** (`attach` / `detach` / `persist` /
//! `stats pools`), executed here too but gated by the server's `--admin`
//! switch — without it every admin verb answers `error: …`. One
//! `Session` drives one `tim serve` TCP connection and one `tim query`
//! stdin session — the same code path, which is what keeps the two front
//! ends byte-identical by construction.
//!
//! Sessions also participate in warm-state persistence: when automatic
//! write-back is on (`--persist-pools`), the periodic catalog re-touch
//! doubles as a pool sync (grown pools flow back to the graph's
//! [`PoolStore`](tim_engine::PoolStore)), and session end flushes the
//! current graph once more.
//!
//! # Batching
//!
//! `batch <n>` announces that the next `n` lines form one unit. The
//! session buffers them, then executes them in order and returns all
//! answer lines at once — the transport writes them with a single flush.
//! Execution amortizes dispatch: engine routing is resolved per line
//! first, then each *run of consecutive same-engine queries* executes
//! under **one** read-lock acquisition ([`SharedEngine::read_handle`])
//! instead of one per line. Answers are byte-identical to sending the
//! same lines unbatched: per-line parsing, routing, and execution order
//! are unchanged — only locking and IO are amortized (enforced by the
//! `multi_graph` integration test).

use crate::catalog::GraphState;
use crate::protocol::{
    execute, parse_request, ping_reply, ParsedRequest, Query, QueryBackend, Reply, Request,
    MAX_BATCH_BYTES, OVERSIZED_BATCH_REPLY,
};
use crate::server::ServerState;
use std::sync::Arc;
use tim_diffusion::BackingModel;
use tim_engine::{EngineReadGuard, QueryOutcome, SharedEngine};
use tim_graph::NodeId;

/// A pending `batch <n>`: lines collected so far, with their byte total
/// (bounded by [`MAX_BATCH_BYTES`]).
#[derive(Debug)]
struct BatchCollect {
    expect: usize,
    lines: Vec<String>,
    bytes: usize,
}

/// Cached queries between catalog-LRU re-touches: a session that answers
/// thousands of lines from its cached graph handle still periodically
/// tells the catalog the graph is hot, so a busy tenant is not evicted
/// as "idle" just because its sessions are long-lived.
const TOUCH_EVERY: u32 = 64;

/// One protocol session: current graph, cached default engine, pending
/// batch. Create one per connection ([`ServerState::session`]) and feed
/// it request lines; every returned `Vec` holds the answer lines ready
/// to write (often one, empty for comments, a whole batch at once).
#[derive(Debug)]
pub struct Session<'s, M> {
    state: &'s ServerState<M>,
    current_name: String,
    current: Option<Arc<GraphState<M>>>,
    default_engine: Option<Arc<SharedEngine<M>>>,
    batch: Option<BatchCollect>,
    since_touch: u32,
    closed: bool,
}

impl<'s, M: BackingModel + Send + Clone + 'static> Session<'s, M> {
    /// Opens a session on the server's default graph.
    pub fn new(state: &'s ServerState<M>) -> Self {
        Session {
            state,
            current_name: state.default_graph().to_string(),
            current: None,
            default_engine: None,
            batch: None,
            since_touch: 0,
            closed: false,
        }
    }

    /// The name of the session's current graph.
    pub fn current_graph(&self) -> &str {
        &self.current_name
    }

    /// True after a protocol violation (a batch over [`MAX_BATCH_BYTES`])
    /// whose error line has been emitted: the transport must stop reading
    /// and close, exactly as for an oversized request line.
    pub fn closed(&self) -> bool {
        self.closed
    }

    /// Feeds one request line; returns the answer lines that are ready.
    ///
    /// Blank/comment lines and lines buffered into a pending batch return
    /// an empty `Vec`; a completed batch returns all of its answers at
    /// once. Callers must write the returned lines in order.
    pub fn push_line(&mut self, line: &str) -> Vec<String> {
        if self.closed {
            return Vec::new();
        }
        if let Some(batch) = &mut self.batch {
            batch.bytes += line.len();
            if batch.bytes > MAX_BATCH_BYTES {
                // A buffer-bomb batch is a framing violation like an
                // oversized line: answer once and end the session rather
                // than buffer without bound.
                self.batch = None;
                self.closed = true;
                return vec![OVERSIZED_BATCH_REPLY.to_string()];
            }
            batch.lines.push(line.to_string());
            if batch.lines.len() == batch.expect {
                let batch = self.batch.take().expect("batch just checked");
                return self.run_batch(&batch.lines);
            }
            return Vec::new();
        }
        match parse_request(line) {
            ParsedRequest::Empty => Vec::new(),
            ParsedRequest::Malformed(e) => vec![format!("error: {e}")],
            ParsedRequest::Request(Request::Batch(n)) => {
                self.batch = Some(BatchCollect {
                    expect: n,
                    lines: Vec::with_capacity(n.min(1024)),
                    bytes: 0,
                });
                Vec::new()
            }
            ParsedRequest::Request(req) => vec![self.answer(&req)],
        }
    }

    /// Ends the session: a batch still pending at EOF executes with the
    /// lines received so far (so a truncated batch answers exactly like
    /// the same lines sent unbatched). With automatic write-back on, the
    /// current graph's grown pools are flushed to its store. Returns the
    /// final answer lines.
    pub fn finish(&mut self) -> Vec<String> {
        let answers = match self.batch.take() {
            Some(batch) => self.run_batch(&batch.lines),
            None => Vec::new(),
        };
        if self.state.config().persist_pools {
            if let Some(graph) = &self.current {
                graph.sync_pools();
            }
        }
        answers
    }

    /// Answers one non-batch request.
    fn answer(&mut self, req: &Request) -> String {
        match req {
            // Liveness must not load graphs or build pools.
            Request::Query(Query::Ping) => ping_reply(),
            Request::Query(query) => match self.route(query) {
                Ok((graph, engine)) => {
                    self.reply_line(execute(&mut &*engine, graph.labels(), query))
                }
                Err(e) => format!("error: {e}"),
            },
            Request::Use(name) => {
                if self.state.catalog().contains(name) {
                    // Always drop the cached handles — even for the
                    // current name. `use` is the re-resolution point: a
                    // graph detached and re-attached under the same name
                    // must be picked up here, not answered forever from
                    // the drained old state.
                    self.release_current();
                    self.current_name = name.clone();
                    format!("using {name}")
                } else {
                    format!("error: use: unknown graph '{name}'")
                }
            }
            Request::Graphs => format!("graphs: {}", self.state.catalog().names().join(" ")),
            Request::Stats => match self.graph_state() {
                Ok(graph) => graph.stats_line(),
                Err(e) => format!("error: {e}"),
            },
            Request::Batch(_) => "error: batch: batches cannot nest".to_string(),
            Request::StatsPools => match self.admin("stats pools") {
                Err(e) => e,
                Ok(()) => match self.graph_state() {
                    Ok(graph) => graph.pools_line(),
                    Err(e) => format!("error: {e}"),
                },
            },
            Request::Attach {
                name,
                path,
                overrides,
            } => {
                match self.admin("attach") {
                    Err(e) => e,
                    Ok(()) => match self.state.catalog().attach_path(
                        name.clone(),
                        path,
                        overrides.clone(),
                    ) {
                        Ok(()) => format!("attached {name}"),
                        Err(e) => format!("error: attach: {e}"),
                    },
                }
            }
            Request::Detach(name) => match self.admin("detach") {
                Err(e) => e,
                Ok(()) => {
                    if name == self.state.default_graph() {
                        format!("error: detach: cannot detach the default graph '{name}'")
                    } else {
                        match self.state.catalog().detach(name) {
                            Ok(()) => format!("detached {name}"),
                            Err(e) => format!("error: detach: {e}"),
                        }
                    }
                }
            },
            Request::Persist => match self.admin("persist") {
                Err(e) => e,
                Ok(()) => {
                    if self.state.config().pool_dir.is_none() {
                        "error: persist: no --pool-dir configured".to_string()
                    } else {
                        let written: usize = self
                            .state
                            .catalog()
                            .loaded_states()
                            .iter()
                            .map(|s| s.sync_pools())
                            .sum();
                        format!("persisted {written} pool(s)")
                    }
                }
            },
        }
    }

    /// Drops the session's cached graph handles, flushing the outgoing
    /// graph's grown pools first (when write-back is on) — a session
    /// switching away must not strand dirty warm state behind a handle
    /// nobody syncs anymore.
    fn release_current(&mut self) {
        if let Some(graph) = self.current.take() {
            if self.state.config().persist_pools {
                graph.sync_pools();
            }
        }
        self.default_engine = None;
        self.since_touch = 0;
    }

    /// Gatekeeper for the `tim/3` admin stratum: `Err` carries the
    /// ready-made error line when the server runs without `--admin`.
    fn admin(&self, verb: &str) -> Result<(), String> {
        if self.state.config().admin {
            Ok(())
        } else {
            Err(format!(
                "error: {verb}: admin commands disabled (start with --admin)"
            ))
        }
    }

    /// The session's current graph state, loading it on first touch. The
    /// cached handle skips the catalog lock on the hot path; every
    /// [`TOUCH_EVERY`] uses the catalog's LRU is re-bumped so a busy
    /// graph behind long-lived sessions is never the eviction victim.
    fn graph_state(&mut self) -> Result<Arc<GraphState<M>>, String> {
        if let Some(graph) = &self.current {
            self.since_touch += 1;
            if self.since_touch >= TOUCH_EVERY {
                self.since_touch = 0;
                self.state.catalog().touch(&self.current_name);
                // The same cadence doubles as the growth hook's flush:
                // pools that resampled since their last spill flow back
                // to the store without waiting for session end.
                if self.state.config().persist_pools {
                    graph.sync_pools();
                }
            }
            return Ok(Arc::clone(graph));
        }
        let graph = self.state.catalog().get(&self.current_name)?;
        self.current = Some(Arc::clone(&graph));
        Ok(graph)
    }

    /// Routes a query to its engine: exact-replay selects with ε/ℓ
    /// overrides get their own provenance pool; everything else answers
    /// from the current graph's default pool, whose handle the session
    /// caches (skipping the pool-cache lock on every later line).
    #[allow(clippy::type_complexity)] // the pair is the routing result
    fn route(
        &mut self,
        query: &Query,
    ) -> Result<(Arc<GraphState<M>>, Arc<SharedEngine<M>>), String> {
        let graph = self.graph_state()?;
        let engine = match query {
            Query::Select {
                fast: false,
                eps,
                ell,
                ..
            } if eps.is_some() || ell.is_some() => graph.engine_for(*eps, *ell),
            _ => {
                if self.default_engine.is_none() {
                    self.default_engine = Some(graph.default_engine());
                }
                Arc::clone(self.default_engine.as_ref().expect("engine just cached"))
            }
        };
        Ok((graph, engine))
    }

    fn reply_line(&self, reply: Reply) -> String {
        if self.state.catalog().config().verbose {
            if let Some(note) = &reply.note {
                eprintln!("{note}");
            }
        }
        reply.line
    }

    /// Executes a completed batch: resolve routing per line in order
    /// (session verbs apply immediately, so a `use` mid-batch routes the
    /// lines after it), then run each maximal run of consecutive
    /// same-engine queries under a single read-lock acquisition.
    fn run_batch(&mut self, lines: &[String]) -> Vec<String> {
        enum Step<M> {
            Ready(String),
            Query {
                graph: Arc<GraphState<M>>,
                engine: Arc<SharedEngine<M>>,
                query: Query,
            },
        }
        let mut steps: Vec<Step<M>> = Vec::with_capacity(lines.len());
        for line in lines {
            match parse_request(line) {
                ParsedRequest::Empty => {}
                ParsedRequest::Malformed(e) => steps.push(Step::Ready(format!("error: {e}"))),
                ParsedRequest::Request(Request::Query(query)) => {
                    if matches!(query, Query::Ping) {
                        steps.push(Step::Ready(ping_reply()));
                        continue;
                    }
                    match self.route(&query) {
                        Ok((graph, engine)) => steps.push(Step::Query {
                            graph,
                            engine,
                            query,
                        }),
                        Err(e) => steps.push(Step::Ready(format!("error: {e}"))),
                    }
                }
                ParsedRequest::Request(req) => steps.push(Step::Ready(self.answer(&req))),
            }
        }

        let mut answers = Vec::with_capacity(steps.len());
        let mut i = 0;
        while i < steps.len() {
            match &steps[i] {
                Step::Ready(line) => {
                    answers.push(line.clone());
                    i += 1;
                }
                Step::Query { engine, .. } => {
                    let run_engine = Arc::clone(engine);
                    let mut j = i;
                    while j < steps.len() {
                        match &steps[j] {
                            Step::Query { engine, .. } if Arc::ptr_eq(engine, &run_engine) => {
                                j += 1;
                            }
                            _ => break,
                        }
                    }
                    let mut backend = BatchBackend::new(&run_engine);
                    for step in &steps[i..j] {
                        let Step::Query { graph, query, .. } = step else {
                            unreachable!("run contains only queries");
                        };
                        answers.push(self.reply_line(execute(&mut backend, graph.labels(), query)));
                    }
                    i = j;
                }
            }
        }
        answers
    }
}

/// A [`QueryBackend`] that answers a run of batch queries under one held
/// read lock, falling back to (and re-acquiring after) the blocking
/// write path only when a query misses the read-only fast path. Answers
/// are identical either way — only lock traffic is amortized.
struct BatchBackend<'e, M> {
    engine: &'e SharedEngine<M>,
    guard: Option<EngineReadGuard<'e, M>>,
}

impl<'e, M: BackingModel + Clone> BatchBackend<'e, M> {
    fn new(engine: &'e SharedEngine<M>) -> Self {
        BatchBackend {
            engine,
            guard: Some(engine.read_handle()),
        }
    }

    fn guard(&mut self) -> &EngineReadGuard<'e, M> {
        if self.guard.is_none() {
            self.guard = Some(self.engine.read_handle());
        }
        self.guard.as_ref().expect("guard just acquired")
    }
}

impl<M: BackingModel + Clone> QueryBackend for BatchBackend<'_, M> {
    fn select_with(&mut self, k: usize, eps: Option<f64>, ell: Option<f64>) -> QueryOutcome {
        if let Some(out) = self.guard().try_select_with(k, eps, ell) {
            return out;
        }
        // Must not hold the read lock across the blocking (write) path.
        self.guard = None;
        self.engine.select_with(k, eps, ell)
    }

    fn select_fast(&mut self, k: usize) -> QueryOutcome {
        if let Some(out) = self.guard().try_select_fast(k) {
            return out;
        }
        self.guard = None;
        self.engine.select_fast(k)
    }

    fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        if let Some(s) = self.guard().try_spread(seeds) {
            return s;
        }
        self.guard = None;
        self.engine.spread(seeds)
    }

    fn marginal_gain(&mut self, base: &[NodeId], candidate: NodeId) -> f64 {
        if let Some(m) = self.guard().try_marginal_gain(base, candidate) {
            return m;
        }
        self.guard = None;
        self.engine.marginal_gain(base, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::{GraphCatalog, LabelMap};
    use tim_diffusion::IndependentCascade;
    use tim_graph::{gen, weights};

    fn two_graph_state() -> ServerState<IndependentCascade> {
        let config = ServerConfig {
            epsilon: 1.0,
            seed: 3,
            k_max: 4,
            sample_threads: 1,
            ..ServerConfig::default()
        };
        let catalog = GraphCatalog::new(IndependentCascade, "ic", config);
        for (name, seed) in [("alpha", 1u64), ("beta", 2u64)] {
            let mut g = gen::barabasi_albert(120, 3, 0.0, seed);
            weights::assign_weighted_cascade(&mut g);
            let n = g.n();
            catalog
                .add_resident(name, g, LabelMap::identity(n))
                .unwrap();
        }
        ServerState::from_catalog(catalog, "alpha").unwrap()
    }

    fn one(session: &mut Session<'_, IndependentCascade>, line: &str) -> String {
        let mut got = session.push_line(line);
        assert_eq!(got.len(), 1, "{line:?} answered {got:?}");
        got.remove(0)
    }

    #[test]
    fn session_verbs_switch_list_and_report() {
        let state = two_graph_state();
        let mut s = state.session();
        assert_eq!(s.current_graph(), "alpha");
        assert_eq!(one(&mut s, "graphs"), "graphs: alpha beta");
        assert_eq!(one(&mut s, "ping"), "pong tim/3");
        assert!(one(&mut s, "stats").starts_with("stats: graph=alpha n=120 m="));
        assert_eq!(one(&mut s, "use beta"), "using beta");
        assert_eq!(s.current_graph(), "beta");
        assert!(one(&mut s, "stats").starts_with("stats: graph=beta "));
        assert_eq!(
            one(&mut s, "use gamma"),
            "error: use: unknown graph 'gamma'"
        );
        assert_eq!(s.current_graph(), "beta", "failed use keeps the graph");
        assert!(s.push_line("# comment").is_empty());
        assert!(s.finish().is_empty());
    }

    #[test]
    fn queries_route_to_the_current_graph() {
        let state = two_graph_state();
        let mut s = state.session();
        let on_alpha = one(&mut s, "select 2");
        one(&mut s, "use beta");
        let on_beta = one(&mut s, "select 2");
        assert_ne!(on_alpha, on_beta, "different graphs, different seeds");
        // Fresh sessions replay the same answers (provenance-determined).
        let mut s2 = state.session();
        assert_eq!(one(&mut s2, "select 2"), on_alpha);
        one(&mut s2, "use beta");
        assert_eq!(one(&mut s2, "select 2"), on_beta);
    }

    #[test]
    fn batch_answers_match_unbatched_lines() {
        let state = two_graph_state();
        let lines = [
            "select 2",
            "eval 0,1",
            "# comment inside batch",
            "use beta",
            "select 2",
            "marginal 0 1",
            "bogus",
            "ping",
        ];
        let mut unbatched = state.session();
        let mut want: Vec<String> = Vec::new();
        for l in &lines {
            want.extend(unbatched.push_line(l));
        }
        want.extend(unbatched.finish());

        let mut batched = state.session();
        assert!(batched
            .push_line(&format!("batch {}", lines.len()))
            .is_empty());
        let mut got: Vec<String> = Vec::new();
        for l in &lines {
            got.extend(batched.push_line(l));
        }
        got.extend(batched.finish());
        assert_eq!(got, want);
        assert_eq!(got.len(), 7, "comment answers nothing");
    }

    #[test]
    fn partial_batch_flushes_at_eof_and_nesting_is_rejected() {
        let state = two_graph_state();
        let mut s = state.session();
        assert!(s.push_line("batch 5").is_empty());
        assert!(s.push_line("ping").is_empty());
        assert!(s.push_line("batch 2").is_empty(), "buffered, not started");
        let got = s.finish();
        assert_eq!(
            got,
            vec![
                "pong tim/3".to_string(),
                "error: batch: batches cannot nest".to_string()
            ]
        );
        // The session survives and keeps answering.
        assert_eq!(one(&mut s, "ping"), "pong tim/3");
    }

    #[test]
    fn batch_over_the_byte_budget_errors_and_closes_the_session() {
        let state = two_graph_state();
        let mut s = state.session();
        assert!(!s.closed());
        assert!(s.push_line("batch 4096").is_empty());
        // ~1 MiB comment lines: the 9th crosses the 8 MiB buffer cap.
        let big = format!("# {}", "x".repeat((1 << 20) - 2));
        let mut answers = Vec::new();
        for _ in 0..9 {
            answers.extend(s.push_line(&big));
        }
        assert_eq!(answers, vec![OVERSIZED_BATCH_REPLY.to_string()]);
        assert!(s.closed(), "buffer-bomb batches end the session");
        assert!(s.push_line("ping").is_empty(), "closed sessions are mute");
        assert!(s.finish().is_empty());
    }

    #[test]
    fn admin_verbs_are_gated_and_mutate_the_catalog() {
        let dir = std::env::temp_dir().join(format!("tim_session_admin_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("extra.txt");
        let g = gen::barabasi_albert(80, 3, 0.0, 5);
        tim_graph::io::save_edge_list(&g, &path).unwrap();
        let spec = format!("extra={}", path.display());

        // Default state: every admin verb answers a gating error.
        let state = two_graph_state();
        let mut s = state.session();
        for verb in [
            format!("attach {spec}"),
            "detach beta".to_string(),
            "persist".to_string(),
            "stats pools".to_string(),
        ] {
            let got = one(&mut s, &verb);
            assert!(got.contains("admin commands disabled"), "{verb}: got {got}");
        }

        // Admin-enabled state: attach/detach work, defaults are protected.
        let config = ServerConfig {
            epsilon: 1.0,
            seed: 3,
            k_max: 4,
            sample_threads: 1,
            admin: true,
            ..ServerConfig::default()
        };
        let catalog = GraphCatalog::new(IndependentCascade, "ic", config);
        let mut g0 = gen::barabasi_albert(120, 3, 0.0, 1);
        weights::assign_weighted_cascade(&mut g0);
        let n = g0.n();
        catalog
            .add_resident("alpha", g0, LabelMap::identity(n))
            .unwrap();
        let state = ServerState::from_catalog(catalog, "alpha").unwrap();
        let mut s = state.session();
        assert_eq!(
            one(&mut s, &format!("attach {spec}::eps=1.0")),
            "attached extra"
        );
        assert_eq!(one(&mut s, "graphs"), "graphs: alpha extra");
        assert_eq!(one(&mut s, "use extra"), "using extra");
        assert!(one(&mut s, "select 2").starts_with("seeds: "));
        let pools = one(&mut s, "stats pools");
        assert!(
            pools.starts_with("pools: graph=extra cached=1 "),
            "got {pools}"
        );
        assert!(pools.contains("builds=1"), "got {pools}");
        // persist without a pool dir is an explicit error.
        assert_eq!(
            one(&mut s, "persist"),
            "error: persist: no --pool-dir configured"
        );
        assert_eq!(
            one(&mut s, "detach alpha"),
            "error: detach: cannot detach the default graph 'alpha'"
        );
        assert_eq!(one(&mut s, "detach extra"), "detached extra");
        // The drained session keeps answering from its held state…
        assert!(one(&mut s, "select 2").starts_with("seeds: "));
        // …while fresh sessions can no longer reach the name.
        let mut s2 = state.session();
        assert_eq!(
            one(&mut s2, "use extra"),
            "error: use: unknown graph 'extra'"
        );

        // Re-attach a *different* graph under the same name: `use` is the
        // re-resolution point, so even the session still sitting on the
        // drained old graph must pick up the replacement.
        let path2 = dir.join("extra2.txt");
        let g2 = gen::barabasi_albert(60, 3, 0.0, 6);
        tim_graph::io::save_edge_list(&g2, &path2).unwrap();
        assert_eq!(
            one(&mut s, &format!("attach extra={}", path2.display())),
            "attached extra"
        );
        assert_eq!(one(&mut s, "use extra"), "using extra");
        assert!(
            one(&mut s, "stats").starts_with("stats: graph=extra n=60 "),
            "same-name use must re-resolve to the re-attached graph"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_grouping_amortizes_without_changing_answers() {
        let state = two_graph_state();
        // Mixed engines: defaults and an eps override, interleaved so the
        // grouping logic sees several runs.
        let lines = [
            "select 2",
            "select 3",
            "select 2 eps=0.9",
            "select 2",
            "eval 0,1,2",
        ];
        let mut plain = state.session();
        let mut want: Vec<String> = Vec::new();
        for l in &lines {
            want.extend(plain.push_line(l));
        }
        let mut batched = state.session();
        batched.push_line("batch 5");
        let mut got: Vec<String> = Vec::new();
        for l in &lines {
            got.extend(batched.push_line(l));
        }
        assert_eq!(got, want);
    }
}
