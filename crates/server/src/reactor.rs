//! The raw epoll substrate of the event-loop server: a thin, safe
//! wrapper over the handful of syscalls the reactor needs.
//!
//! No crates.io in this environment means no `mio`/`tokio` *and* no
//! `libc` crate — the declarations below bind the C library symbols
//! directly. The surface is deliberately tiny: a level-triggered
//! [`Poller`] (add/modify/delete/wait), a lazy-reinsertion
//! [`TimerWheel`] for idle deadlines, a nonblocking TCP `connect` for
//! the fan-in client driver, and the two process-level helpers
//! ([`raise_nofile_limit`], [`boost_backlog`]) a 10k-connection run
//! needs before the first `accept`.
//!
//! Everything here is Linux-only, like epoll itself; the crate gates the
//! module accordingly.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::time::{Duration, Instant};

// -- libc bindings -----------------------------------------------------

/// One epoll event record. x86-64 is the one ABI where the kernel struct
/// is packed (no padding between `events` and `data`); everywhere else
/// it has natural alignment.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn connect(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
/// Wake at most one of the epoll instances sharing a listener per
/// incoming connection (herd control across reactor shards). Only valid
/// at `EPOLL_CTL_ADD` time — never combine with `EPOLL_CTL_MOD`.
const EPOLLEXCLUSIVE: u32 = 1 << 28;

const AF_INET: i32 = 2;
const SOCK_STREAM: i32 = 1;
const SOCK_NONBLOCK: i32 = 0o4000;
const SOCK_CLOEXEC: i32 = 0o2000000;
const EINPROGRESS: i32 = 115;

const RLIMIT_NOFILE: i32 = 7;

/// `struct sockaddr_in`, with the byte-order-sensitive fields kept as
/// byte arrays so no endianness conversion can be forgotten.
#[repr(C)]
struct SockAddrIn {
    family: u16,
    port_be: [u8; 2],
    addr: [u8; 4],
    zero: [u8; 8],
}

/// `struct rlimit` (both fields are `u64` on 64-bit Linux).
#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

// -- Poller ------------------------------------------------------------

/// What a registration wants to be woken for. Error/hangup conditions
/// are always reported regardless of interest, like epoll itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (includes peer half-close).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither — parked; only error/hangup events fire.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            // RDHUP distinguishes an orderly peer shutdown from a
            // connection error without needing a read() probe.
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or a pending EOF).
    pub readable: bool,
    /// The fd can accept bytes.
    pub writable: bool,
    /// Error or hangup: the connection is dead or dying; reads will
    /// surface the details.
    pub closed: bool,
}

/// Reusable buffer for [`Poller::wait`] results.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// The events produced by the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| {
            // Copy out of the (possibly packed) struct before touching
            // the fields — references into packed fields are UB.
            let bits = e.events;
            let token = e.data;
            Event {
                token,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP) != 0,
            }
        })
    }
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events")
            .field("capacity", &self.buf.len())
            .field("len", &self.len)
            .finish()
    }
}

/// A level-triggered epoll instance. Registrations carry a caller-chosen
/// `u64` token that comes back in each [`Event`].
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers involved.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, bits: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: bits,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel only reads it. The
        // fd is live for the duration of the call by the caller's
        // contract (it owns the socket it registers).
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest.bits(), token)
    }

    /// Registers a shared listener with `EPOLLEXCLUSIVE`: one incoming
    /// connection wakes at most one of the reactor shards watching it.
    /// The registration can never be modified afterwards (a kernel
    /// rule), which is fine — a listener's interest never changes.
    pub fn add_exclusive(&self, fd: RawFd, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, EPOLLIN | EPOLLEXCLUSIVE, token)
    }

    /// Replaces the interest of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest.bits(), token)
    }

    /// Removes a registration. Closing the fd does this implicitly (no
    /// other handles exist to our sockets); this is for the explicit
    /// paths (e.g. parking a listener during drain).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument must be non-null for portability even
        // though DEL ignores it.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `events`; returns the event count.
    /// `None` blocks indefinitely; sub-millisecond timeouts round up so
    /// a short timeout can never spin at zero.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let millis = match timeout {
            None => -1,
            Some(t) => {
                let ms = t.as_millis();
                if ms == 0 && !t.is_zero() {
                    1
                } else {
                    ms.min(i32::MAX as u128) as i32
                }
            }
        };
        loop {
            // SAFETY: the buffer is a live, exclusively borrowed Vec of
            // EpollEvent with at least `len()` elements; the kernel
            // writes at most `maxevents` records into it.
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    events.buf.as_mut_ptr(),
                    events.buf.len() as i32,
                    millis,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            events.len = rc as usize;
            return Ok(events.len);
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own epfd and nothing else closes it.
        unsafe {
            close(self.epfd);
        }
    }
}

// -- Timer wheel -------------------------------------------------------

/// A coarse timer wheel for idle-connection deadlines: `slots` buckets
/// of `granularity` each, holding `(token, deadline_tick)` entries.
///
/// Deadlines that move *later* (every request bumps a connection's idle
/// deadline) are handled lazily: the wheel keeps the entry where it was
/// scheduled, and when it pops the owner compares against the real
/// deadline and reinserts if it moved — one live wheel entry per
/// connection, no per-request rescheduling cost.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<(u64, u64)>>,
    /// Next tick to be processed by `advance`.
    tick: u64,
    granularity: Duration,
    start: Instant,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `granularity` wide, with tick 0
    /// at `start`.
    pub fn new(start: Instant, granularity: Duration, slots: usize) -> TimerWheel {
        assert!(!granularity.is_zero(), "granularity must be positive");
        assert!(slots >= 2, "need at least two slots");
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick: 0,
            granularity,
            start,
        }
    }

    /// The wheel's bucket width.
    pub fn granularity(&self) -> Duration {
        self.granularity
    }

    /// The tick a wall-clock instant falls into (saturating at `start`).
    pub fn tick_at(&self, when: Instant) -> u64 {
        let elapsed = when.saturating_duration_since(self.start);
        (elapsed.as_nanos() / self.granularity.as_nanos()).min(u64::MAX as u128) as u64
    }

    /// Schedules `token` to pop once `deadline_tick` has passed. Entries
    /// scheduled more than a full rotation out still pop no earlier than
    /// their deadline (each lap re-checks and reinserts).
    pub fn schedule(&mut self, token: u64, deadline_tick: u64) {
        // A deadline in an already-processed tick (a lazy reinsertion
        // whose real deadline is moments away) must pop at the *next*
        // advance — its own slot won't be visited again for a full lap.
        let slot = (deadline_tick.max(self.tick) % self.slots.len() as u64) as usize;
        self.slots[slot].push((token, deadline_tick));
    }

    /// Time from `now` until the next tick boundary — the natural poll
    /// timeout while any deadline is armed.
    pub fn until_next_tick(&self, now: Instant) -> Duration {
        let next_nanos = self
            .granularity
            .as_nanos()
            .saturating_mul(self.tick as u128 + 1);
        let elapsed = now.saturating_duration_since(self.start).as_nanos();
        let remaining = next_nanos.saturating_sub(elapsed);
        Duration::from_nanos(remaining.min(u64::MAX as u128) as u64)
    }

    /// Processes every tick up to `now`, appending due `(token,
    /// deadline_tick)` entries to `due`. The caller decides each one's
    /// fate: reap the connection, or reinsert at its (later) real
    /// deadline via [`schedule`](Self::schedule).
    pub fn advance(&mut self, now: Instant, due: &mut Vec<(u64, u64)>) {
        let now_tick = self.tick_at(now);
        if now_tick < self.tick {
            return;
        }
        let len = self.slots.len() as u64;
        // A span beyond one full rotation revisits slots; once is enough.
        let visits = (now_tick - self.tick + 1).min(len);
        let mut pending = Vec::new();
        for i in 0..visits {
            let slot = ((self.tick + i) % len) as usize;
            pending.append(&mut self.slots[slot]);
            for (token, deadline) in pending.drain(..) {
                if deadline <= now_tick {
                    due.push((token, deadline));
                } else {
                    // A future lap's entry sharing this slot: put it back
                    // (the drain snapshot above keeps this loop finite).
                    self.schedule(token, deadline);
                }
            }
        }
        self.tick = now_tick + 1;
    }
}

// -- Process/socket helpers --------------------------------------------

/// Starts a nonblocking IPv4 TCP connect: returns immediately with the
/// socket in progress. Completion is signalled by *writability*; check
/// [`TcpStream::take_error`] there to learn whether it succeeded.
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
    let SocketAddr::V4(v4) = addr else {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "nonblocking connect: IPv4 only",
        ));
    };
    // SAFETY: plain syscall, no pointers involved.
    let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: fd is the socket created above; on any error path below it
    // is closed exactly once before the fd value is dropped.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    let sockaddr = SockAddrIn {
        family: AF_INET as u16,
        port_be: v4.port().to_be_bytes(),
        addr: v4.ip().octets(),
        zero: [0; 8],
    };
    // SAFETY: `sockaddr` is a properly initialized sockaddr_in on the
    // stack, outliving the call; the length matches the struct.
    let rc = unsafe {
        connect(
            stream.as_raw_fd(),
            &sockaddr,
            std::mem::size_of::<SockAddrIn>() as u32,
        )
    };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINPROGRESS) {
            return Err(err);
        }
    }
    Ok(stream)
}

/// Re-`listen()`s on a bound listener with a deeper accept backlog
/// (Linux allows this on an already-listening socket). The kernel
/// silently caps the value at `net.core.somaxconn`; best-effort by
/// design — the default backlog merely makes mass fan-in slow (SYN
/// retries), not wrong.
pub fn boost_backlog(listener: &TcpListener, backlog: i32) -> io::Result<()> {
    // SAFETY: plain syscall on a live fd borrowed from `listener`.
    let rc = unsafe { listen(listener.as_raw_fd(), backlog) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Raises the soft `RLIMIT_NOFILE` toward `want` file descriptors
/// (attempting to raise the hard limit too, which needs privilege) and
/// returns the resulting soft limit. Never lowers anything; never fails
/// — callers compare the returned limit against their need.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a live stack struct the kernel fills.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur >= want {
        return lim.cur;
    }
    // First choice: soft = want (raising hard alongside if needed).
    let first = RLimit {
        cur: want,
        max: lim.max.max(want),
    };
    // SAFETY: passing a live, initialized struct by pointer.
    if unsafe { setrlimit(RLIMIT_NOFILE, &first) } == 0 {
        return first.cur;
    }
    // Unprivileged fallback: soft up to the existing hard cap.
    let capped = RLimit {
        cur: want.min(lim.max),
        max: lim.max,
    };
    // SAFETY: as above.
    if unsafe { setrlimit(RLIMIT_NOFILE, &capped) } == 0 {
        return capped.cur;
    }
    lim.cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn poller_reports_listener_readable_on_pending_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Events::with_capacity(8);
        // Nothing pending: a short wait returns empty.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .unwrap(),
            0
        );
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable);
    }

    #[test]
    fn poller_modify_rearms_for_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(server_side.as_raw_fd(), 1, Interest::NONE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .unwrap(),
            0,
            "parked registration stays silent"
        );
        poller
            .modify(server_side.as_raw_fd(), 1, Interest::WRITE)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().writable);
        drop(client);
    }

    #[test]
    fn connect_nonblocking_completes_against_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = connect_nonblocking(listener.local_addr().unwrap()).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(stream.as_raw_fd(), 9, Interest::WRITE).unwrap();
        let mut events = Events::with_capacity(4);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().writable);
        assert!(stream.take_error().unwrap().is_none(), "connect succeeded");
        // Round-trip a byte to prove the socket is genuinely usable.
        let (mut server_side, _) = listener.accept().unwrap();
        server_side.write_all(b"x").unwrap();
        drop(server_side);
        stream.set_nonblocking(false).unwrap();
        let mut buf = Vec::new();
        (&stream).read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"x");
    }

    #[test]
    fn timer_wheel_pops_at_deadline_and_supports_lazy_reinsert() {
        let start = Instant::now();
        let g = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(start, g, 8);
        let t3 = wheel.tick_at(start + 3 * g);
        wheel.schedule(42, t3);
        let mut due = Vec::new();
        wheel.advance(start + g, &mut due);
        assert!(due.is_empty(), "not due yet");
        wheel.advance(start + 4 * g, &mut due);
        assert_eq!(due, vec![(42, t3)]);
        due.clear();
        // Lazy reinsertion: the owner moved the deadline later, so it
        // reschedules on pop; the new entry pops at the new deadline.
        let t9 = wheel.tick_at(start + 9 * g);
        wheel.schedule(42, t9);
        wheel.advance(start + 5 * g, &mut due);
        assert!(due.is_empty());
        wheel.advance(start + 10 * g, &mut due);
        assert_eq!(due, vec![(42, t9)]);
    }

    #[test]
    fn timer_wheel_past_due_reinsert_pops_at_next_advance_not_after_a_lap() {
        let start = Instant::now();
        let g = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(start, g, 8);
        let mut due = Vec::new();
        wheel.advance(start + 3 * g, &mut due);
        assert!(due.is_empty());
        // Lazy reinsertion can target a tick the wheel already
        // processed (the touched connection's real deadline lands just
        // before the next boundary). That slot won't be revisited for a
        // whole lap, so the entry must go into the upcoming slot and
        // pop on the very next advance.
        wheel.schedule(7, wheel.tick_at(start + 2 * g));
        wheel.advance(start + 4 * g, &mut due);
        assert_eq!(due, vec![(7, 2)], "popped one lap late");
    }

    #[test]
    fn timer_wheel_multi_lap_entries_do_not_pop_early() {
        let start = Instant::now();
        let g = Duration::from_millis(10);
        // 4 slots: a deadline 10 ticks out shares a slot with tick 2.
        let mut wheel = TimerWheel::new(start, g, 4);
        wheel.schedule(1, 10);
        let mut due = Vec::new();
        wheel.advance(start + 3 * g, &mut due);
        assert!(due.is_empty(), "lap-ahead entry must not pop early");
        wheel.advance(start + 11 * g, &mut due);
        assert_eq!(due, vec![(1, 10)]);
    }

    #[test]
    fn raise_nofile_limit_never_lowers() {
        let before = raise_nofile_limit(0);
        assert!(before > 0);
        let after = raise_nofile_limit(before.saturating_sub(1));
        assert!(after >= before);
    }
}
