//! The multi-graph catalog: named graphs, lazy loading, per-graph pool
//! caches and stores, runtime attach/detach, and LRU eviction of idle
//! graphs.
//!
//! A production deployment serves *several* social networks from one
//! process (the paper evaluates across datasets from 16K to 1.4B edges);
//! one process per graph wastes memory on duplicated runtimes and forces
//! clients to know the topology of the fleet. [`GraphCatalog`] maps wire
//! names (`use <graph>`, validated by
//! [`tim_graph::catalog::validate_graph_name`]) to [`GraphState`]s — a
//! graph, its label map, its effective (per-graph) configuration, and its
//! *own* [`PoolCache`] budget — loaded lazily from disk on first use.
//!
//! Since protocol `tim/3` the catalog is **mutable at runtime**:
//! [`attach_path`](GraphCatalog::attach_path) registers a new tenant in a
//! live process and [`detach`](GraphCatalog::detach) removes one with a
//! graceful drain — the name disappears immediately (new `use` is
//! rejected), while sessions already answering from the graph's
//! [`GraphState`] keep their `Arc` and finish undisturbed. Each graph may
//! carry [`GraphOverrides`] (model / ε / ℓ / seed / k / weights) that
//! replace the corresponding global defaults, and with a pool directory
//! configured each graph owns a persistent [`PoolStore`] under
//! `<pool-dir>/<name>/` so its warm pools survive eviction and restarts.
//!
//! Locking follows the same discipline as [`PoolCache`]:
//!
//! - Each slot has its **own** mutex, held while loading that graph:
//!   concurrent sessions asking for the same cold graph load it once,
//!   and loads of *different* graphs never block each other.
//! - The catalog-level maps (name → slot, LRU marks) are behind their own
//!   short-lived locks — never held across a load, a spill, or an
//!   eviction's slot lock.
//! - Eviction drops the catalog's reference; sessions holding the
//!   `Arc<GraphState>` keep answering against it until they finish, and
//!   the graph reloads deterministically on return (answers are
//!   provenance-determined, so eviction can never change a response).
//!   With persistence on, eviction first spills dirty pools — evicting a
//!   tenant no longer destroys its warm state.

use crate::cache::{CacheStats, PoolCache, PoolKey};
use crate::protocol::LabelMap;
use crate::server::ServerConfig;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock, Weak};
use tim_diffusion::BackingModel;
use tim_engine::{PoolStore, ProbedPool, QueryEngine, SharedEngine};
use tim_graph::catalog::GraphOverrides;
use tim_graph::{io, weights, Graph, GraphStore};

/// Everything one served graph needs, shared immutably across sessions:
/// the graph, its label map, the model, the effective configuration, and
/// the graph's own pool cache (optionally backed by a persistent
/// [`PoolStore`]). (One `GraphState` is exactly what a single-graph
/// `tim/1` server used to hold as its whole state.)
#[derive(Debug)]
pub struct GraphState<M> {
    name: String,
    store: GraphStore,
    labels: Arc<LabelMap>,
    model: M,
    model_name: String,
    config: Arc<ServerConfig>,
    cache: PoolCache<M>,
}

impl<M: BackingModel + Send + Clone + 'static> GraphState<M> {
    /// Builds the per-graph state. `config` is the graph's *effective*
    /// configuration (global defaults with any per-graph overrides
    /// already applied); `store`, when given, makes the pool cache
    /// read-through/write-through over that persistent store. Pools are
    /// built lazily on first use; call [`warm_default`](Self::warm_default)
    /// to pay the default pool's sampling cost up front instead of on the
    /// first query.
    ///
    /// # Panics
    /// Panics if `labels` does not cover the graph's nodes, or a config
    /// parameter is out of range (non-positive ε/ℓ, zero `k_max`, zero
    /// `pool_cache`).
    pub fn new(
        name: impl Into<String>,
        graph: impl Into<Arc<Graph>>,
        labels: impl Into<Arc<LabelMap>>,
        model: M,
        model_name: impl Into<String>,
        config: Arc<ServerConfig>,
        store: Option<Arc<PoolStore>>,
    ) -> Self {
        Self::from_store(
            name,
            GraphStore::from_arc(graph.into()),
            labels,
            model,
            model_name,
            config,
            store,
        )
    }

    /// [`new`](Self::new) over an arbitrary [`GraphStore`] backing —
    /// this is how an mmap tenant enters the catalog: the graph stays on
    /// disk, queries read pages through the zero-copy view, and every
    /// answer (including pool provenance keys) is byte-identical to the
    /// heap-backed state for the same snapshot.
    ///
    /// # Panics
    /// Same contract as [`new`](Self::new).
    pub fn from_store(
        name: impl Into<String>,
        graph: GraphStore,
        labels: impl Into<Arc<LabelMap>>,
        model: M,
        model_name: impl Into<String>,
        config: Arc<ServerConfig>,
        store: Option<Arc<PoolStore>>,
    ) -> Self {
        let labels: Arc<LabelMap> = labels.into();
        assert_eq!(
            labels.len(),
            graph.n(),
            "label map must cover every graph node"
        );
        assert!(config.epsilon > 0.0, "epsilon must be positive");
        assert!(config.ell > 0.0, "ell must be positive");
        assert!(config.k_max >= 1, "k_max must be at least 1");
        let cache = match store {
            Some(store) => PoolCache::with_store(
                config.pool_cache,
                store,
                config.persist_pools,
                config.mmap_pools,
            ),
            None => PoolCache::new(config.pool_cache),
        };
        GraphState {
            name: name.into(),
            store: graph,
            labels,
            model,
            model_name: model_name.into(),
            cache,
            config,
        }
    }

    /// The catalog name of this graph.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backing store serving this name (heap or mmap).
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// True when this graph is served from a mapped snapshot.
    pub fn is_mmap(&self) -> bool {
        self.store.is_mmap()
    }

    /// The label map sessions answer through.
    pub fn labels(&self) -> &Arc<LabelMap> {
        &self.labels
    }

    /// The effective serving configuration this graph answers under.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Content checksum of the served graph (backing-independent).
    pub fn graph_checksum(&self) -> u64 {
        self.store.checksum()
    }

    /// Pool-cache effectiveness counters for this graph.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of pools currently cached for this graph.
    pub fn cached_pools(&self) -> usize {
        self.cache.len()
    }

    /// The persistent pool store behind this graph's cache, if any.
    pub fn pool_store(&self) -> Option<&Arc<PoolStore>> {
        self.cache.store()
    }

    /// The provenance key for a query at the given ε/ℓ (defaults applied).
    pub fn key_for(&self, eps: Option<f64>, ell: Option<f64>) -> PoolKey {
        PoolKey::new(
            self.store.checksum(),
            self.model_name.clone(),
            self.config.seed,
            eps.unwrap_or(self.config.epsilon),
            ell.unwrap_or(self.config.ell),
        )
    }

    fn build_engine(&self, eps: f64, ell: f64) -> SharedEngine<M> {
        let mut engine = QueryEngine::with_store(
            self.store.clone(),
            self.model.clone(),
            self.model_name.clone(),
        )
        .epsilon(eps)
        .ell(ell)
        .seed(self.config.seed)
        .k_max(self.config.k_max)
        .select_threads(self.config.select_threads)
        .select_strategy(self.config.select_strategy);
        if self.config.sample_threads > 0 {
            engine = engine.threads(self.config.sample_threads);
        }
        engine.warm();
        SharedEngine::new(engine)
    }

    /// Attaches a pool loaded from this graph's store to the graph —
    /// the read-through path, heap-decoded or zero-copy mapped
    /// (`mmap_pools`). A failure (the file matched its name but not the
    /// served graph) is reported to the cache, which quarantines the
    /// file and falls back to a build.
    fn restore_engine(&self, pool: ProbedPool) -> Result<SharedEngine<M>, String> {
        let mut engine = match pool {
            ProbedPool::Heap(pool) => QueryEngine::from_pool_store(
                self.store.clone(),
                self.model.clone(),
                self.model_name.clone(),
                pool,
            ),
            ProbedPool::Mapped(mapped) => QueryEngine::from_mapped_pool(
                self.store.clone(),
                self.model.clone(),
                self.model_name.clone(),
                mapped,
            ),
        }
        .map_err(|e| e.to_string())?;
        engine = engine
            .select_threads(self.config.select_threads)
            .select_strategy(self.config.select_strategy);
        if self.config.sample_threads > 0 {
            engine = engine.threads(self.config.sample_threads);
        }
        Ok(SharedEngine::new(engine))
    }

    /// The engine for a query at the given ε/ℓ: a cache hit reuses the
    /// warm pool; a miss probes the graph's pool store (when configured)
    /// and samples from scratch only on a true miss — all without
    /// blocking readers of other pools.
    pub fn engine_for(&self, eps: Option<f64>, ell: Option<f64>) -> Arc<SharedEngine<M>> {
        let eps = eps.unwrap_or(self.config.epsilon);
        let ell = ell.unwrap_or(self.config.ell);
        let key = self.key_for(Some(eps), Some(ell));
        self.cache.get_or_load(
            &key,
            |pool| self.restore_engine(pool),
            || self.build_engine(eps, ell),
        )
    }

    /// The engine serving default-configuration queries.
    pub fn default_engine(&self) -> Arc<SharedEngine<M>> {
        self.engine_for(None, None)
    }

    /// Builds (or reuses) the default pool now, returning its θ — lets a
    /// server pay the sampling cost before accepting connections.
    pub fn warm_default(&self) -> u64 {
        self.default_engine().pool_theta()
    }

    /// Pre-seeds this graph's cache with an engine restored from
    /// persistent state (e.g. a `.timp` pool file), keyed by its own
    /// provenance.
    pub fn preload(&self, engine: QueryEngine<M>) -> Arc<SharedEngine<M>> {
        let meta = engine.pool_meta();
        let key = PoolKey::new(
            meta.graph_checksum,
            meta.model.clone(),
            meta.seed,
            meta.epsilon,
            meta.ell,
        );
        self.cache.insert(key, SharedEngine::new(engine))
    }

    /// Spills every cached pool whose on-disk copy is absent or stale
    /// into this graph's store (the `persist` admin verb, periodic
    /// session sync, and the pre-eviction flush). Returns how many pools
    /// were written; 0 without a store.
    pub fn sync_pools(&self) -> usize {
        self.cache.spill_dirty()
    }

    /// One deterministic `stats` answer line: static facts only (name,
    /// sizes, checksum, defaults) — never counters or pool sizes, so the
    /// reply is byte-identical under any interleaving.
    pub fn stats_line(&self) -> String {
        format!(
            "stats: graph={} n={} m={} checksum={:016x} model={} eps={} ell={} seed={} k_max={}",
            self.name,
            self.store.n(),
            self.store.m(),
            self.store.checksum(),
            self.model_name,
            self.config.epsilon,
            self.config.ell,
            self.config.seed,
            self.config.k_max,
        )
    }

    /// One `stats pools` answer line: this graph's pool-cache counters
    /// (hit/miss/build/load/spill/evict) plus the store's quarantine and
    /// restore-backing counters (`mmap_opens`/`verifies`/`heap_loads` —
    /// how restores were served: zero-copy mapped, checksum-verified,
    /// or heap-decoded). Deliberately **not** deterministic across
    /// interleavings — it reports live effectiveness, which is the
    /// point: the warm-path claim (`builds=0` with `mmap_opens>0` after
    /// a warm restart under `--mmap-pools`) is observable, not inferred.
    pub fn pools_line(&self) -> String {
        let s = self.cache.stats();
        let store = self.pool_store().map(|store| store.stats());
        let store = store.unwrap_or_default();
        format!(
            "pools: graph={} cached={} hits={} misses={} builds={} loads={} spills={} evictions={} quarantined={} mmap_opens={} verifies={} heap_loads={}",
            self.name,
            self.cache.len(),
            s.hits,
            s.misses,
            s.builds,
            s.loads,
            s.spills,
            s.evictions,
            store.quarantined,
            store.mmap_opens,
            store.verifies,
            store.heap_loads,
        )
    }
}

/// Where a catalog slot's graph comes from.
#[derive(Debug)]
enum GraphSource {
    /// Load lazily from disk (text edge list or `.timg`, sniffed by
    /// content), applying the effective config's weight spec. Evictable.
    Path(PathBuf),
    /// Registered in memory (single-graph servers, tests). Pinned: never
    /// evicted, because there is no path to reload it from.
    Resident(Arc<Graph>, Arc<LabelMap>),
}

#[derive(Debug)]
struct Slot<M> {
    id: u64,
    name: String,
    source: GraphSource,
    overrides: GraphOverrides,
    loaded: Mutex<Option<Arc<GraphState<M>>>>,
}

/// Catalog effectiveness counters (monotone since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Graphs loaded (or re-loaded after eviction) from their source.
    pub loads: u64,
    /// Loaded graphs dropped to respect `max_loaded`.
    pub evictions: u64,
    /// Graphs attached after construction (runtime `attach`).
    pub attaches: u64,
    /// Graphs detached at runtime.
    pub detaches: u64,
}

/// LRU bookkeeping for one loaded slot. The weak reference keeps the
/// mark from pinning a detached slot alive; dead marks are pruned
/// opportunistically.
#[derive(Debug)]
struct LoadedMark<M> {
    tick: u64,
    slot: Weak<Slot<M>>,
    evictable: bool,
}

#[derive(Debug)]
struct LruInner<M> {
    tick: u64,
    /// Slot id → mark, for every currently loaded slot.
    loaded: HashMap<u64, LoadedMark<M>>,
    stats: CatalogStats,
}

#[derive(Debug)]
struct CatalogInner<M> {
    slots: HashMap<String, Arc<Slot<M>>>,
    next_id: u64,
}

/// A named-graph catalog with lazy loading, runtime attach/detach, and
/// LRU eviction; see the module docs for the locking contract.
#[derive(Debug)]
pub struct GraphCatalog<M> {
    /// Registered diffusion models by tag; per-graph `model=` overrides
    /// resolve here. The default tag is `model_name`.
    models: HashMap<String, M>,
    model_name: String,
    config: Arc<ServerConfig>,
    inner: RwLock<CatalogInner<M>>,
    lru: Mutex<LruInner<M>>,
}

const POISONED: &str = "catalog lru mutex poisoned";
const MAP_POISONED: &str = "catalog map lock poisoned";
const SLOT_POISONED: &str = "catalog slot mutex poisoned";

impl<M: BackingModel + Send + Clone + 'static> GraphCatalog<M> {
    /// Creates an empty catalog serving under `config`'s defaults, with
    /// `model` registered under the tag `model_name`.
    ///
    /// # Panics
    /// Panics if a config parameter is out of range (non-positive ε/ℓ,
    /// zero `k_max`, zero `pool_cache`, zero `max_loaded`).
    pub fn new(model: M, model_name: impl Into<String>, config: ServerConfig) -> Self {
        assert!(config.epsilon > 0.0, "epsilon must be positive");
        assert!(config.ell > 0.0, "ell must be positive");
        assert!(config.k_max >= 1, "k_max must be at least 1");
        assert!(config.pool_cache >= 1, "pool_cache must be at least 1");
        assert!(config.max_loaded >= 1, "max_loaded must be at least 1");
        let model_name = model_name.into();
        let mut models = HashMap::new();
        models.insert(model_name.clone(), model);
        GraphCatalog {
            models,
            model_name,
            config: Arc::new(config),
            inner: RwLock::new(CatalogInner {
                slots: HashMap::new(),
                next_id: 0,
            }),
            lru: Mutex::new(LruInner {
                tick: 0,
                loaded: HashMap::new(),
                stats: CatalogStats::default(),
            }),
        }
    }

    /// Registers an additional diffusion model under `tag`, making
    /// `model=<tag>` a valid per-graph override. The CLI registers both
    /// `ic` and `lt` so one catalog can serve graphs under either model.
    pub fn register_model(&mut self, tag: impl Into<String>, model: M) {
        self.models.insert(tag.into(), model);
    }

    /// The registered model tags, sorted.
    pub fn model_tags(&self) -> Vec<&str> {
        let mut tags: Vec<&str> = self.models.keys().map(String::as_str).collect();
        tags.sort_unstable();
        tags
    }

    fn add_slot(
        &self,
        name: String,
        source: GraphSource,
        overrides: GraphOverrides,
        runtime: bool,
    ) -> Result<(), String> {
        tim_graph::catalog::validate_graph_name(&name).map_err(|e| e.to_string())?;
        if let Some(tag) = &overrides.model {
            if !self.models.contains_key(tag) {
                return Err(format!(
                    "graph '{name}': unknown model '{tag}' (registered: {})",
                    self.model_tags().join(", ")
                ));
            }
        }
        let mut inner = self.inner.write().expect(MAP_POISONED);
        if inner.slots.contains_key(&name) {
            return Err(format!("duplicate graph name '{name}'"));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.slots.insert(
            name.clone(),
            Arc::new(Slot {
                id,
                name,
                source,
                overrides,
                loaded: Mutex::new(None),
            }),
        );
        drop(inner);
        if runtime {
            self.lru.lock().expect(POISONED).stats.attaches += 1;
        }
        Ok(())
    }

    /// Registers a graph to be loaded lazily from `path` on first use
    /// (text edge list or `.timg` snapshot, sniffed by content; the
    /// effective config's weight spec is applied after loading).
    pub fn add_path(
        &self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Result<(), String> {
        self.add_slot(
            name.into(),
            GraphSource::Path(path.into()),
            GraphOverrides::default(),
            false,
        )
    }

    /// Registers a path-backed graph with per-graph overrides
    /// (model / ε / ℓ / seed / k / weights replacing the global
    /// defaults). Override model tags must be registered
    /// ([`register_model`](Self::register_model)).
    pub fn add_path_with(
        &self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
        overrides: GraphOverrides,
    ) -> Result<(), String> {
        self.add_slot(
            name.into(),
            GraphSource::Path(path.into()),
            overrides,
            false,
        )
    }

    /// Attaches a path-backed graph to a **live** catalog (the `attach`
    /// admin verb): identical to [`add_path_with`](Self::add_path_with),
    /// counted separately in [`stats`](Self::stats). The graph loads
    /// lazily on its first query, so attach itself is O(1).
    pub fn attach_path(
        &self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
        overrides: GraphOverrides,
    ) -> Result<(), String> {
        self.add_slot(name.into(), GraphSource::Path(path.into()), overrides, true)
    }

    /// Registers an already-loaded graph under `name`. Resident graphs
    /// are pinned: they never count toward `max_loaded` eviction.
    ///
    /// Validates the label map here, at registration — a mismatch must
    /// fail fast at startup, not panic inside a worker thread on the
    /// first query (which would poison the slot for every later session).
    pub fn add_resident(
        &self,
        name: impl Into<String>,
        graph: impl Into<Arc<Graph>>,
        labels: impl Into<Arc<LabelMap>>,
    ) -> Result<(), String> {
        let name = name.into();
        let graph: Arc<Graph> = graph.into();
        let labels: Arc<LabelMap> = labels.into();
        if labels.len() != graph.n() {
            return Err(format!(
                "graph '{name}': label map covers {} nodes but the graph has {}",
                labels.len(),
                graph.n()
            ));
        }
        self.add_slot(
            name,
            GraphSource::Resident(graph, labels),
            GraphOverrides::default(),
            false,
        )
    }

    /// Detaches `name` from the catalog with a graceful drain: the name
    /// disappears immediately (new `use` and fresh loads are rejected),
    /// while sessions already holding the graph's [`GraphState`] keep
    /// answering against it until they finish — answers are
    /// provenance-determined, so the drain can never change a response.
    /// With persistence on, dirty pools are spilled to the graph's store
    /// first, so a detach destroys no warm state.
    pub fn detach(&self, name: &str) -> Result<(), String> {
        let slot = {
            let mut inner = self.inner.write().expect(MAP_POISONED);
            inner
                .slots
                .remove(name)
                .ok_or_else(|| format!("unknown graph '{name}'"))?
        };
        // The name is gone; now drop the catalog's loaded reference (the
        // drain: session-held Arcs keep the state alive) and its LRU mark.
        let state = slot.loaded.lock().expect(SLOT_POISONED).take();
        {
            let mut lru = self.lru.lock().expect(POISONED);
            lru.loaded.remove(&slot.id);
            lru.stats.detaches += 1;
        }
        if let Some(state) = state {
            if self.config.persist_pools {
                state.sync_pools();
            }
        }
        Ok(())
    }

    /// The serving defaults every graph answers under (before per-graph
    /// overrides).
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Number of named graphs (loaded or not).
    pub fn len(&self) -> usize {
        self.inner.read().expect(MAP_POISONED).slots.len()
    }

    /// True when no graphs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `name` is in the catalog (loaded or not). Never loads.
    pub fn contains(&self, name: &str) -> bool {
        self.inner
            .read()
            .expect(MAP_POISONED)
            .slots
            .contains_key(name)
    }

    /// All graph names, sorted — the deterministic `graphs` answer.
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.read().expect(MAP_POISONED);
        let mut names: Vec<String> = inner.slots.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Number of graphs currently loaded.
    pub fn loaded_count(&self) -> usize {
        self.lru
            .lock()
            .expect(POISONED)
            .loaded
            .values()
            .filter(|m| m.slot.strong_count() > 0)
            .count()
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CatalogStats {
        self.lru.lock().expect(POISONED).stats
    }

    /// Every currently loaded graph state, in name order — the `persist`
    /// admin verb's working set. Never loads anything, and never *waits*
    /// on one either: slots are `try_lock`ed, so a slot busy with a cold
    /// multi-second load is skipped (it has no pools to spill yet)
    /// instead of stalling the caller for the load's duration.
    pub fn loaded_states(&self) -> Vec<Arc<GraphState<M>>> {
        let slots: Vec<Arc<Slot<M>>> = {
            let inner = self.inner.read().expect(MAP_POISONED);
            let mut slots: Vec<_> = inner.slots.values().cloned().collect();
            slots.sort_by(|a, b| a.name.cmp(&b.name));
            slots
        };
        slots
            .iter()
            .filter_map(|slot| slot.loaded.try_lock().ok().and_then(|guard| guard.clone()))
            .collect()
    }

    /// The state for `name`, loading the graph if needed. Loading holds
    /// only this graph's slot lock, so cold loads of different graphs
    /// proceed in parallel and a popular loaded graph is never blocked.
    pub fn get(&self, name: &str) -> Result<Arc<GraphState<M>>, String> {
        let slot = self
            .inner
            .read()
            .expect(MAP_POISONED)
            .slots
            .get(name)
            .cloned()
            .ok_or_else(|| format!("unknown graph '{name}'"))?;
        let state = {
            let mut guard = slot.loaded.lock().expect(SLOT_POISONED);
            match &*guard {
                Some(state) => Arc::clone(state),
                None => {
                    let state = Arc::new(self.load_slot(&slot)?);
                    *guard = Some(Arc::clone(&state));
                    self.lru.lock().expect(POISONED).stats.loads += 1;
                    state
                }
            }
        };
        self.touch_and_evict(&slot);
        Ok(state)
    }

    /// The effective configuration for a slot: the global defaults with
    /// the slot's overrides applied.
    fn effective_config(&self, overrides: &GraphOverrides) -> Arc<ServerConfig> {
        if overrides.is_empty() {
            return Arc::clone(&self.config);
        }
        let mut config = (*self.config).clone();
        if let Some(eps) = overrides.epsilon {
            config.epsilon = eps;
        }
        if let Some(ell) = overrides.ell {
            config.ell = ell;
        }
        if let Some(seed) = overrides.seed {
            config.seed = seed;
        }
        if let Some(k) = overrides.k_max {
            config.k_max = k;
        }
        if let Some(w) = &overrides.weights {
            config.weights = w.clone();
        }
        if let Some(mmap) = overrides.mmap {
            config.mmap = mmap;
        }
        if let Some(mmap_pools) = overrides.mmap_pools {
            config.mmap_pools = mmap_pools;
        }
        if let Some(t) = overrides.select_threads {
            config.select_threads = t;
        }
        if let Some(s) = &overrides.select_strategy {
            // Validated at parse time by GraphOverrides, so this cannot
            // fail on a catalog that loaded successfully.
            config.select_strategy = s
                .parse()
                .expect("GraphOverrides validated the strategy spelling");
        }
        Arc::new(config)
    }

    fn load_slot(&self, slot: &Slot<M>) -> Result<GraphState<M>, String> {
        let config = self.effective_config(&slot.overrides);
        let tag = slot
            .overrides
            .model
            .as_deref()
            .unwrap_or(&self.model_name)
            .to_string();
        let model = self
            .models
            .get(&tag)
            .cloned()
            .ok_or_else(|| format!("graph '{}': unknown model '{tag}'", slot.name))?;
        let (graph, labels) = match &slot.source {
            GraphSource::Resident(graph, labels) => {
                (GraphStore::from_arc(Arc::clone(graph)), Arc::clone(labels))
            }
            GraphSource::Path(path) if config.mmap => {
                // Out-of-core tenant: map the v2 snapshot instead of
                // decoding it. Probabilities live in the mapped file, so
                // the only legal weight spec is "keep" — anything else
                // would silently serve weights the operator did not ask
                // for. A failure here leaves the slot unloaded (not
                // poisoned): the next `use` retries from scratch.
                if config.weights != "keep" {
                    return Err(format!(
                        "graph '{}': mmap serving requires weights=keep (probabilities are \
                         baked into the v2 snapshot; bake them with `tim snapshot --format v2 \
                         --weights {}` instead)",
                        slot.name, config.weights
                    ));
                }
                let store = GraphStore::open_mmap(path).map_err(|e| {
                    format!(
                        "graph '{}': mapping {}: {e} (mmap needs a v2 snapshot; \
                         create one with `tim snapshot --format v2`)",
                        slot.name,
                        path.display()
                    )
                })?;
                let labels = store
                    .mmap_view()
                    .map(|v| LabelMap::new(v.labels().to_vec()))
                    .expect("open_mmap always yields an mmap store");
                (store, Arc::new(labels))
            }
            GraphSource::Path(path) => {
                let mut loaded = io::load_graph(path, config.undirected).map_err(|e| {
                    format!("graph '{}': loading {}: {e}", slot.name, path.display())
                })?;
                weights::apply_spec(&mut loaded.graph, &config.weights, config.seed)
                    .map_err(|e| format!("graph '{}': {e}", slot.name))?;
                (
                    GraphStore::from(loaded.graph),
                    Arc::new(LabelMap::new(loaded.labels)),
                )
            }
        };
        let store = match &config.pool_dir {
            Some(dir) => Some(Arc::new(
                PoolStore::open(dir.join(&slot.name))
                    .map_err(|e| format!("graph '{}': opening pool store: {e}", slot.name))?,
            )),
            None => None,
        };
        Ok(GraphState::from_store(
            slot.name.clone(),
            graph,
            labels,
            model,
            tag,
            config,
            store,
        ))
    }

    /// Re-bumps `name`'s LRU tick if it is currently loaded (a no-op
    /// otherwise). Sessions answering from a cached [`GraphState`] handle
    /// call this periodically so a busy graph never becomes the LRU
    /// eviction victim just because its connections are long-lived.
    pub fn touch(&self, name: &str) {
        let slot = self
            .inner
            .read()
            .expect(MAP_POISONED)
            .slots
            .get(name)
            .cloned();
        if let Some(slot) = slot {
            let mut lru = self.lru.lock().expect(POISONED);
            lru.tick += 1;
            let tick = lru.tick;
            if let Some(mark) = lru.loaded.get_mut(&slot.id) {
                mark.tick = tick;
            }
        }
    }

    /// Bumps `slot`'s LRU tick and evicts the least-recently-used
    /// path-backed graph while more than `max_loaded` of them are
    /// resident. Only path-backed graphs count toward the budget —
    /// pinned ([`add_resident`](Self::add_resident)) graphs can neither
    /// be evicted nor starve the budget of the evictable ones. Victim
    /// slots are `try_lock`ed — a slot busy loading is simply skipped
    /// this round (the next `get` retries), so eviction can never
    /// deadlock with a concurrent load.
    fn touch_and_evict(&self, slot: &Arc<Slot<M>>) {
        let victims: Vec<Arc<Slot<M>>> = {
            let mut lru = self.lru.lock().expect(POISONED);
            lru.tick += 1;
            let tick = lru.tick;
            let evictable = matches!(slot.source, GraphSource::Path(_));
            lru.loaded.insert(
                slot.id,
                LoadedMark {
                    tick,
                    slot: Arc::downgrade(slot),
                    evictable,
                },
            );
            // Prune marks for detached slots whose last holder is gone.
            lru.loaded.retain(|_, m| m.slot.strong_count() > 0);
            let loaded_paths = lru.loaded.values().filter(|m| m.evictable).count();
            let excess = loaded_paths.saturating_sub(self.config.max_loaded);
            if excess == 0 {
                return;
            }
            let mut candidates: Vec<(u64, u64)> = lru
                .loaded
                .iter()
                .filter(|&(&id, m)| id != slot.id && m.evictable)
                .map(|(&id, m)| (m.tick, id))
                .collect();
            candidates.sort_unstable();
            candidates.truncate(excess);
            candidates
                .into_iter()
                .filter_map(|(_, id)| lru.loaded.get(&id).and_then(|m| m.slot.upgrade()))
                .collect()
        };
        for victim in victims {
            // try_lock: never wait on a loading slot.
            if let Ok(mut guard) = victim.loaded.try_lock() {
                if let Some(state) = guard.take() {
                    drop(guard);
                    {
                        let mut lru = self.lru.lock().expect(POISONED);
                        lru.loaded.remove(&victim.id);
                        lru.stats.evictions += 1;
                    }
                    // Eviction must not destroy warm state: flush dirty
                    // pools to the graph's store before the last catalog
                    // reference drops (outside every catalog lock).
                    if self.config.persist_pools {
                        state.sync_pools();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::IndependentCascade;
    use tim_graph::gen;

    fn catalog(max_loaded: usize) -> GraphCatalog<IndependentCascade> {
        GraphCatalog::new(
            IndependentCascade,
            "ic",
            ServerConfig {
                epsilon: 1.0,
                seed: 1,
                k_max: 2,
                sample_threads: 1,
                max_loaded,
                ..ServerConfig::default()
            },
        )
    }

    fn write_graph(dir: &std::path::Path, name: &str, seed: u64) -> std::path::PathBuf {
        let path = dir.join(format!("{name}.txt"));
        let g = gen::barabasi_albert(60, 3, 0.0, seed);
        tim_graph::io::save_edge_list(&g, &path).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tim_srv_catalog_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn get_loads_once_and_reports_unknown_names() {
        let dir = tmpdir("load");
        let c = catalog(4);
        c.add_path("a", write_graph(&dir, "a", 1)).unwrap();
        assert!(c.contains("a"));
        assert_eq!(c.loaded_count(), 0, "registration does not load");
        let first = c.get("a").unwrap();
        let again = c.get("a").unwrap();
        assert!(Arc::ptr_eq(&first, &again), "hit returns the same state");
        assert_eq!(c.stats().loads, 1);
        assert!(c.get("nope").unwrap_err().contains("unknown graph"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_and_invalid_names_are_rejected() {
        let c = catalog(4);
        c.add_path("a", "/tmp/x.txt").unwrap();
        assert!(c
            .add_path("a", "/tmp/y.txt")
            .unwrap_err()
            .contains("duplicate"));
        assert!(c.add_path("bad name", "/tmp/z.txt").is_err());
        assert_eq!(c.names(), ["a"]);
    }

    #[test]
    fn mismatched_resident_label_map_fails_at_registration() {
        // The mismatch must surface at startup, not as a worker-thread
        // panic (and a poisoned slot) on the first query.
        let c = catalog(4);
        let g = gen::barabasi_albert(60, 3, 0.0, 1);
        let err = c
            .add_resident("bad", g, LabelMap::identity(10))
            .unwrap_err();
        assert!(err.contains("label map covers 10 nodes"), "got: {err}");
        assert!(!c.contains("bad"));
    }

    #[test]
    fn resident_graphs_neither_evict_nor_consume_the_budget() {
        let dir = tmpdir("pin");
        let c = catalog(1);
        let g = gen::barabasi_albert(60, 3, 0.0, 9);
        let n = g.n();
        c.add_resident("pinned", g, LabelMap::identity(n)).unwrap();
        c.add_path("p1", write_graph(&dir, "p1", 1)).unwrap();
        c.add_path("p2", write_graph(&dir, "p2", 2)).unwrap();

        // A loaded resident graph must not shrink the path budget: with
        // max_loaded = 1, touching pinned + p1 repeatedly evicts nothing.
        c.get("pinned").unwrap();
        c.get("p1").unwrap();
        c.get("pinned").unwrap();
        c.get("p1").unwrap();
        assert_eq!(c.stats().evictions, 0, "p1 fits the path budget of 1");
        assert_eq!(c.loaded_count(), 2);

        // A second path graph exceeds the budget: p1 (LRU) is evicted,
        // the pinned resident never is.
        c.get("p2").unwrap();
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.loaded_count(), 2, "pinned + p2");
        // Evicted graphs reload on return (a fresh load, same answers).
        let loads_before = c.stats().loads;
        c.get("p1").unwrap();
        assert_eq!(c.stats().loads, loads_before + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn touch_protects_a_graph_from_eviction() {
        let dir = tmpdir("touch");
        let c = catalog(2);
        for (name, seed) in [("hot", 1u64), ("a", 2), ("b", 3)] {
            c.add_path(name, write_graph(&dir, name, seed)).unwrap();
        }
        c.get("hot").unwrap();
        c.get("a").unwrap(); // LRU order: hot, then a
        c.touch("hot"); // a session re-touches hot: order is now a, hot
        c.get("b").unwrap(); // budget 2 exceeded: victim must be a, not hot
        assert_eq!(c.stats().evictions, 1);
        let loads_before = c.stats().loads;
        c.get("hot").unwrap();
        assert_eq!(c.stats().loads, loads_before, "hot stayed loaded");
        c.get("a").unwrap();
        assert_eq!(c.stats().loads, loads_before + 1, "a was the victim");
        // Touching an unloaded or unknown name is a harmless no-op.
        c.touch("nope");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attach_registers_live_and_detach_drains() {
        let dir = tmpdir("attach");
        let c = catalog(4);
        c.add_path("a", write_graph(&dir, "a", 1)).unwrap();
        let state_a = c.get("a").unwrap();

        // Runtime attach: visible immediately, loaded lazily.
        c.attach_path("b", write_graph(&dir, "b", 2), GraphOverrides::default())
            .unwrap();
        assert_eq!(c.names(), ["a", "b"]);
        assert_eq!(c.stats().attaches, 1);
        let state_b = c.get("b").unwrap();
        assert!(state_b.stats_line().starts_with("stats: graph=b "));

        // Detach removes the name at once; the held Arc keeps answering.
        c.detach("b").unwrap();
        assert!(!c.contains("b"));
        assert_eq!(c.stats().detaches, 1);
        assert!(c.get("b").unwrap_err().contains("unknown graph"));
        assert!(state_b.default_engine().select(2).seeds.len() == 2);
        // The name is reusable after the drain starts.
        c.attach_path("b", write_graph(&dir, "b2", 3), GraphOverrides::default())
            .unwrap();
        assert!(c.contains("b"));
        // Untouched graphs are unaffected throughout.
        assert!(Arc::ptr_eq(&state_a, &c.get("a").unwrap()));
        assert!(c.detach("nope").unwrap_err().contains("unknown graph"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_graph_overrides_change_the_effective_config() {
        let dir = tmpdir("overrides");
        let mut c = catalog(4);
        c.register_model("ic2", IndependentCascade);
        assert_eq!(c.model_tags(), ["ic", "ic2"]);
        let overrides = tim_graph::catalog::GraphOverrides::parse("eps=0.5,seed=9,k=3").unwrap();
        c.add_path_with("tuned", write_graph(&dir, "tuned", 1), overrides)
            .unwrap();
        c.add_path("plain", write_graph(&dir, "plain", 1)).unwrap();

        let tuned = c.get("tuned").unwrap();
        assert_eq!(tuned.config().epsilon, 0.5);
        assert_eq!(tuned.config().seed, 9);
        assert_eq!(tuned.config().k_max, 3);
        assert!(tuned.stats_line().contains("eps=0.5 ell=1 seed=9 k_max=3"));
        let plain = c.get("plain").unwrap();
        assert_eq!(plain.config().epsilon, 1.0);
        assert_eq!(plain.config().seed, 1);

        // Same file, different seed → different pool provenance.
        assert_ne!(
            tuned.key_for(None, None),
            plain.key_for(None, None),
            "overrides are part of the provenance"
        );

        // A model override must name a registered tag.
        let bad = tim_graph::catalog::GraphOverrides::parse("model=nope").unwrap();
        let err = c
            .add_path_with("x", write_graph(&dir, "x", 1), bad)
            .unwrap_err();
        assert!(err.contains("unknown model 'nope'"), "got: {err}");
        // A registered override tag loads fine.
        let ok = tim_graph::catalog::GraphOverrides::parse("model=ic2").unwrap();
        c.add_path_with("y", write_graph(&dir, "y", 2), ok).unwrap();
        let y = c.get("y").unwrap();
        assert!(y.stats_line().contains("model=ic2"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
