//! The multi-graph catalog: named graphs, lazy loading, per-graph pool
//! caches, and LRU eviction of idle graphs.
//!
//! A production deployment serves *several* social networks from one
//! process (the paper evaluates across datasets from 16K to 1.4B edges);
//! one process per graph wastes memory on duplicated runtimes and forces
//! clients to know the topology of the fleet. [`GraphCatalog`] maps wire
//! names (`use <graph>`, validated by
//! [`tim_graph::catalog::validate_graph_name`]) to [`GraphState`]s — a
//! graph, its label map, and its *own* [`PoolCache`] budget — loaded
//! lazily from disk on first use.
//!
//! Locking follows the same discipline as [`PoolCache`]:
//!
//! - Each slot has its **own** mutex, held while loading that graph:
//!   concurrent sessions asking for the same cold graph load it once,
//!   and loads of *different* graphs never block each other.
//! - The catalog-level LRU mutex is held only for bookkeeping (ticks,
//!   victim choice) — never across a load or an eviction's slot lock.
//! - Eviction drops the catalog's reference; sessions holding the
//!   `Arc<GraphState>` keep answering against it until they finish, and
//!   the graph reloads deterministically on return (answers are
//!   provenance-determined, so eviction can never change a response).

use crate::cache::{CacheStats, PoolCache, PoolKey};
use crate::protocol::LabelMap;
use crate::server::ServerConfig;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use tim_diffusion::DiffusionModel;
use tim_engine::{QueryEngine, SharedEngine};
use tim_graph::snapshot::graph_checksum;
use tim_graph::{io, weights, Graph};

/// Everything one served graph needs, shared immutably across sessions:
/// the graph, its label map, the model, the defaults, and the graph's own
/// pool cache. (One `GraphState` is exactly what a single-graph `tim/1`
/// server used to hold as its whole state.)
#[derive(Debug)]
pub struct GraphState<M> {
    name: String,
    graph: Arc<Graph>,
    labels: Arc<LabelMap>,
    model: M,
    model_name: String,
    config: Arc<ServerConfig>,
    graph_checksum: u64,
    cache: PoolCache<M>,
}

impl<M: DiffusionModel + Send + Sync + Clone + 'static> GraphState<M> {
    /// Builds the per-graph state. Pools are built lazily on first use;
    /// call [`warm_default`](Self::warm_default) to pay the default
    /// pool's sampling cost up front instead of on the first query.
    ///
    /// # Panics
    /// Panics if `labels` does not cover the graph's nodes, or a config
    /// parameter is out of range (non-positive ε/ℓ, zero `k_max`, zero
    /// `pool_cache`).
    pub fn new(
        name: impl Into<String>,
        graph: impl Into<Arc<Graph>>,
        labels: impl Into<Arc<LabelMap>>,
        model: M,
        model_name: impl Into<String>,
        config: Arc<ServerConfig>,
    ) -> Self {
        let graph: Arc<Graph> = graph.into();
        let labels: Arc<LabelMap> = labels.into();
        assert_eq!(
            labels.len(),
            graph.n(),
            "label map must cover every graph node"
        );
        assert!(config.epsilon > 0.0, "epsilon must be positive");
        assert!(config.ell > 0.0, "ell must be positive");
        assert!(config.k_max >= 1, "k_max must be at least 1");
        let checksum = graph_checksum(&graph);
        GraphState {
            name: name.into(),
            graph,
            labels,
            model,
            model_name: model_name.into(),
            cache: PoolCache::new(config.pool_cache),
            config,
            graph_checksum: checksum,
        }
    }

    /// The catalog name of this graph.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph served under this name.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The label map sessions answer through.
    pub fn labels(&self) -> &Arc<LabelMap> {
        &self.labels
    }

    /// The serving defaults this graph answers under.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Content checksum of the served graph.
    pub fn graph_checksum(&self) -> u64 {
        self.graph_checksum
    }

    /// Pool-cache effectiveness counters for this graph.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of pools currently cached for this graph.
    pub fn cached_pools(&self) -> usize {
        self.cache.len()
    }

    /// The provenance key for a query at the given ε/ℓ (defaults applied).
    pub fn key_for(&self, eps: Option<f64>, ell: Option<f64>) -> PoolKey {
        PoolKey::new(
            self.graph_checksum,
            self.model_name.clone(),
            self.config.seed,
            eps.unwrap_or(self.config.epsilon),
            ell.unwrap_or(self.config.ell),
        )
    }

    fn build_engine(&self, eps: f64, ell: f64) -> SharedEngine<M> {
        let mut engine = QueryEngine::new(
            Arc::clone(&self.graph),
            self.model.clone(),
            self.model_name.clone(),
        )
        .epsilon(eps)
        .ell(ell)
        .seed(self.config.seed)
        .k_max(self.config.k_max);
        if self.config.sample_threads > 0 {
            engine = engine.threads(self.config.sample_threads);
        }
        engine.warm();
        SharedEngine::new(engine)
    }

    /// The engine for a query at the given ε/ℓ: a cache hit reuses the
    /// warm pool, a cold miss builds (and warms) one without blocking
    /// readers of other pools.
    pub fn engine_for(&self, eps: Option<f64>, ell: Option<f64>) -> Arc<SharedEngine<M>> {
        let eps = eps.unwrap_or(self.config.epsilon);
        let ell = ell.unwrap_or(self.config.ell);
        let key = self.key_for(Some(eps), Some(ell));
        self.cache
            .get_or_build(&key, || self.build_engine(eps, ell))
    }

    /// The engine serving default-configuration queries.
    pub fn default_engine(&self) -> Arc<SharedEngine<M>> {
        self.engine_for(None, None)
    }

    /// Builds (or reuses) the default pool now, returning its θ — lets a
    /// server pay the sampling cost before accepting connections.
    pub fn warm_default(&self) -> u64 {
        self.default_engine().pool_theta()
    }

    /// Pre-seeds this graph's cache with an engine restored from
    /// persistent state (e.g. a `.timp` pool file), keyed by its own
    /// provenance.
    pub fn preload(&self, engine: QueryEngine<M>) -> Arc<SharedEngine<M>> {
        let meta = engine.pool_meta();
        let key = PoolKey::new(
            meta.graph_checksum,
            meta.model.clone(),
            meta.seed,
            meta.epsilon,
            meta.ell,
        );
        self.cache.insert(key, SharedEngine::new(engine))
    }

    /// One deterministic `stats` answer line: static facts only (name,
    /// sizes, checksum, defaults) — never counters or pool sizes, so the
    /// reply is byte-identical under any interleaving.
    pub fn stats_line(&self) -> String {
        format!(
            "stats: graph={} n={} m={} checksum={:016x} model={} eps={} ell={} seed={} k_max={}",
            self.name,
            self.graph.n(),
            self.graph.m(),
            self.graph_checksum,
            self.model_name,
            self.config.epsilon,
            self.config.ell,
            self.config.seed,
            self.config.k_max,
        )
    }
}

/// Where a catalog slot's graph comes from.
#[derive(Debug)]
enum GraphSource {
    /// Load lazily from disk (text edge list or `.timg`, sniffed by
    /// content), applying the config's weight spec. Evictable.
    Path(PathBuf),
    /// Registered in memory (single-graph servers, tests). Pinned: never
    /// evicted, because there is no path to reload it from.
    Resident(Arc<Graph>, Arc<LabelMap>),
}

#[derive(Debug)]
struct Slot<M> {
    name: String,
    source: GraphSource,
    loaded: Mutex<Option<Arc<GraphState<M>>>>,
}

/// Catalog effectiveness counters (monotone since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Graphs loaded (or re-loaded after eviction) from their source.
    pub loads: u64,
    /// Loaded graphs dropped to respect `max_loaded`.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct LruInner {
    tick: u64,
    /// Slot index → last-used tick, for every currently loaded slot.
    last_used: HashMap<usize, u64>,
    stats: CatalogStats,
}

/// A named-graph catalog with lazy loading and LRU eviction; see the
/// module docs for the locking contract.
#[derive(Debug)]
pub struct GraphCatalog<M> {
    model: M,
    model_name: String,
    config: Arc<ServerConfig>,
    slots: Vec<Slot<M>>,
    by_name: HashMap<String, usize>,
    lru: Mutex<LruInner>,
}

const POISONED: &str = "catalog lru mutex poisoned";
const SLOT_POISONED: &str = "catalog slot mutex poisoned";

impl<M: DiffusionModel + Send + Sync + Clone + 'static> GraphCatalog<M> {
    /// Creates an empty catalog serving under `config`'s defaults.
    ///
    /// # Panics
    /// Panics if a config parameter is out of range (non-positive ε/ℓ,
    /// zero `k_max`, zero `pool_cache`, zero `max_loaded`).
    pub fn new(model: M, model_name: impl Into<String>, config: ServerConfig) -> Self {
        assert!(config.epsilon > 0.0, "epsilon must be positive");
        assert!(config.ell > 0.0, "ell must be positive");
        assert!(config.k_max >= 1, "k_max must be at least 1");
        assert!(config.pool_cache >= 1, "pool_cache must be at least 1");
        assert!(config.max_loaded >= 1, "max_loaded must be at least 1");
        GraphCatalog {
            model,
            model_name: model_name.into(),
            config: Arc::new(config),
            slots: Vec::new(),
            by_name: HashMap::new(),
            lru: Mutex::new(LruInner::default()),
        }
    }

    fn add_slot(&mut self, name: String, source: GraphSource) -> Result<(), String> {
        tim_graph::catalog::validate_graph_name(&name).map_err(|e| e.to_string())?;
        if self.by_name.contains_key(&name) {
            return Err(format!("duplicate graph name '{name}'"));
        }
        self.by_name.insert(name.clone(), self.slots.len());
        self.slots.push(Slot {
            name,
            source,
            loaded: Mutex::new(None),
        });
        Ok(())
    }

    /// Registers a graph to be loaded lazily from `path` on first use
    /// (text edge list or `.timg` snapshot, sniffed by content; the
    /// config's weight spec is applied after loading).
    pub fn add_path(
        &mut self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Result<(), String> {
        self.add_slot(name.into(), GraphSource::Path(path.into()))
    }

    /// Registers an already-loaded graph under `name`. Resident graphs
    /// are pinned: they never count toward `max_loaded` eviction.
    ///
    /// Validates the label map here, at registration — a mismatch must
    /// fail fast at startup, not panic inside a worker thread on the
    /// first query (which would poison the slot for every later session).
    pub fn add_resident(
        &mut self,
        name: impl Into<String>,
        graph: impl Into<Arc<Graph>>,
        labels: impl Into<Arc<LabelMap>>,
    ) -> Result<(), String> {
        let name = name.into();
        let graph: Arc<Graph> = graph.into();
        let labels: Arc<LabelMap> = labels.into();
        if labels.len() != graph.n() {
            return Err(format!(
                "graph '{name}': label map covers {} nodes but the graph has {}",
                labels.len(),
                graph.n()
            ));
        }
        self.add_slot(name, GraphSource::Resident(graph, labels))
    }

    /// The serving defaults every graph answers under.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Number of named graphs (loaded or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no graphs are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when `name` is in the catalog (loaded or not). Never loads.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// All graph names, sorted — the deterministic `graphs` answer.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.slots.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Number of graphs currently loaded.
    pub fn loaded_count(&self) -> usize {
        self.lru.lock().expect(POISONED).last_used.len()
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CatalogStats {
        self.lru.lock().expect(POISONED).stats
    }

    /// The state for `name`, loading the graph if needed. Loading holds
    /// only this graph's slot lock, so cold loads of different graphs
    /// proceed in parallel and a popular loaded graph is never blocked.
    pub fn get(&self, name: &str) -> Result<Arc<GraphState<M>>, String> {
        let &idx = self
            .by_name
            .get(name)
            .ok_or_else(|| format!("unknown graph '{name}'"))?;
        let slot = &self.slots[idx];
        let state = {
            let mut guard = slot.loaded.lock().expect(SLOT_POISONED);
            match &*guard {
                Some(state) => Arc::clone(state),
                None => {
                    let state = Arc::new(self.load_slot(slot)?);
                    *guard = Some(Arc::clone(&state));
                    self.lru.lock().expect(POISONED).stats.loads += 1;
                    state
                }
            }
        };
        self.touch_and_evict(idx);
        Ok(state)
    }

    fn load_slot(&self, slot: &Slot<M>) -> Result<GraphState<M>, String> {
        let (graph, labels) = match &slot.source {
            GraphSource::Resident(graph, labels) => (Arc::clone(graph), Arc::clone(labels)),
            GraphSource::Path(path) => {
                let mut loaded = io::load_graph(path, self.config.undirected).map_err(|e| {
                    format!("graph '{}': loading {}: {e}", slot.name, path.display())
                })?;
                weights::apply_spec(&mut loaded.graph, &self.config.weights, self.config.seed)
                    .map_err(|e| format!("graph '{}': {e}", slot.name))?;
                (
                    Arc::new(loaded.graph),
                    Arc::new(LabelMap::new(loaded.labels)),
                )
            }
        };
        Ok(GraphState::new(
            slot.name.clone(),
            graph,
            labels,
            self.model.clone(),
            self.model_name.clone(),
            Arc::clone(&self.config),
        ))
    }

    /// Re-bumps `name`'s LRU tick if it is currently loaded (a no-op
    /// otherwise). Sessions answering from a cached [`GraphState`] handle
    /// call this periodically so a busy graph never becomes the LRU
    /// eviction victim just because its connections are long-lived.
    pub fn touch(&self, name: &str) {
        if let Some(&idx) = self.by_name.get(name) {
            let mut lru = self.lru.lock().expect(POISONED);
            if lru.last_used.contains_key(&idx) {
                lru.tick += 1;
                let tick = lru.tick;
                lru.last_used.insert(idx, tick);
            }
        }
    }

    /// Bumps `idx`'s LRU tick and evicts the least-recently-used
    /// path-backed graph while more than `max_loaded` of them are
    /// resident. Only path-backed graphs count toward the budget —
    /// pinned ([`add_resident`](Self::add_resident)) graphs can neither
    /// be evicted nor starve the budget of the evictable ones. Victim
    /// slots are `try_lock`ed — a slot busy loading is simply skipped
    /// this round (the next `get` retries), so eviction can never
    /// deadlock with a concurrent load.
    fn touch_and_evict(&self, idx: usize) {
        let victims: Vec<usize> = {
            let mut lru = self.lru.lock().expect(POISONED);
            lru.tick += 1;
            let tick = lru.tick;
            lru.last_used.insert(idx, tick);
            let loaded_paths = lru
                .last_used
                .keys()
                .filter(|&&i| matches!(self.slots[i].source, GraphSource::Path(_)))
                .count();
            let excess = loaded_paths.saturating_sub(self.config.max_loaded);
            if excess == 0 {
                return;
            }
            let mut evictable: Vec<(u64, usize)> = lru
                .last_used
                .iter()
                .filter(|&(&i, _)| i != idx && matches!(self.slots[i].source, GraphSource::Path(_)))
                .map(|(&i, &t)| (t, i))
                .collect();
            evictable.sort_unstable();
            evictable.truncate(excess);
            evictable.into_iter().map(|(_, i)| i).collect()
        };
        for victim in victims {
            // try_lock: never wait on a loading slot.
            if let Ok(mut guard) = self.slots[victim].loaded.try_lock() {
                if guard.take().is_some() {
                    let mut lru = self.lru.lock().expect(POISONED);
                    lru.last_used.remove(&victim);
                    lru.stats.evictions += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::IndependentCascade;
    use tim_graph::gen;

    fn catalog(max_loaded: usize) -> GraphCatalog<IndependentCascade> {
        GraphCatalog::new(
            IndependentCascade,
            "ic",
            ServerConfig {
                epsilon: 1.0,
                seed: 1,
                k_max: 2,
                sample_threads: 1,
                max_loaded,
                ..ServerConfig::default()
            },
        )
    }

    fn write_graph(dir: &std::path::Path, name: &str, seed: u64) -> std::path::PathBuf {
        let path = dir.join(format!("{name}.txt"));
        let g = gen::barabasi_albert(60, 3, 0.0, seed);
        tim_graph::io::save_edge_list(&g, &path).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tim_srv_catalog_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn get_loads_once_and_reports_unknown_names() {
        let dir = tmpdir("load");
        let mut c = catalog(4);
        c.add_path("a", write_graph(&dir, "a", 1)).unwrap();
        assert!(c.contains("a"));
        assert_eq!(c.loaded_count(), 0, "registration does not load");
        let first = c.get("a").unwrap();
        let again = c.get("a").unwrap();
        assert!(Arc::ptr_eq(&first, &again), "hit returns the same state");
        assert_eq!(c.stats().loads, 1);
        assert!(c.get("nope").unwrap_err().contains("unknown graph"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_and_invalid_names_are_rejected() {
        let mut c = catalog(4);
        c.add_path("a", "/tmp/x.txt").unwrap();
        assert!(c
            .add_path("a", "/tmp/y.txt")
            .unwrap_err()
            .contains("duplicate"));
        assert!(c.add_path("bad name", "/tmp/z.txt").is_err());
        assert_eq!(c.names(), ["a"]);
    }

    #[test]
    fn mismatched_resident_label_map_fails_at_registration() {
        // The mismatch must surface at startup, not as a worker-thread
        // panic (and a poisoned slot) on the first query.
        let mut c = catalog(4);
        let g = gen::barabasi_albert(60, 3, 0.0, 1);
        let err = c
            .add_resident("bad", g, LabelMap::identity(10))
            .unwrap_err();
        assert!(err.contains("label map covers 10 nodes"), "got: {err}");
        assert!(!c.contains("bad"));
    }

    #[test]
    fn resident_graphs_neither_evict_nor_consume_the_budget() {
        let dir = tmpdir("pin");
        let mut c = catalog(1);
        let g = gen::barabasi_albert(60, 3, 0.0, 9);
        let n = g.n();
        c.add_resident("pinned", g, LabelMap::identity(n)).unwrap();
        c.add_path("p1", write_graph(&dir, "p1", 1)).unwrap();
        c.add_path("p2", write_graph(&dir, "p2", 2)).unwrap();

        // A loaded resident graph must not shrink the path budget: with
        // max_loaded = 1, touching pinned + p1 repeatedly evicts nothing.
        c.get("pinned").unwrap();
        c.get("p1").unwrap();
        c.get("pinned").unwrap();
        c.get("p1").unwrap();
        assert_eq!(c.stats().evictions, 0, "p1 fits the path budget of 1");
        assert_eq!(c.loaded_count(), 2);

        // A second path graph exceeds the budget: p1 (LRU) is evicted,
        // the pinned resident never is.
        c.get("p2").unwrap();
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.loaded_count(), 2, "pinned + p2");
        // Evicted graphs reload on return (a fresh load, same answers).
        let loads_before = c.stats().loads;
        c.get("p1").unwrap();
        assert_eq!(c.stats().loads, loads_before + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn touch_protects_a_graph_from_eviction() {
        let dir = tmpdir("touch");
        let mut c = catalog(2);
        for (name, seed) in [("hot", 1u64), ("a", 2), ("b", 3)] {
            c.add_path(name, write_graph(&dir, name, seed)).unwrap();
        }
        c.get("hot").unwrap();
        c.get("a").unwrap(); // LRU order: hot, then a
        c.touch("hot"); // a session re-touches hot: order is now a, hot
        c.get("b").unwrap(); // budget 2 exceeded: victim must be a, not hot
        assert_eq!(c.stats().evictions, 1);
        let loads_before = c.stats().loads;
        c.get("hot").unwrap();
        assert_eq!(c.stats().loads, loads_before, "hot stayed loaded");
        c.get("a").unwrap();
        assert_eq!(c.stats().loads, loads_before + 1, "a was the victim");
        // Touching an unloaded or unknown name is a harmless no-op.
        c.touch("nope");
        std::fs::remove_dir_all(&dir).ok();
    }
}
