//! The line-delimited influence-query protocol shared by `tim query` and
//! `tim serve`.
//!
//! One request per line, one answer line per request; blank lines and `#`
//! comments are ignored (no answer). Malformed requests answer
//! `error: …` and the session continues. The normative grammar, framing,
//! and versioning rules live in `docs/PROTOCOL.md`; this module is the
//! single implementation both front ends use, so they cannot drift apart.
//!
//! Parsing ([`parse_query`]) is deliberately separate from execution
//! ([`execute`]): a concurrent server must inspect a query's ε/ℓ
//! overrides to route it to the right pool *before* running it, while the
//! CLI simply executes against its one engine. [`QueryBackend`] abstracts
//! the engine access so the same `execute` serves an exclusive
//! [`QueryEngine`] (`tim query`) and a lock-sharded [`SharedEngine`]
//! (`tim serve`).

use std::collections::HashMap;
use tim_diffusion::DiffusionModel;
use tim_engine::{QueryEngine, QueryOutcome, SharedEngine};
use tim_graph::NodeId;

/// Protocol version implemented by this module (see `docs/PROTOCOL.md`).
/// Reported by the `ping` reply as `pong tim/1`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Parses a comma-separated list of node labels (`17,4,99`). Empty items
/// are skipped, so trailing commas are harmless.
pub fn parse_id_list(s: &str) -> Result<Vec<u64>, String> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.trim()
                .parse::<u64>()
                .map_err(|_| format!("bad node id '{t}'"))
        })
        .collect()
}

/// Bidirectional node-label map: dense ids `0..n` ↔ original labels.
///
/// Queries and answers speak original labels; engines speak dense ids.
/// Built once per graph and shared read-only across connections.
#[derive(Debug, Clone)]
pub struct LabelMap {
    labels: Vec<u64>,
    to_dense: HashMap<u64, NodeId>,
}

impl LabelMap {
    /// Builds the map from `labels[i]` = original label of dense node `i`
    /// (the `labels` vector of `tim_graph::io::LoadedGraph`).
    pub fn new(labels: Vec<u64>) -> Self {
        let to_dense = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as NodeId))
            .collect();
        LabelMap { labels, to_dense }
    }

    /// The identity map over `0..n`, for graphs that never had external
    /// labels (e.g. synthetic generators).
    pub fn identity(n: usize) -> Self {
        Self::new((0..n as u64).collect())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Original label of dense node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn label_of(&self, v: NodeId) -> u64 {
        self.labels[v as usize]
    }

    /// Dense id of an original label.
    pub fn to_dense(&self, label: u64) -> Result<NodeId, String> {
        self.to_dense
            .get(&label)
            .copied()
            .ok_or_else(|| format!("label {label} not present in the graph"))
    }

    /// Maps a list of original labels to dense ids.
    pub fn map_all(&self, labels: &[u64]) -> Result<Vec<NodeId>, String> {
        labels.iter().map(|&l| self.to_dense(l)).collect()
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `select <k> [fast] [eps=<v>] [ell=<v>]` — seed selection.
    Select {
        /// Seed-set size.
        k: usize,
        /// Prefix answering over the full pool instead of exact replay.
        fast: bool,
        /// Per-query ε override (exact replay only).
        eps: Option<f64>,
        /// Per-query ℓ override (exact replay only).
        ell: Option<f64>,
    },
    /// `eval <id,id,...>` — pool-coverage spread estimate (original
    /// labels).
    Eval {
        /// Seed labels to evaluate.
        seeds: Vec<u64>,
    },
    /// `marginal <id,id,...> <cand>` — marginal gain of adding `cand`
    /// (original labels; the candidate list must map to exactly one id).
    Marginal {
        /// Base seed labels.
        base: Vec<u64>,
        /// Candidate label list (validated to a single id at execution).
        cand: Vec<u64>,
    },
    /// `ping` — liveness/version probe; answers `pong tim/1`.
    Ping,
}

/// Result of parsing one input line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedLine {
    /// Blank line or `#` comment: produces no answer line.
    Empty,
    /// A well-formed request.
    Query(Query),
    /// A malformed request; answer `error: <reason>` and continue.
    Malformed(String),
}

/// Parses one protocol line. Never fails hard: malformed input becomes
/// [`ParsedLine::Malformed`] so sessions survive bad lines.
pub fn parse_query(line: &str) -> ParsedLine {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return ParsedLine::Empty;
    }
    let mut tokens = trimmed.split_whitespace();
    let parsed = match tokens.next() {
        Some("select") => (|| -> Result<Query, String> {
            let k: usize = tokens
                .next()
                .ok_or("select: missing k")?
                .parse()
                .map_err(|_| "select: bad k".to_string())?;
            if k == 0 {
                return Err("select: k must be positive".into());
            }
            let mut fast = false;
            let (mut eps, mut ell) = (None, None);
            for t in tokens.by_ref() {
                if t == "fast" {
                    fast = true;
                } else if let Some(v) = t.strip_prefix("eps=") {
                    eps = Some(v.parse().map_err(|_| format!("select: bad eps '{v}'"))?);
                } else if let Some(v) = t.strip_prefix("ell=") {
                    ell = Some(v.parse().map_err(|_| format!("select: bad ell '{v}'"))?);
                } else {
                    return Err(format!("select: unknown option '{t}'"));
                }
            }
            if fast && (eps.is_some() || ell.is_some()) {
                return Err("select: fast mode uses the pool's eps/ell".into());
            }
            // NaN must be rejected alongside non-positive values: the
            // engine asserts eps > 0, and a panic would kill the session.
            if let Some(e) = eps.filter(|&e: &f64| e.is_nan() || e <= 0.0) {
                return Err(format!("select: eps must be positive, got '{e}'"));
            }
            if let Some(l) = ell.filter(|&l: &f64| l.is_nan() || l <= 0.0) {
                return Err(format!("select: ell must be positive, got '{l}'"));
            }
            Ok(Query::Select { k, fast, eps, ell })
        })(),
        Some("eval") => (|| -> Result<Query, String> {
            let spec = tokens.next().ok_or("eval: missing seed list")?;
            if tokens.next().is_some() {
                return Err("eval: trailing tokens".into());
            }
            let seeds = parse_id_list(spec)?;
            if seeds.is_empty() {
                return Err("eval: empty seed list".into());
            }
            Ok(Query::Eval { seeds })
        })(),
        Some("marginal") => (|| -> Result<Query, String> {
            let base_spec = tokens.next().ok_or("marginal: missing base seed list")?;
            let cand_spec = tokens.next().ok_or("marginal: missing candidate id")?;
            if tokens.next().is_some() {
                return Err("marginal: trailing tokens".into());
            }
            Ok(Query::Marginal {
                base: parse_id_list(base_spec)?,
                cand: parse_id_list(cand_spec)?,
            })
        })(),
        Some("ping") => (|| -> Result<Query, String> {
            if tokens.next().is_some() {
                return Err("ping: trailing tokens".into());
            }
            Ok(Query::Ping)
        })(),
        Some(other) => Err(format!("unknown query '{other}'")),
        None => return ParsedLine::Empty,
    };
    match parsed {
        Ok(q) => ParsedLine::Query(q),
        Err(e) => ParsedLine::Malformed(e),
    }
}

/// Engine access as the protocol needs it — implemented by an exclusive
/// [`QueryEngine`] (`tim query`) and by shared references to a
/// [`SharedEngine`] (`tim serve`), so both front ends execute queries
/// through the very same [`execute`].
pub trait QueryBackend {
    /// Exact-replay seed selection with optional ε/ℓ overrides.
    fn select_with(&mut self, k: usize, eps: Option<f64>, ell: Option<f64>) -> QueryOutcome;
    /// Prefix answering over the full pool.
    fn select_fast(&mut self, k: usize) -> QueryOutcome;
    /// Pool-coverage spread estimate of `seeds` (dense ids).
    fn spread(&mut self, seeds: &[NodeId]) -> f64;
    /// Marginal spread gain of adding `candidate` to `base` (dense ids).
    fn marginal_gain(&mut self, base: &[NodeId], candidate: NodeId) -> f64;
}

impl<M: DiffusionModel + Sync + Clone> QueryBackend for QueryEngine<M> {
    fn select_with(&mut self, k: usize, eps: Option<f64>, ell: Option<f64>) -> QueryOutcome {
        QueryEngine::select_with(self, k, eps, ell)
    }
    fn select_fast(&mut self, k: usize) -> QueryOutcome {
        QueryEngine::select_fast(self, k)
    }
    fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        QueryEngine::spread(self, seeds)
    }
    fn marginal_gain(&mut self, base: &[NodeId], candidate: NodeId) -> f64 {
        QueryEngine::marginal_gain(self, base, candidate)
    }
}

impl<M: DiffusionModel + Sync + Clone> QueryBackend for &SharedEngine<M> {
    fn select_with(&mut self, k: usize, eps: Option<f64>, ell: Option<f64>) -> QueryOutcome {
        SharedEngine::select_with(self, k, eps, ell)
    }
    fn select_fast(&mut self, k: usize) -> QueryOutcome {
        SharedEngine::select_fast(self, k)
    }
    fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        SharedEngine::spread(self, seeds)
    }
    fn marginal_gain(&mut self, base: &[NodeId], candidate: NodeId) -> f64 {
        SharedEngine::marginal_gain(self, base, candidate)
    }
}

/// One protocol answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The single machine-readable answer line (no trailing newline).
    /// Failed queries carry their `error: …` line here.
    pub line: String,
    /// Optional human-readable progress note (pool θ, resample flag) —
    /// `tim query` prints it to stderr unless `--quiet`; servers may log
    /// it. Never part of the answer stream.
    pub note: Option<String>,
}

impl Reply {
    fn answer(line: String) -> Self {
        Reply { line, note: None }
    }

    fn error(e: String) -> Self {
        Reply {
            line: format!("error: {e}"),
            note: None,
        }
    }
}

/// Executes a parsed query against a backend, mapping labels both ways.
/// Infallible by design: execution errors (unknown labels, …) become
/// `error: …` answer lines so one bad query never kills a session.
pub fn execute<B: QueryBackend>(backend: &mut B, labels: &LabelMap, query: &Query) -> Reply {
    match query {
        Query::Select { k, fast, eps, ell } => {
            let outcome = if *fast {
                backend.select_fast(*k)
            } else {
                backend.select_with(*k, *eps, *ell)
            };
            let note = format!(
                "select k={k}: theta = {}{}",
                outcome.theta_used,
                if outcome.resampled {
                    " (resampled)"
                } else {
                    ""
                }
            );
            let label_list: Vec<String> = outcome
                .seeds
                .iter()
                .map(|&v| labels.label_of(v).to_string())
                .collect();
            Reply {
                line: format!("seeds: {}", label_list.join(" ")),
                note: Some(note),
            }
        }
        Query::Eval { seeds } => match labels.map_all(seeds) {
            Ok(dense) => Reply::answer(format!("spread: {:.2}", backend.spread(&dense))),
            Err(e) => Reply::error(e),
        },
        Query::Marginal { base, cand } => {
            let mapped = labels
                .map_all(base)
                .and_then(|b| labels.map_all(cand).map(|c| (b, c)));
            match mapped {
                Ok((base, cand)) => match cand.as_slice() {
                    &[c] => {
                        Reply::answer(format!("marginal: {:.2}", backend.marginal_gain(&base, c)))
                    }
                    _ => Reply::error("marginal: candidate must be a single id".into()),
                },
                Err(e) => Reply::error(e),
            }
        }
        Query::Ping => Reply::answer(format!("pong tim/{PROTOCOL_VERSION}")),
    }
}

/// Parses and executes one input line: `None` for blank/comment lines
/// (no answer), `Some` otherwise — with malformed input folded into an
/// `error: …` reply. This is the whole per-line behavior of `tim query`
/// and of one `tim serve` connection.
pub fn handle_line<B: QueryBackend>(
    backend: &mut B,
    labels: &LabelMap,
    line: &str,
) -> Option<Reply> {
    match parse_query(line) {
        ParsedLine::Empty => None,
        ParsedLine::Malformed(e) => Some(Reply::error(e)),
        ParsedLine::Query(q) => Some(execute(backend, labels, &q)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::IndependentCascade;
    use tim_graph::{gen, weights};

    fn backend() -> (QueryEngine<IndependentCascade>, LabelMap) {
        let mut g = gen::barabasi_albert(200, 4, 0.0, 1);
        weights::assign_weighted_cascade(&mut g);
        let n = g.n();
        let mut e = QueryEngine::new(g, IndependentCascade, "ic")
            .epsilon(1.0)
            .seed(3)
            .threads(2)
            .k_max(5);
        e.warm();
        (e, LabelMap::identity(n))
    }

    #[test]
    fn parse_covers_grammar_and_errors() {
        assert_eq!(parse_query("  "), ParsedLine::Empty);
        assert_eq!(parse_query("# comment"), ParsedLine::Empty);
        assert_eq!(
            parse_query("select 5 fast"),
            ParsedLine::Query(Query::Select {
                k: 5,
                fast: true,
                eps: None,
                ell: None
            })
        );
        assert_eq!(
            parse_query("select 3 eps=0.5 ell=2"),
            ParsedLine::Query(Query::Select {
                k: 3,
                fast: false,
                eps: Some(0.5),
                ell: Some(2.0)
            })
        );
        assert_eq!(
            parse_query("eval 1,2,3"),
            ParsedLine::Query(Query::Eval {
                seeds: vec![1, 2, 3]
            })
        );
        assert_eq!(
            parse_query("marginal 1,2 9"),
            ParsedLine::Query(Query::Marginal {
                base: vec![1, 2],
                cand: vec![9]
            })
        );
        assert_eq!(parse_query("ping"), ParsedLine::Query(Query::Ping));

        for (line, needle) in [
            ("select", "missing k"),
            ("select x", "bad k"),
            ("select 0", "k must be positive"),
            ("select 2 bogus", "unknown option"),
            ("select 2 eps=z", "bad eps"),
            ("select 2 ell=z", "bad ell"),
            ("select 2 eps=-1", "eps must be positive"),
            ("select 2 ell=0", "ell must be positive"),
            ("select 2 fast eps=0.5", "fast mode uses the pool's eps/ell"),
            ("eval", "missing seed list"),
            ("eval 1 2", "trailing tokens"),
            ("eval ,", "empty seed list"),
            ("eval 1,x", "bad node id"),
            ("marginal", "missing base seed list"),
            ("marginal 1", "missing candidate id"),
            ("marginal 1 2 3", "trailing tokens"),
            ("ping now", "trailing tokens"),
            ("frobnicate", "unknown query"),
        ] {
            match parse_query(line) {
                ParsedLine::Malformed(e) => {
                    assert!(e.contains(needle), "{line:?}: {e:?} missing {needle:?}")
                }
                other => panic!("{line:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn execute_answers_every_query_kind() {
        let (mut e, labels) = backend();
        let reply = handle_line(&mut e, &labels, "select 3").unwrap();
        assert!(reply.line.starts_with("seeds: "));
        assert_eq!(reply.line.split_whitespace().count(), 4);
        assert!(reply.note.as_deref().unwrap().starts_with("select k=3"));

        let fast = handle_line(&mut e, &labels, "select 2 fast").unwrap();
        assert!(fast.line.starts_with("seeds: "));

        let spread = handle_line(&mut e, &labels, "eval 0,1").unwrap();
        assert!(spread.line.starts_with("spread: "));

        let marginal = handle_line(&mut e, &labels, "marginal 0 1").unwrap();
        assert!(marginal.line.starts_with("marginal: "));

        assert_eq!(
            handle_line(&mut e, &labels, "ping").unwrap().line,
            "pong tim/1"
        );
        assert!(handle_line(&mut e, &labels, "# skip").is_none());
        assert!(handle_line(&mut e, &labels, "eval 99999")
            .unwrap()
            .line
            .contains("label 99999 not present"));
        assert!(handle_line(&mut e, &labels, "marginal 0 1,2")
            .unwrap()
            .line
            .contains("candidate must be a single id"));
    }

    #[test]
    fn shared_backend_matches_exclusive_backend() {
        let (mut exclusive, labels) = backend();
        let (engine, _) = backend();
        let shared = SharedEngine::new(engine);
        let mut shared_ref = &shared;
        for line in [
            "select 4",
            "select 2 fast",
            "eval 0,5",
            "marginal 0 7",
            "ping",
        ] {
            let a = handle_line(&mut exclusive, &labels, line).unwrap();
            let b = handle_line(&mut shared_ref, &labels, line).unwrap();
            assert_eq!(a.line, b.line, "{line}");
        }
    }

    #[test]
    fn label_map_round_trips_sparse_labels() {
        let m = LabelMap::new(vec![100, 7, 42]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.label_of(1), 7);
        assert_eq!(m.to_dense(42), Ok(2));
        assert_eq!(m.map_all(&[42, 100]), Ok(vec![2, 0]));
        assert!(m.to_dense(8).unwrap_err().contains("label 8"));
        assert_eq!(LabelMap::identity(3).label_of(2), 2);
    }

    #[test]
    fn id_list_parses_and_rejects() {
        assert_eq!(parse_id_list("1,2, 3").unwrap(), vec![1, 2, 3]);
        assert!(parse_id_list("1,x").is_err());
        assert_eq!(parse_id_list("").unwrap(), Vec::<u64>::new());
    }
}
