//! The line-delimited influence-query protocol (`tim/3`) shared by
//! `tim query` and `tim serve`.
//!
//! One request per line, one answer line per request; blank lines and `#`
//! comments are ignored (no answer). Malformed requests answer
//! `error: …` and the session continues. The normative grammar, framing,
//! and versioning rules live in `docs/PROTOCOL.md`; this module is the
//! single implementation both front ends use, so they cannot drift apart.
//!
//! The grammar has three strata:
//!
//! - **Engine-scoped queries** ([`Query`], parsed by [`parse_query`],
//!   executed by [`execute`]) — `select` / `eval` / `marginal` / `ping`,
//!   unchanged from `tim/1`. [`QueryBackend`] abstracts the engine access
//!   so the same `execute` serves an exclusive [`QueryEngine`]
//!   (`tim query`), a lock-sharded [`SharedEngine`] (`tim serve`), and the
//!   batch read-guard backend.
//! - **Session-scoped requests** ([`Request`], parsed by
//!   [`parse_request`]) — the `tim/2` additions `use` / `graphs` /
//!   `stats` / `batch`, which manipulate per-connection state (current
//!   graph, pending batch) and are executed by
//!   [`Session`](crate::session::Session), not by an engine.
//! - **Admin requests** (new in `tim/3`) — `attach` / `detach` /
//!   `persist` / `stats pools`, which mutate the server's graph catalog
//!   or its persistent warm state. They always *parse*; whether they
//!   *execute* is gated by the server's `--admin` switch (default off:
//!   they answer `error: …`).
//!
//! Parsing is deliberately separate from execution: a concurrent server
//! must inspect a query's ε/ℓ overrides to route it to the right pool
//! *before* running it, and must see a `use` before deciding which graph
//! that pool belongs to.
//!
//! This module also owns the wire framing shared by TCP connections and
//! the `tim query` stdin path: [`CappedLineReader`] enforces the
//! [`MAX_LINE_BYTES`] request-line cap identically on both transports.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use tim_diffusion::BackingModel;
use tim_engine::{QueryEngine, QueryOutcome, SharedEngine};
use tim_graph::NodeId;

/// Protocol version implemented by this module (see `docs/PROTOCOL.md`).
/// Reported by the `ping` reply as `pong tim/3`.
pub const PROTOCOL_VERSION: u32 = 3;

/// Largest accepted `batch <n>`: bounds the lines a session buffers.
pub const MAX_BATCH: usize = 4096;

/// Most bytes one batch may buffer across its collected lines. `MAX_BATCH`
/// bounds the line *count*; without a byte bound, 4096 lines of 1 MiB
/// each would let a single connection pin ~4 GiB. Exceeding this answers
/// `error: …` and ends the session (like an oversized line).
pub const MAX_BATCH_BYTES: usize = 8 << 20;

/// The answer line sent when a batch buffers more than [`MAX_BATCH_BYTES`].
pub const OVERSIZED_BATCH_REPLY: &str = "error: batch exceeds the 8 MiB buffer limit";

/// Longest accepted request line (bytes, excluding the newline). Longer
/// lines answer [`OVERSIZED_LINE_REPLY`] and end the session
/// (`docs/PROTOCOL.md` §Framing).
pub const MAX_LINE_BYTES: u64 = 1 << 20;

/// The answer line sent for a request line over [`MAX_LINE_BYTES`].
pub const OVERSIZED_LINE_REPLY: &str = "error: request line exceeds the 1 MiB limit";

/// Parses a comma-separated list of node labels (`17,4,99`). Empty items
/// are skipped, so trailing commas are harmless.
pub fn parse_id_list(s: &str) -> Result<Vec<u64>, String> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.trim()
                .parse::<u64>()
                .map_err(|_| format!("bad node id '{t}'"))
        })
        .collect()
}

/// Bidirectional node-label map: dense ids `0..n` ↔ original labels.
///
/// Queries and answers speak original labels; engines speak dense ids.
/// Built once per graph and shared read-only across connections.
#[derive(Debug, Clone)]
pub struct LabelMap {
    labels: Vec<u64>,
    to_dense: HashMap<u64, NodeId>,
}

impl LabelMap {
    /// Builds the map from `labels[i]` = original label of dense node `i`
    /// (the `labels` vector of `tim_graph::io::LoadedGraph`).
    pub fn new(labels: Vec<u64>) -> Self {
        let to_dense = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as NodeId))
            .collect();
        LabelMap { labels, to_dense }
    }

    /// The identity map over `0..n`, for graphs that never had external
    /// labels (e.g. synthetic generators).
    pub fn identity(n: usize) -> Self {
        Self::new((0..n as u64).collect())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Original label of dense node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn label_of(&self, v: NodeId) -> u64 {
        self.labels[v as usize]
    }

    /// Dense id of an original label.
    pub fn to_dense(&self, label: u64) -> Result<NodeId, String> {
        self.to_dense
            .get(&label)
            .copied()
            .ok_or_else(|| format!("label {label} not present in the graph"))
    }

    /// Maps a list of original labels to dense ids.
    pub fn map_all(&self, labels: &[u64]) -> Result<Vec<NodeId>, String> {
        labels.iter().map(|&l| self.to_dense(l)).collect()
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `select <k> [fast] [eps=<v>] [ell=<v>]` — seed selection.
    Select {
        /// Seed-set size.
        k: usize,
        /// Prefix answering over the full pool instead of exact replay.
        fast: bool,
        /// Per-query ε override (exact replay only).
        eps: Option<f64>,
        /// Per-query ℓ override (exact replay only).
        ell: Option<f64>,
    },
    /// `eval <id,id,...>` — pool-coverage spread estimate (original
    /// labels).
    Eval {
        /// Seed labels to evaluate.
        seeds: Vec<u64>,
    },
    /// `marginal <id,id,...> <cand>` — marginal gain of adding `cand`
    /// (original labels; the candidate list must map to exactly one id).
    Marginal {
        /// Base seed labels.
        base: Vec<u64>,
        /// Candidate label list (validated to a single id at execution).
        cand: Vec<u64>,
    },
    /// `ping` — liveness/version probe; answers `pong tim/3`.
    Ping,
}

/// Result of parsing one input line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedLine {
    /// Blank line or `#` comment: produces no answer line.
    Empty,
    /// A well-formed request.
    Query(Query),
    /// A malformed request; answer `error: <reason>` and continue.
    Malformed(String),
}

/// Parses one protocol line. Never fails hard: malformed input becomes
/// [`ParsedLine::Malformed`] so sessions survive bad lines.
pub fn parse_query(line: &str) -> ParsedLine {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return ParsedLine::Empty;
    }
    let mut tokens = trimmed.split_whitespace();
    let parsed = match tokens.next() {
        Some("select") => (|| -> Result<Query, String> {
            let k: usize = tokens
                .next()
                .ok_or("select: missing k")?
                .parse()
                .map_err(|_| "select: bad k".to_string())?;
            if k == 0 {
                return Err("select: k must be positive".into());
            }
            let mut fast = false;
            let (mut eps, mut ell) = (None, None);
            for t in tokens.by_ref() {
                if t == "fast" {
                    fast = true;
                } else if let Some(v) = t.strip_prefix("eps=") {
                    eps = Some(v.parse().map_err(|_| format!("select: bad eps '{v}'"))?);
                } else if let Some(v) = t.strip_prefix("ell=") {
                    ell = Some(v.parse().map_err(|_| format!("select: bad ell '{v}'"))?);
                } else {
                    return Err(format!("select: unknown option '{t}'"));
                }
            }
            if fast && (eps.is_some() || ell.is_some()) {
                return Err("select: fast mode uses the pool's eps/ell".into());
            }
            // NaN must be rejected alongside non-positive values: the
            // engine asserts eps > 0, and a panic would kill the session.
            if let Some(e) = eps.filter(|&e: &f64| e.is_nan() || e <= 0.0) {
                return Err(format!("select: eps must be positive, got '{e}'"));
            }
            if let Some(l) = ell.filter(|&l: &f64| l.is_nan() || l <= 0.0) {
                return Err(format!("select: ell must be positive, got '{l}'"));
            }
            Ok(Query::Select { k, fast, eps, ell })
        })(),
        Some("eval") => (|| -> Result<Query, String> {
            let spec = tokens.next().ok_or("eval: missing seed list")?;
            if tokens.next().is_some() {
                return Err("eval: trailing tokens".into());
            }
            let seeds = parse_id_list(spec)?;
            if seeds.is_empty() {
                return Err("eval: empty seed list".into());
            }
            Ok(Query::Eval { seeds })
        })(),
        Some("marginal") => (|| -> Result<Query, String> {
            let base_spec = tokens.next().ok_or("marginal: missing base seed list")?;
            let cand_spec = tokens.next().ok_or("marginal: missing candidate id")?;
            if tokens.next().is_some() {
                return Err("marginal: trailing tokens".into());
            }
            Ok(Query::Marginal {
                base: parse_id_list(base_spec)?,
                cand: parse_id_list(cand_spec)?,
            })
        })(),
        Some("ping") => (|| -> Result<Query, String> {
            if tokens.next().is_some() {
                return Err("ping: trailing tokens".into());
            }
            Ok(Query::Ping)
        })(),
        Some(other) => Err(format!("unknown query '{other}'")),
        None => return ParsedLine::Empty,
    };
    match parsed {
        Ok(q) => ParsedLine::Query(q),
        Err(e) => ParsedLine::Malformed(e),
    }
}

/// A parsed `tim/2` request: an engine-scoped [`Query`] or one of the
/// session-scoped verbs. Session verbs are executed by
/// [`Session`](crate::session::Session); handing them to the engine-level
/// [`handle_line`] answers `error: …` instead (no session to act on).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// An engine-scoped query (the `tim/1` subset plus `ping`).
    Query(Query),
    /// `use <graph>` — switch the session to the named catalog graph.
    Use(
        /// The requested graph name (validated shape, unvalidated existence).
        String,
    ),
    /// `graphs` — list the catalog's graph names.
    Graphs,
    /// `stats` — static facts about the session's current graph.
    Stats,
    /// `batch <n>` — answer the next `n` lines as one unit.
    Batch(
        /// Number of request lines in the batch (1 ..= [`MAX_BATCH`]).
        usize,
    ),
    /// `stats pools` — the current graph's pool-cache counters
    /// (hit/miss/build/load/spill/evict). Admin-gated; the only `stats`
    /// form whose answer is *not* interleaving-deterministic.
    StatsPools,
    /// `attach <name>=<path>[::k=v,…] [k=v …]` — register a new graph in
    /// the live catalog, with optional per-graph overrides. Admin-gated.
    Attach {
        /// The new graph's catalog name (shape-validated).
        name: String,
        /// Path the graph loads from (lazily, on first query).
        path: String,
        /// Per-graph overrides (model / ε / ℓ / seed / k / weights).
        overrides: tim_graph::catalog::GraphOverrides,
    },
    /// `detach <name>` — remove a graph from the live catalog with a
    /// graceful drain (in-flight sessions finish, new `use` rejected).
    /// Admin-gated.
    Detach(
        /// The graph to detach (shape-validated, existence checked at
        /// execution).
        String,
    ),
    /// `persist` — spill every loaded graph's dirty pools into its pool
    /// store now. Admin-gated; requires a configured `--pool-dir`.
    Persist,
}

/// Result of parsing one input line at the session stratum.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedRequest {
    /// Blank line or `#` comment: produces no answer line.
    Empty,
    /// A well-formed request.
    Request(Request),
    /// A malformed request; answer `error: <reason>` and continue.
    Malformed(String),
}

/// Parses one protocol line at the full `tim/2` grammar: session verbs
/// plus every engine-scoped query [`parse_query`] accepts. Never fails
/// hard — malformed input becomes [`ParsedRequest::Malformed`].
pub fn parse_request(line: &str) -> ParsedRequest {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return ParsedRequest::Empty;
    }
    let mut tokens = trimmed.split_whitespace();
    let parsed: Option<Result<Request, String>> = match tokens.next() {
        Some("use") => Some((|| {
            let name = tokens.next().ok_or("use: missing graph name")?;
            if tokens.next().is_some() {
                return Err("use: trailing tokens".into());
            }
            tim_graph::catalog::validate_graph_name(name).map_err(|e| format!("use: {e}"))?;
            Ok(Request::Use(name.to_string()))
        })()),
        Some("graphs") => Some((|| {
            if tokens.next().is_some() {
                return Err("graphs: trailing tokens".into());
            }
            Ok(Request::Graphs)
        })()),
        Some("stats") => Some((|| {
            match tokens.next() {
                None => {}
                Some("pools") => {
                    if tokens.next().is_some() {
                        return Err("stats: trailing tokens".into());
                    }
                    return Ok(Request::StatsPools);
                }
                Some(_) => return Err("stats: trailing tokens".into()),
            }
            Ok(Request::Stats)
        })()),
        Some("attach") => Some((|| {
            let spec = tokens.next().ok_or("attach: missing name=path spec")?;
            let (name, path, mut overrides) = tim_graph::catalog::parse_graph_spec_full(spec)
                .map_err(|e| format!("attach: {e}"))?;
            for item in tokens {
                overrides
                    .apply_item(item)
                    .map_err(|e| format!("attach: {e}"))?;
            }
            let path = path
                .to_str()
                .ok_or("attach: path is not valid UTF-8")?
                .to_string();
            Ok(Request::Attach {
                name,
                path,
                overrides,
            })
        })()),
        Some("detach") => Some((|| {
            let name = tokens.next().ok_or("detach: missing graph name")?;
            if tokens.next().is_some() {
                return Err("detach: trailing tokens".into());
            }
            tim_graph::catalog::validate_graph_name(name).map_err(|e| format!("detach: {e}"))?;
            Ok(Request::Detach(name.to_string()))
        })()),
        Some("persist") => Some((|| {
            if tokens.next().is_some() {
                return Err("persist: trailing tokens".into());
            }
            Ok(Request::Persist)
        })()),
        Some("batch") => Some((|| {
            let n: usize = tokens
                .next()
                .ok_or("batch: missing line count")?
                .parse()
                .map_err(|_| "batch: bad line count".to_string())?;
            if tokens.next().is_some() {
                return Err("batch: trailing tokens".into());
            }
            if n == 0 {
                return Err("batch: line count must be positive".into());
            }
            if n > MAX_BATCH {
                return Err(format!("batch: line count must be at most {MAX_BATCH}"));
            }
            Ok(Request::Batch(n))
        })()),
        _ => None,
    };
    match parsed {
        Some(Ok(r)) => ParsedRequest::Request(r),
        Some(Err(e)) => ParsedRequest::Malformed(e),
        None => match parse_query(line) {
            ParsedLine::Empty => ParsedRequest::Empty,
            ParsedLine::Query(q) => ParsedRequest::Request(Request::Query(q)),
            ParsedLine::Malformed(e) => ParsedRequest::Malformed(e),
        },
    }
}

/// The `ping` answer line — shared by [`execute`] and sessions so the
/// version string cannot drift.
pub fn ping_reply() -> String {
    format!("pong tim/{PROTOCOL_VERSION}")
}

/// Outcome of one [`CappedLineReader::read_line`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CappedLine {
    /// The input is exhausted.
    Eof,
    /// A line within the cap was read into the buffer.
    Line,
    /// The line exceeds [`MAX_LINE_BYTES`]; the buffer holds a truncated
    /// prefix and the rest of the line is still unread. Answer
    /// [`OVERSIZED_LINE_REPLY`] and end the session.
    Oversized,
}

/// Outcome of one [`CappedLineReader::poll_line`] call — [`CappedLine`]
/// plus the readiness case a nonblocking transport needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollLine {
    /// The input is exhausted.
    Eof,
    /// A line within the cap was read into the buffer.
    Line,
    /// The line exceeds [`MAX_LINE_BYTES`]; the buffer holds a truncated
    /// prefix and the rest of the line is still unread. Answer
    /// [`OVERSIZED_LINE_REPLY`] and end the session.
    Oversized,
    /// The underlying stream has no more bytes *right now*
    /// (`WouldBlock`). Any partial line read so far is retained
    /// internally; call again when the stream is readable and the line
    /// resumes where it stopped.
    Pending,
}

/// Outcome of one [`CappedLineReader::poll_discard`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscardOutcome {
    /// The input is exhausted; the connection can close gracefully.
    Eof,
    /// The stream has no more bytes right now (`WouldBlock`); call again
    /// when readable.
    Pending,
    /// The discard budget ran out before EOF — stop being polite and
    /// close anyway.
    BudgetExhausted,
}

/// A buffered line reader enforcing the [`MAX_LINE_BYTES`] request-line
/// cap — the one framing implementation shared by `tim serve` TCP
/// connections (blocking *and* event-loop) and the `tim query` stdin
/// path, so the transports cannot drift (`docs/PROTOCOL.md` §Framing).
///
/// Two entry points over the same state machine:
///
/// - [`read_line`](Self::read_line) — the blocking form: returns only
///   complete results.
/// - [`poll_line`](Self::poll_line) — the readiness-driven form: a read
///   that would block returns [`PollLine::Pending`] and the partial line
///   read so far is kept internally, so the event loop can resume the
///   very same line when epoll reports the socket readable again. The
///   line cap is enforced *across* resumptions: a client cannot evade it
///   by trickling an unbounded line one chunk at a time.
#[derive(Debug)]
pub struct CappedLineReader<R> {
    inner: BufReader<R>,
    /// Bytes of the in-progress line accumulated across `poll_line`
    /// calls (never holds a terminator).
    partial: Vec<u8>,
}

impl<R: Read> CappedLineReader<R> {
    /// Wraps a raw byte stream.
    pub fn new(inner: R) -> Self {
        CappedLineReader {
            inner: BufReader::new(inner),
            partial: Vec::new(),
        }
    }

    /// The underlying stream (e.g. to write answers through the same
    /// socket the reader owns).
    pub fn get_ref(&self) -> &R {
        self.inner.get_ref()
    }

    /// Number of already-read bytes buffered in userspace (decoded
    /// partial line + undecoded buffer). When this is zero, the kernel
    /// socket buffer is the only place input can be waiting — i.e.
    /// readiness notification is sufficient to resume.
    pub fn buffered_len(&self) -> usize {
        self.partial.len() + self.inner.buffer().len()
    }

    /// Reads the next line (terminator stripped) into `buf`, blocking
    /// until it is complete. On a nonblocking stream a would-block read
    /// surfaces as an `Err(WouldBlock)` (use
    /// [`poll_line`](Self::poll_line) instead).
    pub fn read_line(&mut self, buf: &mut String) -> std::io::Result<CappedLine> {
        match self.poll_line(buf)? {
            PollLine::Eof => Ok(CappedLine::Eof),
            PollLine::Line => Ok(CappedLine::Line),
            PollLine::Oversized => Ok(CappedLine::Oversized),
            PollLine::Pending => Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "read_line on a nonblocking stream; use poll_line",
            )),
        }
    }

    /// Reads as much of the next line as the stream can deliver without
    /// blocking. Complete results ([`PollLine::Line`], `Oversized`,
    /// `Eof`) leave the reader ready for the next line;
    /// [`PollLine::Pending`] parks the partial line internally until the
    /// next call. The [`MAX_LINE_BYTES`] cap counts the accumulated
    /// content (terminator excluded, CRLF and LF alike), so it holds
    /// across any delivery schedule — byte-at-a-time included.
    pub fn poll_line(&mut self, buf: &mut String) -> std::io::Result<PollLine> {
        loop {
            let available = match self.inner.fill_buf() {
                Ok(a) => a,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(PollLine::Pending)
                }
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                if self.partial.is_empty() {
                    return Ok(PollLine::Eof);
                }
                // Final line without a terminator: everything (including
                // any trailing '\r') is content.
                return self.emit(buf, false);
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    self.partial.extend_from_slice(&available[..i]);
                    self.inner.consume(i + 1);
                    return self.emit(buf, true);
                }
                None => {
                    let n = available.len();
                    self.partial.extend_from_slice(available);
                    self.inner.consume(n);
                    // +1 headroom: a trailing '\r' may still become part
                    // of a CRLF terminator, which the cap excludes. One
                    // byte beyond that is over the cap no matter how the
                    // line ends.
                    if self.partial.len() as u64 > MAX_LINE_BYTES + 1 {
                        return self.emit_oversized(buf);
                    }
                }
            }
        }
    }

    /// Completes the accumulated line into `buf`.
    fn emit(&mut self, buf: &mut String, terminated: bool) -> std::io::Result<PollLine> {
        if terminated && self.partial.last() == Some(&b'\r') {
            self.partial.pop();
        }
        if self.partial.len() as u64 > MAX_LINE_BYTES {
            return self.emit_oversized(buf);
        }
        match String::from_utf8(std::mem::take(&mut self.partial)) {
            Ok(s) => {
                *buf = s;
                Ok(PollLine::Line)
            }
            Err(_) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request line is not valid UTF-8",
            )),
        }
    }

    /// Reports the over-cap line: `buf` holds a truncated prefix, the
    /// accumulated state is discarded.
    fn emit_oversized(&mut self, buf: &mut String) -> std::io::Result<PollLine> {
        let prefix = (MAX_LINE_BYTES as usize).min(self.partial.len());
        buf.clear();
        buf.push_str(&String::from_utf8_lossy(&self.partial[..prefix]));
        self.partial.clear();
        Ok(PollLine::Oversized)
    }

    /// Discards buffered and readable input, up to `budget` bytes
    /// (decremented in place), without blocking. A server calls this
    /// after answering a framing violation: closing with unread bytes in
    /// the receive buffer would RST the connection and may discard the
    /// error line before the client reads it.
    pub fn poll_discard(&mut self, budget: &mut u64) -> std::io::Result<DiscardOutcome> {
        self.partial.clear();
        loop {
            if *budget == 0 {
                return Ok(DiscardOutcome::BudgetExhausted);
            }
            let available = match self.inner.fill_buf() {
                Ok(a) => a,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(DiscardOutcome::Pending)
                }
                // A reset mid-drain means the client is gone: nothing
                // left to be graceful for.
                Err(_) => return Ok(DiscardOutcome::Eof),
            };
            if available.is_empty() {
                return Ok(DiscardOutcome::Eof);
            }
            let n = (available.len() as u64).min(*budget) as usize;
            self.inner.consume(n);
            *budget -= n as u64;
        }
    }

    /// Blocking form of [`poll_discard`](Self::poll_discard): reads and
    /// discards up to `max_bytes` of remaining input, stopping early on
    /// EOF (or on `WouldBlock` for nonblocking streams).
    pub fn drain(&mut self, max_bytes: u64) {
        let mut budget = max_bytes;
        let _ = self.poll_discard(&mut budget);
    }
}

/// Engine access as the protocol needs it — implemented by an exclusive
/// [`QueryEngine`] (`tim query`) and by shared references to a
/// [`SharedEngine`] (`tim serve`), so both front ends execute queries
/// through the very same [`execute`].
pub trait QueryBackend {
    /// Exact-replay seed selection with optional ε/ℓ overrides.
    fn select_with(&mut self, k: usize, eps: Option<f64>, ell: Option<f64>) -> QueryOutcome;
    /// Prefix answering over the full pool.
    fn select_fast(&mut self, k: usize) -> QueryOutcome;
    /// Pool-coverage spread estimate of `seeds` (dense ids).
    fn spread(&mut self, seeds: &[NodeId]) -> f64;
    /// Marginal spread gain of adding `candidate` to `base` (dense ids).
    fn marginal_gain(&mut self, base: &[NodeId], candidate: NodeId) -> f64;
}

impl<M: BackingModel + Clone> QueryBackend for QueryEngine<M> {
    fn select_with(&mut self, k: usize, eps: Option<f64>, ell: Option<f64>) -> QueryOutcome {
        QueryEngine::select_with(self, k, eps, ell)
    }
    fn select_fast(&mut self, k: usize) -> QueryOutcome {
        QueryEngine::select_fast(self, k)
    }
    fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        QueryEngine::spread(self, seeds)
    }
    fn marginal_gain(&mut self, base: &[NodeId], candidate: NodeId) -> f64 {
        QueryEngine::marginal_gain(self, base, candidate)
    }
}

impl<M: BackingModel + Clone> QueryBackend for &SharedEngine<M> {
    fn select_with(&mut self, k: usize, eps: Option<f64>, ell: Option<f64>) -> QueryOutcome {
        SharedEngine::select_with(self, k, eps, ell)
    }
    fn select_fast(&mut self, k: usize) -> QueryOutcome {
        SharedEngine::select_fast(self, k)
    }
    fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        SharedEngine::spread(self, seeds)
    }
    fn marginal_gain(&mut self, base: &[NodeId], candidate: NodeId) -> f64 {
        SharedEngine::marginal_gain(self, base, candidate)
    }
}

/// One protocol answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The single machine-readable answer line (no trailing newline).
    /// Failed queries carry their `error: …` line here.
    pub line: String,
    /// Optional human-readable progress note (pool θ, resample flag) —
    /// `tim query` prints it to stderr unless `--quiet`; servers may log
    /// it. Never part of the answer stream.
    pub note: Option<String>,
}

impl Reply {
    fn answer(line: String) -> Self {
        Reply { line, note: None }
    }

    fn error(e: String) -> Self {
        Reply {
            line: format!("error: {e}"),
            note: None,
        }
    }
}

/// Executes a parsed query against a backend, mapping labels both ways.
/// Infallible by design: execution errors (unknown labels, …) become
/// `error: …` answer lines so one bad query never kills a session.
pub fn execute<B: QueryBackend>(backend: &mut B, labels: &LabelMap, query: &Query) -> Reply {
    match query {
        Query::Select { k, fast, eps, ell } => {
            let outcome = if *fast {
                backend.select_fast(*k)
            } else {
                backend.select_with(*k, *eps, *ell)
            };
            let note = format!(
                "select k={k}: theta = {}{}",
                outcome.theta_used,
                if outcome.resampled {
                    " (resampled)"
                } else {
                    ""
                }
            );
            let label_list: Vec<String> = outcome
                .seeds
                .iter()
                .map(|&v| labels.label_of(v).to_string())
                .collect();
            Reply {
                line: format!("seeds: {}", label_list.join(" ")),
                note: Some(note),
            }
        }
        Query::Eval { seeds } => match labels.map_all(seeds) {
            Ok(dense) => Reply::answer(format!("spread: {:.2}", backend.spread(&dense))),
            Err(e) => Reply::error(e),
        },
        Query::Marginal { base, cand } => {
            let mapped = labels
                .map_all(base)
                .and_then(|b| labels.map_all(cand).map(|c| (b, c)));
            match mapped {
                Ok((base, cand)) => match cand.as_slice() {
                    &[c] => {
                        Reply::answer(format!("marginal: {:.2}", backend.marginal_gain(&base, c)))
                    }
                    _ => Reply::error("marginal: candidate must be a single id".into()),
                },
                Err(e) => Reply::error(e),
            }
        }
        Query::Ping => Reply::answer(ping_reply()),
    }
}

/// Parses and executes one input line: `None` for blank/comment lines
/// (no answer), `Some` otherwise — with malformed input folded into an
/// `error: …` reply. This is the whole per-line behavior of `tim query`
/// and of one `tim serve` connection.
pub fn handle_line<B: QueryBackend>(
    backend: &mut B,
    labels: &LabelMap,
    line: &str,
) -> Option<Reply> {
    match parse_query(line) {
        ParsedLine::Empty => None,
        ParsedLine::Malformed(e) => Some(Reply::error(e)),
        ParsedLine::Query(q) => Some(execute(backend, labels, &q)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::IndependentCascade;
    use tim_graph::{gen, weights};

    fn backend() -> (QueryEngine<IndependentCascade>, LabelMap) {
        let mut g = gen::barabasi_albert(200, 4, 0.0, 1);
        weights::assign_weighted_cascade(&mut g);
        let n = g.n();
        let mut e = QueryEngine::new(g, IndependentCascade, "ic")
            .epsilon(1.0)
            .seed(3)
            .threads(2)
            .k_max(5);
        e.warm();
        (e, LabelMap::identity(n))
    }

    #[test]
    fn parse_covers_grammar_and_errors() {
        assert_eq!(parse_query("  "), ParsedLine::Empty);
        assert_eq!(parse_query("# comment"), ParsedLine::Empty);
        assert_eq!(
            parse_query("select 5 fast"),
            ParsedLine::Query(Query::Select {
                k: 5,
                fast: true,
                eps: None,
                ell: None
            })
        );
        assert_eq!(
            parse_query("select 3 eps=0.5 ell=2"),
            ParsedLine::Query(Query::Select {
                k: 3,
                fast: false,
                eps: Some(0.5),
                ell: Some(2.0)
            })
        );
        assert_eq!(
            parse_query("eval 1,2,3"),
            ParsedLine::Query(Query::Eval {
                seeds: vec![1, 2, 3]
            })
        );
        assert_eq!(
            parse_query("marginal 1,2 9"),
            ParsedLine::Query(Query::Marginal {
                base: vec![1, 2],
                cand: vec![9]
            })
        );
        assert_eq!(parse_query("ping"), ParsedLine::Query(Query::Ping));

        for (line, needle) in [
            ("select", "missing k"),
            ("select x", "bad k"),
            ("select 0", "k must be positive"),
            ("select 2 bogus", "unknown option"),
            ("select 2 eps=z", "bad eps"),
            ("select 2 ell=z", "bad ell"),
            ("select 2 eps=-1", "eps must be positive"),
            ("select 2 ell=0", "ell must be positive"),
            ("select 2 fast eps=0.5", "fast mode uses the pool's eps/ell"),
            ("eval", "missing seed list"),
            ("eval 1 2", "trailing tokens"),
            ("eval ,", "empty seed list"),
            ("eval 1,x", "bad node id"),
            ("marginal", "missing base seed list"),
            ("marginal 1", "missing candidate id"),
            ("marginal 1 2 3", "trailing tokens"),
            ("ping now", "trailing tokens"),
            ("frobnicate", "unknown query"),
        ] {
            match parse_query(line) {
                ParsedLine::Malformed(e) => {
                    assert!(e.contains(needle), "{line:?}: {e:?} missing {needle:?}")
                }
                other => panic!("{line:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn execute_answers_every_query_kind() {
        let (mut e, labels) = backend();
        let reply = handle_line(&mut e, &labels, "select 3").unwrap();
        assert!(reply.line.starts_with("seeds: "));
        assert_eq!(reply.line.split_whitespace().count(), 4);
        assert!(reply.note.as_deref().unwrap().starts_with("select k=3"));

        let fast = handle_line(&mut e, &labels, "select 2 fast").unwrap();
        assert!(fast.line.starts_with("seeds: "));

        let spread = handle_line(&mut e, &labels, "eval 0,1").unwrap();
        assert!(spread.line.starts_with("spread: "));

        let marginal = handle_line(&mut e, &labels, "marginal 0 1").unwrap();
        assert!(marginal.line.starts_with("marginal: "));

        assert_eq!(
            handle_line(&mut e, &labels, "ping").unwrap().line,
            "pong tim/3"
        );
        assert!(handle_line(&mut e, &labels, "# skip").is_none());
        assert!(handle_line(&mut e, &labels, "eval 99999")
            .unwrap()
            .line
            .contains("label 99999 not present"));
        assert!(handle_line(&mut e, &labels, "marginal 0 1,2")
            .unwrap()
            .line
            .contains("candidate must be a single id"));
    }

    #[test]
    fn shared_backend_matches_exclusive_backend() {
        let (mut exclusive, labels) = backend();
        let (engine, _) = backend();
        let shared = SharedEngine::new(engine);
        let mut shared_ref = &shared;
        for line in [
            "select 4",
            "select 2 fast",
            "eval 0,5",
            "marginal 0 7",
            "ping",
        ] {
            let a = handle_line(&mut exclusive, &labels, line).unwrap();
            let b = handle_line(&mut shared_ref, &labels, line).unwrap();
            assert_eq!(a.line, b.line, "{line}");
        }
    }

    #[test]
    fn parse_request_covers_session_verbs_and_delegates_queries() {
        assert_eq!(parse_request("  "), ParsedRequest::Empty);
        assert_eq!(parse_request("# note"), ParsedRequest::Empty);
        assert_eq!(
            parse_request("use net-hept"),
            ParsedRequest::Request(Request::Use("net-hept".into()))
        );
        assert_eq!(
            parse_request("graphs"),
            ParsedRequest::Request(Request::Graphs)
        );
        assert_eq!(
            parse_request("stats"),
            ParsedRequest::Request(Request::Stats)
        );
        assert_eq!(
            parse_request("batch 3"),
            ParsedRequest::Request(Request::Batch(3))
        );
        assert_eq!(
            parse_request("stats pools"),
            ParsedRequest::Request(Request::StatsPools)
        );
        assert_eq!(
            parse_request("detach old"),
            ParsedRequest::Request(Request::Detach("old".into()))
        );
        assert_eq!(
            parse_request("persist"),
            ParsedRequest::Request(Request::Persist)
        );
        // attach accepts overrides both inline (::k=v,…) and as tokens.
        let want_overrides = tim_graph::catalog::GraphOverrides::parse("model=lt,eps=0.2").unwrap();
        for line in [
            "attach ws=data/ws.timg::model=lt,eps=0.2",
            "attach ws=data/ws.timg model=lt eps=0.2",
            "attach ws=data/ws.timg::model=lt eps=0.2",
        ] {
            assert_eq!(
                parse_request(line),
                ParsedRequest::Request(Request::Attach {
                    name: "ws".into(),
                    path: "data/ws.timg".into(),
                    overrides: want_overrides.clone(),
                }),
                "{line}"
            );
        }
        // Every tim/1 line parses to the same Query through both entry
        // points — the compatibility guarantee.
        for line in ["select 5 fast", "eval 1,2", "marginal 1 2", "ping"] {
            let ParsedLine::Query(q) = parse_query(line) else {
                panic!("{line}: not a query");
            };
            assert_eq!(
                parse_request(line),
                ParsedRequest::Request(Request::Query(q)),
                "{line}"
            );
        }
        for (line, needle) in [
            ("use", "missing graph name"),
            ("use a b", "trailing tokens"),
            ("use -flag", "must start with"),
            ("use a/b", "invalid character"),
            ("graphs now", "trailing tokens"),
            ("stats now", "trailing tokens"),
            ("stats pools now", "trailing tokens"),
            ("batch", "missing line count"),
            ("batch x", "bad line count"),
            ("batch 0", "must be positive"),
            ("batch 5000", "at most 4096"),
            ("batch 2 3", "trailing tokens"),
            ("attach", "missing name=path spec"),
            ("attach nopath", "name=path"),
            ("attach bad name=x", "name=path"),
            ("attach g=p.txt bogus=1", "unknown graph override"),
            ("attach g=p.txt::eps=0", "must be positive"),
            ("attach g=p.txt eps=0.1 eps=0.2", "given twice"),
            ("detach", "missing graph name"),
            ("detach a b", "trailing tokens"),
            ("detach -flag", "must start with"),
            ("persist now", "trailing tokens"),
            ("frobnicate", "unknown query"),
        ] {
            match parse_request(line) {
                ParsedRequest::Malformed(e) => {
                    assert!(e.contains(needle), "{line:?}: {e:?} missing {needle:?}")
                }
                other => panic!("{line:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn capped_reader_frames_lines_and_flags_oversized() {
        let input = format!(
            "ping\r\n{}\nselect 2\nno newline at eof",
            "#".repeat(1 << 20)
        );
        let mut r = CappedLineReader::new(input.as_bytes());
        let mut buf = String::new();
        assert_eq!(r.read_line(&mut buf).unwrap(), CappedLine::Line);
        assert_eq!(buf, "ping", "CRLF stripped");
        // Exactly MAX_LINE_BYTES of content passes.
        assert_eq!(r.read_line(&mut buf).unwrap(), CappedLine::Line);
        assert_eq!(buf.len() as u64, MAX_LINE_BYTES);
        assert_eq!(r.read_line(&mut buf).unwrap(), CappedLine::Line);
        assert_eq!(buf, "select 2");
        assert_eq!(r.read_line(&mut buf).unwrap(), CappedLine::Line);
        assert_eq!(buf, "no newline at eof");
        assert_eq!(r.read_line(&mut buf).unwrap(), CappedLine::Eof);
    }

    #[test]
    fn capped_reader_rejects_over_limit_lines() {
        let long = "a".repeat((1 << 20) + 5);
        let mut r = CappedLineReader::new(long.as_bytes());
        let mut buf = String::new();
        assert_eq!(r.read_line(&mut buf).unwrap(), CappedLine::Oversized);
        // The remainder can be drained without blocking.
        r.drain(1 << 22);
        assert_eq!(r.read_line(&mut buf).unwrap(), CappedLine::Eof);
    }

    #[test]
    fn crlf_terminator_is_excluded_from_the_cap() {
        // Exactly MAX_LINE_BYTES of content + CRLF must pass — the cap
        // excludes the terminator for CRLF clients just like LF ones.
        let input = format!("{}\r\nping\r\n", "#".repeat(1 << 20));
        let mut r = CappedLineReader::new(input.as_bytes());
        let mut buf = String::new();
        assert_eq!(r.read_line(&mut buf).unwrap(), CappedLine::Line);
        assert_eq!(buf.len() as u64, MAX_LINE_BYTES);
        assert_eq!(r.read_line(&mut buf).unwrap(), CappedLine::Line);
        assert_eq!(buf, "ping");
        // One byte over the cap is still rejected under CRLF.
        let over = format!("{}\r\n", "a".repeat((1 << 20) + 1));
        let mut r = CappedLineReader::new(over.as_bytes());
        assert_eq!(r.read_line(&mut buf).unwrap(), CappedLine::Oversized);
    }

    /// A reader that replays a fixed schedule of reads: `Ok(bytes)`
    /// delivers a chunk, `Err(WouldBlock)` simulates a drained
    /// nonblocking socket. Past the schedule it reports EOF.
    struct ScriptedReader {
        schedule: std::collections::VecDeque<std::io::Result<Vec<u8>>>,
    }

    impl ScriptedReader {
        fn new(steps: Vec<std::io::Result<Vec<u8>>>) -> Self {
            ScriptedReader {
                schedule: steps.into_iter().collect(),
            }
        }

        fn would_block() -> std::io::Result<Vec<u8>> {
            Err(std::io::ErrorKind::WouldBlock.into())
        }
    }

    impl Read for ScriptedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.schedule.pop_front() {
                None => Ok(0),
                Some(Err(e)) => Err(e),
                Some(Ok(mut chunk)) => {
                    // Chunks larger than the caller's buffer deliver in
                    // pieces, like a real socket would.
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        self.schedule.push_front(Ok(chunk.split_off(n)));
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn poll_line_survives_byte_at_a_time_delivery() {
        let input = "ping\r\nselect 2\n";
        let steps = input.bytes().map(|b| Ok(vec![b])).collect();
        let mut r = CappedLineReader::new(ScriptedReader::new(steps));
        let mut buf = String::new();
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Line);
        assert_eq!(buf, "ping");
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Line);
        assert_eq!(buf, "select 2");
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Eof);
    }

    #[test]
    fn poll_line_resumes_a_line_split_across_would_block() {
        // The line arrives in three deliveries with socket-drained gaps
        // between them — including a CRLF split across a gap, the case
        // where a naive implementation strips or keeps the '\r' wrongly.
        let mut r = CappedLineReader::new(ScriptedReader::new(vec![
            Ok(b"sel".to_vec()),
            ScriptedReader::would_block(),
            Ok(b"ect 5\r".to_vec()),
            ScriptedReader::would_block(),
            Ok(b"\nping\n".to_vec()),
        ]));
        let mut buf = String::new();
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Pending);
        assert_eq!(r.buffered_len(), 3, "partial line parked internally");
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Pending);
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Line);
        assert_eq!(buf, "select 5", "resumed line intact, CRLF stripped");
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Line);
        assert_eq!(buf, "ping");
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Eof);
    }

    #[test]
    fn poll_line_keeps_multibyte_chars_split_across_would_block() {
        // 'é' is two UTF-8 bytes; the gap lands between them. A
        // UTF-8-validating accumulator (like std's read_line) can drop
        // the partial byte here.
        let mut r = CappedLineReader::new(ScriptedReader::new(vec![
            Ok(vec![b'x', 0xC3]),
            ScriptedReader::would_block(),
            Ok(vec![0xA9, b'\n']),
        ]));
        let mut buf = String::new();
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Pending);
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Line);
        assert_eq!(buf, "xé");
    }

    #[test]
    fn poll_line_enforces_the_cap_across_resumed_reads() {
        // A client trickling one oversized line in chunks (with drained
        // gaps) must still be cut off: the cap counts the *accumulated*
        // content, not any single delivery.
        let chunk = vec![b'a'; 300 * 1024];
        let mut r = CappedLineReader::new(ScriptedReader::new(vec![
            Ok(chunk.clone()),
            ScriptedReader::would_block(),
            Ok(chunk.clone()),
            ScriptedReader::would_block(),
            Ok(chunk.clone()),
            ScriptedReader::would_block(),
            Ok(chunk.clone()),
            // Never a newline: the reader must not wait for one.
        ]));
        let mut buf = String::new();
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Pending);
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Pending);
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Pending);
        assert_eq!(
            r.poll_line(&mut buf).unwrap(),
            PollLine::Oversized,
            "cap crossed on the fourth chunk, mid-line"
        );
        assert_eq!(buf.len() as u64, MAX_LINE_BYTES, "truncated prefix");
    }

    #[test]
    fn poll_line_cap_allows_exactly_max_content_delivered_in_pieces() {
        // Exactly MAX_LINE_BYTES of content + CRLF, delivered in halves:
        // resumption must not shrink the allowance.
        let half = vec![b'#'; 1 << 19];
        let mut r = CappedLineReader::new(ScriptedReader::new(vec![
            Ok(half.clone()),
            ScriptedReader::would_block(),
            Ok(half.clone()),
            ScriptedReader::would_block(),
            Ok(b"\r\n".to_vec()),
        ]));
        let mut buf = String::new();
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Pending);
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Pending);
        assert_eq!(r.poll_line(&mut buf).unwrap(), PollLine::Line);
        assert_eq!(buf.len() as u64, MAX_LINE_BYTES);
    }

    #[test]
    fn poll_discard_distinguishes_pending_from_eof_and_budget() {
        let mut r = CappedLineReader::new(ScriptedReader::new(vec![
            Ok(vec![b'x'; 100]),
            ScriptedReader::would_block(),
            Ok(vec![b'y'; 100]),
        ]));
        let mut budget = 150;
        assert_eq!(
            r.poll_discard(&mut budget).unwrap(),
            DiscardOutcome::Pending
        );
        assert_eq!(budget, 50);
        assert_eq!(
            r.poll_discard(&mut budget).unwrap(),
            DiscardOutcome::BudgetExhausted
        );
        assert_eq!(budget, 0);
        let mut rest = 1000;
        assert_eq!(r.poll_discard(&mut rest).unwrap(), DiscardOutcome::Eof);
        assert_eq!(rest, 1000 - 50, "the leftover 50 bytes were consumed");
    }

    #[test]
    fn ping_reply_reports_the_protocol_version() {
        assert_eq!(ping_reply(), "pong tim/3");
        assert_eq!(PROTOCOL_VERSION, 3);
    }

    #[test]
    fn label_map_round_trips_sparse_labels() {
        let m = LabelMap::new(vec![100, 7, 42]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.label_of(1), 7);
        assert_eq!(m.to_dense(42), Ok(2));
        assert_eq!(m.map_all(&[42, 100]), Ok(vec![2, 0]));
        assert!(m.to_dense(8).unwrap_err().contains("label 8"));
        assert_eq!(LabelMap::identity(3).label_of(2), 2);
    }

    #[test]
    fn id_list_parses_and_rejects() {
        assert_eq!(parse_id_list("1,2, 3").unwrap(), vec![1, 2, 3]);
        assert!(parse_id_list("1,x").is_err());
        assert_eq!(parse_id_list("").unwrap(), Vec::<u64>::new());
    }
}
