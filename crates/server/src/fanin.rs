//! A nonblocking fan-in client driver: runs thousands of concurrent
//! protocol sessions against one server from a single thread.
//!
//! This is the measurement half of the event-loop work — the
//! `c10k_fanin` bench and the event-loop integration tests both need to
//! hold thousands of sessions open *simultaneously*, which a
//! thread-per-client driver cannot do honestly on a small machine. The
//! driver speaks the client side of the scripted-session pattern `tim
//! client` uses: connect, send the whole script, half-close, read the
//! answer stream to EOF. Each session's transcript comes back verbatim
//! so callers can diff it against a serial replay (the determinism
//! contract: answers must not depend on interleaving).
//!
//! `max_in_flight` bounds how many sessions are open at once — set it to
//! the session count for a true everything-at-once fan-in, or lower to
//! keep a thread-pool server's shallow accept backlog from drowning in
//! SYN retries (which would measure kernel retransmit timers, not the
//! server).

use crate::reactor::{connect_nonblocking, Events, Interest, Poller};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// What one driven session looked like from the client side.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Every byte the server sent, in order.
    pub transcript: Vec<u8>,
    /// Connect initiation to server EOF.
    pub latency: Duration,
    /// Connect initiation to the first answer byte, if any arrived.
    ///
    /// Under an everything-at-once fan-in the EOF `latency` of every
    /// session converges on the whole run's wall clock (each session
    /// spends most of its life queued behind the others), so it says
    /// nothing about per-session responsiveness. First-byte is the
    /// number that stays comparable across admission disciplines.
    pub first_byte: Option<Duration>,
}

/// The result of a full fan-in run: one outcome per script, in script
/// order.
#[derive(Debug)]
pub struct FaninReport {
    /// Per-session outcomes, index-aligned with the input scripts.
    pub outcomes: Vec<SessionOutcome>,
    /// Wall-clock time for the whole run (first connect to last EOF).
    pub wall: Duration,
}

enum Client {
    Unstarted,
    InFlight {
        stream: TcpStream,
        connected: bool,
        sent: usize,
        shut: bool,
        transcript: Vec<u8>,
        started: Instant,
        first_byte: Option<Duration>,
    },
    Done(SessionOutcome),
}

/// Drives one scripted session per entry of `scripts` against `addr`,
/// keeping at most `max_in_flight` open at once, and returns every
/// transcript. Fails if the whole run exceeds `deadline` or any
/// connection errors (this is a measurement tool: partial success would
/// silently skew results, so it is an error instead).
pub fn drive_sessions(
    addr: SocketAddr,
    scripts: &[Vec<u8>],
    max_in_flight: usize,
    deadline: Duration,
) -> io::Result<FaninReport> {
    assert!(max_in_flight >= 1, "need at least one session in flight");
    let poller = Poller::new()?;
    let mut events = Events::with_capacity(1024);
    let mut clients: Vec<Client> = (0..scripts.len()).map(|_| Client::Unstarted).collect();
    let start = Instant::now();
    let mut next_start = 0usize;
    let mut open = 0usize;
    let mut done = 0usize;

    // Starts sessions until the in-flight cap (or the script list) is
    // exhausted.
    let start_more = |clients: &mut Vec<Client>,
                      poller: &Poller,
                      next_start: &mut usize,
                      open: &mut usize|
     -> io::Result<()> {
        while *open < max_in_flight && *next_start < clients.len() {
            let idx = *next_start;
            *next_start += 1;
            let stream = connect_nonblocking(addr)?;
            // Writable signals connect completion; readable covers a
            // server that answers before the whole script is out.
            poller.add(stream.as_raw_fd(), idx as u64, Interest::BOTH)?;
            clients[idx] = Client::InFlight {
                stream,
                connected: false,
                sent: 0,
                shut: false,
                transcript: Vec::new(),
                started: Instant::now(),
                first_byte: None,
            };
            *open += 1;
        }
        Ok(())
    };

    start_more(&mut clients, &poller, &mut next_start, &mut open)?;

    let mut buf = [0u8; 16 * 1024];
    while done < clients.len() {
        if start.elapsed() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "fan-in run exceeded {deadline:?}: {done}/{} sessions finished",
                    clients.len()
                ),
            ));
        }
        poller.wait(&mut events, Some(Duration::from_millis(100)))?;
        for ev in events.iter() {
            let idx = ev.token as usize;
            let Some(Client::InFlight {
                stream,
                connected,
                sent,
                shut,
                transcript,
                started,
                first_byte,
            }) = clients.get_mut(idx)
            else {
                continue;
            };
            let script = &scripts[idx];
            if !*connected && (ev.writable || ev.closed) {
                if let Some(e) = stream.take_error()? {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("session {idx}: connect failed: {e}"),
                    ));
                }
                *connected = true;
            }
            if *connected && !*shut {
                // Push script bytes until the socket pushes back.
                loop {
                    if *sent == script.len() {
                        stream.shutdown(Shutdown::Write)?;
                        *shut = true;
                        // Upload finished: only EOF matters now. Without
                        // this the always-writable socket would spin the
                        // loop hot.
                        poller.modify(stream.as_raw_fd(), idx as u64, Interest::READ)?;
                        break;
                    }
                    match (&*stream).write(&script[*sent..]) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::WriteZero,
                                format!("session {idx}: server stopped reading"),
                            ))
                        }
                        Ok(n) => *sent += n,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            return Err(io::Error::new(
                                e.kind(),
                                format!("session {idx}: sending script: {e}"),
                            ))
                        }
                    }
                }
            }
            let mut finished = None;
            if ev.readable || ev.closed {
                loop {
                    match (&*stream).read(&mut buf) {
                        Ok(0) => {
                            let _ = poller.delete(stream.as_raw_fd());
                            finished = Some(SessionOutcome {
                                transcript: std::mem::take(transcript),
                                latency: started.elapsed(),
                                first_byte: *first_byte,
                            });
                            break;
                        }
                        Ok(n) => {
                            if first_byte.is_none() {
                                *first_byte = Some(started.elapsed());
                            }
                            transcript.extend_from_slice(&buf[..n]);
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            return Err(io::Error::new(
                                e.kind(),
                                format!("session {idx}: reading answers: {e}"),
                            ))
                        }
                    }
                }
            }
            if let Some(outcome) = finished {
                clients[idx] = Client::Done(outcome);
                open -= 1;
                done += 1;
            }
        }
        start_more(&mut clients, &poller, &mut next_start, &mut open)?;
    }

    let wall = start.elapsed();
    let outcomes = clients
        .into_iter()
        .map(|c| match c {
            Client::Done(outcome) => outcome,
            _ => unreachable!("all sessions finished"),
        })
        .collect();
    Ok(FaninReport { outcomes, wall })
}

/// Latency percentiles extracted from a batch of session outcomes:
/// end-to-end (connect → EOF) alongside first-byte (connect → first
/// answer byte). First-byte percentiles cover only the sessions that
/// received at least one byte and are `None` when no session did.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Median connect → EOF, in milliseconds.
    pub p50_ms: f64,
    /// 99th percentile connect → EOF, in milliseconds.
    pub p99_ms: f64,
    /// Median connect → first answer byte, in milliseconds.
    pub first_byte_p50_ms: Option<f64>,
    /// 99th percentile connect → first answer byte, in milliseconds.
    pub first_byte_p99_ms: Option<f64>,
}

/// Nearest-rank percentile (`q` in `[0, 1]`) over a **sorted** sample,
/// in milliseconds. Panics on an empty sample.
pub fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

/// Extracts [`LatencyStats`] from a run's outcomes. Panics if `outcomes`
/// is empty (a measurement with no sessions is a bug, not a data point).
pub fn latency_stats(outcomes: &[SessionOutcome]) -> LatencyStats {
    let mut eof: Vec<Duration> = outcomes.iter().map(|o| o.latency).collect();
    eof.sort_unstable();
    let mut first: Vec<Duration> = outcomes.iter().filter_map(|o| o.first_byte).collect();
    first.sort_unstable();
    LatencyStats {
        p50_ms: percentile_ms(&eof, 0.50),
        p99_ms: percentile_ms(&eof, 0.99),
        first_byte_p50_ms: (!first.is_empty()).then(|| percentile_ms(&first, 0.50)),
        first_byte_p99_ms: (!first.is_empty()).then(|| percentile_ms(&first, 0.99)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(latency_ms: u64, first_byte_ms: Option<u64>) -> SessionOutcome {
        SessionOutcome {
            transcript: Vec::new(),
            latency: Duration::from_millis(latency_ms),
            first_byte: first_byte_ms.map(Duration::from_millis),
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&ms, 0.0), 1.0);
        assert_eq!(percentile_ms(&ms, 0.50), 51.0); // rank round(99*0.5)=50
        assert_eq!(percentile_ms(&ms, 0.99), 99.0);
        assert_eq!(percentile_ms(&ms, 1.0), 100.0);
        assert_eq!(percentile_ms(&[Duration::from_millis(7)], 0.99), 7.0);
    }

    #[test]
    fn stats_separate_first_byte_from_session_lifetime() {
        // The admission-queueing shape from an everything-at-once fan-in:
        // every session's EOF lands near the run's wall clock, but each
        // got its first answer byte quickly. First-byte must report the
        // small numbers while EOF reports the big ones.
        let outcomes: Vec<SessionOutcome> = (0..100)
            .map(|i| outcome(25_000 + i, Some(5 + i % 10)))
            .collect();
        let stats = latency_stats(&outcomes);
        assert_eq!(stats.p50_ms, 25_050.0);
        assert_eq!(stats.p99_ms, 25_098.0); // nearest rank: round(99·0.99) = 98
        assert_eq!(stats.first_byte_p50_ms, Some(10.0));
        assert_eq!(stats.first_byte_p99_ms, Some(14.0));
    }

    #[test]
    fn sessions_without_answer_bytes_are_excluded_from_first_byte() {
        let outcomes = vec![
            outcome(40, Some(10)),
            outcome(50, None), // e.g. a script of writes only
            outcome(60, Some(30)),
        ];
        let stats = latency_stats(&outcomes);
        assert_eq!(stats.p50_ms, 50.0);
        assert_eq!(stats.first_byte_p50_ms, Some(30.0));
        assert_eq!(stats.first_byte_p99_ms, Some(30.0));

        let silent = vec![outcome(40, None), outcome(50, None)];
        let stats = latency_stats(&silent);
        assert_eq!(stats.first_byte_p50_ms, None);
        assert_eq!(stats.first_byte_p99_ms, None);
    }

    #[test]
    fn first_byte_never_exceeds_session_latency_in_driver_outcomes() {
        // The driver records first_byte from the same clock as latency,
        // strictly earlier — the extraction must preserve that ordering.
        let outcomes: Vec<SessionOutcome> =
            (1..=9).map(|i| outcome(i * 100, Some(i * 10))).collect();
        let stats = latency_stats(&outcomes);
        assert!(stats.first_byte_p50_ms.unwrap() <= stats.p50_ms);
        assert!(stats.first_byte_p99_ms.unwrap() <= stats.p99_ms);
        assert!(stats.first_byte_p50_ms.unwrap() <= stats.first_byte_p99_ms.unwrap());
    }
}
