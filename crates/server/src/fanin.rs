//! A nonblocking fan-in client driver: runs thousands of concurrent
//! protocol sessions against one server from a single thread.
//!
//! This is the measurement half of the event-loop work — the
//! `c10k_fanin` bench and the event-loop integration tests both need to
//! hold thousands of sessions open *simultaneously*, which a
//! thread-per-client driver cannot do honestly on a small machine. The
//! driver speaks the client side of the scripted-session pattern `tim
//! client` uses: connect, send the whole script, half-close, read the
//! answer stream to EOF. Each session's transcript comes back verbatim
//! so callers can diff it against a serial replay (the determinism
//! contract: answers must not depend on interleaving).
//!
//! `max_in_flight` bounds how many sessions are open at once — set it to
//! the session count for a true everything-at-once fan-in, or lower to
//! keep a thread-pool server's shallow accept backlog from drowning in
//! SYN retries (which would measure kernel retransmit timers, not the
//! server).

use crate::reactor::{connect_nonblocking, Events, Interest, Poller};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// What one driven session looked like from the client side.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Every byte the server sent, in order.
    pub transcript: Vec<u8>,
    /// Connect initiation to server EOF.
    pub latency: Duration,
}

/// The result of a full fan-in run: one outcome per script, in script
/// order.
#[derive(Debug)]
pub struct FaninReport {
    /// Per-session outcomes, index-aligned with the input scripts.
    pub outcomes: Vec<SessionOutcome>,
    /// Wall-clock time for the whole run (first connect to last EOF).
    pub wall: Duration,
}

enum Client {
    Unstarted,
    InFlight {
        stream: TcpStream,
        connected: bool,
        sent: usize,
        shut: bool,
        transcript: Vec<u8>,
        started: Instant,
    },
    Done(SessionOutcome),
}

/// Drives one scripted session per entry of `scripts` against `addr`,
/// keeping at most `max_in_flight` open at once, and returns every
/// transcript. Fails if the whole run exceeds `deadline` or any
/// connection errors (this is a measurement tool: partial success would
/// silently skew results, so it is an error instead).
pub fn drive_sessions(
    addr: SocketAddr,
    scripts: &[Vec<u8>],
    max_in_flight: usize,
    deadline: Duration,
) -> io::Result<FaninReport> {
    assert!(max_in_flight >= 1, "need at least one session in flight");
    let poller = Poller::new()?;
    let mut events = Events::with_capacity(1024);
    let mut clients: Vec<Client> = (0..scripts.len()).map(|_| Client::Unstarted).collect();
    let start = Instant::now();
    let mut next_start = 0usize;
    let mut open = 0usize;
    let mut done = 0usize;

    // Starts sessions until the in-flight cap (or the script list) is
    // exhausted.
    let start_more = |clients: &mut Vec<Client>,
                      poller: &Poller,
                      next_start: &mut usize,
                      open: &mut usize|
     -> io::Result<()> {
        while *open < max_in_flight && *next_start < clients.len() {
            let idx = *next_start;
            *next_start += 1;
            let stream = connect_nonblocking(addr)?;
            // Writable signals connect completion; readable covers a
            // server that answers before the whole script is out.
            poller.add(stream.as_raw_fd(), idx as u64, Interest::BOTH)?;
            clients[idx] = Client::InFlight {
                stream,
                connected: false,
                sent: 0,
                shut: false,
                transcript: Vec::new(),
                started: Instant::now(),
            };
            *open += 1;
        }
        Ok(())
    };

    start_more(&mut clients, &poller, &mut next_start, &mut open)?;

    let mut buf = [0u8; 16 * 1024];
    while done < clients.len() {
        if start.elapsed() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "fan-in run exceeded {deadline:?}: {done}/{} sessions finished",
                    clients.len()
                ),
            ));
        }
        poller.wait(&mut events, Some(Duration::from_millis(100)))?;
        for ev in events.iter() {
            let idx = ev.token as usize;
            let Some(Client::InFlight {
                stream,
                connected,
                sent,
                shut,
                transcript,
                started,
            }) = clients.get_mut(idx)
            else {
                continue;
            };
            let script = &scripts[idx];
            if !*connected && (ev.writable || ev.closed) {
                if let Some(e) = stream.take_error()? {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("session {idx}: connect failed: {e}"),
                    ));
                }
                *connected = true;
            }
            if *connected && !*shut {
                // Push script bytes until the socket pushes back.
                loop {
                    if *sent == script.len() {
                        stream.shutdown(Shutdown::Write)?;
                        *shut = true;
                        // Upload finished: only EOF matters now. Without
                        // this the always-writable socket would spin the
                        // loop hot.
                        poller.modify(stream.as_raw_fd(), idx as u64, Interest::READ)?;
                        break;
                    }
                    match (&*stream).write(&script[*sent..]) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::WriteZero,
                                format!("session {idx}: server stopped reading"),
                            ))
                        }
                        Ok(n) => *sent += n,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            return Err(io::Error::new(
                                e.kind(),
                                format!("session {idx}: sending script: {e}"),
                            ))
                        }
                    }
                }
            }
            let mut finished = None;
            if ev.readable || ev.closed {
                loop {
                    match (&*stream).read(&mut buf) {
                        Ok(0) => {
                            let _ = poller.delete(stream.as_raw_fd());
                            finished = Some(SessionOutcome {
                                transcript: std::mem::take(transcript),
                                latency: started.elapsed(),
                            });
                            break;
                        }
                        Ok(n) => transcript.extend_from_slice(&buf[..n]),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            return Err(io::Error::new(
                                e.kind(),
                                format!("session {idx}: reading answers: {e}"),
                            ))
                        }
                    }
                }
            }
            if let Some(outcome) = finished {
                clients[idx] = Client::Done(outcome);
                open -= 1;
                done += 1;
            }
        }
        start_more(&mut clients, &poller, &mut next_start, &mut open)?;
    }

    let wall = start.elapsed();
    let outcomes = clients
        .into_iter()
        .map(|c| match c {
            Client::Done(outcome) => outcome,
            _ => unreachable!("all sessions finished"),
        })
        .collect();
    Ok(FaninReport { outcomes, wall })
}
