//! The event-loop serving core: epoll reactor shards driving many
//! [`Session`]s per thread.
//!
//! The blocking server ([`crate::server`]) spends a thread (and a stack)
//! per connection; this module spends a thread per *shard* and keeps
//! every connection of that shard in one [`Poller`]. Each shard:
//!
//! - shares the nonblocking listener under `EPOLLEXCLUSIVE` (one
//!   incoming connection wakes one shard),
//! - reads request lines through the resumable
//!   [`CappedLineReader::poll_line`] (a line split across packets picks
//!   up exactly where it stopped),
//! - feeds complete lines to the connection's [`Session`] — the same
//!   state machine the blocking server uses, so answer bytes are
//!   identical by construction,
//! - buffers answers per connection with partial-write continuation and
//!   EPOLLOUT re-arm; past the high-water mark it stops *reading* from
//!   that connection until the backlog drains below the low-water mark
//!   (pipelining backpressure — a client that writes faster than it
//!   reads cannot balloon server memory),
//! - reaps idle connections via a [`TimerWheel`] (`--idle-timeout`),
//!   with lazy reinsertion so an active connection costs no per-request
//!   rescheduling,
//! - refuses connections over `--max-conns` with a best-effort
//!   [`AT_CAPACITY_REPLY`] (admission control), and
//! - on stop, drains gracefully: stops accepting, answers everything
//!   already received (a pending `batch` flushes, as at EOF), flushes,
//!   and closes — with a hard deadline so a stuck peer cannot pin
//!   shutdown.

use crate::protocol::{CappedLineReader, DiscardOutcome, PollLine, OVERSIZED_LINE_REPLY};
use crate::reactor::{Events, Interest, Poller, TimerWheel};
use crate::server::{ServerState, MAX_LINE_BYTES};
use crate::session::Session;
use std::io::{self, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tim_diffusion::BackingModel;

/// Answer sent (best-effort) to a connection refused by `--max-conns`.
pub const AT_CAPACITY_REPLY: &str = "error: server at connection capacity";

/// Answer sent (best-effort) before an idle connection is closed.
pub const IDLE_TIMEOUT_REPLY: &str = "error: idle timeout, closing connection";

/// Per-connection answer backlog beyond which the server stops reading
/// from that connection (pipelining backpressure).
const HIGH_WATER: usize = 256 * 1024;
/// Backlog level at which a paused connection resumes reading.
const LOW_WATER: usize = 64 * 1024;
/// Poll timeout when nothing sooner is armed — bounds stop latency.
const HEARTBEAT: Duration = Duration::from_millis(100);
/// Hard deadline for the graceful drain after stop.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// Bytes of post-error input discarded before giving up on a graceful
/// close (same budget as the blocking server).
const DRAIN_BUDGET: u64 = 64 * MAX_LINE_BYTES;
/// Readiness events drained per `epoll_wait`.
const EVENTS_CAP: usize = 1024;
/// Accept backlog requested at startup (kernel-capped at somaxconn).
const LISTEN_BACKLOG: i32 = 4096;
/// Timer-wheel slot count.
const WHEEL_SLOTS: usize = 256;

/// Registration token of the shared listener.
const LISTENER_TOKEN: u64 = u64::MAX;

/// Spawns the event-loop shards (one per configured thread) and returns
/// their join handles. The caller owns the stop flag; setting it makes
/// every shard drain and exit within the heartbeat + drain grace.
pub(crate) fn spawn_shards<M: BackingModel + Send + Clone + 'static>(
    state: Arc<ServerState<M>>,
    listener: Arc<TcpListener>,
    stop: Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    // Best-effort: a shallow backlog only slows mass fan-in (SYN
    // retries), it does not break it.
    let _ = crate::reactor::boost_backlog(&listener, LISTEN_BACKLOG);
    let active = Arc::new(AtomicUsize::new(0));
    (0..state.config().threads)
        .map(|i| {
            let state = Arc::clone(&state);
            let listener = Arc::clone(&listener);
            let stop = Arc::clone(&stop);
            let active = Arc::clone(&active);
            std::thread::Builder::new()
                .name(format!("tim-evloop-{i}"))
                .spawn(move || {
                    if let Err(e) = run_shard(&state, &listener, &stop, &active) {
                        eprintln!("event-loop shard {i} failed: {e}");
                    }
                })
                .expect("spawn event-loop shard")
        })
        .collect()
}

/// What to do with a connection after a progress pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Progress {
    /// Still alive; re-arm interest and wait.
    Keep,
    /// Finished (or failed); deregister and drop.
    Close,
}

/// Connection lifecycle within the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Normal service: read lines, run the session, queue answers.
    Serving,
    /// EOF answered (`Session::finish` queued); flush, then close.
    FlushClose,
    /// A closing error was answered (protocol error or oversized line):
    /// flush, half-close the write side, discard bounded input so the
    /// peer reliably reads the error line, then close.
    ErrorDrain {
        /// Whether the write side has been shut down yet.
        half_closed: bool,
    },
}

/// One event-loop connection: the socket (owned by its line reader), the
/// protocol state machine, and the outbound byte backlog.
struct Conn<'s, M> {
    reader: CappedLineReader<TcpStream>,
    session: Session<'s, M>,
    out: Vec<u8>,
    out_pos: usize,
    interest: Interest,
    phase: Phase,
    /// True while the answer backlog is over [`HIGH_WATER`] and reading
    /// is suspended.
    paused: bool,
    /// The real idle deadline; the wheel entry may lag behind it
    /// (lazy reinsertion).
    idle_deadline: Option<Instant>,
    drain_budget: u64,
}

impl<'s, M: BackingModel + Send + Clone + 'static> Conn<'s, M> {
    fn new(stream: TcpStream, session: Session<'s, M>) -> Self {
        Conn {
            reader: CappedLineReader::new(stream),
            session,
            out: Vec::new(),
            out_pos: 0,
            interest: Interest::READ,
            phase: Phase::Serving,
            paused: false,
            idle_deadline: None,
            drain_budget: DRAIN_BUDGET,
        }
    }

    fn stream(&self) -> &TcpStream {
        self.reader.get_ref()
    }

    fn fd(&self) -> i32 {
        self.stream().as_raw_fd()
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn queue_answers(&mut self, answers: &[String]) {
        for a in answers {
            self.out.reserve(a.len() + 1);
            self.out.extend_from_slice(a.as_bytes());
            self.out.push(b'\n');
        }
    }

    fn queue_line(&mut self, line: &str) {
        self.out.reserve(line.len() + 1);
        self.out.extend_from_slice(line.as_bytes());
        self.out.push(b'\n');
    }

    /// Writes as much of the backlog as the socket accepts right now.
    /// `Ok(true)` means fully flushed.
    fn flush_out(&mut self) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            let mut sock = self.reader.get_ref();
            match sock.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Compact occasionally so a long-lived slow reader
                    // does not pin already-sent bytes.
                    if self.out_pos >= LOW_WATER {
                        self.out.drain(..self.out_pos);
                        self.out_pos = 0;
                    }
                    return Ok(false);
                }
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }

    /// The interest matching the current phase and backlog.
    fn desired_interest(&self) -> Interest {
        let writable = self.pending_out() > 0;
        let readable = match self.phase {
            Phase::Serving => !self.paused,
            Phase::ErrorDrain { half_closed } => half_closed,
            Phase::FlushClose => false,
        };
        Interest { readable, writable }
    }

    /// Drives the connection as far as the socket allows: flush, then
    /// read/execute/queue in a loop, re-flushing as answers accumulate.
    /// Returns `Close` when the connection reached its natural end; IO
    /// errors bubble up (the caller closes on them too).
    fn make_progress(&mut self, line: &mut String) -> io::Result<Progress> {
        loop {
            let flushed = self.flush_out()?;
            match self.phase {
                Phase::Serving => {
                    if self.paused {
                        if self.pending_out() >= LOW_WATER {
                            return Ok(Progress::Keep);
                        }
                        self.paused = false;
                    }
                    match self.reader.poll_line(line)? {
                        PollLine::Pending => return Ok(Progress::Keep),
                        PollLine::Eof => {
                            let answers = self.session.finish();
                            self.queue_answers(&answers);
                            self.phase = Phase::FlushClose;
                        }
                        PollLine::Line => {
                            let answers = self.session.push_line(line);
                            self.queue_answers(&answers);
                            if self.session.closed() {
                                self.phase = Phase::ErrorDrain { half_closed: false };
                            } else if self.pending_out() > HIGH_WATER {
                                self.paused = true;
                            }
                        }
                        PollLine::Oversized => {
                            self.queue_line(OVERSIZED_LINE_REPLY);
                            self.phase = Phase::ErrorDrain { half_closed: false };
                        }
                    }
                }
                Phase::FlushClose => {
                    return Ok(if flushed {
                        Progress::Close
                    } else {
                        Progress::Keep
                    });
                }
                Phase::ErrorDrain { half_closed } => {
                    if !half_closed {
                        if !flushed {
                            return Ok(Progress::Keep);
                        }
                        // The error answer is out; half-close so the
                        // peer sees EOF after it, then discard input so
                        // the close is graceful (no RST racing the
                        // error line).
                        let _ = self.stream().shutdown(Shutdown::Write);
                        self.phase = Phase::ErrorDrain { half_closed: true };
                    }
                    let mut budget = self.drain_budget;
                    let outcome = self.reader.poll_discard(&mut budget);
                    self.drain_budget = budget;
                    match outcome? {
                        DiscardOutcome::Eof | DiscardOutcome::BudgetExhausted => {
                            return Ok(Progress::Close)
                        }
                        DiscardOutcome::Pending => return Ok(Progress::Keep),
                    }
                }
            }
        }
    }

    /// Queues `Session::finish` answers and moves to `FlushClose` — the
    /// drain-time equivalent of the client half-closing.
    fn begin_close(&mut self) {
        if self.phase == Phase::Serving {
            let answers = self.session.finish();
            self.queue_answers(&answers);
            self.phase = Phase::FlushClose;
        }
    }
}

/// A generational slab: tokens are `(generation << 32) | index`, so a
/// stale timer entry for a recycled slot can never touch the wrong
/// connection.
struct Slab<T> {
    entries: Vec<(u32, Option<T>)>,
    free: Vec<usize>,
}

impl<T> Slab<T> {
    fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, val: T) -> u64 {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx].1 = Some(val);
                idx
            }
            None => {
                self.entries.push((0, Some(val)));
                self.entries.len() - 1
            }
        };
        ((self.entries[idx].0 as u64) << 32) | idx as u64
    }

    fn split(token: u64) -> (usize, u32) {
        ((token & u32::MAX as u64) as usize, (token >> 32) as u32)
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut T> {
        let (idx, gen) = Self::split(token);
        match self.entries.get_mut(idx) {
            Some((g, slot)) if *g == gen => slot.as_mut(),
            _ => None,
        }
    }

    fn remove(&mut self, token: u64) -> Option<T> {
        let (idx, gen) = Self::split(token);
        match self.entries.get_mut(idx) {
            Some((g, slot)) if *g == gen && slot.is_some() => {
                let val = slot.take();
                *g = g.wrapping_add(1);
                self.free.push(idx);
                val
            }
            _ => None,
        }
    }

    fn tokens(&self) -> Vec<u64> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, (_, slot))| slot.is_some())
            .map(|(idx, (gen, _))| ((*gen as u64) << 32) | idx as u64)
            .collect()
    }

    fn is_empty(&self) -> bool {
        self.entries.iter().all(|(_, slot)| slot.is_none())
    }
}

/// One reactor shard: owns a [`Poller`], a slab of connections, and (if
/// configured) a timer wheel; loops until stop + drain complete.
fn run_shard<M: BackingModel + Send + Clone + 'static>(
    state: &ServerState<M>,
    listener: &TcpListener,
    stop: &AtomicBool,
    active: &AtomicUsize,
) -> io::Result<()> {
    let config = state.config();
    let idle_timeout = config.idle_timeout;
    let max_conns = config.max_conns;
    let poller = Poller::new()?;
    poller.add_exclusive(listener.as_raw_fd(), LISTENER_TOKEN)?;
    let start = Instant::now();
    let mut wheel = idle_timeout.map(|idle| {
        let granularity = (idle / 4)
            .max(Duration::from_millis(5))
            .min(Duration::from_secs(1));
        TimerWheel::new(start, granularity, WHEEL_SLOTS)
    });
    let mut conns: Slab<Conn<'_, M>> = Slab::new();
    let mut events = Events::with_capacity(EVENTS_CAP);
    let mut line = String::new();
    let mut due: Vec<(u64, u64)> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let now = Instant::now();
        let mut timeout = HEARTBEAT;
        if let Some(w) = &wheel {
            if !conns.is_empty() {
                timeout = timeout.min(w.until_next_tick(now));
            }
        }
        if let Some(deadline) = drain_deadline {
            timeout = timeout.min(deadline.saturating_duration_since(now));
        }
        poller.wait(&mut events, Some(timeout))?;
        let now = Instant::now();

        // Stop: park the listener and start the graceful drain — answer
        // everything already received, flush, close.
        if stop.load(Ordering::Acquire) && drain_deadline.is_none() {
            drain_deadline = Some(now + DRAIN_GRACE);
            let _ = poller.delete(listener.as_raw_fd());
            for token in conns.tokens() {
                step_conn(&poller, &mut conns, token, &mut line, active, true);
            }
        }
        let draining = drain_deadline.is_some();

        for ev in events.iter() {
            if ev.token == LISTENER_TOKEN {
                accept_burst(
                    state,
                    listener,
                    &poller,
                    &mut conns,
                    &mut wheel,
                    active,
                    max_conns,
                    idle_timeout,
                    draining,
                    now,
                );
            } else {
                if let Some(conn) = conns.get_mut(ev.token) {
                    // Any readiness event is activity for idle purposes
                    // (interest is trimmed to what the connection is
                    // actually waiting for, so events track real IO).
                    if let Some(idle) = idle_timeout {
                        conn.idle_deadline = Some(now + idle);
                    }
                }
                let force_close = ev.closed;
                step_conn(&poller, &mut conns, ev.token, &mut line, active, draining);
                if force_close {
                    // EPOLLERR/EPOLLHUP are level-triggered and forever:
                    // after one final progress pass, the connection goes.
                    close_conn(&poller, &mut conns, ev.token, active);
                }
            }
        }

        // Idle reaping: pop due wheel entries; entries whose real
        // deadline moved later are reinserted (lazy reinsertion).
        if let Some(w) = &mut wheel {
            w.advance(now, &mut due);
            for (token, _) in due.drain(..) {
                let deadline = match conns.get_mut(token) {
                    Some(conn) => conn.idle_deadline,
                    None => continue,
                };
                match deadline {
                    Some(dl) if dl <= now => {
                        if let Some(conn) = conns.get_mut(token) {
                            if conn.pending_out() == 0 {
                                conn.queue_line(IDLE_TIMEOUT_REPLY);
                                let _ = conn.flush_out();
                            }
                        }
                        close_conn(&poller, &mut conns, token, active);
                    }
                    Some(dl) => w.schedule(token, w.tick_at(dl)),
                    None => {}
                }
            }
        }

        if let Some(deadline) = drain_deadline {
            if conns.is_empty() {
                return Ok(());
            }
            if now >= deadline {
                for token in conns.tokens() {
                    close_conn(&poller, &mut conns, token, active);
                }
                return Ok(());
            }
        }
    }
}

/// Accepts until the listener would block, admitting or refusing each
/// connection.
#[allow(clippy::too_many_arguments)]
fn accept_burst<'s, M: BackingModel + Send + Clone + 'static>(
    state: &'s ServerState<M>,
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut Slab<Conn<'s, M>>,
    wheel: &mut Option<TimerWheel>,
    active: &AtomicUsize,
    max_conns: Option<usize>,
    idle_timeout: Option<Duration>,
    draining: bool,
    now: Instant,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // Transient resource errors (EMFILE, …): the listener
                // stays level-triggered readable, so back off briefly
                // instead of spinning the shard.
                eprintln!("accept failed: {e}; retrying");
                std::thread::sleep(Duration::from_millis(10));
                break;
            }
        };
        if draining {
            continue; // dropped: we are shutting down
        }
        if let Some(max) = max_conns {
            // fetch_add + re-check keeps the admission decision atomic
            // across shards.
            if active.fetch_add(1, Ordering::AcqRel) >= max {
                active.fetch_sub(1, Ordering::AcqRel);
                refuse(stream);
                continue;
            }
        } else {
            active.fetch_add(1, Ordering::AcqRel);
        }
        stream.set_nodelay(true).ok();
        if stream.set_nonblocking(true).is_err() {
            active.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        let mut conn = Conn::new(stream, state.session());
        if let Some(idle) = idle_timeout {
            conn.idle_deadline = Some(now + idle);
        }
        let fd = conn.fd();
        let token = conns.insert(conn);
        if poller.add(fd, token, Interest::READ).is_err() {
            conns.remove(token);
            active.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        if let (Some(w), Some(idle)) = (wheel.as_mut(), idle_timeout) {
            w.schedule(token, w.tick_at(now + idle));
        }
    }
}

/// Best-effort capacity refusal: one error line, half-close, drop.
fn refuse(stream: TcpStream) {
    stream.set_nonblocking(true).ok();
    let mut sock = &stream;
    let _ = sock.write_all(format!("{AT_CAPACITY_REPLY}\n").as_bytes());
    let _ = stream.shutdown(Shutdown::Write);
}

/// Runs one progress pass on a connection (panic-isolated), closing it
/// on completion, error, or panic; otherwise re-arms its interest.
fn step_conn<M: BackingModel + Send + Clone + 'static>(
    poller: &Poller,
    conns: &mut Slab<Conn<'_, M>>,
    token: u64,
    line: &mut String,
    active: &AtomicUsize,
    drain: bool,
) {
    let Some(conn) = conns.get_mut(token) else {
        return;
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let progress = conn.make_progress(line)?;
        if drain && progress == Progress::Keep && conn.phase == Phase::Serving {
            // Drain semantics: everything received is answered; the
            // session then ends as if the client had half-closed.
            conn.begin_close();
            return conn.make_progress(line);
        }
        Ok(progress)
    }));
    match outcome {
        Ok(Ok(Progress::Keep)) => {
            let desired = conn.desired_interest();
            if desired != conn.interest {
                if poller.modify(conn.fd(), token, desired).is_err() {
                    close_conn(poller, conns, token, active);
                    return;
                }
                conn.interest = desired;
            }
        }
        Ok(Ok(Progress::Close)) | Ok(Err(_)) => close_conn(poller, conns, token, active),
        Err(_) => {
            eprintln!("connection handler panicked; event loop continues");
            close_conn(poller, conns, token, active);
        }
    }
}

/// Deregisters and drops a connection, releasing its admission slot.
fn close_conn<M: BackingModel + Send + Clone + 'static>(
    poller: &Poller,
    conns: &mut Slab<Conn<'_, M>>,
    token: u64,
    active: &AtomicUsize,
) {
    if let Some(conn) = conns.remove(token) {
        let _ = poller.delete(conn.fd());
        active.fetch_sub(1, Ordering::AcqRel);
    }
}
