//! IRIE — Influence Ranking + Influence Estimation (Jung, Heo, Chen \[16\]).
//!
//! The state-of-the-art IC heuristic the paper compares against in
//! Figures 8–9. IRIE alternates two components:
//!
//! - **IR** (influence ranking): a PageRank-like fixed point
//!   `r(u) = (1 − AP(u)) · (1 + α · Σ_{v ∈ out(u)} p(u,v) · r(v))`,
//!   whose top node approximates the best next seed;
//! - **IE** (influence estimation): `AP(u)`, the probability that `u` is
//!   already activated by the current seed set, which discounts nodes whose
//!   influence region is already claimed.
//!
//! The original IE uses a PMIA-style local estimation; we estimate `AP` by
//! Monte Carlo over the triggering model instead, which keeps the module
//! model-generic and is an accuracy-favouring substitution (documented in
//! DESIGN.md). `α = 0.7` and 20 ranking iterations follow the paper's
//! recommended settings (§7.3).

use crate::SeedSelector;
use tim_diffusion::{DiffusionModel, SimWorkspace};
use tim_graph::{Graph, NodeId};
use tim_rng::Rng;

/// The IRIE heuristic.
#[derive(Debug, Clone)]
pub struct Irie<M> {
    model: M,
    alpha: f64,
    ranking_iterations: usize,
    ap_runs: usize,
    seed: u64,
}

impl<M: DiffusionModel> Irie<M> {
    /// Creates an IRIE runner with the recommended α = 0.7, 20 ranking
    /// iterations, and 200 Monte Carlo runs for AP estimation.
    pub fn new(model: M) -> Self {
        Self {
            model,
            alpha: 0.7,
            ranking_iterations: 20,
            ap_runs: 200,
            seed: 0,
        }
    }

    /// Sets the damping factor α.
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        self.alpha = alpha;
        self
    }

    /// Sets the number of fixed-point iterations for the ranking.
    #[must_use]
    pub fn ranking_iterations(mut self, iters: usize) -> Self {
        assert!(iters > 0, "iterations must be positive");
        self.ranking_iterations = iters;
        self
    }

    /// Sets the Monte Carlo runs used to estimate activation probabilities.
    #[must_use]
    pub fn ap_runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "ap_runs must be positive");
        self.ap_runs = runs;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// One IR fixed-point solve given activation probabilities `ap`.
    fn rank(&self, graph: &Graph, ap: &[f64]) -> Vec<f64> {
        let n = graph.n();
        let mut r = vec![1.0f64; n];
        let mut next = vec![0.0f64; n];
        for _ in 0..self.ranking_iterations {
            for u in 0..n {
                let mut acc = 0.0f64;
                let nbrs = graph.out_neighbors(u as NodeId);
                let probs = graph.out_probabilities(u as NodeId);
                for (&v, &p) in nbrs.iter().zip(probs) {
                    acc += p as f64 * r[v as usize];
                }
                next[u] = (1.0 - ap[u]) * (1.0 + self.alpha * acc);
            }
            std::mem::swap(&mut r, &mut next);
        }
        r
    }

    /// Monte Carlo estimate of each node's probability of being activated
    /// by `seeds`.
    fn activation_probabilities(&self, graph: &Graph, seeds: &[NodeId]) -> Vec<f64> {
        let mut ap = vec![0.0f64; graph.n()];
        if seeds.is_empty() {
            return ap;
        }
        let mut rng = Rng::seed_from_u64(self.seed ^ 0xA5A5_5A5A_D00D_F00D);
        let mut ws = SimWorkspace::new();
        for _ in 0..self.ap_runs {
            self.model.simulate(&mut ws, graph, seeds, &mut rng);
            for &v in ws.activated() {
                ap[v as usize] += 1.0;
            }
        }
        for a in &mut ap {
            *a /= self.ap_runs as f64;
        }
        ap
    }
}

impl<M: DiffusionModel> SeedSelector for Irie<M> {
    fn select(&self, graph: &Graph, k: usize) -> Vec<NodeId> {
        assert!(k >= 1, "k must be at least 1");
        let n = graph.n();
        let k = k.min(n);
        let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
        let mut selected = vec![false; n];
        let mut ap = vec![0.0f64; n];
        for _ in 0..k {
            let r = self.rank(graph, &ap);
            let best = (0..n)
                .filter(|&u| !selected[u])
                .max_by(|&a, &b| r[a].total_cmp(&r[b]))
                .expect("unselected node must exist");
            selected[best] = true;
            seeds.push(best as NodeId);
            ap = self.activation_probabilities(graph, &seeds);
        }
        seeds
    }

    fn name(&self) -> String {
        format!("IRIE(alpha={})", self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::{IndependentCascade, SpreadEstimator};
    use tim_graph::{gen, weights, GraphBuilder};

    #[test]
    fn picks_the_hub_of_a_star() {
        let mut b = GraphBuilder::new(20);
        for v in 1..20u32 {
            b.add_edge_with_probability(0, v, 0.5);
        }
        let g = b.build();
        let seeds = Irie::new(IndependentCascade).seed(1).select(&g, 1);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn second_seed_avoids_covered_region() {
        // Hub 0 -> {2..12}, hub 1 -> {12..17}, p = 1. After picking 0,
        // the discount must steer the second pick to 1, not to a leaf of 0.
        let mut b = GraphBuilder::new(17);
        for leaf in 2..12 {
            b.add_edge_with_probability(0, leaf, 1.0);
        }
        for leaf in 12..17 {
            b.add_edge_with_probability(1, leaf, 1.0);
        }
        let g = b.build();
        let seeds = Irie::new(IndependentCascade).seed(2).select(&g, 2);
        assert_eq!(seeds, vec![0, 1]);
    }

    #[test]
    fn returns_k_distinct_seeds() {
        let mut g = gen::barabasi_albert(150, 3, 0.0, 3);
        weights::assign_weighted_cascade(&mut g);
        let seeds = Irie::new(IndependentCascade).seed(4).select(&g, 10);
        assert_eq!(seeds.len(), 10);
        let mut s = seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn beats_random_seeds_on_scale_free_graphs() {
        let mut g = gen::barabasi_albert(300, 4, 0.0, 5);
        weights::assign_weighted_cascade(&mut g);
        let seeds = Irie::new(IndependentCascade).seed(6).select(&g, 8);
        let est = SpreadEstimator::new(IndependentCascade).runs(3_000).seed(7);
        let irie_spread = est.estimate(&g, &seeds);
        let random: Vec<u32> = (200..208).collect();
        let random_spread = est.estimate(&g, &random);
        assert!(
            irie_spread > random_spread,
            "IRIE {irie_spread} vs random {random_spread}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut g = gen::barabasi_albert(100, 3, 0.0, 8);
        weights::assign_weighted_cascade(&mut g);
        let irie = Irie::new(IndependentCascade).seed(9);
        assert_eq!(irie.select(&g, 5), irie.select(&g, 5));
    }

    #[test]
    fn alpha_zero_degenerates_to_degree_like_ranking() {
        // With alpha = 0 all ranks are 1 - AP(u); the first pick is then
        // just the lowest-indexed node, exercising the code path.
        let mut g = gen::erdos_renyi_gnm(30, 90, 10);
        weights::assign_weighted_cascade(&mut g);
        let seeds = Irie::new(IndependentCascade)
            .alpha(0.0)
            .seed(11)
            .select(&g, 2);
        assert_eq!(seeds.len(), 2);
    }
}
