//! Influence PageRank: rank nodes by PageRank on the **transpose** graph.
//!
//! PageRank measures how much mass flows *into* a node; influence
//! maximization wants nodes from which mass flows *out*. Running PageRank
//! with all edges reversed makes a node important when it (transitively)
//! points at many easily-reached nodes — a common cheap baseline in the IM
//! literature.

use crate::SeedSelector;
use tim_graph::{Graph, NodeId};

/// Power-iteration PageRank on the reversed graph.
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Damping factor (default 0.85).
    pub damping: f64,
    /// Maximum power iterations (default 100).
    pub max_iterations: usize,
    /// L1 convergence tolerance (default 1e-9).
    pub tolerance: f64,
}

impl Default for PageRank {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

impl PageRank {
    /// Creates a ranker with standard parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the PageRank vector on the reversed graph.
    ///
    /// Transition: a node `v` distributes its mass along its **in**-edges
    /// (reversed out-edges), weighted by edge probability; dangling mass is
    /// redistributed uniformly.
    pub fn scores(&self, graph: &Graph) -> Vec<f64> {
        let n = graph.n();
        if n == 0 {
            return Vec::new();
        }
        let uniform = 1.0 / n as f64;
        let mut rank = vec![uniform; n];
        let mut next = vec![0.0f64; n];

        // Per-node total in-probability (the reversed out-weight).
        let w_total: Vec<f64> = (0..n as NodeId)
            .map(|v| graph.in_probabilities(v).iter().map(|&p| p as f64).sum())
            .collect();

        for _ in 0..self.max_iterations {
            let mut dangling = 0.0f64;
            next.iter_mut().for_each(|x| *x = 0.0);
            for v in 0..n {
                if w_total[v] <= 0.0 {
                    dangling += rank[v];
                    continue;
                }
                let share = rank[v] / w_total[v];
                let nbrs = graph.in_neighbors(v as NodeId);
                let probs = graph.in_probabilities(v as NodeId);
                for (&u, &p) in nbrs.iter().zip(probs) {
                    next[u as usize] += share * p as f64;
                }
            }
            let base = (1.0 - self.damping) * uniform + self.damping * dangling * uniform;
            let mut delta = 0.0f64;
            for v in 0..n {
                let new = base + self.damping * next[v];
                delta += (new - rank[v]).abs();
                rank[v] = new;
            }
            if delta < self.tolerance {
                break;
            }
        }
        rank
    }
}

impl SeedSelector for PageRank {
    fn select(&self, graph: &Graph, k: usize) -> Vec<NodeId> {
        let k = k.min(graph.n());
        let scores = self.scores(graph);
        let mut nodes: Vec<NodeId> = (0..graph.n() as NodeId).collect();
        nodes.sort_by(|&a, &b| {
            scores[b as usize]
                .total_cmp(&scores[a as usize])
                .then(a.cmp(&b))
        });
        nodes.truncate(k);
        nodes
    }

    fn name(&self) -> String {
        format!("PageRank(d={})", self.damping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_graph::{gen, weights, GraphBuilder};

    #[test]
    fn scores_sum_to_one() {
        let mut g = gen::erdos_renyi_gnm(50, 200, 1);
        weights::assign_weighted_cascade(&mut g);
        let scores = PageRank::new().scores(&g);
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn influencer_outranks_its_audience() {
        // 0 -> {1..9} with p = 1: on the reversed graph everyone points at
        // 0, so 0 must have the top score.
        let mut b = GraphBuilder::new(10);
        for v in 1..10u32 {
            b.add_edge_with_probability(0, v, 1.0);
        }
        let g = b.build();
        let seeds = PageRank::new().select(&g, 1);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn chain_head_ranks_highest() {
        // 0 -> 1 -> 2 -> 3: the head transitively reaches everything.
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge_with_probability(i, i + 1, 1.0);
        }
        let g = b.build();
        let scores = PageRank::new().scores(&g);
        assert!(scores[0] > scores[1]);
        assert!(scores[1] > scores[2]);
        assert!(scores[2] > scores[3]);
    }

    #[test]
    fn returns_k_distinct() {
        let mut g = gen::barabasi_albert(100, 3, 0.0, 2);
        weights::assign_weighted_cascade(&mut g);
        let seeds = PageRank::new().select(&g, 10);
        assert_eq!(seeds.len(), 10);
        let mut s = seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = GraphBuilder::new(0).build();
        assert!(PageRank::new().scores(&g).is_empty());
        assert!(PageRank::new().select(&g, 3).is_empty());
    }
}
