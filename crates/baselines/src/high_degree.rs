//! HighDegree: the simplest heuristic — take the `k` highest out-degree
//! nodes. A standard reference point since Kempe et al. \[17\].

use crate::SeedSelector;
use tim_graph::{Graph, NodeId};

/// Top-`k` out-degree selection (ties broken by node id).
#[derive(Debug, Clone, Copy, Default)]
pub struct HighDegree;

impl SeedSelector for HighDegree {
    fn select(&self, graph: &Graph, k: usize) -> Vec<NodeId> {
        let k = k.min(graph.n());
        let mut nodes: Vec<NodeId> = (0..graph.n() as NodeId).collect();
        nodes.sort_by_key(|&v| (std::cmp::Reverse(graph.out_degree(v)), v));
        nodes.truncate(k);
        nodes
    }

    fn name(&self) -> String {
        "HighDegree".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_graph::GraphBuilder;

    #[test]
    fn picks_highest_out_degree() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(2, 0);
        b.add_edge(2, 1);
        b.add_edge(2, 3);
        b.add_edge(4, 1);
        b.add_edge(4, 3);
        let g = b.build();
        assert_eq!(HighDegree.select(&g, 2), vec![2, 4]);
    }

    #[test]
    fn ties_break_by_node_id() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(1, 0);
        b.add_edge(3, 0);
        let g = b.build();
        assert_eq!(HighDegree.select(&g, 2), vec![1, 3]);
    }

    #[test]
    fn k_clamped_to_n() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(HighDegree.select(&g, 10).len(), 3);
    }
}
