//! Baselines from the paper's experimental comparison (§7).
//!
//! | Method | Paper role | Module |
//! |---|---|---|
//! | RIS (Borgs et al. \[3\]) | the near-optimal predecessor TIM refines; threshold-τ sampling | [`ris`] |
//! | Greedy (Kempe et al. \[17\]) + CELF \[21\] + CELF++ \[11\] | the `(1−1/e−ε)` Monte Carlo family | [`celf`] |
//! | IRIE \[16\] | state-of-the-art IC heuristic (Figures 8–9) | [`irie`] |
//! | SimPath \[12\] | state-of-the-art LT heuristic (Figures 10–11) | [`simpath`] |
//! | HighDegree / DegreeDiscount \[6\] / PageRank | classic cheap heuristics | [`high_degree`], [`degree_discount`], [`pagerank`] |
//!
//! All selectors implement [`SeedSelector`], so the experiment harness can
//! sweep them uniformly.

pub mod celf;
pub mod degree_discount;
pub mod high_degree;
pub mod irie;
pub mod pagerank;
pub mod ris;
pub mod simpath;

use tim_graph::{Graph, NodeId};

/// A seed-selection algorithm: the common interface of every method in the
/// paper's evaluation.
pub trait SeedSelector {
    /// Selects `k` seed nodes on `graph`.
    fn select(&self, graph: &Graph, k: usize) -> Vec<NodeId>;

    /// Display name for experiment tables.
    fn name(&self) -> String;
}
