//! SimPath-style LT heuristic (Goyal, Lu, Lakshmanan \[12\]).
//!
//! Under the Linear Threshold model, the spread of a seed set `S` has a
//! closed form as a sum over **simple paths**: `σ(S) = Σ_{u∈S} σ^{V−S+u}(u)`,
//! where `σ^W(u)` sums, over all simple paths in the subgraph induced by
//! `W` that start at `u`, the product of edge weights along the path
//! (Goyal et al., Theorem 1). SimPath enumerates these paths with a
//! pruning threshold `η` — paths whose weight falls below `η` are cut,
//! trading a little accuracy for tractability — and drives selection with
//! CELF-style lazy evaluation, refreshing up to `lookahead` candidates per
//! round (the paper's `ℓ` parameter; §7.3 uses `η = 10⁻³`, `ℓ = 4`).
//!
//! This implementation keeps the path-enumeration semantics and the
//! lookahead batching, but evaluates candidates directly rather than
//! through the vertex-cover / backward-walk optimisations of the original —
//! a simplification documented in DESIGN.md.

use crate::SeedSelector;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tim_graph::{Graph, NodeId};

/// The SimPath heuristic.
#[derive(Debug, Clone)]
pub struct SimPath {
    eta: f64,
    lookahead: usize,
}

impl Default for SimPath {
    fn default() -> Self {
        Self::new()
    }
}

impl SimPath {
    /// Creates a runner with the recommended `η = 10⁻³`, `lookahead = 4`.
    pub fn new() -> Self {
        Self {
            eta: 1e-3,
            lookahead: 4,
        }
    }

    /// Sets the path-pruning threshold η (smaller = more accurate, slower).
    #[must_use]
    pub fn eta(mut self, eta: f64) -> Self {
        assert!(eta > 0.0 && eta <= 1.0, "eta must be in (0, 1]");
        self.eta = eta;
        self
    }

    /// Sets the CELF look-ahead batch size.
    #[must_use]
    pub fn lookahead(mut self, lookahead: usize) -> Self {
        assert!(lookahead >= 1, "lookahead must be at least 1");
        self.lookahead = lookahead;
        self
    }

    /// `σ^W(u)`: simple-path spread of `u` within `V \ blocked`, pruned at
    /// η. Includes the path of length 0 (i.e. `u` itself, weight 1).
    fn sigma_from(&self, graph: &Graph, u: NodeId, blocked: &mut [bool]) -> f64 {
        debug_assert!(!blocked[u as usize]);
        // Iterative DFS over simple paths with weight products.
        // Each stack frame: (node, next-edge index, weight of path prefix).
        let mut total = 1.0f64;
        let mut stack: Vec<(NodeId, usize, f64)> = vec![(u, 0, 1.0)];
        blocked[u as usize] = true; // on-path marker
        while let Some(&(v, mut edge_idx, w)) = stack.last() {
            let nbrs = graph.out_neighbors(v);
            let probs = graph.out_probabilities(v);
            let mut advanced = false;
            while edge_idx < nbrs.len() {
                let t = nbrs[edge_idx];
                let p = probs[edge_idx] as f64;
                edge_idx += 1;
                if blocked[t as usize] {
                    continue;
                }
                let w2 = w * p;
                if w2 < self.eta {
                    continue;
                }
                total += w2;
                blocked[t as usize] = true;
                stack.last_mut().expect("frame exists").1 = edge_idx;
                stack.push((t, 0, w2));
                advanced = true;
                break;
            }
            if !advanced {
                stack.pop();
                blocked[v as usize] = false;
            }
        }
        total
    }

    /// `σ(S)` via the seed-decomposition formula.
    pub fn spread(&self, graph: &Graph, seeds: &[NodeId]) -> f64 {
        let mut blocked = vec![false; graph.n()];
        for &s in seeds {
            assert!((s as usize) < graph.n(), "seed out of range");
            blocked[s as usize] = true;
        }
        let mut total = 0.0f64;
        for &s in seeds {
            blocked[s as usize] = false; // σ^{V - S + s}(s)
            total += self.sigma_from(graph, s, &mut blocked);
            blocked[s as usize] = true;
        }
        total
    }
}

struct Entry {
    gain: f64,
    node: NodeId,
    round: usize,
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.node == other.node
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl SeedSelector for SimPath {
    fn select(&self, graph: &Graph, k: usize) -> Vec<NodeId> {
        assert!(k >= 1, "k must be at least 1");
        let n = graph.n();
        let k = k.min(n);

        // Initial singleton spreads.
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(n);
        {
            let mut blocked = vec![false; n];
            for v in 0..n as NodeId {
                let gain = self.sigma_from(graph, v, &mut blocked);
                heap.push(Entry {
                    gain,
                    node: v,
                    round: 0,
                });
            }
        }

        let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
        let mut base = 0.0f64;
        let mut scratch: Vec<NodeId> = Vec::with_capacity(k + 1);
        while seeds.len() < k {
            // Refresh up to `lookahead` stale top candidates in one batch,
            // then re-examine (the SimPath look-ahead optimisation).
            let mut batch: Vec<Entry> = Vec::with_capacity(self.lookahead);
            let mut fresh_top: Option<Entry> = None;
            while batch.len() < self.lookahead {
                match heap.pop() {
                    Some(e) if e.round == seeds.len() => {
                        fresh_top = Some(e);
                        break;
                    }
                    Some(e) => batch.push(e),
                    None => break,
                }
            }
            if let Some(top) = fresh_top {
                // A fresh entry dominates everything still in the heap;
                // compare it against the refreshed batch below.
                batch.push(top);
            }
            if batch.is_empty() {
                break; // heap exhausted (k > n handled by clamp)
            }
            for e in &mut batch {
                if e.round != seeds.len() {
                    scratch.clear();
                    scratch.extend_from_slice(&seeds);
                    scratch.push(e.node);
                    e.gain = self.spread(graph, &scratch) - base;
                    e.round = seeds.len();
                }
            }
            // Select the batch's best if it beats the heap's top bound;
            // otherwise push everything back and loop.
            batch.sort_by(|a, b| b.cmp(a));
            let heap_bound = heap.peek().map_or(f64::NEG_INFINITY, |e| e.gain);
            if batch[0].gain >= heap_bound {
                let chosen = batch.remove(0);
                base += chosen.gain;
                seeds.push(chosen.node);
            }
            for e in batch {
                heap.push(e);
            }
        }
        seeds
    }

    fn name(&self) -> String {
        format!("SimPath(eta={}, l={})", self.eta, self.lookahead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_graph::{gen, weights, GraphBuilder};

    #[test]
    fn spread_on_a_path_is_the_geometric_sum() {
        // 0 -w-> 1 -w-> 2 with w = 0.5: σ({0}) = 1 + 0.5 + 0.25.
        let mut b = GraphBuilder::new(3);
        b.add_edge_with_probability(0, 1, 0.5);
        b.add_edge_with_probability(1, 2, 0.5);
        let g = b.build();
        let sp = SimPath::new().eta(1e-6);
        assert!((sp.spread(&g, &[0]) - 1.75).abs() < 1e-9);
    }

    #[test]
    fn spread_counts_each_seed_once() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_with_probability(0, 1, 1.0);
        b.add_edge_with_probability(1, 2, 1.0);
        let g = b.build();
        let sp = SimPath::new();
        // Both seeds: paths from 0 may not pass through seed 1.
        // σ = σ^{V-1}(0) + σ^{V-0}(1) = 1 + 1 + 2 = ... 0 reaches only
        // itself (1 blocked); 1 reaches itself and 2.
        assert!((sp.spread(&g, &[0, 1]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn eta_prunes_long_paths() {
        let mut b = GraphBuilder::new(4);
        b.add_edge_with_probability(0, 1, 0.1);
        b.add_edge_with_probability(1, 2, 0.1);
        b.add_edge_with_probability(2, 3, 0.1);
        let g = b.build();
        let exact = SimPath::new().eta(1e-9).spread(&g, &[0]);
        let pruned = SimPath::new().eta(0.05).spread(&g, &[0]);
        // Edge weights are stored as f32, so compare with f32-level slack.
        assert!((exact - (1.0 + 0.1 + 0.01 + 0.001)).abs() < 1e-6);
        // Pruning at 0.05 keeps only the first hop.
        assert!((pruned - 1.1).abs() < 1e-6);
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_with_probability(0, 1, 1.0);
        b.add_edge_with_probability(1, 0, 1.0);
        let g = b.build();
        // Simple paths only: 0 -> 1 once.
        assert!((SimPath::new().spread(&g, &[0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn selects_hub_on_star() {
        let mut b = GraphBuilder::new(10);
        for v in 1..10u32 {
            b.add_edge_with_probability(0, v, 0.9);
        }
        let g = b.build();
        let seeds = SimPath::new().select(&g, 1);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn two_hub_selection_is_greedy_correct() {
        let mut b = GraphBuilder::new(17);
        for leaf in 2..12 {
            b.add_edge_with_probability(0, leaf, 1.0);
        }
        for leaf in 12..17 {
            b.add_edge_with_probability(1, leaf, 1.0);
        }
        let g = b.build();
        let seeds = SimPath::new().select(&g, 2);
        assert_eq!(seeds, vec![0, 1]);
    }

    #[test]
    fn works_on_lt_normalized_graphs() {
        let mut g = gen::barabasi_albert(120, 3, 0.0, 1);
        weights::assign_lt_normalized(&mut g, 2);
        let seeds = SimPath::new().select(&g, 5);
        assert_eq!(seeds.len(), 5);
        let mut s = seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn spread_is_monotone_in_seeds() {
        let mut g = gen::erdos_renyi_gnm(40, 160, 3);
        weights::assign_lt_normalized(&mut g, 4);
        let sp = SimPath::new();
        let s1 = sp.spread(&g, &[0]);
        let s2 = sp.spread(&g, &[0, 1]);
        assert!(s2 >= s1 - 1e-9, "{s1} -> {s2}");
    }

    #[test]
    fn lookahead_one_matches_larger_lookahead_quality() {
        let mut g = gen::barabasi_albert(80, 3, 0.0, 5);
        weights::assign_lt_normalized(&mut g, 6);
        let a = SimPath::new().lookahead(1).select(&g, 4);
        let b = SimPath::new().lookahead(8).select(&g, 4);
        let sp = SimPath::new();
        let qa = sp.spread(&g, &a);
        let qb = sp.spread(&g, &b);
        let rel = (qa - qb).abs() / qa.max(qb);
        assert!(rel < 0.05, "lookahead variants diverge: {qa} vs {qb}");
    }
}
