//! RIS — Reverse Influence Sampling (Borgs et al. \[3\], paper §2.3).
//!
//! RIS keeps generating random RR sets until the **total number of nodes
//! and edges examined** reaches a threshold
//! `τ = c · k·ℓ·(m + n)·ln n / ε³`, then greedily covers. Thresholding on
//! cost (instead of sampling a pre-decided count) correlates the samples —
//! the paper's footnote-3 stopping-time bias — which is exactly what TIM's
//! two-phase design removes. With the theoretically required `c`, RIS is
//! impractically slow (Figure 3); `tau_constant` exposes `c` so experiments
//! can run it at reduced fidelity, trading away the worst-case guarantee
//! exactly as §7.2 discusses.

use crate::SeedSelector;
use tim_coverage::{greedy_max_cover, SetCollection};
use tim_diffusion::{DiffusionModel, RrSampler};
use tim_graph::{Graph, NodeId};
use tim_rng::Rng;

/// The RIS baseline.
#[derive(Debug, Clone)]
pub struct Ris<M> {
    model: M,
    epsilon: f64,
    ell: f64,
    /// The hidden constant `c` in τ; `1.0` is already far cheaper than the
    /// theory requires but reproduces RIS's qualitative behaviour.
    tau_constant: f64,
    seed: u64,
    /// Safety cap on generated RR sets (guards τ blow-ups in sweeps).
    max_sets: u64,
}

impl<M: DiffusionModel> Ris<M> {
    /// Creates a RIS runner with ε = 0.1, ℓ = 1, c = 1.
    pub fn new(model: M) -> Self {
        Self {
            model,
            epsilon: 0.1,
            ell: 1.0,
            tau_constant: 1.0,
            seed: 0,
            max_sets: u64::MAX,
        }
    }

    /// Sets ε (τ scales as ε^(−3) — the term that dominates RIS's cost).
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        self.epsilon = epsilon;
        self
    }

    /// Sets the failure exponent ℓ.
    #[must_use]
    pub fn ell(mut self, ell: f64) -> Self {
        assert!(ell > 0.0, "ell must be positive");
        self.ell = ell;
        self
    }

    /// Sets the hidden constant `c` in τ.
    #[must_use]
    pub fn tau_constant(mut self, c: f64) -> Self {
        assert!(c > 0.0, "tau constant must be positive");
        self.tau_constant = c;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of RR sets generated regardless of τ.
    #[must_use]
    pub fn max_sets(mut self, max_sets: u64) -> Self {
        assert!(max_sets > 0, "max_sets must be positive");
        self.max_sets = max_sets;
        self
    }

    /// The threshold τ for a given graph and `k`.
    pub fn tau(&self, graph: &Graph, k: usize) -> f64 {
        let n = graph.n() as f64;
        let m = graph.m() as f64;
        self.tau_constant * k as f64 * self.ell * (m + n) * n.ln()
            / (self.epsilon * self.epsilon * self.epsilon)
    }

    /// Runs RIS and additionally reports how many RR sets were generated.
    pub fn select_with_stats(&self, graph: &Graph, k: usize) -> (Vec<NodeId>, u64) {
        assert!(graph.n() >= 2, "RIS needs at least 2 nodes");
        assert!(k >= 1, "k must be at least 1");
        let tau = self.tau(graph, k);
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut sampler = RrSampler::new(&self.model);
        let mut collection = SetCollection::new(graph.n());
        let mut buf = Vec::new();
        let mut examined = 0u64;
        let mut sets = 0u64;
        // Step 1: generate until the examined-cost threshold trips.
        while (examined as f64) < tau && sets < self.max_sets {
            let (_, stats) = sampler.sample_random(graph, &mut rng, &mut buf);
            examined += stats.examined();
            collection.push(&buf);
            sets += 1;
        }
        // Step 2: standard greedy max coverage.
        let cover = greedy_max_cover(&mut collection, k);
        (cover.seeds, sets)
    }
}

impl<M: DiffusionModel> SeedSelector for Ris<M> {
    fn select(&self, graph: &Graph, k: usize) -> Vec<NodeId> {
        self.select_with_stats(graph, k).0
    }

    fn name(&self) -> String {
        format!("RIS(eps={}, c={})", self.epsilon, self.tau_constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::{IndependentCascade, SpreadEstimator};
    use tim_graph::{gen, weights, GraphBuilder};

    fn wc_graph(seed: u64) -> Graph {
        let mut g = gen::barabasi_albert(200, 4, 0.0, seed);
        weights::assign_weighted_cascade(&mut g);
        g
    }

    #[test]
    fn returns_k_distinct_seeds() {
        let g = wc_graph(1);
        let ris = Ris::new(IndependentCascade)
            .epsilon(1.0)
            .tau_constant(0.05)
            .seed(2);
        let seeds = ris.select(&g, 6);
        assert_eq!(seeds.len(), 6);
        let mut s = seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn tau_scales_with_inverse_epsilon_cubed() {
        let g = wc_graph(3);
        let a = Ris::new(IndependentCascade).epsilon(0.1).tau(&g, 10);
        let b = Ris::new(IndependentCascade).epsilon(0.2).tau(&g, 10);
        assert!((a / b - 8.0).abs() < 1e-9, "ratio {}", a / b);
    }

    #[test]
    fn generates_more_sets_with_larger_tau() {
        let g = wc_graph(4);
        let (_, few) = Ris::new(IndependentCascade)
            .epsilon(1.0)
            .tau_constant(0.02)
            .seed(5)
            .select_with_stats(&g, 5);
        let (_, many) = Ris::new(IndependentCascade)
            .epsilon(1.0)
            .tau_constant(0.2)
            .seed(5)
            .select_with_stats(&g, 5);
        assert!(
            many > few,
            "tau should control sample count: {few} vs {many}"
        );
    }

    #[test]
    fn hub_is_found_on_star_graph() {
        let n = 40;
        let mut b = GraphBuilder::new(n);
        for v in 1..n as u32 {
            b.add_edge_with_probability(0, v, 1.0);
        }
        let g = b.build();
        let seeds = Ris::new(IndependentCascade)
            .epsilon(1.0)
            .tau_constant(0.05)
            .seed(6)
            .select(&g, 1);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn quality_is_competitive_with_random() {
        let g = wc_graph(7);
        let seeds = Ris::new(IndependentCascade)
            .epsilon(0.5)
            .tau_constant(0.05)
            .seed(8)
            .select(&g, 8);
        let est = SpreadEstimator::new(IndependentCascade).runs(3_000).seed(9);
        let ris_spread = est.estimate(&g, &seeds);
        let random: Vec<u32> = (50..58).collect();
        let random_spread = est.estimate(&g, &random);
        assert!(
            ris_spread >= random_spread,
            "{ris_spread} vs {random_spread}"
        );
    }

    #[test]
    fn max_sets_cap_is_respected() {
        let g = wc_graph(10);
        let (_, sets) = Ris::new(IndependentCascade)
            .epsilon(0.1)
            .seed(11)
            .max_sets(100)
            .select_with_stats(&g, 5);
        assert_eq!(sets, 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = wc_graph(12);
        let ris = Ris::new(IndependentCascade)
            .epsilon(1.0)
            .tau_constant(0.05)
            .seed(13);
        assert_eq!(ris.select(&g, 5), ris.select(&g, 5));
    }
}
