//! DegreeDiscount (Chen, Wang, Yang \[6\]).
//!
//! A near-free improvement over HighDegree for the IC model with uniform
//! probability `p`: once a neighbour of `v` is seeded, part of `v`'s
//! influence is already claimed, so `v`'s effective degree is discounted:
//!
//! `dd(v) = d(v) − 2·t(v) − (d(v) − t(v)) · t(v) · p`
//!
//! where `d(v)` is `v`'s degree and `t(v)` the number of its already-seeded
//! neighbours. On directed graphs we use out-degree for `d` and count
//! seeded **in**-neighbours for `t` (a seeded in-neighbour is the one that
//! can pre-activate `v`). When `p` is not given, the mean edge probability
//! is used.

use crate::SeedSelector;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tim_graph::{Graph, NodeId};

/// The DegreeDiscount heuristic.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeDiscount {
    /// Uniform propagation probability assumed by the discount formula;
    /// `None` uses the graph's mean edge probability.
    pub p: Option<f64>,
}

impl DegreeDiscount {
    /// Creates the heuristic with `p` inferred from the graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the `p` used in the discount formula.
    #[must_use]
    pub fn with_p(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        Self { p: Some(p) }
    }
}

struct Entry {
    score: f64,
    node: NodeId,
    stamp: u64,
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.node == other.node
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl SeedSelector for DegreeDiscount {
    fn select(&self, graph: &Graph, k: usize) -> Vec<NodeId> {
        let n = graph.n();
        let k = k.min(n);
        let p = self.p.unwrap_or_else(|| {
            if graph.m() == 0 {
                0.0
            } else {
                let sum: f64 = graph.edges().map(|(_, _, w)| w as f64).sum();
                sum / graph.m() as f64
            }
        });

        let degree = |v: NodeId| graph.out_degree(v) as f64;
        let score = |v: NodeId, t: f64| {
            let d = degree(v);
            d - 2.0 * t - (d - t) * t * p
        };

        let mut t = vec![0.0f64; n]; // seeded in-neighbour count
        let mut stamp = vec![0u64; n]; // bumps invalidate stale heap entries
        let mut selected = vec![false; n];
        let mut heap: BinaryHeap<Entry> = (0..n as NodeId)
            .map(|v| Entry {
                score: score(v, 0.0),
                node: v,
                stamp: 0,
            })
            .collect();

        let mut seeds = Vec::with_capacity(k);
        while seeds.len() < k {
            let Some(e) = heap.pop() else { break };
            let v = e.node;
            if selected[v as usize] || e.stamp != stamp[v as usize] {
                if !selected[v as usize] {
                    heap.push(Entry {
                        score: score(v, t[v as usize]),
                        node: v,
                        stamp: stamp[v as usize],
                    });
                }
                continue;
            }
            selected[v as usize] = true;
            seeds.push(v);
            // v now claims part of each out-neighbour's audience.
            for &u in graph.out_neighbors(v) {
                if !selected[u as usize] {
                    t[u as usize] += 1.0;
                    stamp[u as usize] += 1;
                    heap.push(Entry {
                        score: score(u, t[u as usize]),
                        node: u,
                        stamp: stamp[u as usize],
                    });
                }
            }
        }
        seeds
    }

    fn name(&self) -> String {
        match self.p {
            Some(p) => format!("DegreeDiscount(p={p})"),
            None => "DegreeDiscount".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::{IndependentCascade, SpreadEstimator};
    use tim_graph::{gen, weights, GraphBuilder};

    #[test]
    fn first_pick_is_max_degree() {
        let mut b = GraphBuilder::new(6);
        for v in 1..5u32 {
            b.add_edge(0, v);
        }
        b.add_edge(5, 1);
        let g = b.build();
        let seeds = DegreeDiscount::with_p(0.1).select(&g, 1);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn discount_spreads_picks_apart() {
        // Clique-ish cluster {0,1,2} plus an independent hub 3.
        let mut b = GraphBuilder::new(8);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(0, 2);
        b.add_edge(0, 4);
        b.add_edge(3, 5);
        b.add_edge(3, 6);
        b.add_edge(3, 7);
        let g = b.build();
        let seeds = DegreeDiscount::with_p(0.5).select(&g, 2);
        // 0 has degree 3; after picking it, 1 and 2 are discounted, so the
        // second pick must be hub 3 (degree 3, undiscounted).
        assert_eq!(seeds[0], 0);
        assert_eq!(seeds[1], 3);
    }

    #[test]
    fn returns_k_distinct() {
        let mut g = gen::barabasi_albert(200, 3, 0.2, 1);
        weights::assign_weighted_cascade(&mut g);
        let seeds = DegreeDiscount::new().select(&g, 12);
        assert_eq!(seeds.len(), 12);
        let mut s = seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn competitive_with_high_degree() {
        let mut g = gen::barabasi_albert(300, 4, 0.0, 2);
        weights::assign_constant(&mut g, 0.1);
        let dd = DegreeDiscount::new().select(&g, 10);
        let hd = crate::high_degree::HighDegree.select(&g, 10);
        let est = SpreadEstimator::new(IndependentCascade).runs(3_000).seed(3);
        let dd_spread = est.estimate(&g, &dd);
        let hd_spread = est.estimate(&g, &hd);
        assert!(
            dd_spread >= 0.9 * hd_spread,
            "DegreeDiscount {dd_spread} vs HighDegree {hd_spread}"
        );
    }
}
