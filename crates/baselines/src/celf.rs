//! Greedy (Kempe et al. \[17\]) with CELF \[21\] and CELF++ \[11\] lazy
//! evaluation.
//!
//! The `O(kmnr)` Monte Carlo greedy family (paper §2.2): each candidate's
//! marginal gain `E[I(S ∪ {u})] − E[I(S)]` is estimated with `r` forward
//! simulations. Submodularity makes stale gains upper bounds, which CELF
//! exploits with a lazy priority queue (up to 700× fewer evaluations \[21\]);
//! CELF++ additionally caches each entry's gain with respect to the
//! iteration's running best so that when that best is actually selected,
//! the entry needs no re-simulation at all \[11\].
//!
//! Lemma 10 gives the `r` needed for the `(1 − 1/e − ε)` guarantee; at the
//! literature-standard `r = 10 000` this family is the accuracy yardstick
//! of Figures 3 and 5, and the reason those plots stop at NetHEPT scale.

use crate::SeedSelector;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tim_diffusion::{DiffusionModel, SpreadEstimator};
use tim_graph::{Graph, NodeId};

/// Which member of the greedy family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CelfVariant {
    /// Evaluate every candidate in every iteration (Kempe et al.).
    Plain,
    /// Lazy-forward evaluation (Leskovec et al.).
    #[default]
    Celf,
    /// Lazy-forward plus previous-best caching (Goyal et al.).
    CelfPlusPlus,
}

/// Monte Carlo greedy seed selection.
#[derive(Debug, Clone)]
pub struct CelfGreedy<M> {
    model: M,
    variant: CelfVariant,
    runs: usize,
    seed: u64,
    threads: usize,
}

/// Heap entry ordered by estimated marginal gain.
struct Entry {
    gain: f64,
    node: NodeId,
    /// |S| when `gain` was computed (CELF staleness stamp).
    round: usize,
    /// CELF++ fields: gain w.r.t. S ∪ {prev_best} and the prev_best it was
    /// computed against.
    gain_with_prev_best: f64,
    prev_best: Option<NodeId>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.node == other.node
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl<M: DiffusionModel + Sync + Clone> CelfGreedy<M> {
    /// Creates a runner with the literature-standard `r = 10 000`
    /// simulations per estimate and the CELF variant.
    pub fn new(model: M) -> Self {
        Self {
            model,
            variant: CelfVariant::default(),
            runs: 10_000,
            seed: 0,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
    }

    /// Chooses the greedy variant.
    #[must_use]
    pub fn variant(mut self, variant: CelfVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets `r`, the Monte Carlo runs per spread estimate.
    #[must_use]
    pub fn runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "runs must be positive");
        self.runs = runs;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps estimation worker threads.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        self.threads = threads;
        self
    }

    fn estimator(&self, eval_id: u64) -> SpreadEstimator<M> {
        // Each evaluation gets a deterministic, distinct stream.
        SpreadEstimator::new(self.model.clone())
            .runs(self.runs)
            .threads(self.threads)
            .seed(self.seed ^ eval_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Runs selection and reports `(seeds, spread_evaluations)` — the
    /// evaluation count is what CELF/CELF++ fight to reduce.
    pub fn select_with_stats(&self, graph: &Graph, k: usize) -> (Vec<NodeId>, u64) {
        assert!(k >= 1, "k must be at least 1");
        let n = graph.n();
        let k = k.min(n);
        let mut evals = 0u64;
        let mut eval_id = 0u64;
        let estimate = |seeds: &[NodeId], evals: &mut u64, eval_id: &mut u64| -> f64 {
            *evals += 1;
            *eval_id += 1;
            self.estimator(*eval_id).estimate(graph, seeds)
        };

        let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
        let mut base_spread = 0.0f64;

        match self.variant {
            CelfVariant::Plain => {
                let mut selected = vec![false; n];
                for _ in 0..k {
                    let mut best: Option<(f64, NodeId)> = None;
                    let mut scratch = seeds.clone();
                    for v in 0..n as NodeId {
                        if selected[v as usize] {
                            continue;
                        }
                        scratch.push(v);
                        let gain = estimate(&scratch, &mut evals, &mut eval_id) - base_spread;
                        scratch.pop();
                        if best.is_none_or(|(g, _)| gain > g) {
                            best = Some((gain, v));
                        }
                    }
                    let (gain, v) = best.expect("graph has unselected nodes");
                    selected[v as usize] = true;
                    seeds.push(v);
                    base_spread += gain;
                }
            }
            CelfVariant::Celf | CelfVariant::CelfPlusPlus => {
                let plusplus = self.variant == CelfVariant::CelfPlusPlus;
                let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(n);
                let mut scratch: Vec<NodeId> = Vec::with_capacity(k + 1);
                // Initial pass: singleton spreads.
                for v in 0..n as NodeId {
                    scratch.clear();
                    scratch.push(v);
                    let gain = estimate(&scratch, &mut evals, &mut eval_id);
                    heap.push(Entry {
                        gain,
                        node: v,
                        round: 0,
                        gain_with_prev_best: f64::NAN,
                        prev_best: None,
                    });
                }
                let mut last_added: Option<NodeId> = None;
                // Running best of the current scan (CELF++ bookkeeping).
                let mut cur_best: Option<(f64, NodeId)> = None;
                while seeds.len() < k {
                    let mut top = heap.pop().expect("heap exhausted before k seeds");
                    if top.round == seeds.len() {
                        // Fresh: greedily take it.
                        base_spread += top.gain;
                        last_added = Some(top.node);
                        seeds.push(top.node);
                        cur_best = None;
                        continue;
                    }
                    if plusplus
                        && top.prev_best.is_some()
                        && top.prev_best == last_added
                        && top.gain_with_prev_best.is_finite()
                    {
                        // CELF++ shortcut: the gain w.r.t. S ∪ {prev_best}
                        // was precomputed and prev_best was just added, so
                        // no simulation is needed.
                        top.gain = top.gain_with_prev_best;
                        top.round = seeds.len();
                        top.gain_with_prev_best = f64::NAN;
                        top.prev_best = None;
                    } else {
                        scratch.clear();
                        scratch.extend_from_slice(&seeds);
                        scratch.push(top.node);
                        top.gain = estimate(&scratch, &mut evals, &mut eval_id) - base_spread;
                        top.round = seeds.len();
                        if plusplus {
                            if let Some((_, b)) = cur_best {
                                // Also estimate w.r.t. the scan's running
                                // best, for the shortcut next round.
                                scratch.push(b);
                                top.gain_with_prev_best =
                                    estimate(&scratch, &mut evals, &mut eval_id) - base_spread;
                                top.prev_best = Some(b);
                            } else {
                                top.gain_with_prev_best = f64::NAN;
                                top.prev_best = None;
                            }
                        }
                    }
                    if cur_best.is_none_or(|(g, _)| top.gain > g) {
                        cur_best = Some((top.gain, top.node));
                    }
                    heap.push(top);
                }
            }
        }
        (seeds, evals)
    }
}

impl<M: DiffusionModel + Sync + Clone> SeedSelector for CelfGreedy<M> {
    fn select(&self, graph: &Graph, k: usize) -> Vec<NodeId> {
        self.select_with_stats(graph, k).0
    }

    fn name(&self) -> String {
        match self.variant {
            CelfVariant::Plain => format!("Greedy(r={})", self.runs),
            CelfVariant::Celf => format!("CELF(r={})", self.runs),
            CelfVariant::CelfPlusPlus => format!("CELF++(r={})", self.runs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::IndependentCascade;
    use tim_graph::{gen, weights, GraphBuilder};

    /// Two stars: hub 0 with 10 leaves, hub 1 with 5 leaves, p = 1.
    fn two_stars() -> Graph {
        let mut b = GraphBuilder::new(17);
        for leaf in 2..12 {
            b.add_edge_with_probability(0, leaf, 1.0);
        }
        for leaf in 12..17 {
            b.add_edge_with_probability(1, leaf, 1.0);
        }
        b.build()
    }

    #[test]
    fn plain_greedy_picks_hubs_in_order() {
        let g = two_stars();
        let sel = CelfGreedy::new(IndependentCascade)
            .variant(CelfVariant::Plain)
            .runs(50)
            .seed(1);
        let seeds = sel.select(&g, 2);
        assert_eq!(seeds, vec![0, 1]);
    }

    #[test]
    fn all_variants_agree_on_deterministic_graph() {
        let g = two_stars();
        for variant in [
            CelfVariant::Plain,
            CelfVariant::Celf,
            CelfVariant::CelfPlusPlus,
        ] {
            let seeds = CelfGreedy::new(IndependentCascade)
                .variant(variant)
                .runs(20)
                .seed(2)
                .select(&g, 2);
            assert_eq!(seeds, vec![0, 1], "{variant:?}");
        }
    }

    #[test]
    fn celf_uses_fewer_evaluations_than_plain() {
        let mut g = gen::barabasi_albert(60, 3, 0.0, 3);
        weights::assign_weighted_cascade(&mut g);
        let (_, plain_evals) = CelfGreedy::new(IndependentCascade)
            .variant(CelfVariant::Plain)
            .runs(100)
            .seed(4)
            .select_with_stats(&g, 5);
        let (_, celf_evals) = CelfGreedy::new(IndependentCascade)
            .variant(CelfVariant::Celf)
            .runs(100)
            .seed(4)
            .select_with_stats(&g, 5);
        assert!(
            celf_evals < plain_evals,
            "CELF {celf_evals} should beat plain {plain_evals}"
        );
    }

    #[test]
    fn celf_plus_plus_saves_evaluations_on_contested_graphs() {
        // CELF++ pays extra prev-best estimates during scans but skips
        // re-simulation when the running best wins; on graphs with many
        // near-ties it should not do substantially more work than CELF.
        let mut g = gen::erdos_renyi_gnm(80, 400, 21);
        weights::assign_constant(&mut g, 0.05);
        let (_, celf_evals) = CelfGreedy::new(IndependentCascade)
            .variant(CelfVariant::Celf)
            .runs(50)
            .seed(22)
            .select_with_stats(&g, 6);
        let (_, pp_evals) = CelfGreedy::new(IndependentCascade)
            .variant(CelfVariant::CelfPlusPlus)
            .runs(50)
            .seed(22)
            .select_with_stats(&g, 6);
        assert!(
            pp_evals <= 2 * celf_evals,
            "CELF++ evals {pp_evals} wildly above CELF {celf_evals}"
        );
    }

    #[test]
    fn variants_produce_similar_quality() {
        let mut g = gen::barabasi_albert(80, 3, 0.0, 5);
        weights::assign_weighted_cascade(&mut g);
        let est = tim_diffusion::SpreadEstimator::new(IndependentCascade)
            .runs(3_000)
            .seed(6);
        let mut spreads = Vec::new();
        for variant in [CelfVariant::Celf, CelfVariant::CelfPlusPlus] {
            let seeds = CelfGreedy::new(IndependentCascade)
                .variant(variant)
                .runs(300)
                .seed(7)
                .select(&g, 5);
            spreads.push(est.estimate(&g, &seeds));
        }
        let rel = (spreads[0] - spreads[1]).abs() / spreads[0];
        assert!(rel < 0.1, "CELF {} vs CELF++ {}", spreads[0], spreads[1]);
    }

    #[test]
    fn k_one_reduces_to_argmax_singleton() {
        let g = two_stars();
        let seeds = CelfGreedy::new(IndependentCascade)
            .variant(CelfVariant::Celf)
            .runs(20)
            .seed(8)
            .select(&g, 1);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut g = gen::barabasi_albert(50, 3, 0.0, 9);
        weights::assign_weighted_cascade(&mut g);
        let sel = CelfGreedy::new(IndependentCascade)
            .variant(CelfVariant::CelfPlusPlus)
            .runs(100)
            .seed(10);
        assert_eq!(sel.select(&g, 4), sel.select(&g, 4));
    }

    #[test]
    fn names_identify_variants() {
        let m = IndependentCascade;
        assert!(CelfGreedy::new(m)
            .variant(CelfVariant::Plain)
            .name()
            .contains("Greedy"));
        assert!(CelfGreedy::new(m).name().contains("CELF"));
        assert!(CelfGreedy::new(m)
            .variant(CelfVariant::CelfPlusPlus)
            .name()
            .contains("CELF++"));
    }
}
