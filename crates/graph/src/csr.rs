//! The CSR graph and its accessors.

use crate::NodeId;

/// Read-only access to a probability-weighted CSR graph — the accessor
/// surface that RR-set sampling, forward simulation, and greedy coverage
/// actually touch, abstracted over the backing storage.
///
/// Two implementations exist: the heap-resident [`Graph`] (adjacency in
/// `Vec`s) and the zero-copy [`MmapCsr`](crate::MmapCsr) view over a
/// memory-mapped `.timg` v2 snapshot. Generic samplers take `G: CsrAccess`
/// and are monomorphized per backing, so the hot heap path keeps exactly
/// the codegen it had when it was written against `&Graph` directly.
///
/// Implementations must guarantee that for every `v < n()` the accessor
/// methods return without panicking and that the neighbor/probability
/// slices for `v` have equal lengths; both backings validate their CSR
/// structure at construction time to uphold this.
pub trait CsrAccess: Sync {
    /// Number of nodes `n`.
    fn n(&self) -> usize;
    /// Number of directed edges `m`.
    fn m(&self) -> usize;
    /// Out-degree of `v`.
    fn out_degree(&self, v: NodeId) -> usize;
    /// In-degree of `v`.
    fn in_degree(&self, v: NodeId) -> usize;
    /// Targets of `v`'s out-edges.
    fn out_neighbors(&self, v: NodeId) -> &[NodeId];
    /// Probabilities aligned with [`out_neighbors`](Self::out_neighbors).
    fn out_probabilities(&self, v: NodeId) -> &[f32];
    /// Sources of `v`'s in-edges.
    fn in_neighbors(&self, v: NodeId) -> &[NodeId];
    /// Probabilities aligned with [`in_neighbors`](Self::in_neighbors).
    fn in_probabilities(&self, v: NodeId) -> &[f32];
}

impl CsrAccess for Graph {
    #[inline]
    fn n(&self) -> usize {
        Graph::n(self)
    }
    #[inline]
    fn m(&self) -> usize {
        Graph::m(self)
    }
    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        Graph::out_degree(self, v)
    }
    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        Graph::in_degree(self, v)
    }
    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        Graph::out_neighbors(self, v)
    }
    #[inline]
    fn out_probabilities(&self, v: NodeId) -> &[f32] {
        Graph::out_probabilities(self, v)
    }
    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        Graph::in_neighbors(self, v)
    }
    #[inline]
    fn in_probabilities(&self, v: NodeId) -> &[f32] {
        Graph::in_probabilities(self, v)
    }
}

/// A directed graph with per-edge propagation probabilities, stored as a
/// pair of CSR adjacency structures (forward and reverse).
///
/// Immutable after construction except for probability reassignment via
/// [`Graph::assign_probabilities`], which keeps both directions consistent.
///
/// Construct with [`GraphBuilder`](crate::GraphBuilder), the generators in
/// [`gen`](crate::gen), or the loaders in [`io`](crate::io).
///
/// ```
/// use tim_graph::{GraphBuilder, weights};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 2);
/// b.add_edge(1, 2);
/// let mut g = b.build();
/// weights::assign_weighted_cascade(&mut g); // p(e) = 1/indeg(target)
///
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.in_neighbors(2), &[0, 1]);
/// assert_eq!(g.in_probabilities(2), &[0.5, 0.5]);
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) n: usize,
    // Forward direction: out-edges of each node.
    pub(crate) out_offsets: Vec<usize>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) out_probs: Vec<f32>,
    // Reverse direction: in-edges of each node (the transpose G^T).
    pub(crate) in_offsets: Vec<usize>,
    pub(crate) in_sources: Vec<NodeId>,
    pub(crate) in_probs: Vec<f32>,
}

/// Summary degree statistics, as reported in the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Mean out-degree (equals mean in-degree): m / n.
    pub avg_degree: f64,
    /// Maximum out-degree over all nodes.
    pub max_out_degree: usize,
    /// Maximum in-degree over all nodes.
    pub max_in_degree: usize,
}

impl Graph {
    /// Builds a graph directly from `(src, dst, probability)` triples over
    /// the node universe `0..n` — a one-call convenience over
    /// [`GraphBuilder`](crate::GraphBuilder), with the same semantics
    /// (self-loops dropped, parallel edges merged keeping the highest
    /// probability).
    ///
    /// ```
    /// use tim_graph::Graph;
    ///
    /// let g = Graph::from_edges(3, [(0, 1, 0.5), (1, 2, 1.0), (1, 1, 0.9)]);
    /// assert_eq!(g.n(), 3);
    /// assert_eq!(g.m(), 2); // the self-loop is dropped
    /// assert_eq!(g.out_neighbors(1), &[2]);
    /// ```
    ///
    /// # Panics
    /// Panics if an endpoint is outside `0..n` or a probability is outside
    /// `[0, 1]`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId, f32)>) -> Graph {
        let mut b = crate::GraphBuilder::new(n);
        for (u, v, p) in edges {
            b.add_edge_with_probability(u, v, p);
        }
        b.build()
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v` — the quantity that defines RR-set width `w(R)`
    /// (Equation 1) and the `V*` distribution (Lemma 4).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Targets of `v`'s out-edges.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Probabilities aligned with [`out_neighbors`](Self::out_neighbors).
    #[inline]
    pub fn out_probabilities(&self, v: NodeId) -> &[f32] {
        let v = v as usize;
        &self.out_probs[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Sources of `v`'s in-edges.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Probabilities aligned with [`in_neighbors`](Self::in_neighbors).
    #[inline]
    pub fn in_probabilities(&self, v: NodeId) -> &[f32] {
        let v = v as usize;
        &self.in_probs[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Iterates over all edges as `(src, dst, p)`, grouped by source.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        (0..self.n as NodeId).flat_map(move |u| {
            self.out_neighbors(u)
                .iter()
                .zip(self.out_probabilities(u))
                .map(move |(&v, &p)| (u, v, p))
        })
    }

    /// Returns the transpose graph `G^T` (all edges reversed). O(1): the two
    /// CSR halves swap roles, probabilities travel with their edges.
    pub fn transpose(&self) -> Graph {
        Graph {
            n: self.n,
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            out_probs: self.in_probs.clone(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
            in_probs: self.out_probs.clone(),
        }
    }

    /// Degree statistics for dataset reporting (Table 2).
    pub fn degree_stats(&self) -> DegreeStats {
        let mut max_out = 0;
        let mut max_in = 0;
        for v in 0..self.n as NodeId {
            max_out = max_out.max(self.out_degree(v));
            max_in = max_in.max(self.in_degree(v));
        }
        DegreeStats {
            avg_degree: if self.n == 0 {
                0.0
            } else {
                self.m() as f64 / self.n as f64
            },
            max_out_degree: max_out,
            max_in_degree: max_in,
        }
    }

    /// Reassigns every edge probability as `f(src, dst)`, updating both the
    /// forward and reverse CSR consistently.
    ///
    /// `f` must be a pure function of the edge endpoints: it is invoked once
    /// per edge per direction, and the two invocations must agree. The
    /// weight models in [`weights`](crate::weights) are built this way
    /// (pseudo-random models hash the endpoints instead of drawing from a
    /// stream).
    ///
    /// # Panics
    /// Panics (debug builds) if `f` returns a value outside `[0, 1]`.
    pub fn assign_probabilities(&mut self, mut f: impl FnMut(NodeId, NodeId) -> f32) {
        for u in 0..self.n {
            let (start, end) = (self.out_offsets[u], self.out_offsets[u + 1]);
            for idx in start..end {
                let p = f(u as NodeId, self.out_targets[idx]);
                debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
                self.out_probs[idx] = p;
            }
        }
        for v in 0..self.n {
            let (start, end) = (self.in_offsets[v], self.in_offsets[v + 1]);
            for idx in start..end {
                let p = f(self.in_sources[idx], v as NodeId);
                debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
                self.in_probs[idx] = p;
            }
        }
    }

    /// Total heap bytes held by the adjacency arrays (used by the memory
    /// experiment, Figure 12, to report graph-vs-RR-set footprints).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.out_offsets.capacity() * size_of::<usize>()
            + self.in_offsets.capacity() * size_of::<usize>()
            + self.out_targets.capacity() * size_of::<NodeId>()
            + self.in_sources.capacity() * size_of::<NodeId>()
            + self.out_probs.capacity() * size_of::<f32>()
            + self.in_probs.capacity() * size_of::<f32>()
    }

    /// Checks internal CSR invariants; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.out_offsets.len() != self.n + 1 || self.in_offsets.len() != self.n + 1 {
            return Err("offset arrays must have n+1 entries".into());
        }
        if self.out_offsets[0] != 0 || self.in_offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        if !self.out_offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("out offsets must be non-decreasing".into());
        }
        if !self.in_offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("in offsets must be non-decreasing".into());
        }
        if *self.out_offsets.last().unwrap() != self.out_targets.len() {
            return Err("out offsets must end at edge count".into());
        }
        if *self.in_offsets.last().unwrap() != self.in_sources.len() {
            return Err("in offsets must end at edge count".into());
        }
        if self.out_targets.len() != self.in_sources.len() {
            return Err("forward and reverse edge counts differ".into());
        }
        if self.out_probs.len() != self.out_targets.len()
            || self.in_probs.len() != self.in_sources.len()
        {
            return Err("probability arrays must align with edge arrays".into());
        }
        for &t in &self.out_targets {
            if t as usize >= self.n {
                return Err(format!("out target {t} out of range"));
            }
        }
        for &s in &self.in_sources {
            if s as usize >= self.n {
                return Err(format!("in source {s} out of range"));
            }
        }
        for &p in self.out_probs.iter().chain(self.in_probs.iter()) {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn diamond() -> crate::Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge_with_probability(0, 1, 0.5);
        b.add_edge_with_probability(0, 2, 0.25);
        b.add_edge_with_probability(1, 3, 1.0);
        b.add_edge_with_probability(2, 3, 0.75);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn degrees_match_structure() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn neighbors_and_probabilities_align() {
        let g = diamond();
        let nbrs = g.out_neighbors(0);
        let probs = g.out_probabilities(0);
        assert_eq!(nbrs, &[1, 2]);
        assert_eq!(probs, &[0.5, 0.25]);

        let in_nbrs = g.in_neighbors(3);
        let in_probs = g.in_probabilities(3);
        assert_eq!(in_nbrs, &[1, 2]);
        assert_eq!(in_probs, &[1.0, 0.75]);
    }

    #[test]
    fn edges_iterator_covers_all_edges() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(0, 1, 0.5)));
        assert!(edges.contains(&(2, 3, 0.75)));
    }

    #[test]
    fn transpose_swaps_directions() {
        let g = diamond();
        let t = g.transpose();
        t.validate().unwrap();
        assert_eq!(t.out_degree(3), 2);
        assert_eq!(t.in_degree(3), 0);
        assert_eq!(t.out_neighbors(3), g.in_neighbors(3));
        assert_eq!(t.out_probabilities(3), g.in_probabilities(3));
    }

    #[test]
    fn transpose_is_involution() {
        let g = diamond();
        let tt = g.transpose().transpose();
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = tt.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn degree_stats_reports_table2_quantities() {
        let g = diamond();
        let s = g.degree_stats();
        assert!((s.avg_degree - 1.0).abs() < 1e-12);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
    }

    #[test]
    fn assign_probabilities_updates_both_directions() {
        let mut g = diamond();
        g.assign_probabilities(|u, v| 1.0 / (u + v + 1) as f32);
        for (u, v, p) in g.edges() {
            assert_eq!(p, 1.0 / (u + v + 1) as f32);
        }
        // Reverse side must agree.
        for v in 0..4u32 {
            for (&u, &p) in g.in_neighbors(v).iter().zip(g.in_probabilities(v)) {
                assert_eq!(p, 1.0 / (u + v + 1) as f32);
            }
        }
        g.validate().unwrap();
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        g.validate().unwrap();
        assert_eq!(g.degree_stats().avg_degree, 0.0);
    }

    #[test]
    fn memory_bytes_is_positive_for_nonempty() {
        let g = diamond();
        assert!(g.memory_bytes() > 0);
    }
}
