//! Incremental construction of [`Graph`] from an edge list.

use crate::{Graph, GraphError, NodeId};

/// Accumulates directed edges and produces a [`Graph`].
///
/// Semantics chosen to match the influence-maximization literature:
///
/// - **self-loops are dropped** (a node trivially activates itself);
/// - **parallel edges are merged**, keeping the highest probability (the
///   common convention when crawled datasets contain duplicates);
/// - edges added without a probability default to `1.0` and are expected to
///   be overwritten by a weight model
///   ([`Graph::assign_probabilities`] / [`weights`](crate::weights)).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, f32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "GraphBuilder: node ids are u32; n = {n} too large"
        );
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of edges currently staged (before dedup).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge `u -> v` with probability 1 (to be overwritten
    /// by a weight model).
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_edge_with_probability(u, v, 1.0);
    }

    /// Adds a directed edge `u -> v` with propagation probability `p`.
    ///
    /// # Panics
    /// Panics if `u`/`v` is out of range or `p` is not in `[0, 1]`.
    #[inline]
    pub fn add_edge_with_probability(&mut self, u: NodeId, v: NodeId, p: f32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "edge ({u}, {v}): probability {p} must be in [0, 1]"
        );
        if u == v {
            return; // self-loop: no effect on influence propagation
        }
        self.edges.push((u, v, p));
    }

    /// Fallible variant of [`add_edge_with_probability`] for loader code.
    ///
    /// [`add_edge_with_probability`]: Self::add_edge_with_probability
    pub fn try_add_edge(&mut self, u: u64, v: u64, p: f32) -> Result<(), GraphError> {
        if u >= self.n as u64 {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n as u64 {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidProbability {
                src: u as u32,
                dst: v as u32,
                p,
            });
        }
        if u != v {
            self.edges.push((u as NodeId, v as NodeId, p));
        }
        Ok(())
    }

    /// Also adds the reverse edge; convenience for undirected datasets
    /// (NetHEPT and DBLP in the paper are undirected and are represented as
    /// arc pairs, as in the authors' implementation).
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Builds the CSR graph: sorts, dedups, and lays out both directions.
    pub fn build(mut self) -> Graph {
        let n = self.n;
        // Sort by (src, dst) then merge duplicates keeping max probability.
        self.edges.sort_unstable_by_key(|a| (a.0, a.1));
        self.edges.dedup_by(|next, kept| {
            if next.0 == kept.0 && next.1 == kept.1 {
                kept.2 = kept.2.max(next.2);
                true
            } else {
                false
            }
        });
        let m = self.edges.len();

        // Forward CSR directly from the sorted order.
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_probs = Vec::with_capacity(m);
        for &(_, v, p) in &self.edges {
            out_targets.push(v);
            out_probs.push(p);
        }

        // Reverse CSR by counting sort on destination.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v, _) in &self.edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; m];
        let mut in_probs = vec![0.0f32; m];
        for &(u, v, p) in &self.edges {
            let slot = cursor[v as usize];
            in_sources[slot] = u;
            in_probs[slot] = p;
            cursor[v as usize] += 1;
        }

        let g = Graph {
            n,
            out_offsets,
            out_targets,
            out_probs,
            in_offsets,
            in_sources,
            in_probs,
        };
        debug_assert!(g.validate().is_ok(), "builder produced invalid CSR");
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_merged_keeping_max_probability() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_with_probability(0, 1, 0.2);
        b.add_edge_with_probability(0, 1, 0.7);
        b.add_edge_with_probability(0, 1, 0.4);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.out_probabilities(0), &[0.7]);
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 1);
        let g = b.build();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn undirected_edge_creates_both_arcs() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(0, 1);
        let g = b.build();
        assert_eq!(g.m(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_probability_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_with_probability(0, 1, 1.5);
    }

    #[test]
    fn try_add_edge_reports_errors() {
        let mut b = GraphBuilder::new(2);
        assert!(b.try_add_edge(0, 1, 0.5).is_ok());
        assert!(matches!(
            b.try_add_edge(0, 5, 0.5),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
        assert!(matches!(
            b.try_add_edge(0, 1, f32::NAN),
            Err(GraphError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn neighbors_come_out_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 4);
        b.add_edge(0, 1);
        b.add_edge(0, 3);
        let g = b.build();
        assert_eq!(g.out_neighbors(0), &[1, 3, 4]);
    }

    #[test]
    fn staged_edges_counts_before_dedup() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(b.staged_edges(), 2);
        assert_eq!(b.build().m(), 1);
    }

    #[test]
    fn isolated_nodes_have_empty_adjacency() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        let g = b.build();
        assert!(g.out_neighbors(2).is_empty());
        assert!(g.in_neighbors(3).is_empty());
    }
}
