//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on five crawled social networks (Table 2). Those
//! crawls are not redistributable (and the Twitter graph is 1.4 B edges),
//! so this workspace reproduces the experiments on synthetic stand-ins with
//! matching shape: heavy-tailed degree distributions, the same m/n ratio
//! and directedness. See DESIGN.md §4 for the mapping.
//!
//! All generators are pure functions of their parameters and a seed.

use crate::{Graph, GraphBuilder, NodeId};
use tim_rng::{RandomSource, Rng};

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct directed edges chosen
/// uniformly among all `n·(n−1)` ordered pairs.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    let possible = n.saturating_mul(n.saturating_sub(1));
    assert!(
        m <= possible,
        "G(n, m): m = {m} exceeds n(n-1) = {possible}"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_edge_capacity(n, m);
    while chosen.len() < m {
        let u = rng.next_index(n) as NodeId;
        let v = rng.next_index(n) as NodeId;
        if u != v && chosen.insert(((u as u64) << 32) | v as u64) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Directed Barabási–Albert preferential attachment.
///
/// Nodes arrive one at a time; each new node adds `m_per_node` out-edges to
/// existing nodes chosen proportionally to (in-degree + 1). With probability
/// `back_prob`, the chosen target also links back, which produces the
/// reciprocity seen in follower networks. In-degrees follow a power law with
/// exponent ≈ 3.
///
/// # Panics
/// Panics if `n < 2`, `m_per_node == 0`, or `back_prob` is not in `[0, 1]`.
pub fn barabasi_albert(n: usize, m_per_node: usize, back_prob: f64, seed: u64) -> Graph {
    assert!(n >= 2, "barabasi_albert: need at least 2 nodes");
    assert!(m_per_node >= 1, "barabasi_albert: m_per_node must be >= 1");
    assert!(
        (0.0..=1.0).contains(&back_prob),
        "barabasi_albert: back_prob {back_prob} must be in [0, 1]"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_edge_capacity(n, n * m_per_node);
    // `targets` holds one entry per unit of attachment mass: each node
    // appears once at birth (the +1 smoothing) plus once per in-edge.
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * n * m_per_node);
    targets.push(0);
    for u in 1..n as NodeId {
        let picks = m_per_node.min(u as usize);
        // Draw without replacement from the mass vector (retry duplicates;
        // picks is small so this terminates quickly).
        let mut chosen: Vec<NodeId> = Vec::with_capacity(picks);
        let mut guard = 0usize;
        while chosen.len() < picks {
            let t = targets[rng.next_index(targets.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 64 * picks {
                // Extremely skewed mass: fall back to uniform to guarantee
                // termination (only reachable on adversarial inputs).
                let t = rng.next_index(u as usize) as NodeId;
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
        }
        for &t in &chosen {
            b.add_edge(u, t);
            targets.push(t);
            if back_prob > 0.0 && rng.bernoulli(back_prob) {
                b.add_edge(t, u);
            }
        }
        targets.push(u);
    }
    b.build()
}

/// Watts–Strogatz small-world graph (undirected, emitted as arc pairs).
///
/// Starts from a ring lattice where each node connects to its `k` nearest
/// neighbours on each side, then rewires each edge's far endpoint with
/// probability `beta`.
///
/// # Panics
/// Panics if `k == 0`, `2k >= n`, or `beta` is not in `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k >= 1, "watts_strogatz: k must be >= 1");
    assert!(2 * k < n, "watts_strogatz: need 2k < n (k={k}, n={n})");
    assert!(
        (0.0..=1.0).contains(&beta),
        "watts_strogatz: beta {beta} must be in [0, 1]"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_edge_capacity(n, 2 * n * k);
    for u in 0..n {
        for j in 1..=k {
            let mut v = (u + j) % n;
            if rng.bernoulli(beta) {
                // Rewire to a uniform non-self target; duplicates are merged
                // by the builder, mirroring the classic algorithm's "skip if
                // already present" behaviour closely enough for our use.
                let mut w = rng.next_index(n);
                while w == u {
                    w = rng.next_index(n);
                }
                v = w;
            }
            b.add_undirected_edge(u as NodeId, v as NodeId);
        }
    }
    b.build()
}

/// Power-law configuration model (directed).
///
/// Out- and in-degree sequences are drawn i.i.d. from a discrete power law
/// `P(d) ∝ d^(−exponent)` on `[1, max_degree]`, rescaled so the expected
/// average degree is `avg_degree`; stubs are then matched uniformly at
/// random. Self-loops and parallel edges are discarded, so the realised
/// edge count is slightly below the drawn stub count (as is standard).
///
/// This is the stand-in for NetHEPT/DBLP-like collaboration networks; use
/// [`symmetrize`] for an undirected variant.
///
/// # Panics
/// Panics if `n == 0`, `exponent <= 1`, or `avg_degree <= 0`.
pub fn powerlaw_configuration(
    n: usize,
    exponent: f64,
    avg_degree: f64,
    max_degree: usize,
    seed: u64,
) -> Graph {
    assert!(n > 0, "powerlaw_configuration: n must be positive");
    assert!(
        exponent > 1.0,
        "powerlaw_configuration: exponent {exponent} must exceed 1"
    );
    assert!(
        avg_degree > 0.0,
        "powerlaw_configuration: avg_degree must be positive"
    );
    let max_degree = max_degree.max(1).min(n.saturating_sub(1).max(1));
    let mut rng = Rng::seed_from_u64(seed);

    // Discrete power-law pmf over [1, max_degree].
    let weights: Vec<f64> = (1..=max_degree)
        .map(|d| (d as f64).powf(-exponent))
        .collect();
    let raw_mean: f64 = {
        let total: f64 = weights.iter().sum();
        weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i + 1) as f64 * w / total)
            .sum()
    };
    // Thin the sequence towards the requested mean by accepting each unit of
    // degree with probability avg/raw_mean (when avg < raw_mean) or by
    // scaling up (when avg > raw_mean).
    let scale = avg_degree / raw_mean;
    let table = tim_rng::AliasTable::new(&weights);

    let draw_degrees = |rng: &mut Rng| -> Vec<usize> {
        (0..n)
            .map(|_| {
                let d = table.sample(rng) + 1;
                let scaled = d as f64 * scale;
                let base = scaled.floor() as usize;
                let frac = scaled - base as f64;
                base + usize::from(rng.bernoulli(frac))
            })
            .collect()
    };
    let out_deg = draw_degrees(&mut rng);
    let in_deg = draw_degrees(&mut rng);

    // Build stub lists and trim the longer one to match.
    let mut out_stubs: Vec<NodeId> = Vec::new();
    for (v, &d) in out_deg.iter().enumerate() {
        out_stubs.extend(std::iter::repeat_n(v as NodeId, d));
    }
    let mut in_stubs: Vec<NodeId> = Vec::new();
    for (v, &d) in in_deg.iter().enumerate() {
        in_stubs.extend(std::iter::repeat_n(v as NodeId, d));
    }
    rng.shuffle(&mut out_stubs);
    rng.shuffle(&mut in_stubs);
    let m = out_stubs.len().min(in_stubs.len());

    let mut b = GraphBuilder::with_edge_capacity(n, m);
    for i in 0..m {
        // Builder drops self-loops and merges duplicates.
        b.add_edge(out_stubs[i], in_stubs[i]);
    }
    b.build()
}

/// Returns the undirected closure: every edge gains its reverse arc.
pub fn symmetrize(g: &Graph) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(g.n(), 2 * g.m());
    for (u, v, p) in g.edges() {
        b.add_edge_with_probability(u, v, p);
        b.add_edge_with_probability(v, u, p);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 500, 1);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 500);
        g.validate().unwrap();
    }

    #[test]
    fn gnm_is_deterministic() {
        let a: Vec<_> = erdos_renyi_gnm(50, 200, 2).edges().collect();
        let b: Vec<_> = erdos_renyi_gnm(50, 200, 2).edges().collect();
        let c: Vec<_> = erdos_renyi_gnm(50, 200, 3).edges().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_impossible_m() {
        let _ = erdos_renyi_gnm(3, 10, 1);
    }

    #[test]
    fn ba_edge_count_close_to_expected() {
        let g = barabasi_albert(1000, 5, 0.0, 4);
        g.validate().unwrap();
        // Each node after the first adds min(m, u) edges; dedup may trim a few.
        let expected: usize = (1..1000usize).map(|u| 5usize.min(u)).sum();
        assert!(g.m() <= expected);
        assert!(g.m() as f64 > 0.95 * expected as f64, "m = {}", g.m());
    }

    #[test]
    fn ba_in_degree_is_heavy_tailed() {
        let g = barabasi_albert(2000, 4, 0.0, 5);
        let stats = g.degree_stats();
        // Preferential attachment: the hub's in-degree is far above average.
        assert!(
            stats.max_in_degree as f64 > 10.0 * stats.avg_degree,
            "max in-degree {} vs avg {}",
            stats.max_in_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn ba_back_prob_adds_reciprocal_edges() {
        let g = barabasi_albert(500, 3, 1.0, 6);
        // With back_prob = 1 every edge must be reciprocated.
        for (u, v, _) in g.edges() {
            assert!(
                g.out_neighbors(v).contains(&u),
                "edge {u}->{v} lacks reciprocal"
            );
        }
    }

    #[test]
    fn watts_strogatz_zero_beta_is_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 7);
        g.validate().unwrap();
        // Ring lattice: every node has exactly 2k undirected neighbours.
        for v in 0..20u32 {
            assert_eq!(g.out_degree(v), 4, "node {v}");
        }
    }

    #[test]
    fn watts_strogatz_rewiring_changes_structure() {
        let a: Vec<_> = watts_strogatz(100, 3, 0.0, 8).edges().collect();
        let b: Vec<_> = watts_strogatz(100, 3, 0.5, 8).edges().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn powerlaw_hits_target_average_degree() {
        let g = powerlaw_configuration(5000, 2.5, 4.0, 1000, 9);
        g.validate().unwrap();
        let avg = g.m() as f64 / g.n() as f64;
        assert!((avg - 4.0).abs() < 0.8, "average degree {avg}, wanted ~4.0");
    }

    #[test]
    fn powerlaw_is_heavy_tailed() {
        let g = powerlaw_configuration(5000, 2.2, 5.0, 2000, 10);
        let stats = g.degree_stats();
        assert!(
            stats.max_in_degree > 20,
            "max in-degree {} suspiciously small",
            stats.max_in_degree
        );
    }

    #[test]
    fn symmetrize_doubles_and_mirrors() {
        let g = erdos_renyi_gnm(50, 100, 11);
        let s = symmetrize(&g);
        s.validate().unwrap();
        for (u, v, _) in s.edges() {
            assert!(s.out_neighbors(v).contains(&u));
        }
        assert!(s.m() >= g.m());
        assert!(s.m() <= 2 * g.m());
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let pairs = [
            barabasi_albert(200, 3, 0.3, 42).m(),
            barabasi_albert(200, 3, 0.3, 42).m(),
        ];
        assert_eq!(pairs[0], pairs[1]);
        let ws = [
            watts_strogatz(100, 2, 0.2, 42).m(),
            watts_strogatz(100, 2, 0.2, 42).m(),
        ];
        assert_eq!(ws[0], ws[1]);
        let pl: Vec<_> = powerlaw_configuration(300, 2.5, 3.0, 100, 42)
            .edges()
            .collect();
        let pl2: Vec<_> = powerlaw_configuration(300, 2.5, 3.0, 100, 42)
            .edges()
            .collect();
        assert_eq!(pl, pl2);
    }
}
