//! Versioned, checksummed binary graph snapshots (`.timg`).
//!
//! Text edge lists are convenient for interchange but expensive to load:
//! every line is parsed, labels are interned through a hash map, and the
//! CSR layout is rebuilt from scratch. A snapshot stores the finished
//! product — both CSR directions, the edge probabilities, and the
//! label map — so loading is a bounds-checked `memcpy` plus a checksum
//! pass, and the loaded [`Graph`] is bit-identical to the one that was
//! saved.
//!
//! # File layout (version 1, little-endian)
//!
//! | bytes | field |
//! |---|---|
//! | 0..4 | magic `b"TIMG"` |
//! | 4..8 | format version (`u32`) |
//! | 8..16 | FNV-1a checksum of everything after this field (`u64`) |
//! | 16..32 | `n`, `m` (`u64` each) |
//! | … | `out_offsets` (`(n+1)×u64`), `out_targets` (`m×u32`), `out_probs` (`m×f32` as bits) |
//! | … | `in_offsets` (`(n+1)×u64`), `in_sources` (`m×u32`), `in_probs` (`m×f32` as bits) |
//! | … | `labels` (`n×u64`) |
//!
//! Any truncation, trailing garbage, bit flip, or structural violation is
//! rejected with [`GraphError::Snapshot`].
//!
//! # File layout (version 2, little-endian, page-aligned)
//!
//! Version 2 is the **mmap-able** layout: a fixed header plus a section
//! table, every section starting on a 4096-byte boundary so a
//! [`MmapCsr`](crate::MmapCsr) can serve naturally-aligned `u64`/`u32`
//! slices straight out of the mapping with zero copies.
//!
//! | bytes | field |
//! |---|---|
//! | 0..4 | magic `b"TIMG"` |
//! | 4..8 | format version (`u32` = 2) |
//! | 8..16 | FNV-1a checksum of bytes `16..272` (header integrity) |
//! | 16..32 | `n`, `m` (`u64` each) |
//! | 32..40 | graph content checksum ([`graph_checksum`] of the heap form) |
//! | 40..48 | section count (`u64` = 7) |
//! | 48..272 | section table: 7 × { id `u32`, reserved `u32`, offset `u64`, length `u64`, FNV-1a `u64` } |
//! | 4096… | sections, in table order, each offset 4096-aligned |
//!
//! Sections, in fixed order: `out_offsets` (`(n+1)×u64`), `out_targets`
//! (`m×u32`), `out_probs` (`m×u32` f32 bits), `in_offsets`, `in_sources`,
//! `in_probs`, `labels` (`n×u64`). The header checksum covers the section
//! table, so offsets/lengths and the per-section checksums are
//! tamper-evident without touching any section; per-section FNV checksums
//! let validation be deferred section-by-section
//! ([`MmapCsr::verify`](crate::MmapCsr::verify)), while the eager heap
//! decoder ([`load_snapshot`] on a v2 file) always verifies everything.
//!
//! ```
//! use tim_graph::{snapshot, Graph};
//!
//! let g = Graph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.25)]);
//! let labels = vec![10, 20, 30];
//! let mut buf = Vec::new();
//! snapshot::write_snapshot(&g, &labels, &mut buf).unwrap();
//!
//! let loaded = snapshot::read_snapshot(buf.as_slice()).unwrap();
//! assert_eq!(loaded.graph.m(), 2);
//! assert_eq!(loaded.label_of(1), 20);
//! assert_eq!(snapshot::graph_checksum(&loaded.graph), snapshot::graph_checksum(&g));
//! ```

use crate::io::LoadedGraph;
use crate::{Graph, GraphError, NodeId};
use std::io::{Read, Write};
use std::path::Path;

/// The four magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"TIMG";

/// The heap-oriented snapshot format version.
pub const VERSION: u32 = 1;

/// The page-aligned, mmap-able snapshot format version.
pub const VERSION_V2: u32 = 2;

/// Alignment of every v2 section offset (one page on every platform we
/// serve from; also a multiple of the natural alignment of `u64`).
pub const V2_ALIGN: u64 = 4096;

/// Number of sections in a v2 snapshot.
pub const V2_SECTION_COUNT: usize = 7;

/// Total bytes of the v2 header including the section table.
pub const V2_HEADER_BYTES: u64 = 48 + V2_SECTION_COUNT as u64 * 32;

/// Section indices of the v2 layout, in file order.
pub(crate) mod v2_section {
    pub const OUT_OFFSETS: usize = 0;
    pub const OUT_TARGETS: usize = 1;
    pub const OUT_PROBS: usize = 2;
    pub const IN_OFFSETS: usize = 3;
    pub const IN_SOURCES: usize = 4;
    pub const IN_PROBS: usize = 5;
    pub const LABELS: usize = 6;
}

/// Streaming FNV-1a (64-bit) hasher; dependency-free and fast enough to
/// checksum multi-hundred-megabyte snapshots in a single pass.
///
/// This is the single checksum implementation shared by every binary
/// format in the workspace (`.timg` here, `.timp` pools in `tim_engine`)
/// — integrity protection against corruption, **not** a MAC.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// Absorbs one little-endian `u64`.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Content checksum of a graph: a pure function of `(n, forward CSR,
/// probabilities)`.
///
/// Two graphs have equal checksums exactly when they have identical node
/// counts, adjacency, and bit-identical edge probabilities — the reverse
/// CSR is derived data and is deliberately excluded. RR-set pools record
/// this value as provenance so a pool can refuse to serve a graph it was
/// not sampled from.
pub fn graph_checksum(graph: &Graph) -> u64 {
    let mut h = Fnv1a::new();
    h.update_u64(graph.n() as u64);
    h.update_u64(graph.m() as u64);
    for v in 0..graph.n() as NodeId {
        h.update_u64(graph.out_degree(v) as u64);
        for (&t, &p) in graph
            .out_neighbors(v)
            .iter()
            .zip(graph.out_probabilities(v))
        {
            h.update_u64(u64::from(t));
            h.update_u64(u64::from(p.to_bits()));
        }
    }
    h.finish()
}

fn put_u64s(buf: &mut Vec<u8>, values: impl IntoIterator<Item = u64>) {
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u32s(buf: &mut Vec<u8>, values: impl IntoIterator<Item = u32>) {
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Serializes `graph` and its label map into `writer`.
///
/// `labels[i]` must be the original label of dense node `i`; pass
/// `(0..n as u64)` (see [`LoadedGraph::from_dense`]) for graphs that never
/// had external labels. Errors if `labels.len() != graph.n()`.
pub fn write_snapshot<W: Write>(
    graph: &Graph,
    labels: &[u64],
    mut writer: W,
) -> Result<(), GraphError> {
    if labels.len() != graph.n() {
        return Err(GraphError::Snapshot {
            message: format!(
                "label map has {} entries for a {}-node graph",
                labels.len(),
                graph.n()
            ),
        });
    }
    let n = graph.n();
    let m = graph.m();
    let mut payload = Vec::with_capacity(16 + (n + 1) * 16 + m * 16 + n * 8);
    put_u64s(&mut payload, [n as u64, m as u64]);
    put_u64s(&mut payload, graph.out_offsets.iter().map(|&o| o as u64));
    put_u32s(&mut payload, graph.out_targets.iter().copied());
    put_u32s(&mut payload, graph.out_probs.iter().map(|p| p.to_bits()));
    put_u64s(&mut payload, graph.in_offsets.iter().map(|&o| o as u64));
    put_u32s(&mut payload, graph.in_sources.iter().copied());
    put_u32s(&mut payload, graph.in_probs.iter().map(|p| p.to_bits()));
    put_u64s(&mut payload, labels.iter().copied());

    let mut checksum = Fnv1a::new();
    checksum.update(&payload);

    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&checksum.finish().to_le_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()?;
    Ok(())
}

/// Byte-slice cursor used by the decoder; every read is bounds-checked so
/// truncated files produce a clean [`GraphError::Snapshot`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], GraphError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(GraphError::Snapshot {
                message: format!("truncated while reading {what}"),
            }),
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, GraphError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    fn u64s(&mut self, count: usize, what: &str) -> Result<Vec<u64>, GraphError> {
        let bytes = self.take(count.checked_mul(8).ok_or_else(|| overflow(what))?, what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    fn u32s(&mut self, count: usize, what: &str) -> Result<Vec<u32>, GraphError> {
        let bytes = self.take(count.checked_mul(4).ok_or_else(|| overflow(what))?, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }
}

fn overflow(what: &str) -> GraphError {
    GraphError::Snapshot {
        message: format!("{what} length overflows"),
    }
}

fn offsets_from(raw: Vec<u64>, m: usize, what: &str) -> Result<Vec<usize>, GraphError> {
    let offsets: Vec<usize> = raw.into_iter().map(|o| o as usize).collect();
    if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
        return Err(GraphError::Snapshot {
            message: format!("{what} must run from 0 to the edge count"),
        });
    }
    Ok(offsets)
}

/// Deserializes a snapshot from any reader, verifying the magic, version,
/// checksum, and all CSR invariants before returning the graph.
pub fn read_snapshot<R: Read>(mut reader: R) -> Result<LoadedGraph, GraphError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    decode_snapshot(&bytes)
}

fn decode_snapshot(bytes: &[u8]) -> Result<LoadedGraph, GraphError> {
    let mut cur = Cursor { buf: bytes, pos: 0 };
    let magic = cur.take(4, "magic")?;
    if magic != MAGIC {
        return Err(GraphError::Snapshot {
            message: "not a TIMG snapshot (bad magic)".into(),
        });
    }
    let version = u32::from_le_bytes(cur.take(4, "version")?.try_into().expect("4 bytes"));
    // Version gate: v2 files decode eagerly into the same heap form (a
    // caller asking for a heap graph gets one regardless of the on-disk
    // layout); anything else is from the future and must be rejected.
    if version == VERSION_V2 {
        return decode_snapshot_v2(bytes);
    }
    if version != VERSION {
        return Err(GraphError::Snapshot {
            message: format!(
                "unsupported snapshot version {version} (expected {VERSION} or {VERSION_V2})"
            ),
        });
    }
    let stored_checksum = cur.u64("checksum")?;
    let payload = &bytes[cur.pos..];
    let mut checksum = Fnv1a::new();
    checksum.update(payload);
    if checksum.finish() != stored_checksum {
        return Err(GraphError::Snapshot {
            message: format!(
                "checksum mismatch: file says {stored_checksum:#018x}, payload hashes to {:#018x}",
                checksum.finish()
            ),
        });
    }

    let n = cur.u64("node count")? as usize;
    let m = cur.u64("edge count")? as usize;
    let n1 = n.checked_add(1).ok_or_else(|| GraphError::Snapshot {
        message: "node count overflows".into(),
    })?;
    let out_offsets = offsets_from(cur.u64s(n1, "out offsets")?, m, "out offsets")?;
    let out_targets: Vec<NodeId> = cur.u32s(m, "out targets")?;
    let out_probs: Vec<f32> = cur
        .u32s(m, "out probabilities")?
        .into_iter()
        .map(f32::from_bits)
        .collect();
    let in_offsets = offsets_from(cur.u64s(n1, "in offsets")?, m, "in offsets")?;
    let in_sources: Vec<NodeId> = cur.u32s(m, "in sources")?;
    let in_probs: Vec<f32> = cur
        .u32s(m, "in probabilities")?
        .into_iter()
        .map(f32::from_bits)
        .collect();
    let labels = cur.u64s(n, "labels")?;
    if cur.pos != bytes.len() {
        return Err(GraphError::Snapshot {
            message: format!("{} trailing bytes after payload", bytes.len() - cur.pos),
        });
    }

    let graph = Graph {
        n,
        out_offsets,
        out_targets,
        out_probs,
        in_offsets,
        in_sources,
        in_probs,
    };
    graph.validate().map_err(|message| GraphError::Snapshot {
        message: format!("invalid CSR in snapshot: {message}"),
    })?;
    Ok(LoadedGraph { graph, labels })
}

/// Saves `graph` and its label map to `path`.
pub fn save_snapshot<P: AsRef<Path>>(
    graph: &Graph,
    labels: &[u64],
    path: P,
) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_snapshot(graph, labels, std::io::BufWriter::new(file))
}

/// Loads a snapshot from `path`.
pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, GraphError> {
    decode_snapshot(&std::fs::read(path)?)
}

fn snap_err(message: impl Into<String>) -> GraphError {
    GraphError::Snapshot {
        message: message.into(),
    }
}

/// One entry of the v2 section table, already bounds-validated against the
/// file it came from.
#[derive(Debug, Clone, Copy)]
pub(crate) struct V2Section {
    /// Byte offset of the section from the start of the file (4096-aligned).
    pub offset: u64,
    /// Section length in bytes (exactly the expected length for `n`/`m`).
    pub len: u64,
    /// FNV-1a checksum of the section bytes.
    pub fnv: u64,
}

/// The validated v2 header: counts, content checksum, and section table.
#[derive(Debug, Clone)]
pub(crate) struct V2Layout {
    pub n: u64,
    pub m: u64,
    /// [`graph_checksum`] of the decoded heap form, as recorded at write
    /// time and covered by the header checksum — pool provenance for
    /// mmap-backed graphs without an O(m) hash at open.
    pub checksum: u64,
    pub sections: [V2Section; V2_SECTION_COUNT],
}

/// Expected byte length of v2 section `i` for an `(n, m)` graph; `None` on
/// arithmetic overflow (a hostile header must fail cleanly, not wrap).
pub(crate) fn v2_expected_len(i: usize, n: u64, m: u64) -> Option<u64> {
    match i {
        v2_section::OUT_OFFSETS | v2_section::IN_OFFSETS => n.checked_add(1)?.checked_mul(8),
        v2_section::OUT_TARGETS
        | v2_section::OUT_PROBS
        | v2_section::IN_SOURCES
        | v2_section::IN_PROBS => m.checked_mul(4),
        v2_section::LABELS => n.checked_mul(8),
        _ => None,
    }
}

/// Parses and validates a v2 header against the file's real length:
/// magic, version, header checksum, count sanity, and a section table
/// whose entries are canonically ordered, page-aligned, exactly the
/// expected length, in bounds, and non-overlapping. After this check a
/// reader may index any section without further bounds tests.
pub(crate) fn parse_v2_layout(bytes: &[u8], file_len: u64) -> Result<V2Layout, GraphError> {
    let header_len = V2_HEADER_BYTES as usize;
    if bytes.len() < header_len {
        return Err(snap_err("truncated v2 header"));
    }
    if bytes[0..4] != MAGIC {
        return Err(snap_err("not a TIMG snapshot (bad magic)"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION_V2 {
        return Err(snap_err(format!("not a v2 snapshot (version {version})")));
    }
    let stored = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let mut h = Fnv1a::new();
    h.update(&bytes[16..header_len]);
    if h.finish() != stored {
        return Err(snap_err(format!(
            "v2 header checksum mismatch: file says {stored:#018x}, header hashes to {:#018x}",
            h.finish()
        )));
    }
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
    let n = u64_at(16);
    let m = u64_at(24);
    let checksum = u64_at(32);
    let section_count = u64_at(40);
    if section_count != V2_SECTION_COUNT as u64 {
        return Err(snap_err(format!(
            "v2 snapshot claims {section_count} sections (expected {V2_SECTION_COUNT})"
        )));
    }
    // NodeId is u32: a node count at or above 2^32 cannot be represented,
    // and (n+1)*8 must not overflow either.
    if n >= u64::from(u32::MAX) {
        return Err(snap_err(format!("v2 node count {n} overflows NodeId")));
    }

    let mut sections = [V2Section {
        offset: 0,
        len: 0,
        fnv: 0,
    }; V2_SECTION_COUNT];
    let mut min_start = V2_HEADER_BYTES;
    for (i, section) in sections.iter_mut().enumerate() {
        let base = 48 + i * 32;
        let id = u32::from_le_bytes(bytes[base..base + 4].try_into().expect("4 bytes"));
        if id as usize != i {
            return Err(snap_err(format!(
                "v2 section {i} has id {id} (table must be in canonical order)"
            )));
        }
        let offset = u64_at(base + 8);
        let len = u64_at(base + 16);
        let fnv = u64_at(base + 24);
        let expected = v2_expected_len(i, n, m)
            .ok_or_else(|| snap_err(format!("v2 section {i} length overflows")))?;
        if len != expected {
            return Err(snap_err(format!(
                "v2 section {i} is {len} bytes (expected {expected} for n = {n}, m = {m})"
            )));
        }
        if offset % V2_ALIGN != 0 {
            return Err(snap_err(format!(
                "v2 section {i} offset {offset} is not {V2_ALIGN}-aligned"
            )));
        }
        if offset < min_start {
            return Err(snap_err(format!(
                "v2 section {i} at offset {offset} overlaps the header or a previous section"
            )));
        }
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= file_len)
            .ok_or_else(|| {
                snap_err(format!(
                    "v2 section {i} ({offset}+{len} bytes) runs past the end of the file"
                ))
            })?;
        min_start = end;
        *section = V2Section { offset, len, fnv };
    }
    if min_start != file_len {
        return Err(snap_err(format!(
            "{} trailing bytes after the last v2 section",
            file_len - min_start
        )));
    }
    Ok(V2Layout {
        n,
        m,
        checksum,
        sections,
    })
}

/// Validates CSR structure over raw little-endian section views — the
/// invariant scan both v2 readers share: offsets run monotonically from 0
/// to `m`, every endpoint names a node below `n`, and every probability is
/// a finite value in `[0, 1]`. After this scan, slice-based accessors can
/// never panic or read out of bounds for `v < n`.
pub(crate) fn validate_v2_csr(
    n: u64,
    m: u64,
    out_offsets: &[u64],
    out_targets: &[u32],
    in_offsets: &[u64],
    in_sources: &[u32],
    probs: [&[u32]; 2],
) -> Result<(), GraphError> {
    for (what, offsets, endpoints) in [
        ("out", out_offsets, out_targets),
        ("in", in_offsets, in_sources),
    ] {
        if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
            return Err(snap_err(format!(
                "v2 {what} offsets must run from 0 to the edge count"
            )));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(snap_err(format!(
                "v2 {what} offsets must be non-decreasing"
            )));
        }
        if let Some(&bad) = endpoints.iter().find(|&&e| u64::from(e) >= n) {
            return Err(snap_err(format!("v2 {what} endpoint {bad} out of range")));
        }
    }
    for bits in probs {
        if let Some(&bad) = bits
            .iter()
            .find(|&&b| !(0.0..=1.0).contains(&f32::from_bits(b)))
        {
            return Err(snap_err(format!(
                "v2 probability {} out of range",
                f32::from_bits(bad)
            )));
        }
    }
    Ok(())
}

/// Serializes `graph` and its labels in the page-aligned v2 layout.
///
/// Same contract as [`write_snapshot`], different bytes: the result can be
/// decoded eagerly ([`read_snapshot`] / [`load_snapshot`] version-gate on
/// the header) or attached zero-copy via [`MmapCsr`](crate::MmapCsr).
pub fn write_snapshot_v2<W: Write>(
    graph: &Graph,
    labels: &[u64],
    mut writer: W,
) -> Result<(), GraphError> {
    if labels.len() != graph.n() {
        return Err(snap_err(format!(
            "label map has {} entries for a {}-node graph",
            labels.len(),
            graph.n()
        )));
    }
    let mut sections: [Vec<u8>; V2_SECTION_COUNT] = Default::default();
    put_u64s(
        &mut sections[v2_section::OUT_OFFSETS],
        graph.out_offsets.iter().map(|&o| o as u64),
    );
    put_u32s(
        &mut sections[v2_section::OUT_TARGETS],
        graph.out_targets.iter().copied(),
    );
    put_u32s(
        &mut sections[v2_section::OUT_PROBS],
        graph.out_probs.iter().map(|p| p.to_bits()),
    );
    put_u64s(
        &mut sections[v2_section::IN_OFFSETS],
        graph.in_offsets.iter().map(|&o| o as u64),
    );
    put_u32s(
        &mut sections[v2_section::IN_SOURCES],
        graph.in_sources.iter().copied(),
    );
    put_u32s(
        &mut sections[v2_section::IN_PROBS],
        graph.in_probs.iter().map(|p| p.to_bits()),
    );
    put_u64s(&mut sections[v2_section::LABELS], labels.iter().copied());

    // Section table: assign page-aligned offsets and per-section checksums.
    let mut table = Vec::with_capacity(V2_SECTION_COUNT * 32);
    let mut offset = V2_ALIGN.max(V2_HEADER_BYTES.div_ceil(V2_ALIGN) * V2_ALIGN);
    let mut offsets = [0u64; V2_SECTION_COUNT];
    for (i, section) in sections.iter().enumerate() {
        offsets[i] = offset;
        let mut h = Fnv1a::new();
        h.update(section);
        table.extend_from_slice(&(i as u32).to_le_bytes());
        table.extend_from_slice(&0u32.to_le_bytes()); // reserved
        table.extend_from_slice(&offset.to_le_bytes());
        table.extend_from_slice(&(section.len() as u64).to_le_bytes());
        table.extend_from_slice(&h.finish().to_le_bytes());
        offset = (offset + section.len() as u64).div_ceil(V2_ALIGN) * V2_ALIGN;
    }

    let mut header_body = Vec::with_capacity(V2_HEADER_BYTES as usize - 16);
    put_u64s(
        &mut header_body,
        [
            graph.n() as u64,
            graph.m() as u64,
            graph_checksum(graph),
            V2_SECTION_COUNT as u64,
        ],
    );
    header_body.extend_from_slice(&table);
    let mut h = Fnv1a::new();
    h.update(&header_body);

    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION_V2.to_le_bytes())?;
    writer.write_all(&h.finish().to_le_bytes())?;
    writer.write_all(&header_body)?;
    let mut written = V2_HEADER_BYTES;
    for (i, section) in sections.iter().enumerate() {
        // Zero padding up to the section's page boundary. The last section
        // is NOT padded: the file ends exactly at its final byte, so the
        // decoder can reject trailing garbage.
        writer.write_all(&vec![0u8; (offsets[i] - written) as usize])?;
        writer.write_all(section)?;
        written = offsets[i] + section.len() as u64;
    }
    writer.flush()?;
    Ok(())
}

/// Saves `graph` and its label map to `path` in the v2 layout.
pub fn save_snapshot_v2<P: AsRef<Path>>(
    graph: &Graph,
    labels: &[u64],
    path: P,
) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_snapshot_v2(graph, labels, std::io::BufWriter::new(file))
}

/// Eager heap decode of a v2 snapshot: verifies the header, **every**
/// per-section checksum, the CSR structure, and that the decoded graph
/// hashes to the content checksum the header claims.
fn decode_snapshot_v2(bytes: &[u8]) -> Result<LoadedGraph, GraphError> {
    let layout = parse_v2_layout(bytes, bytes.len() as u64)?;
    for (i, s) in layout.sections.iter().enumerate() {
        let data = &bytes[s.offset as usize..(s.offset + s.len) as usize];
        let mut h = Fnv1a::new();
        h.update(data);
        if h.finish() != s.fnv {
            return Err(snap_err(format!(
                "v2 section {i} checksum mismatch: table says {:#018x}, data hashes to {:#018x}",
                s.fnv,
                h.finish()
            )));
        }
    }
    let u64s = |i: usize| -> Vec<u64> {
        let s = &layout.sections[i];
        bytes[s.offset as usize..(s.offset + s.len) as usize]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    };
    let u32s = |i: usize| -> Vec<u32> {
        let s = &layout.sections[i];
        bytes[s.offset as usize..(s.offset + s.len) as usize]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect()
    };
    let (n, m) = (layout.n as usize, layout.m as usize);
    let out_offsets = offsets_from(u64s(v2_section::OUT_OFFSETS), m, "out offsets")?;
    let in_offsets = offsets_from(u64s(v2_section::IN_OFFSETS), m, "in offsets")?;
    let graph = Graph {
        n,
        out_offsets,
        out_targets: u32s(v2_section::OUT_TARGETS),
        out_probs: u32s(v2_section::OUT_PROBS)
            .into_iter()
            .map(f32::from_bits)
            .collect(),
        in_offsets,
        in_sources: u32s(v2_section::IN_SOURCES),
        in_probs: u32s(v2_section::IN_PROBS)
            .into_iter()
            .map(f32::from_bits)
            .collect(),
    };
    graph.validate().map_err(|message| GraphError::Snapshot {
        message: format!("invalid CSR in v2 snapshot: {message}"),
    })?;
    let actual = graph_checksum(&graph);
    if actual != layout.checksum {
        return Err(snap_err(format!(
            "v2 content checksum mismatch: header says {:#018x}, graph hashes to {actual:#018x}",
            layout.checksum
        )));
    }
    Ok(LoadedGraph {
        graph,
        labels: u64s(v2_section::LABELS),
    })
}

/// Reads the snapshot version of the file at `path`: `None` when the file
/// does not start with the snapshot magic, `Some(version)` otherwise.
///
/// The catalog uses this to decide whether a path can be attached
/// mmap-backed (only v2 files can) without parsing anything.
pub fn snapshot_version<P: AsRef<Path>>(path: P) -> Result<Option<u32>, GraphError> {
    let mut file = std::fs::File::open(path)?;
    let mut head = [0u8; 8];
    let mut filled = 0;
    while filled < head.len() {
        match file.read(&mut head[filled..])? {
            0 => return Ok(None), // shorter than the header prefix
            k => filled += k,
        }
    }
    if head[0..4] != MAGIC {
        return Ok(None);
    }
    Ok(Some(u32::from_le_bytes(
        head[4..8].try_into().expect("4 bytes"),
    )))
}

/// True when the file at `path` starts with the snapshot magic bytes.
///
/// Used by [`io::load_graph`](crate::io::load_graph) to dispatch between
/// the text and binary loaders without relying on file extensions.
pub fn sniff_snapshot<P: AsRef<Path>>(path: P) -> Result<bool, GraphError> {
    let mut file = std::fs::File::open(path)?;
    let mut head = [0u8; 4];
    let mut filled = 0;
    while filled < head.len() {
        match file.read(&mut head[filled..])? {
            0 => return Ok(false), // shorter than the magic: not a snapshot
            k => filled += k,
        }
    }
    Ok(head == MAGIC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, weights};

    fn sample() -> (Graph, Vec<u64>) {
        let mut g = gen::barabasi_albert(80, 3, 0.1, 7);
        weights::assign_weighted_cascade(&mut g);
        let labels: Vec<u64> = (0..g.n() as u64).map(|i| i * 17 + 3).collect();
        (g, labels)
    }

    fn encode(g: &Graph, labels: &[u64]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(g, labels, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let (g, labels) = sample();
        let loaded = read_snapshot(encode(&g, &labels).as_slice()).unwrap();
        assert_eq!(loaded.labels, labels);
        assert_eq!(loaded.graph.n(), g.n());
        assert_eq!(loaded.graph.m(), g.m());
        for v in 0..g.n() as NodeId {
            assert_eq!(loaded.graph.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(loaded.graph.out_probabilities(v), g.out_probabilities(v));
            assert_eq!(loaded.graph.in_neighbors(v), g.in_neighbors(v));
            assert_eq!(loaded.graph.in_probabilities(v), g.in_probabilities(v));
        }
        assert_eq!(graph_checksum(&loaded.graph), graph_checksum(&g));
    }

    #[test]
    fn checksum_distinguishes_probability_changes() {
        let (mut g, _) = sample();
        let before = graph_checksum(&g);
        weights::assign_constant(&mut g, 0.123);
        assert_ne!(before, graph_checksum(&g));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (g, labels) = sample();
        let mut bytes = encode(&g, &labels);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            read_snapshot(bytes.as_slice()),
            Err(GraphError::Snapshot { message }) if message.contains("magic")
        ));
    }

    #[test]
    fn bad_version_is_rejected() {
        let (g, labels) = sample();
        let mut bytes = encode(&g, &labels);
        bytes[4] = 99;
        assert!(matches!(
            read_snapshot(bytes.as_slice()),
            Err(GraphError::Snapshot { message }) if message.contains("version")
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let (g, labels) = sample();
        let mut bytes = encode(&g, &labels);
        let mid = 16 + (bytes.len() - 16) / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            read_snapshot(bytes.as_slice()),
            Err(GraphError::Snapshot { message }) if message.contains("checksum")
        ));
    }

    #[test]
    fn truncation_is_reported() {
        let (g, labels) = sample();
        let bytes = encode(&g, &labels);
        for cut in [0, 3, 7, 15, 40, bytes.len() - 1] {
            assert!(
                read_snapshot(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (g, labels) = sample();
        let mut bytes = encode(&g, &labels);
        bytes.push(0);
        // The appended byte breaks the checksum first; either message is a
        // rejection, which is what matters.
        assert!(read_snapshot(bytes.as_slice()).is_err());
    }

    #[test]
    fn huge_claimed_node_count_is_rejected_cleanly() {
        // n = u64::MAX with a valid checksum must fail as a snapshot
        // error (overflow/truncation), never panic or allocate.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        payload.extend_from_slice(&0u64.to_le_bytes()); // m
        let mut h = Fnv1a::new();
        h.update(&payload);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&h.finish().to_le_bytes());
        bytes.extend_from_slice(&payload);
        match read_snapshot(bytes.as_slice()) {
            Err(GraphError::Snapshot { message }) => {
                assert!(message.contains("overflow"), "{message}")
            }
            other => panic!("expected snapshot error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_label_count_is_an_error() {
        let (g, _) = sample();
        let mut buf = Vec::new();
        assert!(matches!(
            write_snapshot(&g, &[1, 2, 3], &mut buf),
            Err(GraphError::Snapshot { .. })
        ));
    }

    #[test]
    fn file_round_trip_and_sniffing() {
        let (g, labels) = sample();
        let dir = std::env::temp_dir().join(format!("timg_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("g.timg");
        let text = dir.join("g.txt");
        save_snapshot(&g, &labels, &snap).unwrap();
        crate::io::save_edge_list(&g, &text).unwrap();
        assert!(sniff_snapshot(&snap).unwrap());
        assert!(!sniff_snapshot(&text).unwrap());
        let loaded = load_snapshot(&snap).unwrap();
        assert_eq!(loaded.labels, labels);
        assert_eq!(graph_checksum(&loaded.graph), graph_checksum(&g));
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&text).ok();
    }

    fn encode_v2(g: &Graph, labels: &[u64]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot_v2(g, labels, &mut buf).unwrap();
        buf
    }

    #[test]
    fn v2_round_trip_is_bit_identical() {
        let (g, labels) = sample();
        let loaded = read_snapshot(encode_v2(&g, &labels).as_slice()).unwrap();
        assert_eq!(loaded.labels, labels);
        for v in 0..g.n() as NodeId {
            assert_eq!(loaded.graph.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(loaded.graph.out_probabilities(v), g.out_probabilities(v));
            assert_eq!(loaded.graph.in_neighbors(v), g.in_neighbors(v));
            assert_eq!(loaded.graph.in_probabilities(v), g.in_probabilities(v));
        }
        assert_eq!(graph_checksum(&loaded.graph), graph_checksum(&g));
    }

    #[test]
    fn v2_sections_are_page_aligned_and_exactly_sized() {
        let (g, labels) = sample();
        let bytes = encode_v2(&g, &labels);
        let layout = parse_v2_layout(&bytes, bytes.len() as u64).unwrap();
        assert_eq!(layout.n, g.n() as u64);
        assert_eq!(layout.m, g.m() as u64);
        assert_eq!(layout.checksum, graph_checksum(&g));
        for (i, s) in layout.sections.iter().enumerate() {
            assert_eq!(s.offset % V2_ALIGN, 0, "section {i}");
            assert_eq!(
                s.len,
                v2_expected_len(i, layout.n, layout.m).unwrap(),
                "section {i}"
            );
        }
        let last = layout.sections[V2_SECTION_COUNT - 1];
        assert_eq!(bytes.len() as u64, last.offset + last.len);
    }

    #[test]
    fn v2_decodes_identically_to_v1() {
        let (g, labels) = sample();
        let v1 = read_snapshot(encode(&g, &labels).as_slice()).unwrap();
        let v2 = read_snapshot(encode_v2(&g, &labels).as_slice()).unwrap();
        assert_eq!(v1.labels, v2.labels);
        assert_eq!(
            graph_checksum(&v1.graph),
            graph_checksum(&v2.graph),
            "both versions must decode to the same graph"
        );
    }

    #[test]
    fn snapshot_version_distinguishes_formats() {
        let (g, labels) = sample();
        let dir = std::env::temp_dir().join(format!("timg_ver_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let v1 = dir.join("g1.timg");
        let v2 = dir.join("g2.timg");
        let text = dir.join("g.txt");
        save_snapshot(&g, &labels, &v1).unwrap();
        save_snapshot_v2(&g, &labels, &v2).unwrap();
        crate::io::save_edge_list(&g, &text).unwrap();
        assert_eq!(snapshot_version(&v1).unwrap(), Some(VERSION));
        assert_eq!(snapshot_version(&v2).unwrap(), Some(VERSION_V2));
        assert_eq!(snapshot_version(&text).unwrap(), None);
        assert!(sniff_snapshot(&v2).unwrap(), "sniffing is version-agnostic");
        let loaded = load_snapshot(&v2).unwrap();
        assert_eq!(graph_checksum(&loaded.graph), graph_checksum(&g));
        for p in [&v1, &v2, &text] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn v2_flipped_section_bit_fails_its_checksum() {
        let (g, labels) = sample();
        let mut bytes = encode_v2(&g, &labels);
        let layout = parse_v2_layout(&bytes, bytes.len() as u64).unwrap();
        let probe = layout.sections[v2_section::OUT_TARGETS].offset as usize + 2;
        bytes[probe] ^= 0x10;
        assert!(matches!(
            read_snapshot(bytes.as_slice()),
            Err(GraphError::Snapshot { message }) if message.contains("checksum")
        ));
    }

    #[test]
    fn v2_flipped_header_bit_fails_header_checksum() {
        let (g, labels) = sample();
        let mut bytes = encode_v2(&g, &labels);
        bytes[17] ^= 0x01; // inside n, covered by the header checksum
        assert!(matches!(
            read_snapshot(bytes.as_slice()),
            Err(GraphError::Snapshot { message }) if message.contains("header checksum")
        ));
    }

    #[test]
    fn empty_file_is_not_a_snapshot() {
        let dir = std::env::temp_dir().join(format!("timg_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty");
        std::fs::write(&path, b"").unwrap();
        assert!(!sniff_snapshot(&path).unwrap());
        assert!(read_snapshot(std::fs::File::open(&path).unwrap()).is_err());
        std::fs::remove_file(&path).ok();
    }
}
