//! Versioned, checksummed binary graph snapshots (`.timg`).
//!
//! Text edge lists are convenient for interchange but expensive to load:
//! every line is parsed, labels are interned through a hash map, and the
//! CSR layout is rebuilt from scratch. A snapshot stores the finished
//! product — both CSR directions, the edge probabilities, and the
//! label map — so loading is a bounds-checked `memcpy` plus a checksum
//! pass, and the loaded [`Graph`] is bit-identical to the one that was
//! saved.
//!
//! # File layout (version 1, little-endian)
//!
//! | bytes | field |
//! |---|---|
//! | 0..4 | magic `b"TIMG"` |
//! | 4..8 | format version (`u32`) |
//! | 8..16 | FNV-1a checksum of everything after this field (`u64`) |
//! | 16..32 | `n`, `m` (`u64` each) |
//! | … | `out_offsets` (`(n+1)×u64`), `out_targets` (`m×u32`), `out_probs` (`m×f32` as bits) |
//! | … | `in_offsets` (`(n+1)×u64`), `in_sources` (`m×u32`), `in_probs` (`m×f32` as bits) |
//! | … | `labels` (`n×u64`) |
//!
//! Any truncation, trailing garbage, bit flip, or structural violation is
//! rejected with [`GraphError::Snapshot`].
//!
//! ```
//! use tim_graph::{snapshot, Graph};
//!
//! let g = Graph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.25)]);
//! let labels = vec![10, 20, 30];
//! let mut buf = Vec::new();
//! snapshot::write_snapshot(&g, &labels, &mut buf).unwrap();
//!
//! let loaded = snapshot::read_snapshot(buf.as_slice()).unwrap();
//! assert_eq!(loaded.graph.m(), 2);
//! assert_eq!(loaded.label_of(1), 20);
//! assert_eq!(snapshot::graph_checksum(&loaded.graph), snapshot::graph_checksum(&g));
//! ```

use crate::io::LoadedGraph;
use crate::{Graph, GraphError, NodeId};
use std::io::{Read, Write};
use std::path::Path;

/// The four magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"TIMG";

/// Current snapshot format version.
pub const VERSION: u32 = 1;

/// Streaming FNV-1a (64-bit) hasher; dependency-free and fast enough to
/// checksum multi-hundred-megabyte snapshots in a single pass.
///
/// This is the single checksum implementation shared by every binary
/// format in the workspace (`.timg` here, `.timp` pools in `tim_engine`)
/// — integrity protection against corruption, **not** a MAC.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// Absorbs one little-endian `u64`.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Content checksum of a graph: a pure function of `(n, forward CSR,
/// probabilities)`.
///
/// Two graphs have equal checksums exactly when they have identical node
/// counts, adjacency, and bit-identical edge probabilities — the reverse
/// CSR is derived data and is deliberately excluded. RR-set pools record
/// this value as provenance so a pool can refuse to serve a graph it was
/// not sampled from.
pub fn graph_checksum(graph: &Graph) -> u64 {
    let mut h = Fnv1a::new();
    h.update_u64(graph.n() as u64);
    h.update_u64(graph.m() as u64);
    for v in 0..graph.n() as NodeId {
        h.update_u64(graph.out_degree(v) as u64);
        for (&t, &p) in graph
            .out_neighbors(v)
            .iter()
            .zip(graph.out_probabilities(v))
        {
            h.update_u64(u64::from(t));
            h.update_u64(u64::from(p.to_bits()));
        }
    }
    h.finish()
}

fn put_u64s(buf: &mut Vec<u8>, values: impl IntoIterator<Item = u64>) {
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u32s(buf: &mut Vec<u8>, values: impl IntoIterator<Item = u32>) {
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Serializes `graph` and its label map into `writer`.
///
/// `labels[i]` must be the original label of dense node `i`; pass
/// `(0..n as u64)` (see [`LoadedGraph::from_dense`]) for graphs that never
/// had external labels. Errors if `labels.len() != graph.n()`.
pub fn write_snapshot<W: Write>(
    graph: &Graph,
    labels: &[u64],
    mut writer: W,
) -> Result<(), GraphError> {
    if labels.len() != graph.n() {
        return Err(GraphError::Snapshot {
            message: format!(
                "label map has {} entries for a {}-node graph",
                labels.len(),
                graph.n()
            ),
        });
    }
    let n = graph.n();
    let m = graph.m();
    let mut payload = Vec::with_capacity(16 + (n + 1) * 16 + m * 16 + n * 8);
    put_u64s(&mut payload, [n as u64, m as u64]);
    put_u64s(&mut payload, graph.out_offsets.iter().map(|&o| o as u64));
    put_u32s(&mut payload, graph.out_targets.iter().copied());
    put_u32s(&mut payload, graph.out_probs.iter().map(|p| p.to_bits()));
    put_u64s(&mut payload, graph.in_offsets.iter().map(|&o| o as u64));
    put_u32s(&mut payload, graph.in_sources.iter().copied());
    put_u32s(&mut payload, graph.in_probs.iter().map(|p| p.to_bits()));
    put_u64s(&mut payload, labels.iter().copied());

    let mut checksum = Fnv1a::new();
    checksum.update(&payload);

    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&checksum.finish().to_le_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()?;
    Ok(())
}

/// Byte-slice cursor used by the decoder; every read is bounds-checked so
/// truncated files produce a clean [`GraphError::Snapshot`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], GraphError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(GraphError::Snapshot {
                message: format!("truncated while reading {what}"),
            }),
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, GraphError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    fn u64s(&mut self, count: usize, what: &str) -> Result<Vec<u64>, GraphError> {
        let bytes = self.take(count.checked_mul(8).ok_or_else(|| overflow(what))?, what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    fn u32s(&mut self, count: usize, what: &str) -> Result<Vec<u32>, GraphError> {
        let bytes = self.take(count.checked_mul(4).ok_or_else(|| overflow(what))?, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }
}

fn overflow(what: &str) -> GraphError {
    GraphError::Snapshot {
        message: format!("{what} length overflows"),
    }
}

fn offsets_from(raw: Vec<u64>, m: usize, what: &str) -> Result<Vec<usize>, GraphError> {
    let offsets: Vec<usize> = raw.into_iter().map(|o| o as usize).collect();
    if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
        return Err(GraphError::Snapshot {
            message: format!("{what} must run from 0 to the edge count"),
        });
    }
    Ok(offsets)
}

/// Deserializes a snapshot from any reader, verifying the magic, version,
/// checksum, and all CSR invariants before returning the graph.
pub fn read_snapshot<R: Read>(mut reader: R) -> Result<LoadedGraph, GraphError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    decode_snapshot(&bytes)
}

fn decode_snapshot(bytes: &[u8]) -> Result<LoadedGraph, GraphError> {
    let mut cur = Cursor { buf: bytes, pos: 0 };
    let magic = cur.take(4, "magic")?;
    if magic != MAGIC {
        return Err(GraphError::Snapshot {
            message: "not a TIMG snapshot (bad magic)".into(),
        });
    }
    let version = u32::from_le_bytes(cur.take(4, "version")?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(GraphError::Snapshot {
            message: format!("unsupported snapshot version {version} (expected {VERSION})"),
        });
    }
    let stored_checksum = cur.u64("checksum")?;
    let payload = &bytes[cur.pos..];
    let mut checksum = Fnv1a::new();
    checksum.update(payload);
    if checksum.finish() != stored_checksum {
        return Err(GraphError::Snapshot {
            message: format!(
                "checksum mismatch: file says {stored_checksum:#018x}, payload hashes to {:#018x}",
                checksum.finish()
            ),
        });
    }

    let n = cur.u64("node count")? as usize;
    let m = cur.u64("edge count")? as usize;
    let n1 = n.checked_add(1).ok_or_else(|| GraphError::Snapshot {
        message: "node count overflows".into(),
    })?;
    let out_offsets = offsets_from(cur.u64s(n1, "out offsets")?, m, "out offsets")?;
    let out_targets: Vec<NodeId> = cur.u32s(m, "out targets")?;
    let out_probs: Vec<f32> = cur
        .u32s(m, "out probabilities")?
        .into_iter()
        .map(f32::from_bits)
        .collect();
    let in_offsets = offsets_from(cur.u64s(n1, "in offsets")?, m, "in offsets")?;
    let in_sources: Vec<NodeId> = cur.u32s(m, "in sources")?;
    let in_probs: Vec<f32> = cur
        .u32s(m, "in probabilities")?
        .into_iter()
        .map(f32::from_bits)
        .collect();
    let labels = cur.u64s(n, "labels")?;
    if cur.pos != bytes.len() {
        return Err(GraphError::Snapshot {
            message: format!("{} trailing bytes after payload", bytes.len() - cur.pos),
        });
    }

    let graph = Graph {
        n,
        out_offsets,
        out_targets,
        out_probs,
        in_offsets,
        in_sources,
        in_probs,
    };
    graph.validate().map_err(|message| GraphError::Snapshot {
        message: format!("invalid CSR in snapshot: {message}"),
    })?;
    Ok(LoadedGraph { graph, labels })
}

/// Saves `graph` and its label map to `path`.
pub fn save_snapshot<P: AsRef<Path>>(
    graph: &Graph,
    labels: &[u64],
    path: P,
) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_snapshot(graph, labels, std::io::BufWriter::new(file))
}

/// Loads a snapshot from `path`.
pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, GraphError> {
    decode_snapshot(&std::fs::read(path)?)
}

/// True when the file at `path` starts with the snapshot magic bytes.
///
/// Used by [`io::load_graph`](crate::io::load_graph) to dispatch between
/// the text and binary loaders without relying on file extensions.
pub fn sniff_snapshot<P: AsRef<Path>>(path: P) -> Result<bool, GraphError> {
    let mut file = std::fs::File::open(path)?;
    let mut head = [0u8; 4];
    let mut filled = 0;
    while filled < head.len() {
        match file.read(&mut head[filled..])? {
            0 => return Ok(false), // shorter than the magic: not a snapshot
            k => filled += k,
        }
    }
    Ok(head == MAGIC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, weights};

    fn sample() -> (Graph, Vec<u64>) {
        let mut g = gen::barabasi_albert(80, 3, 0.1, 7);
        weights::assign_weighted_cascade(&mut g);
        let labels: Vec<u64> = (0..g.n() as u64).map(|i| i * 17 + 3).collect();
        (g, labels)
    }

    fn encode(g: &Graph, labels: &[u64]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(g, labels, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let (g, labels) = sample();
        let loaded = read_snapshot(encode(&g, &labels).as_slice()).unwrap();
        assert_eq!(loaded.labels, labels);
        assert_eq!(loaded.graph.n(), g.n());
        assert_eq!(loaded.graph.m(), g.m());
        for v in 0..g.n() as NodeId {
            assert_eq!(loaded.graph.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(loaded.graph.out_probabilities(v), g.out_probabilities(v));
            assert_eq!(loaded.graph.in_neighbors(v), g.in_neighbors(v));
            assert_eq!(loaded.graph.in_probabilities(v), g.in_probabilities(v));
        }
        assert_eq!(graph_checksum(&loaded.graph), graph_checksum(&g));
    }

    #[test]
    fn checksum_distinguishes_probability_changes() {
        let (mut g, _) = sample();
        let before = graph_checksum(&g);
        weights::assign_constant(&mut g, 0.123);
        assert_ne!(before, graph_checksum(&g));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (g, labels) = sample();
        let mut bytes = encode(&g, &labels);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            read_snapshot(bytes.as_slice()),
            Err(GraphError::Snapshot { message }) if message.contains("magic")
        ));
    }

    #[test]
    fn bad_version_is_rejected() {
        let (g, labels) = sample();
        let mut bytes = encode(&g, &labels);
        bytes[4] = 99;
        assert!(matches!(
            read_snapshot(bytes.as_slice()),
            Err(GraphError::Snapshot { message }) if message.contains("version")
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let (g, labels) = sample();
        let mut bytes = encode(&g, &labels);
        let mid = 16 + (bytes.len() - 16) / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            read_snapshot(bytes.as_slice()),
            Err(GraphError::Snapshot { message }) if message.contains("checksum")
        ));
    }

    #[test]
    fn truncation_is_reported() {
        let (g, labels) = sample();
        let bytes = encode(&g, &labels);
        for cut in [0, 3, 7, 15, 40, bytes.len() - 1] {
            assert!(
                read_snapshot(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (g, labels) = sample();
        let mut bytes = encode(&g, &labels);
        bytes.push(0);
        // The appended byte breaks the checksum first; either message is a
        // rejection, which is what matters.
        assert!(read_snapshot(bytes.as_slice()).is_err());
    }

    #[test]
    fn huge_claimed_node_count_is_rejected_cleanly() {
        // n = u64::MAX with a valid checksum must fail as a snapshot
        // error (overflow/truncation), never panic or allocate.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        payload.extend_from_slice(&0u64.to_le_bytes()); // m
        let mut h = Fnv1a::new();
        h.update(&payload);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&h.finish().to_le_bytes());
        bytes.extend_from_slice(&payload);
        match read_snapshot(bytes.as_slice()) {
            Err(GraphError::Snapshot { message }) => {
                assert!(message.contains("overflow"), "{message}")
            }
            other => panic!("expected snapshot error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_label_count_is_an_error() {
        let (g, _) = sample();
        let mut buf = Vec::new();
        assert!(matches!(
            write_snapshot(&g, &[1, 2, 3], &mut buf),
            Err(GraphError::Snapshot { .. })
        ));
    }

    #[test]
    fn file_round_trip_and_sniffing() {
        let (g, labels) = sample();
        let dir = std::env::temp_dir().join(format!("timg_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("g.timg");
        let text = dir.join("g.txt");
        save_snapshot(&g, &labels, &snap).unwrap();
        crate::io::save_edge_list(&g, &text).unwrap();
        assert!(sniff_snapshot(&snap).unwrap());
        assert!(!sniff_snapshot(&text).unwrap());
        let loaded = load_snapshot(&snap).unwrap();
        assert_eq!(loaded.labels, labels);
        assert_eq!(graph_checksum(&loaded.graph), graph_checksum(&g));
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&text).ok();
    }

    #[test]
    fn empty_file_is_not_a_snapshot() {
        let dir = std::env::temp_dir().join(format!("timg_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty");
        std::fs::write(&path, b"").unwrap();
        assert!(!sniff_snapshot(&path).unwrap());
        assert!(read_snapshot(std::fs::File::open(&path).unwrap()).is_err());
        std::fs::remove_file(&path).ok();
    }
}
