//! Edge-probability (weight) models from the influence-maximization
//! literature.
//!
//! The paper's experimental settings (§7.1):
//!
//! - **IC / weighted cascade (WC):** `p(e) = 1 / indeg(v)` where `v` is the
//!   node the edge points to — [`assign_weighted_cascade`].
//! - **LT:** each in-neighbour of `v` gets a random weight in `[0, 1]`,
//!   normalised so `v`'s in-weights sum to 1 — [`assign_lt_normalized`].
//!
//! Additional models common in the literature (constant-`p`, trivalency) are
//! provided for the examples and extra experiments.
//!
//! Pseudo-random models derive every edge's value from a *hash of the edge
//! endpoints and a seed* rather than from a sequential RNG stream. This
//! makes the assignment a pure function of `(u, v)`, which is what
//! [`Graph::assign_probabilities`] needs to keep the forward and reverse
//! CSR halves consistent, and makes weights independent of edge iteration
//! order.

use crate::{Graph, NodeId};
use tim_rng::{RandomSource, SplitMix64};

/// A selectable weight model, for experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// `p(e) = 1 / indeg(target)` — the paper's IC setting.
    WeightedCascade,
    /// Every edge gets the same probability.
    Constant(f32),
    /// Each edge draws from `{0.1, 0.01, 0.001}` (Chen et al.'s trivalency).
    Trivalency {
        /// Seed for the per-edge hash.
        seed: u64,
    },
    /// Random in-weights normalised per node — the paper's LT setting.
    LtNormalized {
        /// Seed for the per-edge hash.
        seed: u64,
    },
    /// Uniform random probability in `[lo, hi]` per edge.
    UniformRandom {
        /// Seed for the per-edge hash.
        seed: u64,
        /// Inclusive lower bound.
        lo: f32,
        /// Inclusive upper bound.
        hi: f32,
    },
}

impl WeightModel {
    /// Applies the model to `g`, overwriting all edge probabilities.
    pub fn apply(&self, g: &mut Graph) {
        match *self {
            WeightModel::WeightedCascade => assign_weighted_cascade(g),
            WeightModel::Constant(p) => assign_constant(g, p),
            WeightModel::Trivalency { seed } => assign_trivalency(g, seed),
            WeightModel::LtNormalized { seed } => assign_lt_normalized(g, seed),
            WeightModel::UniformRandom { seed, lo, hi } => assign_uniform_random(g, seed, lo, hi),
        }
    }
}

/// Hashes an edge and a seed into a uniform `f64` in `[0, 1)`.
#[inline]
fn edge_hash_unit(u: NodeId, v: NodeId, seed: u64) -> f64 {
    let key = ((u as u64) << 32) | v as u64;
    let mut h = SplitMix64::new(key ^ seed.rotate_left(17));
    h.next_f64()
}

/// Weighted-cascade IC weights: `p(u, v) = 1 / indeg(v)`.
///
/// This is the standard setting of Chen et al. and the paper's §7.1. Note
/// the per-node in-weights then sum to exactly 1, so the same assignment is
/// also a valid LT weight vector (`assign_lt_uniform` is an alias).
pub fn assign_weighted_cascade(g: &mut Graph) {
    let indeg: Vec<u32> = (0..g.n() as NodeId)
        .map(|v| g.in_degree(v) as u32)
        .collect();
    g.assign_probabilities(|_, v| 1.0 / indeg[v as usize].max(1) as f32);
}

/// Uniform LT weights `1/indeg(v)`; identical to the weighted cascade.
pub fn assign_lt_uniform(g: &mut Graph) {
    assign_weighted_cascade(g);
}

/// Constant probability on every edge.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
pub fn assign_constant(g: &mut Graph, p: f32) {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "constant probability {p} must be in [0, 1]"
    );
    g.assign_probabilities(|_, _| p);
}

/// Trivalency weights: each edge independently draws from
/// `{0.1, 0.01, 0.001}` with equal probability (hash-seeded).
pub fn assign_trivalency(g: &mut Graph, seed: u64) {
    const LEVELS: [f32; 3] = [0.1, 0.01, 0.001];
    g.assign_probabilities(|u, v| {
        let x = edge_hash_unit(u, v, seed);
        LEVELS[(x * 3.0) as usize % 3]
    });
}

/// Uniform random probability in `[lo, hi]` per edge (hash-seeded).
///
/// # Panics
/// Panics unless `0 <= lo <= hi <= 1`.
pub fn assign_uniform_random(g: &mut Graph, seed: u64, lo: f32, hi: f32) {
    assert!(
        lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi && hi <= 1.0,
        "uniform range [{lo}, {hi}] must satisfy 0 <= lo <= hi <= 1"
    );
    g.assign_probabilities(|u, v| lo + (hi - lo) * edge_hash_unit(u, v, seed) as f32);
}

/// The paper's LT setting: assign each in-edge of `v` a random weight in
/// `[0, 1]`, then normalise so `v`'s in-weights sum to 1 (§7.1, following
/// Chen et al. \[7\]).
///
/// Nodes with no in-edges are unaffected. Weights are hash-seeded so the
/// assignment is a pure function of the edge.
pub fn assign_lt_normalized(g: &mut Graph, seed: u64) {
    // Precompute each node's in-weight normaliser.
    let mut denom = vec![0.0f64; g.n()];
    for v in 0..g.n() as NodeId {
        let mut sum = 0.0f64;
        for &u in g.in_neighbors(v) {
            // Raw weights are shifted off zero so every edge keeps positive
            // mass and the normaliser never vanishes.
            sum += 0.05 + 0.95 * edge_hash_unit(u, v, seed);
        }
        denom[v as usize] = sum;
    }
    g.assign_probabilities(|u, v| {
        let raw = 0.05 + 0.95 * edge_hash_unit(u, v, seed);
        (raw / denom[v as usize]) as f32
    });
}

/// Applies a textual weight-model spec to a graph — the single
/// implementation behind the CLI's `--weights` flag and the lazy loads of
/// a graph catalog, so the two cannot drift.
///
/// Accepted specs: `wc` (weighted cascade), `lt` (normalised LT weights),
/// `tri` (trivalency), `keep` (probabilities from the source file),
/// `const:<p>` (constant probability). `seed` perturbs the seeded models
/// (`lt`/`tri`) exactly as the CLI always has.
///
/// ```
/// use tim_graph::{gen, weights};
///
/// let mut g = gen::erdos_renyi_gnm(50, 200, 1);
/// weights::apply_spec(&mut g, "wc", 0).unwrap();
/// assert!(weights::apply_spec(&mut g, "bogus", 0).is_err());
/// ```
pub fn apply_spec(g: &mut Graph, spec: &str, seed: u64) -> Result<(), crate::GraphError> {
    validate_spec(spec)?;
    match spec {
        "wc" => assign_weighted_cascade(g),
        "lt" => assign_lt_normalized(g, seed ^ 0x17),
        "tri" => assign_trivalency(g, seed ^ 0x3),
        "keep" => {} // probabilities from the source file
        other => {
            let p: f32 = other
                .strip_prefix("const:")
                .expect("spec shape just validated")
                .parse()
                .expect("probability just validated");
            assign_constant(g, p);
        }
    }
    Ok(())
}

/// Checks a weight-model spec against the grammar without touching a
/// graph — the validation half of [`apply_spec`], split out so catalogs
/// can reject a bad per-graph `weights=` override at attach time instead
/// of on the tenant's first query.
///
/// ```
/// use tim_graph::weights::validate_spec;
///
/// assert!(validate_spec("wc").is_ok());
/// assert!(validate_spec("const:0.05").is_ok());
/// assert!(validate_spec("bogus").is_err());
/// assert!(validate_spec("const:x").is_err());
/// ```
pub fn validate_spec(spec: &str) -> Result<(), crate::GraphError> {
    match spec {
        "wc" | "lt" | "tri" | "keep" => Ok(()),
        other => {
            if let Some(p) = other.strip_prefix("const:") {
                p.parse::<f32>()
                    .map(|_| ())
                    .map_err(|_| crate::GraphError::Catalog {
                        message: format!("--weights const: bad probability '{p}'"),
                    })
            } else {
                Err(crate::GraphError::Catalog {
                    message: format!("unknown --weights '{other}'"),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star_in(center: NodeId, leaves: u32) -> Graph {
        // leaves -> center
        let mut b = GraphBuilder::new(leaves as usize + 1);
        for u in 0..leaves {
            let u = if u >= center { u + 1 } else { u };
            b.add_edge(u, center);
        }
        b.build()
    }

    #[test]
    fn weighted_cascade_is_one_over_indegree() {
        let mut g = star_in(0, 4);
        assign_weighted_cascade(&mut g);
        for &p in g.in_probabilities(0) {
            assert_eq!(p, 0.25);
        }
    }

    #[test]
    fn weighted_cascade_in_weights_sum_to_one() {
        let mut g = crate::gen::erdos_renyi_gnm(200, 1500, 1);
        assign_weighted_cascade(&mut g);
        for v in 0..g.n() as NodeId {
            if g.in_degree(v) > 0 {
                let sum: f64 = g.in_probabilities(v).iter().map(|&p| p as f64).sum();
                assert!((sum - 1.0).abs() < 1e-4, "node {v}: in-weights sum {sum}");
            }
        }
    }

    #[test]
    fn lt_normalized_in_weights_sum_to_one() {
        let mut g = crate::gen::erdos_renyi_gnm(200, 1500, 2);
        assign_lt_normalized(&mut g, 7);
        for v in 0..g.n() as NodeId {
            if g.in_degree(v) > 0 {
                let sum: f64 = g.in_probabilities(v).iter().map(|&p| p as f64).sum();
                assert!((sum - 1.0).abs() < 1e-4, "node {v}: in-weights sum {sum}");
            }
        }
        g.validate().unwrap();
    }

    #[test]
    fn lt_normalized_weights_are_not_all_equal() {
        let mut g = star_in(0, 8);
        assign_lt_normalized(&mut g, 3);
        let probs = g.in_probabilities(0);
        assert!(probs.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
    }

    #[test]
    fn trivalency_only_uses_three_levels() {
        let mut g = crate::gen::erdos_renyi_gnm(100, 600, 3);
        assign_trivalency(&mut g, 11);
        for (_, _, p) in g.edges() {
            assert!(
                [0.1f32, 0.01, 0.001].contains(&p),
                "unexpected trivalency value {p}"
            );
        }
    }

    #[test]
    fn trivalency_is_seed_deterministic() {
        let make = |seed| {
            let mut g = crate::gen::erdos_renyi_gnm(50, 200, 4);
            assign_trivalency(&mut g, seed);
            g.edges().collect::<Vec<_>>()
        };
        assert_eq!(make(5), make(5));
        assert_ne!(make(5), make(6));
    }

    #[test]
    fn constant_sets_every_edge() {
        let mut g = star_in(0, 3);
        assign_constant(&mut g, 0.42);
        for (_, _, p) in g.edges() {
            assert_eq!(p, 0.42);
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn constant_rejects_out_of_range() {
        let mut g = star_in(0, 3);
        assign_constant(&mut g, 2.0);
    }

    #[test]
    fn uniform_random_stays_in_range() {
        let mut g = crate::gen::erdos_renyi_gnm(100, 500, 5);
        assign_uniform_random(&mut g, 9, 0.2, 0.6);
        for (_, _, p) in g.edges() {
            assert!((0.2..=0.6).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn weight_model_enum_dispatches() {
        let mut g = star_in(0, 4);
        WeightModel::Constant(0.3).apply(&mut g);
        assert!(g.edges().all(|(_, _, p)| p == 0.3));
        WeightModel::WeightedCascade.apply(&mut g);
        assert!(g.in_probabilities(0).iter().all(|&p| p == 0.25));
        WeightModel::LtNormalized { seed: 1 }.apply(&mut g);
        let sum: f64 = g.in_probabilities(0).iter().map(|&p| p as f64).sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn apply_spec_covers_every_model_and_rejects_bad_specs() {
        let mut g = star_in(0, 4);
        for spec in ["wc", "lt", "tri", "keep", "const:0.2"] {
            apply_spec(&mut g, spec, 7).unwrap_or_else(|e| panic!("{spec}: {e}"));
        }
        apply_spec(&mut g, "const:0.4", 0).unwrap();
        assert!(g.edges().all(|(_, _, p)| p == 0.4));
        // `keep` leaves the previous assignment untouched.
        apply_spec(&mut g, "keep", 0).unwrap();
        assert!(g.edges().all(|(_, _, p)| p == 0.4));
        assert!(apply_spec(&mut g, "bogus", 0).is_err());
        assert!(apply_spec(&mut g, "const:x", 0).is_err());
        // Seeded specs replicate the direct assignment.
        let direct = {
            let mut h = star_in(0, 4);
            assign_lt_normalized(&mut h, 9 ^ 0x17);
            h.in_probabilities(0).to_vec()
        };
        apply_spec(&mut g, "lt", 9).unwrap();
        assert_eq!(g.in_probabilities(0), &direct[..]);
    }
}
