//! Directed social-network graphs for influence maximization.
//!
//! The influence-maximization algorithms in this workspace traverse a graph
//! in two directions: forward Monte Carlo simulation walks *out*-edges,
//! while reverse-reachable (RR) set sampling walks *in*-edges of the
//! transpose graph `G^T` (Definition 1 of the paper). [`Graph`] therefore
//! stores both adjacency directions as CSR (compressed sparse row) arrays
//! with edge probabilities kept CSR-aligned, so both traversals are cache
//! friendly and allocation free.
//!
//! The crate also provides:
//!
//! - [`GraphBuilder`] — incremental edge-list construction with dedup and
//!   self-loop removal;
//! - [`weights`] — the edge-probability models used in the paper's §7.1
//!   (weighted-cascade `1/indeg`, constant, trivalency, normalised LT
//!   weights);
//! - [`gen`] — deterministic synthetic generators (Erdős–Rényi G(n,m),
//!   directed Barabási–Albert, Watts–Strogatz, power-law configuration
//!   model) used as stand-ins for the paper's datasets;
//! - [`io`] — a SNAP-style whitespace edge-list reader/writer, plus
//!   [`io::load_graph`] which transparently dispatches between text and
//!   binary inputs;
//! - [`snapshot`] — versioned, checksummed binary graph snapshots
//!   (`.timg`): the heap-oriented v1 layout plus the page-aligned,
//!   mmap-able v2 layout;
//! - [`MmapCsr`] / [`GraphStore`] — zero-copy out-of-core serving: a v2
//!   snapshot mapped read-only behind the same [`CsrAccess`] trait the
//!   heap [`Graph`] implements, dispatched once per operation through a
//!   backing-agnostic store handle.

pub mod analysis;
mod builder;
pub mod catalog;
mod csr;
mod error;
pub mod gen;
pub mod io;
pub mod mmap;
pub mod snapshot;
mod store;
pub mod weights;

pub use builder::GraphBuilder;
pub use csr::{CsrAccess, DegreeStats, Graph};
pub use error::GraphError;
pub use mmap::{Mmap, MmapCsr};
pub use store::{CsrView, GraphStore};

/// A node identifier. Dense in `[0, n)`.
pub type NodeId = u32;
