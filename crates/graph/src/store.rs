//! Backing-agnostic graph handles.
//!
//! A [`GraphStore`] is what the engine and server hold instead of a bare
//! `Arc<Graph>`: a cheaply-clonable handle over either a heap-resident
//! [`Graph`] or a zero-copy [`MmapCsr`] view, plus the content checksum
//! that keys pool provenance. Call sites dispatch **once** per operation
//! via [`GraphStore::view`] and hand the concrete reference to generic
//! code bounded on [`CsrAccess`], so the hot sampling loops stay
//! monomorphized per backing — the heap path keeps exactly the codegen it
//! had before mmap existed.

use crate::csr::CsrAccess;
use crate::mmap::MmapCsr;
use crate::snapshot::graph_checksum;
use crate::{Graph, GraphError, NodeId};
use std::path::Path;
use std::sync::Arc;

/// A shared, backing-agnostic handle to an immutable graph.
///
/// Cloning is an `Arc` bump. The content checksum is computed once (heap)
/// or read from the v2 header (mmap) and cached, so provenance checks
/// never rescan the CSR.
#[derive(Debug, Clone)]
pub struct GraphStore {
    inner: Inner,
    checksum: u64,
}

#[derive(Debug, Clone)]
enum Inner {
    Heap(Arc<Graph>),
    Mmap(Arc<MmapCsr>),
}

/// A borrowed view of a store's concrete backing — match once, then run
/// monomorphized code against the concrete type.
#[derive(Debug, Clone, Copy)]
pub enum CsrView<'a> {
    /// Heap-resident CSR vectors.
    Heap(&'a Graph),
    /// Zero-copy view over a mapped v2 snapshot.
    Mmap(&'a MmapCsr),
}

impl GraphStore {
    /// Wraps an already-shared heap graph.
    pub fn from_arc(graph: Arc<Graph>) -> GraphStore {
        let checksum = graph_checksum(&graph);
        GraphStore {
            inner: Inner::Heap(graph),
            checksum,
        }
    }

    /// Opens the v2 snapshot at `path` as a zero-copy mmap view.
    pub fn open_mmap<P: AsRef<Path>>(path: P) -> Result<GraphStore, GraphError> {
        Ok(GraphStore::from(MmapCsr::open(path)?))
    }

    /// The backing to dispatch on — match once per operation.
    #[inline]
    pub fn view(&self) -> CsrView<'_> {
        match &self.inner {
            Inner::Heap(g) => CsrView::Heap(g),
            Inner::Mmap(v) => CsrView::Mmap(v),
        }
    }

    /// Content checksum ([`graph_checksum`]) — identical for the same
    /// graph regardless of backing, so pool provenance keys carry over.
    #[inline]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        match self.view() {
            CsrView::Heap(g) => g.n(),
            CsrView::Mmap(v) => v.n(),
        }
    }

    /// Number of arcs.
    #[inline]
    pub fn m(&self) -> usize {
        match self.view() {
            CsrView::Heap(g) => CsrAccess::m(g),
            CsrView::Mmap(v) => v.m(),
        }
    }

    /// True when this store serves pages straight from a mapped file.
    pub fn is_mmap(&self) -> bool {
        matches!(self.inner, Inner::Mmap(_))
    }

    /// The heap graph, when heap-backed (engine compatibility paths that
    /// still want an `Arc<Graph>`, e.g. plan caching by pointer).
    pub fn heap_arc(&self) -> Option<&Arc<Graph>> {
        match &self.inner {
            Inner::Heap(g) => Some(g),
            Inner::Mmap(_) => None,
        }
    }

    /// The mmap view, when mmap-backed.
    pub fn mmap_view(&self) -> Option<&MmapCsr> {
        match &self.inner {
            Inner::Mmap(v) => Some(v),
            Inner::Heap(_) => None,
        }
    }
}

impl From<Graph> for GraphStore {
    fn from(graph: Graph) -> GraphStore {
        GraphStore::from_arc(Arc::new(graph))
    }
}

impl From<Arc<Graph>> for GraphStore {
    fn from(graph: Arc<Graph>) -> GraphStore {
        GraphStore::from_arc(graph)
    }
}

impl From<MmapCsr> for GraphStore {
    fn from(view: MmapCsr) -> GraphStore {
        let checksum = view.checksum();
        GraphStore {
            inner: Inner::Mmap(Arc::new(view)),
            checksum,
        }
    }
}

impl From<Arc<MmapCsr>> for GraphStore {
    fn from(view: Arc<MmapCsr>) -> GraphStore {
        let checksum = view.checksum();
        GraphStore {
            inner: Inner::Mmap(view),
            checksum,
        }
    }
}

// Store-level accessor impl so code that does not need monomorphization
// (stats lines, degree summaries) can treat the store itself as a CSR.
// Hot loops should still go through `view()`.
impl CsrAccess for GraphStore {
    #[inline]
    fn n(&self) -> usize {
        GraphStore::n(self)
    }

    #[inline]
    fn m(&self) -> usize {
        GraphStore::m(self)
    }

    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        match self.view() {
            CsrView::Heap(g) => g.out_degree(v),
            CsrView::Mmap(m) => m.out_degree(v),
        }
    }

    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        match self.view() {
            CsrView::Heap(g) => g.in_degree(v),
            CsrView::Mmap(m) => m.in_degree(v),
        }
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        match self.view() {
            CsrView::Heap(g) => g.out_neighbors(v),
            CsrView::Mmap(m) => m.out_neighbors(v),
        }
    }

    #[inline]
    fn out_probabilities(&self, v: NodeId) -> &[f32] {
        match self.view() {
            CsrView::Heap(g) => g.out_probabilities(v),
            CsrView::Mmap(m) => m.out_probabilities(v),
        }
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        match self.view() {
            CsrView::Heap(g) => g.in_neighbors(v),
            CsrView::Mmap(m) => m.in_neighbors(v),
        }
    }

    #[inline]
    fn in_probabilities(&self, v: NodeId) -> &[f32] {
        match self.view() {
            CsrView::Heap(g) => g.in_probabilities(v),
            CsrView::Mmap(m) => m.in_probabilities(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, weights};

    fn sample() -> Graph {
        let mut g = gen::barabasi_albert(60, 3, 0.1, 5);
        weights::assign_weighted_cascade(&mut g);
        g
    }

    #[test]
    fn heap_store_preserves_arc_identity_and_checksum() {
        let g = Arc::new(sample());
        let expect = graph_checksum(&g);
        let store = GraphStore::from_arc(Arc::clone(&g));
        assert_eq!(store.checksum(), expect);
        assert!(!store.is_mmap());
        assert!(Arc::ptr_eq(store.heap_arc().unwrap(), &g));
        assert_eq!(store.n(), g.n());
        assert_eq!(store.m(), g.m());
        let clone = store.clone();
        assert!(Arc::ptr_eq(clone.heap_arc().unwrap(), &g));
    }

    #[cfg(unix)]
    #[test]
    fn mmap_store_agrees_with_heap_store() {
        let g = sample();
        let labels: Vec<u64> = (0..g.n() as u64).collect();
        let dir = std::env::temp_dir().join(format!("timg_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.timg");
        crate::snapshot::save_snapshot_v2(&g, &labels, &path).unwrap();
        let heap = GraphStore::from(g);
        let mmap = GraphStore::open_mmap(&path).unwrap();
        assert!(mmap.is_mmap());
        assert!(mmap.heap_arc().is_none());
        assert_eq!(mmap.checksum(), heap.checksum());
        assert_eq!(mmap.n(), heap.n());
        assert_eq!(mmap.m(), heap.m());
        for v in 0..heap.n() as NodeId {
            assert_eq!(mmap.out_neighbors(v), heap.out_neighbors(v));
            assert_eq!(mmap.in_probabilities(v), heap.in_probabilities(v));
        }
        std::fs::remove_file(&path).ok();
    }
}
