//! SNAP-style edge-list text format.
//!
//! One edge per line: `src dst [probability]`, whitespace separated.
//! Lines starting with `#` or `%` are comments; blank lines are skipped.
//! Node ids may be arbitrary (non-contiguous) `u64` labels; they are
//! remapped to dense `u32` ids in first-appearance order, and the mapping
//! is returned so results can be reported in original labels.

use crate::{Graph, GraphBuilder, GraphError};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Result of loading an edge list: the graph plus the label mapping.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The dense-id graph.
    pub graph: Graph,
    /// `labels[i]` is the original label of dense node `i`.
    pub labels: Vec<u64>,
}

impl LoadedGraph {
    /// Wraps a graph that never had external labels with the identity
    /// label map (`label_of(i) == i`), so generated graphs can flow through
    /// label-aware code paths such as snapshot saving.
    pub fn from_dense(graph: Graph) -> Self {
        let labels = (0..graph.n() as u64).collect();
        LoadedGraph { graph, labels }
    }

    /// Maps a dense node id back to its original label.
    pub fn label_of(&self, node: crate::NodeId) -> u64 {
        self.labels[node as usize]
    }
}

/// Parses an edge list from any reader.
///
/// Edges without an explicit probability get `1.0` (assign a weight model
/// afterwards). Undirected datasets should be loaded with
/// `undirected = true`, which adds each edge in both directions.
pub fn read_edge_list<R: Read>(reader: R, undirected: bool) -> Result<LoadedGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut label_to_id: HashMap<u64, u32> = HashMap::new();
    let mut labels: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();

    let intern = |label: u64, labels: &mut Vec<u64>, map: &mut HashMap<u64, u32>| -> u32 {
        *map.entry(label).or_insert_with(|| {
            let id = labels.len() as u32;
            labels.push(label);
            id
        })
    };

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let src: u64 = parts
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: "missing source node".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: line_no,
                message: format!("bad source node: {e}"),
            })?;
        let dst: u64 = parts
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: "missing destination node".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: line_no,
                message: format!("bad destination node: {e}"),
            })?;
        let p: f32 = match parts.next() {
            Some(tok) => tok.parse().map_err(|e| GraphError::Parse {
                line: line_no,
                message: format!("bad probability: {e}"),
            })?,
            None => 1.0,
        };
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "trailing tokens after edge".into(),
            });
        }
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("probability {p} out of [0, 1]"),
            });
        }
        let u = intern(src, &mut labels, &mut label_to_id);
        let v = intern(dst, &mut labels, &mut label_to_id);
        edges.push((u, v, p));
        if undirected {
            edges.push((v, u, p));
        }
    }

    let mut b = GraphBuilder::with_edge_capacity(labels.len(), edges.len());
    for (u, v, p) in edges {
        b.add_edge_with_probability(u, v, p);
    }
    Ok(LoadedGraph {
        graph: b.build(),
        labels,
    })
}

/// Loads an edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(
    path: P,
    undirected: bool,
) -> Result<LoadedGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, undirected)
}

/// Loads a graph from either a text edge list or a binary
/// [`snapshot`](crate::snapshot), dispatching on the file's magic bytes
/// rather than its extension.
///
/// `undirected` only affects the text loader: snapshots already store the
/// final arc set, so the flag is ignored for them.
pub fn load_graph<P: AsRef<Path>>(path: P, undirected: bool) -> Result<LoadedGraph, GraphError> {
    if crate::snapshot::sniff_snapshot(&path)? {
        crate::snapshot::load_snapshot(path)
    } else {
        load_edge_list(path, undirected)
    }
}

/// Writes `graph` as `src dst p` lines (dense ids).
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> Result<(), GraphError> {
    let mut out = std::io::BufWriter::new(&mut writer);
    for (u, v, p) in graph.edges() {
        writeln!(out, "{u} {v} {p}")?;
    }
    out.flush()?;
    Ok(())
}

/// Saves `graph` to a file path.
pub fn save_edge_list<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_edge_list() {
        let text = "# a comment\n0 1\n1 2 0.5\n\n% another comment\n2 0 0.25\n";
        let loaded = read_edge_list(text.as_bytes(), false).unwrap();
        assert_eq!(loaded.graph.n(), 3);
        assert_eq!(loaded.graph.m(), 3);
        assert_eq!(loaded.graph.out_probabilities(0), &[1.0]);
    }

    #[test]
    fn remaps_sparse_labels() {
        let text = "1000000 42\n42 7\n";
        let loaded = read_edge_list(text.as_bytes(), false).unwrap();
        assert_eq!(loaded.graph.n(), 3);
        assert_eq!(loaded.label_of(0), 1_000_000);
        assert_eq!(loaded.label_of(1), 42);
        assert_eq!(loaded.label_of(2), 7);
    }

    #[test]
    fn undirected_mode_doubles_edges() {
        let text = "0 1\n1 2\n";
        let loaded = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(loaded.graph.m(), 4);
        assert!(loaded.graph.out_neighbors(1).contains(&0));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            read_edge_list("0\n".as_bytes(), false),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list("a b\n".as_bytes(), false),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list("0 1 2 3\n".as_bytes(), false),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list("0 1 1.5\n".as_bytes(), false),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn error_reports_correct_line_number() {
        let text = "0 1\n# fine\n0 bad\n";
        match read_edge_list(text.as_bytes(), false) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn round_trips_through_write_and_read() {
        let g = crate::gen::erdos_renyi_gnm(30, 120, 1);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(buf.as_slice(), false).unwrap();
        // Labels are dense already, so the graphs must match edge-for-edge.
        let a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = loaded
            .graph
            .edges()
            .map(|(u, v, p)| (loaded.label_of(u) as u32, loaded.label_of(v) as u32, p))
            .collect();
        b.sort_by_key(|x| (x.0, x.1));
        assert_eq!(a, b);
    }

    #[test]
    fn file_round_trip() {
        let g = crate::gen::erdos_renyi_gnm(10, 30, 2);
        let dir = std::env::temp_dir().join("tim_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        save_edge_list(&g, &path).unwrap();
        let loaded = load_edge_list(&path, false).unwrap();
        assert_eq!(loaded.graph.m(), g.m());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_edge_list("/nonexistent/path/xyz.txt", false),
            Err(GraphError::Io(_))
        ));
    }
}
