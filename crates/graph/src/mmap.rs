//! Zero-copy, memory-mapped file views.
//!
//! [`Mmap`] is the reusable primitive: a whole file mapped read-only
//! (`PROT_READ` + `MAP_PRIVATE`) with naturally-aligned `u64`/`u32`
//! slice carving and `madvise` paging hints. It is what every
//! page-aligned binary format in the workspace maps through — the
//! `.timg` v2 snapshots here and the `.timp` v2 RR-set pools in
//! `tim_coverage`/`tim_engine`.
//!
//! [`MmapCsr`] builds on it: a [`snapshot`] v2 file served as
//! [`CsrAccess`] slices straight out of the mapping. The kernel pages
//! the graph in on demand, so attaching a multi-gigabyte snapshot
//! costs a header parse plus one structural scan instead of a full heap
//! decode, and graphs larger than RAM stay servable. The syscall bindings
//! (`mmap`/`munmap`/`madvise`) follow the same dependency-free `extern
//! "C"` idiom as the epoll reactor in `tim_server`.
//!
//! # Safety argument
//!
//! Every `unsafe` block in this module rests on the same three pillars:
//!
//! 1. **The mapping outlives every borrow.** [`Mmap`] owns the mapping
//!    and only unmaps in `Drop`; the returned slices borrow `&self`, so
//!    the borrow checker ties their lifetime to the mapping's.
//! 2. **The mapping is immutable.** `PROT_READ` + `MAP_PRIVATE` means
//!    neither this process nor (through this mapping) any other can write
//!    the pages; writes to the underlying file by another process are not
//!    ordered with our reads, which is why [`MmapCsr::verify`] exists for
//!    callers that distrust the file, and why every *structural* invariant
//!    (offsets, endpoints, probabilities) is validated eagerly at open
//!    into crate-private copies of `n`/`m`/section bounds that a racing
//!    writer cannot retroactively change. A torn read of *data* (targets,
//!    probabilities) under a racing writer can change results but cannot
//!    read out of bounds: every slice is carved from the validated
//!    section bounds, and sampling clamps endpoints defensively.
//! 3. **Alignment is guaranteed by the format.** v2 sections start on
//!    4096-byte boundaries and `mmap` returns page-aligned addresses, so
//!    reinterpreting section bytes as `u64`/`u32` is always
//!    naturally-aligned. The decoder additionally rejects files on
//!    big-endian hosts, where zero-copy reinterpretation of the
//!    little-endian sections would be wrong.

use crate::csr::CsrAccess;
use crate::snapshot::{self, v2_section, Fnv1a, V2Layout, V2_SECTION_COUNT};
use crate::{GraphError, NodeId};
use std::path::Path;

fn snap_err(message: impl Into<String>) -> GraphError {
    GraphError::Snapshot {
        message: message.into(),
    }
}

#[cfg(unix)]
mod sys {
    //! Raw bindings to the three mapping syscalls, libc-free.

    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, length: usize) -> i32;
        pub fn madvise(addr: *mut u8, length: usize, advice: i32) -> i32;
    }

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x02;
    /// `mmap` error sentinel (`MAP_FAILED`).
    pub const MAP_FAILED: *mut u8 = usize::MAX as *mut u8;

    /// Expect random access — don't aggressively read ahead. RR-set
    /// sampling walks reverse-reachable sets, which hop arbitrarily
    /// around the CSR.
    pub const MADV_RANDOM: i32 = 1;
    /// Expect access soon — fault these pages in now.
    pub const MADV_WILLNEED: i32 = 3;
}

/// A whole file mapped read-only (`PROT_READ` + `MAP_PRIVATE`),
/// page-aligned by the kernel.
///
/// The reusable mapping primitive behind every zero-copy view in the
/// workspace: [`MmapCsr`] for `.timg` graph snapshots, `MmapSets` in
/// `tim_coverage` for `.timp` RR-set pools. [`open`](Mmap::open) rejects
/// empty files, non-unix hosts, and big-endian hosts (the page-aligned
/// formats are little-endian on disk, so zero-copy reinterpretation
/// would be wrong); dropping the value unmaps the file.
pub struct Mmap {
    /// Base address of the mapping (page-aligned, never null).
    base: *const u8,
    /// Mapped length in bytes (the whole file).
    len: usize,
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE — immutable shared
// state. The raw pointer is only ever read through, never written, so
// &Mmap is as shareable as &[u8] and moving the struct across threads
// moves only ownership of the unmap.
unsafe impl Send for Mmap {}
// SAFETY: as above — concurrent readers of an immutable mapping.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the whole file at `path` read-only.
    ///
    /// Errors cleanly on empty files, on non-unix hosts (no mapping
    /// syscalls bound), and on big-endian hosts (callers reinterpret the
    /// mapped bytes as little-endian `u64`/`u32` sections).
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Mmap, GraphError> {
        if cfg!(target_endian = "big") {
            return Err(snap_err(
                "zero-copy mapped views require a little-endian host; \
                 load the file on the heap instead",
            ));
        }
        Self::open_impl(path.as_ref())
    }

    #[cfg(not(unix))]
    fn open_impl(_path: &Path) -> Result<Mmap, GraphError> {
        Err(snap_err(
            "mapped views are only supported on unix hosts; \
             load the file on the heap instead",
        ))
    }

    #[cfg(unix)]
    fn open_impl(path: &Path) -> Result<Mmap, GraphError> {
        use std::os::fd::AsRawFd;

        let file = std::fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len == 0 {
            return Err(snap_err("cannot map an empty file"));
        }
        let len = usize::try_from(file_len)
            .map_err(|_| snap_err("file is larger than the address space"))?;

        // SAFETY: plain syscall; the kernel picks the address (addr =
        // null), the fd is live for the duration of the call, and a
        // PROT_READ | MAP_PRIVATE mapping cannot alias any writable
        // memory in this process.
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if base == sys::MAP_FAILED {
            return Err(GraphError::Io(std::io::Error::last_os_error()));
        }
        // The mapping persists past the close of `file` (POSIX: the
        // mapping holds its own reference), so the File can drop freely.
        Ok(Mmap { base, len })
    }

    /// Mapped length in bytes (the whole file).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Never true: empty files are rejected at open.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The whole mapping as bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: base..base+len is a live readable mapping owned by self
        // (pillar 1); u8 has no alignment or validity requirements.
        unsafe { std::slice::from_raw_parts(self.base, self.len) }
    }

    /// `count` little-endian `u64`s starting at byte `offset`.
    ///
    /// # Panics
    /// Panics if `offset` is not 8-aligned or the range leaves the
    /// mapping — callers carve sections whose bounds a format parser has
    /// already validated, so a trip here is a caller bug, not bad data.
    #[inline]
    pub fn u64s(&self, offset: usize, count: usize) -> &[u64] {
        let len = count.checked_mul(8).expect("section length overflows");
        assert!(offset % 8 == 0, "u64 section offset must be 8-aligned");
        assert!(offset.checked_add(len).is_some_and(|e| e <= self.len));
        // SAFETY: in bounds and aligned per the asserts above, the
        // mapping is live for &self's lifetime (pillar 1), and any u64
        // bit pattern is valid (pillar 3).
        unsafe { std::slice::from_raw_parts(self.base.add(offset).cast::<u64>(), count) }
    }

    /// `count` little-endian `u32`s starting at byte `offset`.
    ///
    /// # Panics
    /// As [`u64s`](Mmap::u64s), with 4-byte alignment.
    #[inline]
    pub fn u32s(&self, offset: usize, count: usize) -> &[u32] {
        let len = count.checked_mul(4).expect("section length overflows");
        assert!(offset % 4 == 0, "u32 section offset must be 4-aligned");
        assert!(offset.checked_add(len).is_some_and(|e| e <= self.len));
        // SAFETY: as u64s(), for u32.
        unsafe { std::slice::from_raw_parts(self.base.add(offset).cast::<u32>(), count) }
    }

    /// Advises the kernel the whole mapping will be accessed randomly.
    /// Best-effort: errors are ignored — default paging is slower, not
    /// wrong.
    pub fn advise_random(&self) {
        #[cfg(unix)]
        // SAFETY: (base, len) is the live mapping; madvise only tunes
        // paging policy, it cannot invalidate the mapping.
        unsafe {
            sys::madvise(self.base as *mut u8, self.len, sys::MADV_RANDOM);
        }
    }

    /// Advises the kernel the first `prefix` bytes are needed soon
    /// (fault them in now). Best-effort; `prefix` is clamped to the
    /// mapping.
    pub fn advise_willneed_prefix(&self, prefix: usize) {
        #[cfg(unix)]
        // SAFETY: as advise_random(), over a clamped prefix.
        unsafe {
            sys::madvise(
                self.base as *mut u8,
                prefix.min(self.len),
                sys::MADV_WILLNEED,
            );
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: (base, len) is the mapping created in open_impl; we are
        // the sole owner, and no borrow of the mapping can outlive self.
        unsafe {
            sys::munmap(self.base as *mut u8, self.len);
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

/// A read-only memory-mapped v2 snapshot serving the [`CsrAccess`] API
/// with zero copies (labels excepted — see [`MmapCsr::labels`]).
///
/// Opening validates the header, the section table, and the full CSR
/// structure (offset monotonicity, endpoint ranges, probability ranges),
/// so the accessors can never panic or read out of bounds for any node
/// `v < n`. Per-section content checksums are **deferred**: call
/// [`MmapCsr::verify`] to pay the full integrity pass when the file's
/// provenance is in doubt. Dropping the view unmaps the file.
#[derive(Debug)]
pub struct MmapCsr {
    map: Mmap,
    n: usize,
    m: usize,
    checksum: u64,
    /// Byte offset of each section from the mapping base, in
    /// `v2_section` order.
    sections: [usize; V2_SECTION_COUNT],
    /// Per-section FNV checksums from the table, for [`MmapCsr::verify`].
    section_fnv: [u64; V2_SECTION_COUNT],
}

impl MmapCsr {
    /// Maps the v2 snapshot at `path` and validates everything needed to
    /// make the accessors infallible.
    ///
    /// Errors with a clean [`GraphError`] when the file is not a v2
    /// snapshot (use [`snapshot::snapshot_version`] to sniff first), when
    /// any structural invariant fails, and on non-unix or big-endian
    /// hosts where zero-copy mapping is not implemented (the eager heap
    /// decoder in [`snapshot::load_snapshot`] remains fully portable).
    pub fn open<P: AsRef<Path>>(path: P) -> Result<MmapCsr, GraphError> {
        let map = Mmap::open(path)?;
        let layout = snapshot::parse_v2_layout(map.bytes(), map.len() as u64)?;
        let view = Self::from_layout(map, &layout)?;

        view.map.advise_random();
        // Offsets are touched for every sampled node; fault the header
        // and both offset sections in up front.
        view.map
            .advise_willneed_prefix(view.sections[v2_section::OUT_TARGETS]);
        Ok(view)
    }

    /// Builds the view over an already-validated layout, then runs the
    /// eager structural scan that makes the accessors infallible.
    fn from_layout(map: Mmap, layout: &V2Layout) -> Result<MmapCsr, GraphError> {
        let mut sections = [0usize; V2_SECTION_COUNT];
        let mut section_fnv = [0u64; V2_SECTION_COUNT];
        for (i, s) in layout.sections.iter().enumerate() {
            // In-bounds per parse_v2_layout; usize conversion cannot
            // truncate because offset + len <= file_len <= usize::MAX.
            sections[i] = s.offset as usize;
            section_fnv[i] = s.fnv;
        }
        let view = MmapCsr {
            map,
            n: layout.n as usize,
            m: layout.m as usize,
            checksum: layout.checksum,
            sections,
            section_fnv,
        };
        snapshot::validate_v2_csr(
            layout.n,
            layout.m,
            view.offsets(v2_section::OUT_OFFSETS),
            view.endpoints(v2_section::OUT_TARGETS),
            view.offsets(v2_section::IN_OFFSETS),
            view.endpoints(v2_section::IN_SOURCES),
            [
                view.prob_bits(v2_section::OUT_PROBS),
                view.prob_bits(v2_section::IN_PROBS),
            ],
        )?;
        Ok(view)
    }

    /// Byte length of section `i` (exact for `n`/`m`, validated at open).
    fn section_len(&self, i: usize) -> usize {
        snapshot::v2_expected_len(i, self.n as u64, self.m as u64).expect("validated at open")
            as usize
    }

    /// Raw bytes of section `i`; bounds come from the validated table.
    fn section_bytes(&self, i: usize) -> &[u8] {
        &self.map.bytes()[self.sections[i]..self.sections[i] + self.section_len(i)]
    }

    /// An offsets section as `&[u64]` (length `n + 1`).
    fn offsets(&self, i: usize) -> &[u64] {
        self.map.u64s(self.sections[i], self.section_len(i) / 8)
    }

    /// An endpoint section as `&[u32]` (length `m`).
    fn endpoints(&self, i: usize) -> &[NodeId] {
        self.map.u32s(self.sections[i], self.section_len(i) / 4)
    }

    /// A probability section as raw `&[u32]` bits (length `m`).
    fn prob_bits(&self, i: usize) -> &[u32] {
        self.map.u32s(self.sections[i], self.section_len(i) / 4)
    }

    /// A probability section as `&[f32]` (length `m`).
    fn probs(&self, i: usize) -> &[f32] {
        let bits = self.prob_bits(i);
        // SAFETY: same base pointer and length as the validated u32
        // view; every bit pattern is a valid f32 (NaNs were rejected by
        // the open-time range scan, but would be *safe* regardless).
        unsafe { std::slice::from_raw_parts(bits.as_ptr().cast::<f32>(), bits.len()) }
    }

    /// Edge range of node `v` in the section pair starting at `offsets`.
    #[inline]
    fn range(&self, offsets: &[u64], v: NodeId) -> std::ops::Range<usize> {
        let v = v as usize;
        // Clamp against m: the offsets were validated monotone 0..=m at
        // open, so under honest files this is the identity; under a
        // racing writer it degrades to a short slice instead of UB.
        let lo = (offsets[v] as usize).min(self.m);
        let hi = (offsets[v + 1] as usize).clamp(lo, self.m);
        lo..hi
    }

    /// The content checksum recorded in the header — equal to
    /// [`snapshot::graph_checksum`] of the heap-decoded form, so pool
    /// provenance is identical across backings without an O(m) hash.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// The label section (`n × u64`), borrowed from the mapping.
    pub fn labels(&self) -> &[u64] {
        self.offsets(v2_section::LABELS)
    }

    /// Verifies every per-section FNV checksum against the mapped bytes
    /// — the deferred integrity pass. O(file size); faults in every page.
    pub fn verify(&self) -> Result<(), GraphError> {
        for i in 0..V2_SECTION_COUNT {
            let mut h = Fnv1a::new();
            h.update(self.section_bytes(i));
            if h.finish() != self.section_fnv[i] {
                return Err(snap_err(format!(
                    "v2 section {i} checksum mismatch: table says {:#018x}, \
                     data hashes to {:#018x}",
                    self.section_fnv[i],
                    h.finish()
                )));
            }
        }
        Ok(())
    }

    /// Decodes the mapping into an owned heap [`Graph`](crate::Graph) and
    /// label vector (an escape hatch for code that needs mutation, e.g.
    /// re-weighting).
    pub fn to_loaded(&self) -> Result<crate::io::LoadedGraph, GraphError> {
        snapshot::read_snapshot(self.map.bytes())
    }
}

impl CsrAccess for MmapCsr {
    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn m(&self) -> usize {
        self.m
    }

    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        self.range(self.offsets(v2_section::OUT_OFFSETS), v).len()
    }

    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        self.range(self.offsets(v2_section::IN_OFFSETS), v).len()
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let r = self.range(self.offsets(v2_section::OUT_OFFSETS), v);
        &self.endpoints(v2_section::OUT_TARGETS)[r]
    }

    #[inline]
    fn out_probabilities(&self, v: NodeId) -> &[f32] {
        let r = self.range(self.offsets(v2_section::OUT_OFFSETS), v);
        &self.probs(v2_section::OUT_PROBS)[r]
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let r = self.range(self.offsets(v2_section::IN_OFFSETS), v);
        &self.endpoints(v2_section::IN_SOURCES)[r]
    }

    #[inline]
    fn in_probabilities(&self, v: NodeId) -> &[f32] {
        let r = self.range(self.offsets(v2_section::IN_OFFSETS), v);
        &self.probs(v2_section::IN_PROBS)[r]
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::snapshot::{graph_checksum, save_snapshot, save_snapshot_v2};
    use crate::{gen, weights, Graph};

    fn sample() -> (Graph, Vec<u64>) {
        let mut g = gen::barabasi_albert(120, 4, 0.1, 11);
        weights::assign_weighted_cascade(&mut g);
        let labels: Vec<u64> = (0..g.n() as u64).map(|i| i * 3 + 1).collect();
        (g, labels)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("timg_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mmap_view_matches_heap_graph_exactly() {
        let (g, labels) = sample();
        let path = tmp("view.timg");
        save_snapshot_v2(&g, &labels, &path).unwrap();
        let view = MmapCsr::open(&path).unwrap();
        assert_eq!(view.n(), g.n());
        assert_eq!(view.m(), g.m());
        assert_eq!(view.checksum(), graph_checksum(&g));
        assert_eq!(view.labels(), labels.as_slice());
        for v in 0..g.n() as NodeId {
            assert_eq!(view.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(view.out_probabilities(v), g.out_probabilities(v));
            assert_eq!(view.in_neighbors(v), g.in_neighbors(v));
            assert_eq!(view.in_probabilities(v), g.in_probabilities(v));
            assert_eq!(view.out_degree(v), g.out_degree(v));
            assert_eq!(view.in_degree(v), g.in_degree(v));
        }
        view.verify().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_snapshot_is_rejected_cleanly() {
        let (g, labels) = sample();
        let path = tmp("v1.timg");
        save_snapshot(&g, &labels, &path).unwrap();
        assert!(matches!(
            MmapCsr::open(&path),
            Err(GraphError::Snapshot { message }) if message.contains("not a v2")
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_catches_a_post_open_flip() {
        let (g, labels) = sample();
        let path = tmp("flip.timg");
        save_snapshot_v2(&g, &labels, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80; // last label byte: structural scan passes
        std::fs::write(&path, &bytes).unwrap();
        let view = MmapCsr::open(&path).unwrap();
        assert!(view.verify().is_err(), "deferred checksum must catch it");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn to_loaded_round_trips() {
        let (g, labels) = sample();
        let path = tmp("owned.timg");
        save_snapshot_v2(&g, &labels, &path).unwrap();
        let view = MmapCsr::open(&path).unwrap();
        let loaded = view.to_loaded().unwrap();
        assert_eq!(graph_checksum(&loaded.graph), graph_checksum(&g));
        assert_eq!(loaded.labels, labels);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn view_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MmapCsr>();
    }
}
