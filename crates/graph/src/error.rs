//! Error type shared by graph construction and I/O.

use std::fmt;

/// Errors raised while building or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id >= the declared node count.
    NodeOutOfRange {
        /// Offending node id.
        node: u64,
        /// Declared node count.
        n: usize,
    },
    /// An edge probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Source node of the edge.
        src: u32,
        /// Target node of the edge.
        dst: u32,
        /// The rejected value.
        p: f32,
    },
    /// A text line could not be parsed as an edge.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of what failed.
        message: String,
    },
    /// A binary snapshot was malformed, truncated, version-mismatched, or
    /// failed its checksum.
    Snapshot {
        /// Explanation of what failed.
        message: String,
    },
    /// A graph-catalog specification was invalid: a bad graph name, a
    /// malformed `name=path` spec, an unknown weight-model spec, or a
    /// directory scan that produced no usable graphs.
    Catalog {
        /// Explanation of what failed.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::InvalidProbability { src, dst, p } => {
                write!(f, "edge {src}->{dst} has invalid probability {p}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Snapshot { message } => {
                write!(f, "snapshot error: {message}")
            }
            GraphError::Catalog { message } => {
                write!(f, "{message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 10, n: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));

        let e = GraphError::InvalidProbability {
            src: 1,
            dst: 2,
            p: 1.5,
        };
        assert!(e.to_string().contains("1->2"));

        let e = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e: GraphError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
