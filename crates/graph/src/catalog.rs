//! Helpers for multi-graph catalogs: graph-name validation, `name=path`
//! spec parsing, and directory scans.
//!
//! A serving process (`tim serve`, see `tim_server`) can host several
//! *named* graphs at once; clients address them by name over the wire
//! (`use <graph>` in protocol `tim/2`). Names therefore have a strict
//! shape — they travel inside a whitespace-tokenized line protocol — and
//! the mapping from names to files must be deterministic. This module
//! owns those rules so the CLI, the server, and the tests agree on them:
//!
//! - [`validate_graph_name`] — the normative name grammar;
//! - [`parse_graph_spec`] — `--graph name=path` flag parsing;
//! - [`GraphOverrides`] / [`parse_graph_spec_full`] — per-graph serving
//!   overrides (`name=path::model=lt,eps=0.2,…`), the one grammar shared
//!   by the CLI `--graph` flag and the protocol's `attach` admin verb;
//! - [`scan_graph_dir`] — `--graphs <dir>` scans, deterministic
//!   (name-sorted) and snapshot-preferring.

use crate::GraphError;
use std::path::{Path, PathBuf};

/// Longest accepted graph name, in bytes.
pub const MAX_GRAPH_NAME_BYTES: usize = 64;

/// File extensions a [`scan_graph_dir`] pass considers, in *preference
/// order* for a shared stem: binary snapshots load ~5× faster than text,
/// so `net.timg` shadows `net.txt`.
pub const SCAN_EXTENSIONS: &[&str] = &["timg", "txt", "edges"];

/// Checks a graph name against the catalog grammar: 1 to
/// [`MAX_GRAPH_NAME_BYTES`] bytes of ASCII alphanumerics, `_`, `-`, or
/// `.`, starting with an alphanumeric.
///
/// The grammar keeps names safe inside the whitespace-tokenized line
/// protocol (no spaces, no control characters) and safe as file stems
/// (no path separators, cannot look like a flag or a relative path).
///
/// ```
/// use tim_graph::catalog::validate_graph_name;
///
/// assert!(validate_graph_name("net-hept.v2").is_ok());
/// assert!(validate_graph_name("").is_err());
/// assert!(validate_graph_name("-flag").is_err());
/// assert!(validate_graph_name("a b").is_err());
/// ```
pub fn validate_graph_name(name: &str) -> Result<(), GraphError> {
    let bad = |message: String| GraphError::Catalog { message };
    if name.is_empty() {
        return Err(bad("graph name must not be empty".into()));
    }
    if name.len() > MAX_GRAPH_NAME_BYTES {
        return Err(bad(format!(
            "graph name '{name}' exceeds {MAX_GRAPH_NAME_BYTES} bytes"
        )));
    }
    let mut chars = name.chars();
    let first = chars.next().expect("non-empty name");
    if !first.is_ascii_alphanumeric() {
        return Err(bad(format!(
            "graph name '{name}' must start with an ASCII letter or digit"
        )));
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.')))
    {
        return Err(bad(format!(
            "graph name '{name}' contains invalid character '{c}' \
             (allowed: ASCII letters, digits, '_', '-', '.')"
        )));
    }
    Ok(())
}

/// Parses a `--graph` flag value of the form `name=path` into a validated
/// `(name, path)` pair.
///
/// ```
/// use tim_graph::catalog::parse_graph_spec;
///
/// let (name, path) = parse_graph_spec("hept=data/net.timg").unwrap();
/// assert_eq!(name, "hept");
/// assert_eq!(path.to_str(), Some("data/net.timg"));
/// assert!(parse_graph_spec("no-equals-sign").is_err());
/// assert!(parse_graph_spec("x=").is_err());
/// ```
pub fn parse_graph_spec(spec: &str) -> Result<(String, PathBuf), GraphError> {
    let (name, path) = spec.split_once('=').ok_or_else(|| GraphError::Catalog {
        message: format!("graph spec '{spec}' must have the form name=path"),
    })?;
    validate_graph_name(name)?;
    if path.is_empty() {
        return Err(GraphError::Catalog {
            message: format!("graph spec '{spec}' has an empty path"),
        });
    }
    Ok((name.to_string(), PathBuf::from(path)))
}

/// Per-graph serving overrides, carried by a graph spec. Every field is
/// optional; `None` means "inherit the catalog's global default". The
/// semantics live in the serving layer (`tim_server`); this type owns
/// only the *grammar*, so the CLI flag and the wire-protocol `attach`
/// verb cannot drift apart.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphOverrides {
    /// Diffusion-model tag override (`model=lt`).
    pub model: Option<String>,
    /// Approximation-slack override (`eps=0.2`; must be positive).
    pub epsilon: Option<f64>,
    /// Failure-exponent override (`ell=2`; must be positive).
    pub ell: Option<f64>,
    /// Run-seed override (`seed=9`).
    pub seed: Option<u64>,
    /// Warmed seed-set-size override (`k=20`; must be at least 1).
    pub k_max: Option<usize>,
    /// Weight-spec override (`weights=lt`; validated when the graph
    /// loads, like the global `--weights`).
    pub weights: Option<String>,
    /// Backing override (`mmap=on` / `mmap=off`): serve this tenant as a
    /// zero-copy view over a v2 snapshot instead of decoding to the heap.
    pub mmap: Option<bool>,
    /// Pool-backing override (`mmap_pools=on` / `mmap_pools=off`):
    /// restore this tenant's persisted `.timp` v2 pools as zero-copy
    /// read-only mappings instead of decoding them onto the heap.
    pub mmap_pools: Option<bool>,
    /// Greedy-selection thread override (`select_threads=4`; 0 = all
    /// cores). Never changes answers, only per-query latency.
    pub select_threads: Option<usize>,
    /// Greedy-selection strategy override
    /// (`select_strategy=eager|lazy|auto`). Stored as the validated
    /// spelling — this crate sits below the solver crate, so the server
    /// parses it into its own strategy enum. Never changes answers,
    /// only how many gains the sharded workers evaluate.
    pub select_strategy: Option<String>,
}

impl GraphOverrides {
    /// True when no field is overridden.
    pub fn is_empty(&self) -> bool {
        *self == GraphOverrides::default()
    }

    /// Applies one `key=value` item. Unknown keys, bad values, and
    /// duplicate keys are errors — a typo'd override must not silently
    /// serve the global default.
    pub fn apply_item(&mut self, item: &str) -> Result<(), GraphError> {
        let bad = |message: String| GraphError::Catalog { message };
        let (key, value) = item.split_once('=').ok_or_else(|| {
            bad(format!(
                "graph override '{item}' must have the form key=value"
            ))
        })?;
        if value.is_empty() {
            return Err(bad(format!("graph override '{item}' has an empty value")));
        }
        let dup = |key: &str| bad(format!("graph override '{key}' given twice"));
        match key {
            "model" => {
                if self.model.replace(value.to_string()).is_some() {
                    return Err(dup(key));
                }
            }
            "eps" => {
                let v: f64 = value
                    .parse()
                    .ok()
                    .filter(|v: &f64| v.is_finite() && *v > 0.0)
                    .ok_or_else(|| bad(format!("eps override '{value}' must be positive")))?;
                if self.epsilon.replace(v).is_some() {
                    return Err(dup(key));
                }
            }
            "ell" => {
                let v: f64 = value
                    .parse()
                    .ok()
                    .filter(|v: &f64| v.is_finite() && *v > 0.0)
                    .ok_or_else(|| bad(format!("ell override '{value}' must be positive")))?;
                if self.ell.replace(v).is_some() {
                    return Err(dup(key));
                }
            }
            "seed" => {
                let v: u64 = value
                    .parse()
                    .map_err(|_| bad(format!("seed override '{value}' must be a u64")))?;
                if self.seed.replace(v).is_some() {
                    return Err(dup(key));
                }
            }
            "k" => {
                let v: usize = value
                    .parse()
                    .ok()
                    .filter(|&v| v >= 1)
                    .ok_or_else(|| bad(format!("k override '{value}' must be at least 1")))?;
                if self.k_max.replace(v).is_some() {
                    return Err(dup(key));
                }
            }
            "weights" => {
                // Validate the spec grammar here, at parse time — a bad
                // override must fail the attach, not the tenant's first
                // query.
                crate::weights::validate_spec(value)?;
                if self.weights.replace(value.to_string()).is_some() {
                    return Err(dup(key));
                }
            }
            "mmap" => {
                let flag = match value {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => {
                        return Err(bad(format!(
                            "graph override 'mmap={other}' must be on or off"
                        )))
                    }
                };
                if self.mmap.replace(flag).is_some() {
                    return Err(dup(key));
                }
            }
            "mmap_pools" => {
                let flag = match value {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => {
                        return Err(bad(format!(
                            "graph override 'mmap_pools={other}' must be on or off"
                        )))
                    }
                };
                if self.mmap_pools.replace(flag).is_some() {
                    return Err(dup(key));
                }
            }
            "select_threads" => {
                let v: usize = value.parse().map_err(|_| {
                    bad(format!(
                        "select_threads override '{value}' must be a thread count (0 = all cores)"
                    ))
                })?;
                if self.select_threads.replace(v).is_some() {
                    return Err(dup(key));
                }
            }
            "select_strategy" => {
                if !matches!(value, "eager" | "lazy" | "auto") {
                    return Err(bad(format!(
                        "select_strategy override '{value}' must be eager, lazy, or auto"
                    )));
                }
                if self.select_strategy.replace(value.to_string()).is_some() {
                    return Err(dup(key));
                }
            }
            other => {
                return Err(bad(format!(
                "unknown graph override '{other}' (known: model, eps, ell, seed, k, weights, mmap, mmap_pools, select_threads, select_strategy)"
            )))
            }
        }
        Ok(())
    }

    /// Parses a comma-separated override list (`model=lt,eps=0.2`).
    pub fn parse(items: &str) -> Result<Self, GraphError> {
        let mut overrides = GraphOverrides::default();
        for item in items.split(',').filter(|i| !i.is_empty()) {
            overrides.apply_item(item)?;
        }
        Ok(overrides)
    }
}

/// Parses a full graph spec `name=path[::overrides]`, where `overrides`
/// is a comma-separated `key=value` list ([`GraphOverrides::parse`]).
/// The `::` separator keeps paths unrestricted (a path may contain `=`
/// and `,`; a double colon in a path is not supported).
///
/// ```
/// use tim_graph::catalog::parse_graph_spec_full;
///
/// let (name, path, o) = parse_graph_spec_full("ws=data/ws.timg::model=lt,eps=0.2").unwrap();
/// assert_eq!(name, "ws");
/// assert_eq!(path.to_str(), Some("data/ws.timg"));
/// assert_eq!(o.model.as_deref(), Some("lt"));
/// assert_eq!(o.epsilon, Some(0.2));
/// assert!(parse_graph_spec_full("ws=g.txt::eps=-1").is_err());
/// ```
pub fn parse_graph_spec_full(spec: &str) -> Result<(String, PathBuf, GraphOverrides), GraphError> {
    let (base, overrides) = match spec.split_once("::") {
        Some((base, items)) => (base, GraphOverrides::parse(items)?),
        None => (spec, GraphOverrides::default()),
    };
    let (name, path) = parse_graph_spec(base)?;
    Ok((name, path, overrides))
}

/// Scans a directory for graph files and returns `(name, path)` pairs,
/// sorted by name.
///
/// A file participates when its extension is one of [`SCAN_EXTENSIONS`]
/// and its stem is a valid graph name ([`validate_graph_name`]); its stem
/// becomes the graph's name. When several files share a stem (e.g.
/// `net.timg` next to the `net.txt` it was snapshotted from), the
/// earliest extension in [`SCAN_EXTENSIONS`] wins — snapshots shadow
/// text. Files with other extensions, invalid stems, and subdirectories
/// are skipped silently; an empty result is an error (a typo'd directory
/// should not produce a silently empty catalog).
pub fn scan_graph_dir(dir: impl AsRef<Path>) -> Result<Vec<(String, PathBuf)>, GraphError> {
    let dir = dir.as_ref();
    let mut found: Vec<(String, usize, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let Some(ext) = path.extension().and_then(|e| e.to_str()) else {
            continue;
        };
        let Some(rank) = SCAN_EXTENSIONS.iter().position(|&e| e == ext) else {
            continue;
        };
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if validate_graph_name(stem).is_err() {
            continue;
        }
        found.push((stem.to_string(), rank, path));
    }
    if found.is_empty() {
        return Err(GraphError::Catalog {
            message: format!(
                "no graph files (.{}) found in {}",
                SCAN_EXTENSIONS.join("/."),
                dir.display()
            ),
        });
    }
    // Sort by (name, extension preference); the first entry per name wins.
    found.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    found.dedup_by(|next, kept| next.0 == kept.0);
    Ok(found
        .into_iter()
        .map(|(name, _, path)| (name, path))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_grammar_accepts_and_rejects() {
        for ok in ["a", "net-hept", "dblp.v2", "G_1", "0ab", &"x".repeat(64)] {
            validate_graph_name(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
        for bad in [
            "",
            "-flag",
            ".hidden",
            "_x",
            "a b",
            "a/b",
            "a\tb",
            "na=me",
            &"x".repeat(65),
        ] {
            assert!(validate_graph_name(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn graph_spec_parses_and_rejects() {
        let (n, p) = parse_graph_spec("g1=/tmp/g1.timg").unwrap();
        assert_eq!((n.as_str(), p.to_str().unwrap()), ("g1", "/tmp/g1.timg"));
        // Only the first '=' splits, so paths may contain '='.
        let (_, p) = parse_graph_spec("g=/tmp/a=b.txt").unwrap();
        assert_eq!(p.to_str().unwrap(), "/tmp/a=b.txt");
        for bad in ["nopath", "=path", "bad name=x", "g="] {
            assert!(parse_graph_spec(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn overrides_parse_validate_and_reject() {
        let o = GraphOverrides::parse(
            "model=lt,eps=0.2,ell=2,seed=9,k=20,weights=lt,mmap=on,mmap_pools=on,select_threads=4,select_strategy=lazy",
        )
        .unwrap();
        assert_eq!(o.model.as_deref(), Some("lt"));
        assert_eq!(o.epsilon, Some(0.2));
        assert_eq!(o.ell, Some(2.0));
        assert_eq!(o.seed, Some(9));
        assert_eq!(o.k_max, Some(20));
        assert_eq!(o.weights.as_deref(), Some("lt"));
        assert_eq!(o.mmap, Some(true));
        assert_eq!(o.mmap_pools, Some(true));
        assert_eq!(o.select_threads, Some(4));
        assert_eq!(o.select_strategy.as_deref(), Some("lazy"));
        assert_eq!(GraphOverrides::parse("mmap=off").unwrap().mmap, Some(false));
        assert_eq!(
            GraphOverrides::parse("mmap_pools=off").unwrap().mmap_pools,
            Some(false)
        );
        for s in ["eager", "lazy", "auto"] {
            assert_eq!(
                GraphOverrides::parse(&format!("select_strategy={s}"))
                    .unwrap()
                    .select_strategy
                    .as_deref(),
                Some(s)
            );
        }
        assert_eq!(
            GraphOverrides::parse("select_threads=0")
                .unwrap()
                .select_threads,
            Some(0)
        );
        assert!(!o.is_empty());
        assert!(GraphOverrides::parse("").unwrap().is_empty());
        for bad in [
            "nope=1",
            "eps=0",
            "eps=-1",
            "eps=NaN",
            "ell=0",
            "seed=x",
            "k=0",
            "model=",
            "justakey",
            "eps=0.1,eps=0.2",
            "weights=bogus",
            "weights=const:x",
            "mmap=maybe",
            "mmap=on,mmap=off",
            "mmap_pools=maybe",
            "mmap_pools=on,mmap_pools=off",
            "select_threads=x",
            "select_threads=2,select_threads=4",
            "select_strategy=greedy",
            "select_strategy=lazy,select_strategy=eager",
        ] {
            assert!(GraphOverrides::parse(bad).is_err(), "{bad:?} accepted");
        }
        // The weights grammar accepts what apply_spec accepts.
        assert!(GraphOverrides::parse("weights=const:0.05").is_ok());
    }

    #[test]
    fn full_spec_parses_with_and_without_overrides() {
        let (n, p, o) = parse_graph_spec_full("g=/tmp/a=b.txt").unwrap();
        assert_eq!((n.as_str(), p.to_str().unwrap()), ("g", "/tmp/a=b.txt"));
        assert!(o.is_empty());
        let (n, p, o) = parse_graph_spec_full("g=/tmp/x.timg::eps=0.5,seed=3").unwrap();
        assert_eq!((n.as_str(), p.to_str().unwrap()), ("g", "/tmp/x.timg"));
        assert_eq!((o.epsilon, o.seed), (Some(0.5), Some(3)));
        assert!(parse_graph_spec_full("g=::eps=0.5").is_err(), "empty path");
        assert!(parse_graph_spec_full("g=/tmp/x::bogus=1").is_err());
    }

    #[test]
    fn dir_scan_is_sorted_and_prefers_snapshots() {
        let dir = std::env::temp_dir().join(format!("tim_catalog_scan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for f in [
            "beta.txt",
            "alpha.timg",
            "alpha.txt", // shadowed by alpha.timg
            "gamma.edges",
            "ignored.csv",
            "bad name.txt", // invalid stem
        ] {
            std::fs::write(dir.join(f), "0 1\n").unwrap();
        }
        let got = scan_graph_dir(&dir).unwrap();
        let names: Vec<&str> = got.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
        assert!(got[0].1.ends_with("alpha.timg"), "snapshot preferred");
        assert!(got[1].1.ends_with("beta.txt"));
        assert!(got[2].1.ends_with("gamma.edges"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_scan_is_an_error() {
        let dir = std::env::temp_dir().join(format!("tim_catalog_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("readme.md"), "x").unwrap();
        assert!(scan_graph_dir(&dir).is_err());
        assert!(scan_graph_dir(dir.join("missing")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
