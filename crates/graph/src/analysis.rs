//! Structural graph analysis: components, distances, degree distribution.
//!
//! These utilities support dataset characterisation (Table-2-style
//! reporting), sanity checks on generated stand-ins (a social network
//! should have a giant SCC and a heavy-tailed degree histogram), and the
//! examples.

use crate::{Graph, NodeId};

/// Degree histogram: `histogram[d]` = number of nodes with the given
/// degree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Counts indexed by degree (length = max degree + 1).
    pub counts: Vec<usize>,
}

impl DegreeHistogram {
    /// Number of nodes with degree exactly `d`.
    pub fn count(&self, d: usize) -> usize {
        self.counts.get(d).copied().unwrap_or(0)
    }

    /// Largest degree present.
    pub fn max_degree(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Fraction of nodes with degree ≥ `d`; the tail function whose
    /// log-log slope identifies a power law.
    pub fn tail_fraction(&self, d: usize) -> f64 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let tail: usize = self.counts.iter().skip(d).sum();
        tail as f64 / total as f64
    }
}

/// Out-degree histogram of `g`.
pub fn out_degree_histogram(g: &Graph) -> DegreeHistogram {
    let mut counts = Vec::new();
    for v in 0..g.n() as NodeId {
        let d = g.out_degree(v);
        if d >= counts.len() {
            counts.resize(d + 1, 0);
        }
        counts[d] += 1;
    }
    if counts.is_empty() {
        counts.push(0);
    }
    DegreeHistogram { counts }
}

/// In-degree histogram of `g`.
pub fn in_degree_histogram(g: &Graph) -> DegreeHistogram {
    let mut counts = Vec::new();
    for v in 0..g.n() as NodeId {
        let d = g.in_degree(v);
        if d >= counts.len() {
            counts.resize(d + 1, 0);
        }
        counts[d] += 1;
    }
    if counts.is_empty() {
        counts.push(0);
    }
    DegreeHistogram { counts }
}

/// BFS hop distances from `source` following out-edges; unreachable nodes
/// get `u32::MAX`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    assert!((source as usize) < g.n(), "source out of range");
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue: Vec<NodeId> = vec![source];
    dist[source as usize] = 0;
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist[u as usize];
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push(v);
            }
        }
    }
    dist
}

/// Strongly connected components via Tarjan's algorithm (iterative, safe
/// for million-node graphs). Returns `(component_id_per_node,
/// component_count)`; ids are in reverse topological order of the
/// condensation.
pub fn strongly_connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.n();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n]; // discovery order
    let mut low = vec![0u32; n];
    let mut comp = vec![UNSET; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0usize;

    // Explicit DFS frames: (node, next out-edge offset).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();
    for start in 0..n as NodeId {
        if index[start as usize] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&(v, edge)) = frames.last() {
            let nbrs = g.out_neighbors(v);
            if edge < nbrs.len() {
                frames.last_mut().expect("frame exists").1 += 1;
                let w = nbrs[edge];
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    // v is an SCC root; pop its component.
                    loop {
                        let w = stack.pop().expect("stack invariant");
                        on_stack[w as usize] = false;
                        comp[w as usize] = comp_count as u32;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    (comp, comp_count)
}

/// Size of the largest strongly connected component.
pub fn largest_scc_size(g: &Graph) -> usize {
    let (comp, count) = strongly_connected_components(g);
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i as NodeId, ((i + 1) % n) as NodeId);
        }
        b.build()
    }

    #[test]
    fn histogram_counts_degrees() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let g = b.build();
        let h = out_degree_histogram(&g);
        assert_eq!(h.count(0), 2); // nodes 2 and 3
        assert_eq!(h.count(1), 1); // node 1
        assert_eq!(h.count(2), 1); // node 0
        assert_eq!(h.max_degree(), 2);
        let hi = in_degree_histogram(&g);
        assert_eq!(hi.count(2), 1); // node 2
    }

    #[test]
    fn tail_fraction_is_monotone() {
        let g = gen::barabasi_albert(500, 3, 0.0, 1);
        let h = in_degree_histogram(&g);
        assert_eq!(h.tail_fraction(0), 1.0);
        let mut prev = 1.0;
        for d in 1..h.max_degree() {
            let t = h.tail_fraction(d);
            assert!(t <= prev + 1e-12);
            prev = t;
        }
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        let from_end = bfs_distances(&g, 3);
        assert_eq!(from_end[3], 0);
        assert_eq!(from_end[0], u32::MAX);
    }

    #[test]
    fn scc_of_a_cycle_is_one_component() {
        let g = cycle(7);
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
        assert!(comp.iter().all(|&c| c == comp[0]));
        assert_eq!(largest_scc_size(&g), 7);
    }

    #[test]
    fn scc_of_a_dag_is_singletons() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 3);
        b.add_edge(3, 4);
        let g = b.build();
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 5);
        assert_eq!(largest_scc_size(&g), 1);
    }

    #[test]
    fn scc_mixed_structure() {
        // Cycle {0,1,2} feeding a chain 3 -> 4.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        let g = b.build();
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[3], comp[0]);
        assert_ne!(comp[4], comp[3]);
        assert_eq!(largest_scc_size(&g), 3);
    }

    #[test]
    fn scc_ids_are_reverse_topological() {
        // Tarjan emits sink components first: comp id of a successor SCC is
        // smaller than its predecessor's.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 1); // {1,2} cycle
        b.add_edge(2, 3);
        let g = b.build();
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 3);
        assert!(comp[3] < comp[1]);
        assert!(comp[1] < comp[0]);
    }

    #[test]
    fn symmetrized_ba_graph_has_giant_component() {
        let g = gen::symmetrize(&gen::barabasi_albert(400, 3, 0.0, 2));
        let giant = largest_scc_size(&g);
        assert!(
            giant > 350,
            "symmetric BA graph should be mostly one SCC, got {giant}"
        );
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = GraphBuilder::new(0).build();
        let (comp, count) = strongly_connected_components(&g);
        assert!(comp.is_empty());
        assert_eq!(count, 0);
        assert_eq!(largest_scc_size(&g), 0);
        assert_eq!(out_degree_histogram(&g).count(0), 0);
    }

    #[test]
    fn scc_matches_bruteforce_reachability_on_random_graphs() {
        for seed in 0..5u64 {
            let g = gen::erdos_renyi_gnm(25, 60, seed);
            let (comp, _) = strongly_connected_components(&g);
            // u, v in the same SCC iff mutually reachable.
            let reach: Vec<Vec<bool>> = (0..g.n() as NodeId)
                .map(|v| {
                    let d = bfs_distances(&g, v);
                    d.into_iter().map(|x| x != u32::MAX).collect()
                })
                .collect();
            for u in 0..g.n() {
                for v in 0..g.n() {
                    let mutual = reach[u][v] && reach[v][u];
                    assert_eq!(comp[u] == comp[v], mutual, "seed {seed}: nodes {u},{v}");
                }
            }
        }
    }
}
