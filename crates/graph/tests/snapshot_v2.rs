//! Adversarial v2 decoder tests: round-trip bit-identity, then
//! property-driven corruption — bit flips, truncation at every section
//! boundary, misaligned/overlapping/out-of-bounds section offsets, huge
//! claimed counts. Every hostile input must yield a clean
//! [`GraphError`], never a panic or an out-of-bounds read, on BOTH v2
//! readers: the eager heap decode (`load_snapshot`) and the zero-copy
//! mapping (`MmapCsr::open` + `verify`). A corrupt attach must also
//! leave a catalog slot reusable, not poisoned.

use tim_graph::snapshot::{graph_checksum, load_snapshot, save_snapshot_v2, snapshot_version};
use tim_graph::{gen, weights, Graph, GraphStore, MmapCsr};

const HEADER_BYTES: usize = 272;
const ALIGN: usize = 4096;

fn sample() -> (Graph, Vec<u64>) {
    let mut g = gen::barabasi_albert(90, 3, 0.1, 11);
    weights::assign_weighted_cascade(&mut g);
    let labels: Vec<u64> = (0..g.n() as u64).map(|i| i * 13 + 1).collect();
    (g, labels)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tim_snapshot_v2_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes the sample as a v2 file and returns (path, pristine bytes).
fn write_sample(dir: &std::path::Path, name: &str) -> (std::path::PathBuf, Vec<u8>) {
    let (g, labels) = sample();
    let path = dir.join(format!("{name}.timg"));
    save_snapshot_v2(&g, &labels, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

/// Both v2 readers must reject the mutated bytes with a clean error. The
/// mapped reader gets its deferred check too (`verify`), since open alone
/// intentionally skips the O(m) section hashing.
fn assert_rejected(dir: &std::path::Path, bytes: &[u8], what: &str) {
    let path = dir.join("mutant.timg");
    std::fs::write(&path, bytes).unwrap();
    let eager = load_snapshot(&path);
    assert!(
        eager.is_err(),
        "{what}: eager decode accepted corrupt bytes"
    );
    if let Ok(view) = MmapCsr::open(&path) {
        assert!(
            view.verify().is_err(),
            "{what}: mmap open + verify accepted corrupt bytes"
        );
    }
}

/// The section table entries as (offset, len), straight from the header.
fn table(bytes: &[u8]) -> Vec<(u64, u64)> {
    (0..7)
        .map(|i| {
            let base = 48 + i * 32;
            let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
            (u64_at(base + 8), u64_at(base + 16))
        })
        .collect()
}

/// Re-seals the header checksum so mutations *below* it are exercised
/// (otherwise every header edit trips the outer checksum first).
fn reseal_header(bytes: &mut [u8]) {
    // FNV-1a over bytes 16..272, little-endian at bytes 8..16 — the
    // constants the format documents.
    let (mut hash, prime) = (0xcbf2_9ce4_8422_2325u64, 0x100_0000_01b3u64);
    for &b in &bytes[16..HEADER_BYTES] {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(prime);
    }
    bytes[8..16].copy_from_slice(&hash.to_le_bytes());
}

#[test]
fn v2_round_trip_is_bit_identical_and_content_faithful() {
    let dir = tmpdir("roundtrip");
    let (g, labels) = sample();
    let path = dir.join("rt.timg");
    save_snapshot_v2(&g, &labels, &path).unwrap();
    assert_eq!(snapshot_version(&path).unwrap(), Some(2));

    // Writing the same graph twice is bit-identical (no timestamps, no
    // map iteration order, nothing nondeterministic in the layout).
    let again = dir.join("rt2.timg");
    save_snapshot_v2(&g, &labels, &again).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&again).unwrap()
    );

    // Both readers agree with the source, bit for bit.
    let eager = load_snapshot(&path).unwrap();
    assert_eq!(graph_checksum(&eager.graph), graph_checksum(&g));
    assert_eq!(eager.labels, labels);
    let view = MmapCsr::open(&path).unwrap();
    view.verify().unwrap();
    assert_eq!(view.checksum(), graph_checksum(&g));
    assert_eq!(view.labels(), &labels[..]);
    let reloaded = view.to_loaded().unwrap();
    assert_eq!(graph_checksum(&reloaded.graph), graph_checksum(&g));

    // Sections are page-aligned as advertised.
    for (i, (offset, _)) in table(&std::fs::read(&path).unwrap()).iter().enumerate() {
        assert_eq!(offset % ALIGN as u64, 0, "section {i} misaligned");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flips_anywhere_are_rejected_cleanly() {
    let dir = tmpdir("bitflips");
    let (_, pristine) = write_sample(&dir, "src");
    // A deterministic spray: every region of the file gets hit — header
    // fields, table entries, section payloads, padding (a flipped pad
    // byte lands in a checksummed... no: padding is not covered by any
    // section checksum, so flips there may legitimately be accepted by
    // both readers; skip bytes that fall outside every section).
    let sections = table(&pristine);
    let in_some_section = |pos: usize| {
        pos < HEADER_BYTES
            || sections
                .iter()
                .any(|&(o, l)| (pos as u64) >= o && (pos as u64) < o + l)
    };
    let mut step = 97usize; // coprime-ish stride: ~hundreds of positions
    let mut pos = 3usize;
    while pos < pristine.len() {
        if in_some_section(pos) {
            let mut mutant = pristine.clone();
            mutant[pos] ^= 1 << (pos % 8);
            let path = dir.join("mutant.timg");
            std::fs::write(&path, &mutant).unwrap();
            // The eager reader checks everything at load; a single flipped
            // bit in header, table, or any section must surface as Err.
            assert!(
                load_snapshot(&path).is_err(),
                "eager decode accepted a bit flip at byte {pos}"
            );
            // The mapped reader may defer payload checks to verify().
            if let Ok(view) = MmapCsr::open(&path) {
                assert!(
                    view.verify().is_err(),
                    "mmap verify accepted a bit flip at byte {pos}"
                );
            }
        }
        pos += step;
        step = step.wrapping_mul(31) % 151 + 17; // vary the stride
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_at_every_boundary_is_rejected() {
    let dir = tmpdir("truncate");
    let (_, pristine) = write_sample(&dir, "src");
    let mut cuts: Vec<usize> = vec![0, 1, 3, 4, 7, 8, 15, 16, HEADER_BYTES - 1, HEADER_BYTES];
    for &(offset, len) in &table(&pristine) {
        for cut in [offset, offset + 1, offset + len - 1, offset + len] {
            cuts.push(cut as usize);
        }
    }
    cuts.push(pristine.len() - 1);
    for cut in cuts {
        if cut >= pristine.len() {
            continue;
        }
        assert_rejected(&dir, &pristine[..cut], &format!("truncated at {cut}"));
    }
    // Trailing garbage after the last section is rejected too.
    let mut longer = pristine.clone();
    longer.extend_from_slice(b"junk");
    assert_rejected(&dir, &longer, "trailing garbage");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hostile_section_tables_are_rejected() {
    let dir = tmpdir("table");
    let (_, pristine) = write_sample(&dir, "src");
    let sections = table(&pristine);

    let mutate = |edit: &dyn Fn(&mut Vec<u8>), what: &str| {
        let mut mutant = pristine.clone();
        edit(&mut mutant);
        reseal_header(&mut mutant);
        assert_rejected(&dir, &mutant, what);
    };
    let set_u64 = |bytes: &mut Vec<u8>, at: usize, v: u64| {
        bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
    };

    // Misaligned offset (still in bounds).
    mutate(
        &|b| set_u64(b, 48 + 8, sections[0].0 + 8),
        "misaligned section offset",
    );
    // Overlapping sections: section 1 placed over section 0.
    mutate(
        &|b| set_u64(b, 48 + 32 + 8, sections[0].0),
        "overlapping sections",
    );
    // Out of bounds: last section pushed past EOF.
    mutate(
        &|b| {
            set_u64(
                b,
                48 + 6 * 32 + 8,
                (pristine.len() as u64).div_ceil(4096) * 4096,
            )
        },
        "section past EOF",
    );
    // Offset into the header.
    mutate(&|b| set_u64(b, 48 + 8, 0), "section overlapping the header");
    // Wrong declared length for the counts.
    mutate(
        &|b| set_u64(b, 48 + 16, sections[0].1 + 8),
        "section length contradicting the counts",
    );
    // Shuffled section ids break canonical order.
    mutate(
        &|b| {
            b[48..52].copy_from_slice(&1u32.to_le_bytes());
            b[48 + 32..48 + 36].copy_from_slice(&0u32.to_le_bytes());
        },
        "out-of-order section ids",
    );
    // Huge claimed counts: n/m pushed to overflow-bait values.
    mutate(
        &|b| set_u64(b, 16, u64::from(u32::MAX)),
        "node count overflowing NodeId",
    );
    mutate(
        &|b| set_u64(b, 16, u64::MAX / 8),
        "node count overflowing arithmetic",
    );
    mutate(
        &|b| set_u64(b, 24, u64::MAX / 4),
        "arc count overflowing arithmetic",
    );
    mutate(
        &|b| set_u64(b, 24, 1 << 40),
        "arc count larger than any section",
    );
    // Wrong section count.
    mutate(&|b| set_u64(b, 40, 6), "wrong section count");
    mutate(&|b| set_u64(b, 40, u64::MAX), "huge section count");
    // Version gate: v1 readers must never be fed v2 bytes silently.
    mutate(
        &|b| b[4..8].copy_from_slice(&3u32.to_le_bytes()),
        "unknown version",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn structural_csr_corruption_is_rejected_by_both_readers() {
    let dir = tmpdir("csr");
    let (_, pristine) = write_sample(&dir, "src");
    let sections = table(&pristine);
    // Section checksums guard random flips; these mutants also FIX UP the
    // per-section checksum, so only the structural validation can catch
    // them — the exact path a hostile-but-consistent file takes.
    let reseal_section = |bytes: &mut Vec<u8>, i: usize| {
        let (offset, len) = (sections[i].0 as usize, sections[i].1 as usize);
        let (mut hash, prime) = (0xcbf2_9ce4_8422_2325u64, 0x100_0000_01b3u64);
        for &b in &bytes[offset..offset + len] {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(prime);
        }
        let at = 48 + i * 32 + 24;
        bytes[at..at + 8].copy_from_slice(&hash.to_le_bytes());
        reseal_header(bytes);
    };

    // Out-of-range target node in OUT_TARGETS (section 1).
    let mut mutant = pristine.clone();
    let t0 = sections[1].0 as usize;
    mutant[t0..t0 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal_section(&mut mutant, 1);
    assert_rejected(&dir, &mutant, "out-of-range target");

    // Decreasing out-offsets (section 0): second entry jumps past m.
    let mut mutant = pristine.clone();
    let o0 = sections[0].0 as usize;
    mutant[o0 + 8..o0 + 16].copy_from_slice(&u64::MAX.to_le_bytes());
    reseal_section(&mut mutant, 0);
    assert_rejected(&dir, &mutant, "non-monotone offsets");

    // Probability outside [0, 1] (section 2).
    let mut mutant = pristine.clone();
    let p0 = sections[2].0 as usize;
    mutant[p0..p0 + 4].copy_from_slice(&2.5f32.to_bits().to_le_bytes());
    reseal_section(&mut mutant, 2);
    assert_rejected(&dir, &mutant, "probability > 1");

    // NaN probability (section 5: in-probs).
    let mut mutant = pristine.clone();
    let p1 = sections[5].0 as usize;
    mutant[p1..p1 + 4].copy_from_slice(&f32::NAN.to_bits().to_le_bytes());
    reseal_section(&mut mutant, 5);
    assert_rejected(&dir, &mutant, "NaN probability");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn io_load_graph_version_gates_transparently() {
    // Both directions of the sniffing contract: v1 snapshots keep loading
    // unchanged on a v2-aware build, and a v2 file handed to the generic
    // heap loader decodes eagerly instead of erroring.
    let dir = tmpdir("io_gate");
    let (g, labels) = sample();
    let v1 = dir.join("g.v1.timg");
    let v2 = dir.join("g.v2.timg");
    tim_graph::snapshot::save_snapshot(&g, &labels, &v1).unwrap();
    save_snapshot_v2(&g, &labels, &v2).unwrap();
    assert_eq!(snapshot_version(&v1).unwrap(), Some(1));
    assert_eq!(snapshot_version(&v2).unwrap(), Some(2));

    let from_v1 = tim_graph::io::load_graph(&v1, false).unwrap();
    let from_v2 = tim_graph::io::load_graph(&v2, false).unwrap();
    assert_eq!(graph_checksum(&from_v1.graph), graph_checksum(&g));
    assert_eq!(graph_checksum(&from_v2.graph), graph_checksum(&g));
    assert_eq!(from_v1.labels, labels);
    assert_eq!(from_v2.labels, labels);

    // A plain text edge list still sniffs as "not a snapshot".
    let text = dir.join("g.txt");
    std::fs::write(&text, "0 1\n1 2\n2 0\n").unwrap();
    assert_eq!(snapshot_version(&text).unwrap(), None);
    assert_eq!(
        tim_graph::io::load_graph(&text, false).unwrap().graph.n(),
        3
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_open_never_yields_a_usable_store() {
    // GraphStore::open_mmap — the path the catalog attaches through —
    // must fail closed on the same corruption the readers reject.
    let dir = tmpdir("store");
    let (_, pristine) = write_sample(&dir, "src");
    let path = dir.join("mutant.timg");

    let mut truncated = pristine.clone();
    truncated.truncate(HEADER_BYTES + 100);
    std::fs::write(&path, &truncated).unwrap();
    assert!(GraphStore::open_mmap(&path).is_err());

    let mut flipped = pristine.clone();
    flipped[20] ^= 0xFF; // count field under the header checksum
    std::fs::write(&path, &flipped).unwrap();
    assert!(GraphStore::open_mmap(&path).is_err());

    // A v1 snapshot is not mmap-able: open must refuse, not misread.
    let (g, labels) = sample();
    let v1 = dir.join("v1.timg");
    tim_graph::snapshot::save_snapshot(&g, &labels, &v1).unwrap();
    assert!(GraphStore::open_mmap(&v1).is_err());
    // ...and the pristine v2 still opens after all those rejections.
    std::fs::write(&path, &pristine).unwrap();
    let store = GraphStore::open_mmap(&path).unwrap();
    assert_eq!(store.checksum(), graph_checksum(&sample().0));
    std::fs::remove_dir_all(&dir).ok();
}
