//! Property tests for graph IO: text → snapshot → load must be lossless
//! (bit-identical CSR arrays and label maps), and corrupt or truncated
//! snapshots must be rejected, never mis-loaded.

use proptest::prelude::*;
use tim_graph::{gen, io, snapshot, weights, Graph, GraphError, NodeId};

/// Deterministic synthetic graph with a non-trivial label map, built by
/// writing a generated graph out as text with remapped sparse labels and
/// reading it back.
fn labelled_graph(n: usize, density: usize, seed: u64) -> io::LoadedGraph {
    let mut g = gen::erdos_renyi_gnm(n, n * density, seed);
    weights::assign_weighted_cascade(&mut g);
    // Sparse, non-contiguous labels: dense id i becomes 1000 + 13*i.
    let text: String = g
        .edges()
        .map(|(u, v, p)| format!("{} {} {}\n", 1000 + 13 * u as u64, 1000 + 13 * v as u64, p))
        .collect();
    io::read_edge_list(text.as_bytes(), false).unwrap()
}

fn assert_graphs_bit_identical(a: &Graph, b: &Graph) {
    assert_eq!(a.n(), b.n());
    assert_eq!(a.m(), b.m());
    for v in 0..a.n() as NodeId {
        assert_eq!(a.out_neighbors(v), b.out_neighbors(v), "out nbrs of {v}");
        assert_eq!(a.in_neighbors(v), b.in_neighbors(v), "in nbrs of {v}");
        let (ap, bp) = (a.out_probabilities(v), b.out_probabilities(v));
        assert_eq!(ap.len(), bp.len());
        for (x, y) in ap.iter().zip(bp) {
            assert_eq!(x.to_bits(), y.to_bits(), "out prob bits at {v}");
        }
        for (x, y) in a.in_probabilities(v).iter().zip(b.in_probabilities(v)) {
            assert_eq!(x.to_bits(), y.to_bits(), "in prob bits at {v}");
        }
    }
    assert_eq!(snapshot::graph_checksum(a), snapshot::graph_checksum(b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn text_to_snapshot_to_load_is_lossless(
        n in 5usize..80,
        density in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let loaded = labelled_graph(n, density, seed);
        let mut buf = Vec::new();
        snapshot::write_snapshot(&loaded.graph, &loaded.labels, &mut buf).unwrap();
        let reloaded = snapshot::read_snapshot(buf.as_slice()).unwrap();
        prop_assert_eq!(&reloaded.labels, &loaded.labels);
        assert_graphs_bit_identical(&reloaded.graph, &loaded.graph);
        prop_assert!(reloaded.graph.validate().is_ok());
    }

    #[test]
    fn every_truncation_is_rejected(
        n in 5usize..30,
        seed in 0u64..200,
        frac in 0.0f64..1.0,
    ) {
        let loaded = labelled_graph(n, 2, seed);
        let mut buf = Vec::new();
        snapshot::write_snapshot(&loaded.graph, &loaded.labels, &mut buf).unwrap();
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        prop_assert!(
            snapshot::read_snapshot(&buf[..cut]).is_err(),
            "truncation to {} of {} bytes must fail", cut, buf.len()
        );
    }

    #[test]
    fn every_single_byte_corruption_is_rejected(
        n in 5usize..30,
        seed in 0u64..200,
        frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let loaded = labelled_graph(n, 2, seed);
        let mut buf = Vec::new();
        snapshot::write_snapshot(&loaded.graph, &loaded.labels, &mut buf).unwrap();
        let pos = ((buf.len() - 1) as f64 * frac) as usize;
        buf[pos] ^= 1 << bit;
        // A flip anywhere — header, checksum field, or payload — must
        // surface as an error, never as a silently different graph.
        prop_assert!(
            snapshot::read_snapshot(buf.as_slice()).is_err(),
            "bit {} of byte {} flipped undetected", bit, pos
        );
    }

    #[test]
    fn load_graph_dispatches_by_content(
        n in 5usize..40,
        seed in 0u64..200,
    ) {
        let loaded = labelled_graph(n, 2, seed);
        let dir = std::env::temp_dir()
            .join(format!("timg_prop_{}_{seed}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Misleading extensions on purpose: sniffing is by content.
        let text_path = dir.join("a.timg");
        let snap_path = dir.join("b.txt");
        io::save_edge_list(&loaded.graph, &text_path).unwrap();
        snapshot::save_snapshot(&loaded.graph, &loaded.labels, &snap_path).unwrap();
        let from_text = io::load_graph(&text_path, false).unwrap();
        let from_snap = io::load_graph(&snap_path, false).unwrap();
        prop_assert_eq!(from_text.graph.m(), loaded.graph.m());
        assert_graphs_bit_identical(&from_snap.graph, &loaded.graph);
        prop_assert_eq!(&from_snap.labels, &loaded.labels);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn snapshot_error_messages_name_the_failure() {
    let loaded = labelled_graph(10, 2, 1);
    let mut buf = Vec::new();
    snapshot::write_snapshot(&loaded.graph, &loaded.labels, &mut buf).unwrap();

    let mut bad_magic = buf.clone();
    bad_magic[0] = b'X';
    match snapshot::read_snapshot(bad_magic.as_slice()) {
        Err(GraphError::Snapshot { message }) => assert!(message.contains("magic")),
        other => panic!("expected snapshot error, got {other:?}"),
    }

    match snapshot::read_snapshot(&buf[..12]) {
        Err(GraphError::Snapshot { message }) => assert!(message.contains("truncated")),
        other => panic!("expected snapshot error, got {other:?}"),
    }
}
