//! Property tests for the synthetic generators and weight models.

use proptest::prelude::*;
use tim_graph::{gen, weights, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gnm_always_valid_and_exact(
        n in 2usize..60,
        density in 1usize..4,
        seed in 0u64..500,
    ) {
        let m = (n * density).min(n * (n - 1));
        let g = gen::erdos_renyi_gnm(n, m, seed);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.n(), n);
        prop_assert_eq!(g.m(), m);
        // No self loops.
        for (u, v, _) in g.edges() {
            prop_assert_ne!(u, v);
        }
    }

    #[test]
    fn ba_always_valid_no_self_loops(
        n in 2usize..80,
        m_per in 1usize..5,
        back in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let g = gen::barabasi_albert(n, m_per, back, seed);
        prop_assert!(g.validate().is_ok());
        for (u, v, _) in g.edges() {
            prop_assert_ne!(u, v);
        }
        // Every non-initial node has at least one out-edge.
        for v in 1..n as NodeId {
            prop_assert!(g.out_degree(v) >= 1, "node {} isolated", v);
        }
    }

    #[test]
    fn watts_strogatz_always_valid_and_symmetric(
        k in 1usize..4,
        extra in 0usize..30,
        beta in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let n = 2 * k + 1 + extra;
        let g = gen::watts_strogatz(n, k, beta, seed);
        prop_assert!(g.validate().is_ok());
        for (u, v, _) in g.edges() {
            prop_assert!(
                g.out_neighbors(v).contains(&u),
                "edge {}->{} not symmetric", u, v
            );
        }
    }

    #[test]
    fn powerlaw_always_valid(
        n in 10usize..200,
        exponent in 1.5f64..3.5,
        avg in 1.0f64..6.0,
        seed in 0u64..500,
    ) {
        let g = gen::powerlaw_configuration(n, exponent, avg, n / 2, seed);
        prop_assert!(g.validate().is_ok());
        for (u, v, _) in g.edges() {
            prop_assert_ne!(u, v);
        }
    }

    #[test]
    fn weight_models_keep_probabilities_in_range(
        n in 5usize..60,
        density in 1usize..4,
        seed in 0u64..500,
    ) {
        let m = (n * density).min(n * (n - 1));
        let mut g = gen::erdos_renyi_gnm(n, m, seed);
        for model in [
            weights::WeightModel::WeightedCascade,
            weights::WeightModel::Constant(0.37),
            weights::WeightModel::Trivalency { seed },
            weights::WeightModel::LtNormalized { seed },
            weights::WeightModel::UniformRandom { seed, lo: 0.1, hi: 0.9 },
        ] {
            model.apply(&mut g);
            prop_assert!(g.validate().is_ok(), "{:?}", model);
            for (_, _, p) in g.edges() {
                prop_assert!((0.0..=1.0).contains(&p), "{:?}: p = {}", model, p);
            }
        }
    }

    #[test]
    fn symmetrize_is_idempotent(
        n in 2usize..40,
        density in 1usize..3,
        seed in 0u64..500,
    ) {
        let m = (n * density).min(n * (n - 1));
        let g = gen::erdos_renyi_gnm(n, m, seed);
        let s1 = gen::symmetrize(&g);
        let s2 = gen::symmetrize(&s1);
        prop_assert_eq!(s1.m(), s2.m());
        let e1: Vec<_> = s1.edges().map(|(u, v, _)| (u, v)).collect();
        let e2: Vec<_> = s2.edges().map(|(u, v, _)| (u, v)).collect();
        prop_assert_eq!(e1, e2);
    }
}
