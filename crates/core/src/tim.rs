//! End-to-end TIM and TIM+ drivers (§3.3 and §4.1).
//!
//! - [`Tim`]: `KptEstimation` → θ = λ/KPT* → `NodeSelection`. Expected time
//!   `O((k + ℓ)(m + n) log n / ε²)`; success probability ≥ `1 − n^(−ℓ)`
//!   after the §3.3 ℓ-adjustment (performed internally).
//! - [`TimPlus`]: inserts `RefineKPT` between the phases, sampling
//!   θ = λ/KPT⁺ instead — identical guarantees, up to two orders of
//!   magnitude faster in practice (paper Figures 3 and 6).
//!
//! Both record per-phase wall-clock timings ([`PhaseTimings`]) so the
//! paper's Figure 4 breakdown can be reproduced directly, and the RR-arena
//! footprint for Figure 12.

use crate::kpt::estimate_kpt;
use crate::math::{adjusted_ell, lambda};
use crate::refine::refine_kpt;
use crate::select::node_selection;
use std::time::{Duration, Instant};
use tim_coverage::SelectStrategy;
use tim_diffusion::DiffusionModel;
use tim_graph::{CsrAccess, NodeId};
use tim_rng::{RandomSource, Rng};

/// Which greedy max-coverage implementation the selection phases use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GreedyImpl {
    /// Lazy max-heap (CELF-style); the default.
    #[default]
    LazyHeap,
    /// Bucket queue with the linear-time bound.
    BucketQueue,
}

/// Wall-clock time spent in each phase of a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Algorithm 2 (`KptEstimation`).
    pub parameter_estimation: Duration,
    /// Algorithm 3 (`RefineKPT`); zero for plain TIM.
    pub refinement: Duration,
    /// Algorithm 1 (`NodeSelection`).
    pub node_selection: Duration,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.parameter_estimation + self.refinement + self.node_selection
    }
}

/// Output of a TIM or TIM+ run.
#[derive(Debug, Clone)]
pub struct TimResult {
    /// The selected size-`k` seed set, in greedy order.
    pub seeds: Vec<NodeId>,
    /// θ: RR sets sampled by the node-selection phase.
    pub theta: u64,
    /// KPT* from Algorithm 2.
    pub kpt_star: f64,
    /// KPT⁺ from Algorithm 3 (TIM+ only).
    pub kpt_plus: Option<f64>,
    /// ε′ used by Algorithm 3 (TIM+ only).
    pub epsilon_prime: Option<f64>,
    /// `n · F_R(S)`: unbiased coverage estimate of the seeds' spread.
    pub estimated_spread: f64,
    /// Fraction of node-selection RR sets covered by the seeds.
    pub coverage_fraction: f64,
    /// RR sets generated across **all** phases.
    pub total_rr_sets: u64,
    /// Peak bytes of the node-selection RR arena (Figure 12).
    pub rr_memory_bytes: usize,
    /// Per-phase wall-clock timings (Figure 4).
    pub phases: PhaseTimings,
}

#[derive(Debug, Clone)]
struct Config {
    epsilon: f64,
    ell: f64,
    seed: u64,
    threads: usize,
    select_threads: usize,
    select_strategy: SelectStrategy,
    greedy: GreedyImpl,
    eps_prime_override: Option<f64>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            epsilon: 0.1,
            ell: 1.0,
            seed: 0,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            select_threads: 1,
            select_strategy: SelectStrategy::Auto,
            greedy: GreedyImpl::LazyHeap,
            eps_prime_override: None,
        }
    }
}

macro_rules! builder_methods {
    () => {
        /// Sets the approximation slack ε (default 0.1, the paper's
        /// default). Smaller ε means more RR sets: θ scales as ε^(−2).
        #[must_use]
        pub fn epsilon(mut self, epsilon: f64) -> Self {
            assert!(epsilon > 0.0, "epsilon must be positive");
            self.cfg.epsilon = epsilon;
            self
        }

        /// Sets the failure exponent ℓ: success probability ≥ 1 − n^(−ℓ)
        /// (default 1).
        #[must_use]
        pub fn ell(mut self, ell: f64) -> Self {
            assert!(ell > 0.0, "ell must be positive");
            self.cfg.ell = ell;
            self
        }

        /// Sets the RNG seed; runs are deterministic given the seed
        /// regardless of thread count.
        #[must_use]
        pub fn seed(mut self, seed: u64) -> Self {
            self.cfg.seed = seed;
            self
        }

        /// Caps worker threads for RR-set generation (default: all cores).
        #[must_use]
        pub fn threads(mut self, threads: usize) -> Self {
            assert!(threads > 0, "threads must be positive");
            self.cfg.threads = threads;
            self
        }

        /// Worker threads for the greedy selection phase (default 1 =
        /// serial; 0 = all cores). The sharded solver is byte-identical
        /// to the serial one, so this never changes the answer.
        #[must_use]
        pub fn select_threads(mut self, select_threads: usize) -> Self {
            self.cfg.select_threads = select_threads;
            self
        }

        /// How sharded selection workers find each round's argmax
        /// (default [`SelectStrategy::Auto`], which picks the lazy
        /// CELF-style heap). Like `select_threads`, the strategy never
        /// changes the answer — only how much work finding it takes.
        #[must_use]
        pub fn select_strategy(mut self, strategy: SelectStrategy) -> Self {
            self.cfg.select_strategy = strategy;
            self
        }

        /// Chooses the greedy max-coverage implementation.
        #[must_use]
        pub fn greedy(mut self, greedy: GreedyImpl) -> Self {
            self.cfg.greedy = greedy;
            self
        }
    };
}

/// Everything the estimation phases determine *before* node selection:
/// the sample size θ, the RNG seed of the selection sampling stream, and
/// the KPT bounds that produced them.
///
/// A plan is a pure function of `(graph, model, ε, ℓ, seed, k)` — two
/// equal plans followed by [`node_selection`] with the same greedy variant
/// produce byte-identical seed sets. `tim_engine` relies on this to answer
/// queries from a persisted RR-set pool without re-running selection
/// sampling: it re-derives the plan (cheap) and replays only the greedy
/// step over the pool prefix that a fresh run would have sampled.
#[derive(Debug, Clone)]
pub struct SamplingPlan {
    /// Requested seed-set size, clamped to `n`.
    pub k: usize,
    /// θ: RR sets the node-selection phase must sample (Equation 5 with
    /// the KPT⁺ or KPT* bound).
    pub theta: u64,
    /// Seed of the node-selection sampling stream (pure function of the
    /// run seed; see [`select_stream_seed`]).
    pub select_seed: u64,
    /// KPT* from Algorithm 2.
    pub kpt_star: f64,
    /// KPT⁺ from Algorithm 3 (TIM+ plans only).
    pub kpt_plus: Option<f64>,
    /// ε′ used by Algorithm 3 (TIM+ plans only).
    pub epsilon_prime: Option<f64>,
    /// The §3.3/§4.1 union-bound-adjusted ℓ actually used.
    pub ell_eff: f64,
    /// RR sets consumed by the estimation phases themselves.
    pub estimation_rr_sets: u64,
    /// Wall-clock spent planning (`node_selection` component is zero).
    pub phases: PhaseTimings,
}

/// The seed of the node-selection sampling stream derived from a run seed.
///
/// [`Tim`]/[`TimPlus`] split their RNG into three streams (KPT estimation,
/// refinement, node selection); this exposes the third so that external
/// pool management (`tim_engine`) can label persisted RR-set pools with
/// the exact stream they were drawn from. Pure function of `seed`,
/// independent of `k`, ε, and ℓ.
pub fn select_stream_seed(seed: u64) -> u64 {
    let mut base = Rng::seed_from_u64(seed);
    let _kpt_rng = base.split_off();
    let _refine_rng = base.split_off();
    base.next_u64()
}

/// The TIM algorithm (§3.3): parameter estimation + node selection.
#[derive(Debug, Clone)]
pub struct Tim<M> {
    model: M,
    cfg: Config,
}

impl<M> Tim<M> {
    /// Creates a TIM runner for `model` with the paper's defaults
    /// (ε = 0.1, ℓ = 1).
    pub fn new(model: M) -> Self {
        Self {
            model,
            cfg: Config::default(),
        }
    }

    builder_methods!();

    /// Runs the parameter-estimation phase only, returning the θ and
    /// selection-stream seed a full [`run`](Self::run) would use.
    pub fn plan<G: CsrAccess>(&self, graph: &G, k: usize) -> SamplingPlan
    where
        M: DiffusionModel<G> + Sync,
    {
        plan_impl(&self.model, &self.cfg, graph, k, false)
    }

    /// Selects `k` seeds on `graph`.
    ///
    /// ```
    /// use tim_core::Tim;
    /// use tim_diffusion::IndependentCascade;
    /// use tim_graph::{gen, weights};
    ///
    /// let mut g = gen::barabasi_albert(300, 4, 0.1, 1);
    /// weights::assign_weighted_cascade(&mut g);
    /// let result = Tim::new(IndependentCascade)
    ///     .epsilon(0.8)
    ///     .seed(42)
    ///     .run(&g, 3);
    /// assert_eq!(result.seeds.len(), 3);
    /// assert!(result.theta >= 1);
    /// ```
    ///
    /// # Panics
    /// Panics if the graph has fewer than 2 nodes or no edges, or `k == 0`.
    pub fn run<G: CsrAccess>(&self, graph: &G, k: usize) -> TimResult
    where
        M: DiffusionModel<G> + Sync,
    {
        run_impl(&self.model, &self.cfg, graph, k, false)
    }
}

/// The TIM+ algorithm (§4.1): TIM with the `RefineKPT` intermediate step.
#[derive(Debug, Clone)]
pub struct TimPlus<M> {
    model: M,
    cfg: Config,
}

impl<M> TimPlus<M> {
    /// Creates a TIM+ runner for `model` with the paper's defaults.
    pub fn new(model: M) -> Self {
        Self {
            model,
            cfg: Config::default(),
        }
    }

    builder_methods!();

    /// Overrides ε′ for Algorithm 3 (default: `5·(ℓ·ε²/(k+ℓ))^(1/3)`).
    #[must_use]
    pub fn epsilon_prime(mut self, eps_prime: f64) -> Self {
        assert!(eps_prime > 0.0, "epsilon_prime must be positive");
        self.cfg.eps_prime_override = Some(eps_prime);
        self
    }

    /// Runs the estimation and refinement phases only, returning the θ and
    /// selection-stream seed a full [`run`](Self::run) would use.
    pub fn plan<G: CsrAccess>(&self, graph: &G, k: usize) -> SamplingPlan
    where
        M: DiffusionModel<G> + Sync,
    {
        plan_impl(&self.model, &self.cfg, graph, k, true)
    }

    /// Selects `k` seeds on `graph`.
    ///
    /// # Panics
    /// Panics if the graph has fewer than 2 nodes or no edges, or `k == 0`.
    pub fn run<G: CsrAccess>(&self, graph: &G, k: usize) -> TimResult
    where
        M: DiffusionModel<G> + Sync,
    {
        run_impl(&self.model, &self.cfg, graph, k, true)
    }
}

fn plan_impl<G: CsrAccess, M: DiffusionModel<G> + Sync>(
    model: &M,
    cfg: &Config,
    graph: &G,
    k: usize,
    refine: bool,
) -> SamplingPlan {
    assert!(k >= 1, "k must be at least 1");
    assert!(graph.n() >= 2, "graph must have at least 2 nodes");
    assert!(graph.m() >= 1, "graph must have at least 1 edge");
    let n = graph.n() as u64;
    let k = k.min(graph.n());

    // §3.3 / §4.1: scale ℓ so the union-bounded success probability over
    // 2 (TIM) or 3 (TIM+) sub-steps is still 1 - n^-ℓ.
    let ell_eff = adjusted_ell(cfg.ell, n, if refine { 3.0 } else { 2.0 });

    let mut base = Rng::seed_from_u64(cfg.seed);
    let mut kpt_rng = base.split_off();
    let mut refine_rng = base.split_off();
    let select_seed = base.next_u64();

    let mut phases = PhaseTimings::default();

    // Phase 1: Algorithm 2.
    let t0 = Instant::now();
    let kpt = estimate_kpt(graph, model, k as u64, ell_eff, &mut kpt_rng);
    phases.parameter_estimation = t0.elapsed();
    let kpt_star = kpt.kpt_star;
    let mut estimation_rr_sets = kpt.total_rr_sets;

    // Intermediate step: Algorithm 3 (TIM+ only).
    let (bound, kpt_plus, eps_prime) = if refine {
        let t1 = Instant::now();
        let refined = refine_kpt(
            graph,
            model,
            k,
            cfg.epsilon,
            ell_eff,
            kpt,
            cfg.eps_prime_override,
            &mut refine_rng,
            cfg.threads,
            cfg.select_threads,
            cfg.select_strategy,
            cfg.greedy,
        );
        phases.refinement = t1.elapsed();
        estimation_rr_sets += refined.theta_prime;
        (
            refined.kpt_plus,
            Some(refined.kpt_plus),
            Some(refined.epsilon_prime),
        )
    } else {
        (kpt_star, None, None)
    };

    // θ = λ / bound (Equation 5).
    let lam = lambda(n, k as u64, cfg.epsilon, ell_eff);
    let theta = (lam / bound).ceil().max(1.0) as u64;

    SamplingPlan {
        k,
        theta,
        select_seed,
        kpt_star,
        kpt_plus,
        epsilon_prime: eps_prime,
        ell_eff,
        estimation_rr_sets,
        phases,
    }
}

fn run_impl<G: CsrAccess, M: DiffusionModel<G> + Sync>(
    model: &M,
    cfg: &Config,
    graph: &G,
    k: usize,
    refine: bool,
) -> TimResult {
    let plan = plan_impl(model, cfg, graph, k, refine);
    let mut phases = plan.phases;

    // Phase 2: Algorithm 1 with the planned θ.
    let t2 = Instant::now();
    let sel = node_selection(
        graph,
        model,
        plan.k,
        plan.theta,
        plan.select_seed,
        cfg.threads,
        cfg.select_threads,
        cfg.select_strategy,
        cfg.greedy,
    );
    phases.node_selection = t2.elapsed();

    TimResult {
        seeds: sel.seeds,
        theta: plan.theta,
        kpt_star: plan.kpt_star,
        kpt_plus: plan.kpt_plus,
        epsilon_prime: plan.epsilon_prime,
        estimated_spread: sel.estimated_spread,
        coverage_fraction: sel.coverage_fraction,
        total_rr_sets: plan.estimation_rr_sets + plan.theta,
        rr_memory_bytes: sel.rr_memory_bytes,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::{IndependentCascade, LinearThreshold, SpreadEstimator};
    use tim_graph::{gen, weights, Graph, GraphBuilder};

    fn wc_graph(n: usize, seed: u64) -> Graph {
        let mut g = gen::barabasi_albert(n, 4, 0.0, seed);
        weights::assign_weighted_cascade(&mut g);
        g
    }

    #[test]
    fn tim_returns_k_distinct_seeds() {
        let g = wc_graph(300, 1);
        let r = Tim::new(IndependentCascade).epsilon(0.8).seed(2).run(&g, 7);
        assert_eq!(r.seeds.len(), 7);
        let mut s = r.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 7);
        assert!(r.kpt_plus.is_none());
        assert!(r.theta >= 1);
    }

    #[test]
    fn tim_plus_uses_tighter_bound_and_fewer_sets() {
        let g = wc_graph(400, 3);
        let tim = Tim::new(IndependentCascade)
            .epsilon(0.6)
            .seed(4)
            .run(&g, 20);
        let timp = TimPlus::new(IndependentCascade)
            .epsilon(0.6)
            .seed(4)
            .run(&g, 20);
        let plus = timp.kpt_plus.unwrap();
        assert!(plus >= timp.kpt_star);
        // Tighter bound => smaller theta (allowing for the different
        // ell-adjustment between the two algorithms).
        assert!(
            timp.theta as f64 <= 1.2 * tim.theta as f64,
            "TIM+ theta {} should not exceed TIM theta {}",
            timp.theta,
            tim.theta
        );
    }

    #[test]
    fn spread_quality_beats_random_seeds() {
        let g = wc_graph(400, 5);
        let k = 10;
        let r = TimPlus::new(IndependentCascade)
            .epsilon(0.5)
            .seed(6)
            .run(&g, k);
        let est = SpreadEstimator::new(IndependentCascade).runs(5_000).seed(7);
        let tim_spread = est.estimate(&g, &r.seeds);
        let random_seeds: Vec<u32> = (100..100 + k as u32).collect();
        let random_spread = est.estimate(&g, &random_seeds);
        assert!(
            tim_spread > random_spread,
            "TIM {tim_spread} should beat random {random_spread}"
        );
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let g = wc_graph(200, 8);
        let a = TimPlus::new(IndependentCascade)
            .epsilon(0.8)
            .seed(9)
            .run(&g, 5);
        let b = TimPlus::new(IndependentCascade)
            .epsilon(0.8)
            .seed(9)
            .run(&g, 5);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.theta, b.theta);
        let c = TimPlus::new(IndependentCascade)
            .epsilon(0.8)
            .seed(10)
            .run(&g, 5);
        // Different seed may still select the same nodes; theta or spread
        // will almost surely differ at the bit level.
        assert!(
            c.theta != a.theta || c.estimated_spread != a.estimated_spread || c.seeds != a.seeds
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = wc_graph(200, 11);
        let a = TimPlus::new(IndependentCascade)
            .epsilon(0.8)
            .seed(12)
            .threads(1)
            .run(&g, 5);
        let b = TimPlus::new(IndependentCascade)
            .epsilon(0.8)
            .seed(12)
            .threads(4)
            .run(&g, 5);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.theta, b.theta);
        assert_eq!(a.estimated_spread, b.estimated_spread);
        // The greedy phase shards deterministically too (0 = all cores),
        // whatever strategy the workers use to find their argmax.
        for select_threads in [2, 4, 0] {
            for strategy in [
                SelectStrategy::Eager,
                SelectStrategy::Lazy,
                SelectStrategy::Auto,
            ] {
                let c = TimPlus::new(IndependentCascade)
                    .epsilon(0.8)
                    .seed(12)
                    .threads(2)
                    .select_threads(select_threads)
                    .select_strategy(strategy)
                    .run(&g, 5);
                assert_eq!(
                    a.seeds, c.seeds,
                    "select_threads={select_threads} {strategy}"
                );
                assert_eq!(a.estimated_spread, c.estimated_spread);
            }
        }
    }

    #[test]
    fn works_under_lt() {
        let mut g = gen::barabasi_albert(300, 4, 0.0, 13);
        weights::assign_lt_normalized(&mut g, 14);
        let r = TimPlus::new(LinearThreshold)
            .epsilon(0.7)
            .seed(15)
            .run(&g, 8);
        assert_eq!(r.seeds.len(), 8);
        assert!(r.estimated_spread >= 1.0);
    }

    #[test]
    fn theta_grows_as_epsilon_shrinks() {
        let g = wc_graph(250, 16);
        let loose = TimPlus::new(IndependentCascade)
            .epsilon(1.0)
            .seed(17)
            .run(&g, 5);
        let tight = TimPlus::new(IndependentCascade)
            .epsilon(0.5)
            .seed(17)
            .run(&g, 5);
        assert!(
            tight.theta > loose.theta,
            "theta must grow: eps=0.5 gives {}, eps=1.0 gives {}",
            tight.theta,
            loose.theta
        );
    }

    #[test]
    fn phase_timings_are_recorded() {
        let g = wc_graph(200, 18);
        let r = TimPlus::new(IndependentCascade)
            .epsilon(0.8)
            .seed(19)
            .run(&g, 5);
        assert!(r.phases.parameter_estimation > Duration::ZERO);
        assert!(r.phases.refinement > Duration::ZERO);
        assert!(r.phases.node_selection > Duration::ZERO);
        assert_eq!(
            r.phases.total(),
            r.phases.parameter_estimation + r.phases.refinement + r.phases.node_selection
        );
        assert!(r.rr_memory_bytes > 0);
        assert!(r.total_rr_sets >= r.theta);
    }

    #[test]
    fn k_is_clamped_to_n() {
        let mut b = GraphBuilder::new(4);
        b.add_edge_with_probability(0, 1, 1.0);
        b.add_edge_with_probability(1, 2, 1.0);
        b.add_edge_with_probability(2, 3, 1.0);
        let g = b.build();
        let r = Tim::new(IndependentCascade)
            .epsilon(1.0)
            .seed(20)
            .run(&g, 100);
        assert_eq!(r.seeds.len(), 4);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let g = wc_graph(50, 21);
        Tim::new(IndependentCascade).run(&g, 0);
    }

    #[test]
    fn bucket_greedy_variant_runs() {
        let g = wc_graph(200, 22);
        let r = TimPlus::new(IndependentCascade)
            .epsilon(0.8)
            .seed(23)
            .greedy(GreedyImpl::BucketQueue)
            .run(&g, 5);
        assert_eq!(r.seeds.len(), 5);
    }

    #[test]
    fn plan_matches_run() {
        let g = wc_graph(250, 26);
        let runner = TimPlus::new(IndependentCascade).epsilon(0.7).seed(27);
        let plan = runner.plan(&g, 6);
        let result = runner.run(&g, 6);
        assert_eq!(plan.theta, result.theta);
        assert_eq!(plan.kpt_star, result.kpt_star);
        assert_eq!(plan.kpt_plus, result.kpt_plus);
        assert_eq!(plan.estimation_rr_sets + plan.theta, result.total_rr_sets);
        assert_eq!(plan.select_seed, select_stream_seed(27));
    }

    #[test]
    fn select_stream_seed_is_k_and_epsilon_independent() {
        let g = wc_graph(200, 28);
        let a = TimPlus::new(IndependentCascade)
            .epsilon(0.5)
            .seed(29)
            .plan(&g, 3);
        let b = TimPlus::new(IndependentCascade)
            .epsilon(0.9)
            .seed(29)
            .plan(&g, 12);
        assert_eq!(a.select_seed, b.select_seed);
        assert_eq!(a.select_seed, select_stream_seed(29));
    }

    #[test]
    fn epsilon_prime_override_propagates() {
        let g = wc_graph(200, 24);
        let r = TimPlus::new(IndependentCascade)
            .epsilon(0.8)
            .epsilon_prime(0.9)
            .seed(25)
            .run(&g, 5);
        assert_eq!(r.epsilon_prime, Some(0.9));
    }
}
